//! Quickstart: load one graft under one technology and invoke it.
//!
//! Run with: `cargo run --example quickstart`

use graftbench::api::Technology;
use graftbench::core::GraftManager;
use graftbench::grafts::eviction;

fn main() {
    // A graft is a portable package: region ABI, entry points, and
    // sources for each technology.
    let spec = eviction::spec();
    println!("graft: {} ({} class)", spec.name, spec.class);

    // The kernel picks the technology at load time. SafeCompiled is the
    // paper's Modula-3: compiled speed, full bounds/NIL checking.
    let manager = GraftManager::new();
    let mut engine = manager
        .load(&spec, Technology::SafeCompiled)
        .expect("load eviction graft");

    // The kernel marshals its LRU queue and the application's hot list
    // into the graft's shared regions...
    let scenario = eviction::Scenario::example();
    let (lru_head, hot_head) = scenario.marshal(engine.as_mut()).expect("marshal");

    // ...and asks the graft to choose an eviction victim.
    let victim = engine
        .invoke("select_victim", &[lru_head, hot_head])
        .expect("select victim");

    println!("LRU queue : {:?}", scenario.queue);
    println!("hot list  : {:?}", scenario.hot);
    println!("victim    : {victim}");
    assert_eq!(victim as u64, scenario.reference_victim());
    println!("(matches the reference policy — the graft kept every hot page resident)");
}
