//! Stream grafting (§3.2): fingerprint a "file" in the I/O path and
//! detect tampering, under several technologies.
//!
//! Run with: `cargo run --release --example md5_fingerprint`

use graftbench::api::Technology;
use graftbench::core::GraftManager;
use graftbench::grafts::md5 as md5_graft;

fn main() {
    // A 256 KB "file" streaming from the disk.
    let file: Vec<u8> = (0..256 * 1024u32).map(|i| (i * 31 % 256) as u8).collect();
    let reference = graftbench::md5::digest(&file);
    println!(
        "reference fingerprint (rust): {}",
        graftbench::md5::hex(&reference)
    );

    let spec = md5_graft::spec();
    let manager = GraftManager::new();
    for tech in [
        Technology::CompiledUnchecked,
        Technology::SafeCompiled,
        Technology::Sfi,
        Technology::Bytecode,
    ] {
        let mut engine = manager.load(&spec, tech).expect("load md5 graft");
        // The kernel streams the file through the graft in chunks, the
        // way a filter sits between the storage system and user level.
        let start = std::time::Instant::now();
        let mut graft = md5_graft::Md5Graft::start(engine.as_mut()).expect("init");
        for chunk in file.chunks(8192) {
            graft.update(chunk).expect("update");
        }
        let digest = graft.finish().expect("finish");
        let elapsed = start.elapsed();
        assert_eq!(digest, reference, "{tech} disagrees with RFC 1321");
        println!(
            "{:<22} {}  ({elapsed:?})",
            tech.paper_name(),
            graftbench::md5::hex(&digest)
        );
    }

    // Tamper with one byte mid-file: the fingerprint must change.
    let mut tampered = file.clone();
    tampered[100_000] ^= 0x40;
    let mut engine = manager
        .load(&spec, Technology::SafeCompiled)
        .expect("load");
    let t = md5_graft::digest_via(engine.as_mut(), &tampered).expect("digest");
    assert_ne!(t, reference);
    println!("\ntampered byte detected: {}", graftbench::md5::hex(&t));
}
