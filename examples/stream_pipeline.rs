//! Stream-graft chaining (§3.2): build the UNIX Stream I/O style
//! pipeline compress → encrypt → checksum over a file, then undo it,
//! with each stage a downloadable graft.
//!
//! Run with: `cargo run --release --example stream_pipeline`

use graftbench::api::{ExtensionEngine, Technology};
use graftbench::core::GraftManager;
use graftbench::grafts::stream::{self, checksum_spec, rle_spec, xor_spec, FilterChain};

fn load(tech: Technology, spec: &graftbench::api::GraftSpec) -> Box<dyn ExtensionEngine> {
    GraftManager::new().load(spec, tech).expect("load filter")
}

fn main() {
    // A compressible "log file": long runs with occasional records.
    let mut file = vec![b' '; 60_000];
    for i in (0..file.len()).step_by(512) {
        file[i] = b'#';
        file[i + 1] = (i / 512) as u8;
    }

    // Outbound path: compress, then encrypt, then checksum the
    // ciphertext (each stage under a different technology, because the
    // chain does not care).
    let rle = rle_spec();
    let xor = xor_spec();
    let sum = checksum_spec();

    // 1. Compress chunk by chunk, keeping per-chunk framing so the
    //    inbound path can decompress within the region budget.
    let mut comp = load(Technology::SafeCompiled, &rle);
    let words: Vec<i64> = file.iter().map(|&b| b as i64).collect();
    let mut packed = Vec::new();
    let mut frames = Vec::new();
    for chunk in words.chunks(stream::CHUNK) {
        comp.load_region("data", 0, chunk).unwrap();
        let n = comp.invoke("filter", &[chunk.len() as i64, 0]).unwrap() as usize;
        let mut out = vec![0i64; n];
        comp.read_region_slice("data", 0, &mut out).unwrap();
        packed.extend(out.iter().map(|&w| (w & 0xFF) as u8));
        frames.push(n);
    }
    println!(
        "compressed {} bytes -> {} bytes ({:.1}%)",
        file.len(),
        packed.len(),
        100.0 * packed.len() as f64 / file.len() as f64
    );

    // 2. Encrypt + fingerprint the compressed stream as a chain.
    let mut outbound = FilterChain::new(
        vec![
            load(Technology::Sfi, &xor),
            load(Technology::Bytecode, &sum),
        ],
        0x2A,
    )
    .expect("chain");
    let cipher = outbound.process(&packed).expect("outbound");
    let fingerprint = outbound.stage_mut(1).invoke("checksum", &[]).unwrap();
    println!("ciphertext {} bytes, checksum {fingerprint}", cipher.len());

    // Inbound path: verify checksum, decrypt, decompress.
    let mut inbound = FilterChain::new(
        vec![
            load(Technology::Bytecode, &sum),
            load(Technology::Sfi, &xor),
        ],
        0x2A,
    )
    .expect("chain");
    let plain_packed = inbound.process(&cipher).expect("inbound");
    let check = inbound.stage_mut(0).invoke("checksum", &[]).unwrap();
    assert_eq!(check, fingerprint, "transport corruption detected");

    // Decompress frame by frame with the graft's expand entry.
    let mut restored = Vec::new();
    let mut decomp = load(Technology::SafeCompiled, &rle);
    let mut at = 0usize;
    for &len in &frames {
        let packed_words: Vec<i64> = plain_packed[at..at + len].iter().map(|&b| b as i64).collect();
        at += len;
        decomp.load_region("data", 0, &packed_words).unwrap();
        let n = decomp.invoke("expand", &[len as i64]).unwrap() as usize;
        let mut out = vec![0i64; n];
        decomp.read_region_slice("data", 0, &mut out).unwrap();
        restored.extend(out.iter().map(|&w| (w & 0xFF) as u8));
    }

    assert_eq!(restored, file, "round trip must be lossless");
    println!("round trip OK: {} bytes restored, checksum verified", restored.len());
}
