//! Writing your own graft: author Grail source inline, package it,
//! load it under several technologies, and watch the protection
//! mechanisms contain a buggy version.
//!
//! Run with: `cargo run --example custom_graft`

use graftbench::api::{GraftClass, GraftSpec, Motivation, RegionSpec, Technology, Trap};
use graftbench::core::GraftManager;

/// A tiny policy graft: score I/O requests by (priority << 8) - age.
const GOOD: &str = r#"
fn score(priority: int, age: int) -> int {
    return (priority << 8) - age;
}

fn best(n: int) -> int {
    // reqs holds (priority, age) pairs; return the index of the best.
    let best_i = 0;
    let best_s = score(reqs[0], reqs[1]);
    let i = 1;
    while i < n {
        let s = score(reqs[i * 2], reqs[i * 2 + 1]);
        if s > best_s {
            best_s = s;
            best_i = i;
        }
        i = i + 1;
    }
    return best_i;
}
"#;

/// The same graft with a bug: it indexes past the marshalled requests.
const BUGGY: &str = r#"
fn best(n: int) -> int {
    let i = 0;
    let acc = 0;
    while i <= n * 1000 {
        acc = acc + reqs[i * 2];
        i = i + 1;
    }
    return acc;
}
"#;

fn spec_with(source: &str) -> GraftSpec {
    GraftSpec::new("io-scheduler", GraftClass::Prioritization, Motivation::Policy)
        .region(RegionSpec::data("reqs", 64))
        .entry("best", 1)
        .with_grail(source)
}

fn main() {
    let manager = GraftManager::new();
    let reqs: Vec<i64> = vec![
        3, 10, // request 0: priority 3, age 10
        9, 2, // request 1: priority 9, age 2
        9, 90, // request 2: priority 9, but old
        1, 0, // request 3
    ];

    println!("== well-behaved graft ==");
    for tech in [
        Technology::CompiledUnchecked,
        Technology::SafeCompiled,
        Technology::Sfi,
        Technology::Bytecode,
    ] {
        let mut engine = manager.load(&spec_with(GOOD), tech).expect("load");
        engine.load_region("reqs", 0, &reqs).expect("marshal");
        let best = engine.invoke("best", &[4]).expect("invoke");
        println!("{:<22} picks request {best}", tech.paper_name());
        assert_eq!(best, 1, "priority 9, youngest");
    }

    println!("\n== buggy graft (reads far out of bounds) ==");
    for tech in [
        Technology::CompiledUnchecked,
        Technology::SafeCompiled,
        Technology::Sfi,
        Technology::Bytecode,
    ] {
        let mut engine = manager.load(&spec_with(BUGGY), tech).expect("load");
        engine.load_region("reqs", 0, &reqs).expect("marshal");
        match engine.invoke("best", &[4]) {
            Ok(v) => println!(
                "{:<22} returned garbage {v} — stray reads wrapped inside its own memory",
                tech.paper_name()
            ),
            Err(e) => {
                assert!(matches!(e.as_trap(), Some(Trap::OutOfBounds { .. })));
                println!("{:<22} trapped: {e}", tech.paper_name());
            }
        }
    }
    println!("\nUnsafe C computes nonsense; the safe technologies either confine");
    println!("the damage (SFI) or convert it into a trap the kernel can handle.");
}
