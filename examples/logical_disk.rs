//! The black-box graft (§3.3): a Logical Disk turning the paper's
//! 80/20 random write stream into sequential segment writes, with the
//! bookkeeping hosted in a graft.
//!
//! Run with: `cargo run --release --example logical_disk`

use graftbench::api::Technology;
use graftbench::core::GraftManager;
use graftbench::grafts::logdisk as ld_graft;
use graftbench::kernsim::DiskModel;
use graftbench::logdisk::{workload, LdConfig, LogicalDisk};

fn main() {
    let blocks = 16_384;
    let config = LdConfig {
        blocks,
        segment_blocks: 16,
    };
    let disk = DiskModel::default();
    let writes: Vec<u64> = workload::skewed(blocks, blocks as u64, 42).collect();

    // 1. What batching buys under the disk model.
    let scattered = disk.scattered_writes(writes.len());
    let batched = disk.segment_write() * (writes.len() / config.segment_blocks) as u32;
    println!("write stream       : {} blocks, 80/20 skew", writes.len());
    println!("scattered writes   : {scattered:.2?} of disk time");
    println!("batched segments   : {batched:.2?} of disk time");
    println!(
        "saving per block   : {:?}\n",
        disk.batching_saving_per_block()
    );

    // 2. The reference facility does the bookkeeping in the kernel...
    let mut reference = LogicalDisk::new(config);
    for &w in &writes {
        reference.write(w);
    }
    println!("reference facility : {:?}", reference.stats());

    // 3. ...and the graft does the same bookkeeping under each safe
    //    technology, charging only microseconds per write.
    let spec = ld_graft::spec_sized(blocks);
    let manager = GraftManager::new();
    for tech in [
        Technology::SafeCompiled,
        Technology::Sfi,
        Technology::Bytecode,
    ] {
        let mut engine = manager.load(&spec, tech).expect("load");
        ld_graft::init_map(engine.as_mut(), blocks).expect("init");
        let start = std::time::Instant::now();
        for &w in &writes {
            engine.invoke("ld_write", &[w as i64]).expect("write");
        }
        let elapsed = start.elapsed();
        let per_block = elapsed / writes.len() as u32;
        // The graft's map must agree with the reference facility.
        for b in (0..blocks as u64).step_by(97) {
            let got = engine.invoke("ld_lookup", &[b as i64]).expect("lookup");
            let want = reference.read(b).map(|p| p as i64).unwrap_or(-1);
            assert_eq!(got, want, "map mismatch at block {b}");
        }
        let verdict = if per_block < disk.batching_saving_per_block() {
            "pays off"
        } else {
            "too slow"
        };
        println!(
            "{:<22} {per_block:?} per write bookkeeping — {verdict}",
            tech.paper_name()
        );
    }
}
