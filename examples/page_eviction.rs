//! The paper's §5.4 story, end to end: how much does each technology
//! charge per eviction decision, and does the graft pay for itself?
//!
//! Run with: `cargo run --release --example page_eviction`

use std::time::Duration;

use graftbench::api::Technology;
use graftbench::core::{breakeven, GraftManager};
use graftbench::grafts::eviction;
use graftbench::kernsim::btree::BtreeModel;
use graftbench::kernsim::stats::measure_per_iter;
use graftbench::kernsim::DiskModel;

fn main() {
    let spec = eviction::spec();
    let scenario = eviction::Scenario::paper_default(42);
    let manager = GraftManager::new();

    // The kernel-side costs the decision is weighed against: a hard
    // page fault under the 1996-class disk model.
    let fault = DiskModel::default().page_fault(Duration::from_micros(3), 4096, 1);
    let model = BtreeModel::default();
    let saves = 1.0 / model.hot_probability(64);
    println!("page fault: {fault:?}; the TPC-B app saves one eviction per {saves:.0} calls\n");

    println!(
        "{:<22} {:>12} {:>12} {:>12}  verdict",
        "technology", "per call", "vs C", "break-even"
    );
    let mut c_ns = 0.0;
    for tech in [
        Technology::CompiledUnchecked,
        Technology::SafeCompiled,
        Technology::Sfi,
        Technology::Bytecode,
        Technology::Script,
        Technology::RustNative,
        Technology::UserLevel,
    ] {
        let mut engine = manager.load(&spec, tech).expect("load");
        let (lru, hot) = scenario.marshal(engine.as_mut()).expect("marshal");
        let iters = if tech == Technology::Script { 50 } else { 5_000 };
        let sample = measure_per_iter(5, iters, || {
            let _ = engine.invoke("select_victim", &[lru, hot]);
        });
        if tech == Technology::CompiledUnchecked {
            c_ns = sample.mean_ns;
        }
        let be = breakeven::break_even(fault, Duration::from_nanos(sample.mean_ns as u64));
        let verdict = if breakeven::graft_pays_off(be, saves) {
            "pays off"
        } else {
            "too slow"
        };
        println!(
            "{:<22} {:>12} {:>11.1}x {:>12.0}  {}",
            tech.paper_name(),
            sample.paper_style(),
            sample.mean_ns / c_ns,
            be,
            verdict
        );
    }
    println!("\nThe paper's conclusion holds when the compiled rows pay off and the");
    println!("interpreted rows fall under the one-save-per-{saves:.0}-calls line.");
}
