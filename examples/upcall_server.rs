//! The hardware-protection alternative (§4.1): host a graft in a
//! user-level server and measure what the upcall boundary costs.
//!
//! Run with: `cargo run --release --example upcall_server`

use std::time::Duration;

use graftbench::api::Technology;
use graftbench::core::{breakeven, GraftManager};
use graftbench::grafts::acl::{self, Rule, EXEC, READ, WRITE};
use graftbench::kernsim::stats::measure_per_iter;

fn main() {
    let spec = acl::spec();
    let rules = [
        Rule { uid: 100, file: 1, modes: READ | WRITE },
        Rule { uid: -1, file: 2, modes: READ },
        Rule { uid: 100, file: 3, modes: EXEC },
    ];

    // In-kernel vs user-level hosting of the same compiled graft.
    let manager = GraftManager::new();
    let mut in_kernel = manager
        .load(&spec, Technology::CompiledUnchecked)
        .expect("in-kernel");
    let mut served = manager.load(&spec, Technology::UserLevel).expect("server");
    acl::load_rules(in_kernel.as_mut(), &rules).expect("marshal");
    acl::load_rules(served.as_mut(), &rules).expect("marshal");

    let fast = measure_per_iter(10, 5_000, || {
        let _ = in_kernel.invoke("acl_check", &[100, 1, READ]);
    });
    let slow = measure_per_iter(10, 2_000, || {
        let _ = served.invoke("acl_check", &[100, 1, READ]);
    });
    println!("ACL check, in kernel      : {}", fast.paper_style());
    println!("ACL check, via upcall     : {}", slow.paper_style());
    let upcall = Duration::from_nanos((slow.mean_ns - fast.mean_ns).max(0.0) as u64);
    println!("upcall boundary costs     : ~{upcall:?} per invocation");

    // The Figure 1 question: how many checks per saved event can each
    // hosting afford, if a saved event is worth one 13 ms page fault?
    let event = Duration::from_millis(13);
    println!(
        "break-even in kernel      : {:.0} calls per event saved",
        breakeven::break_even(event, Duration::from_nanos(fast.mean_ns as u64))
    );
    println!(
        "break-even via upcall     : {:.0} calls per event saved",
        breakeven::break_even(event, Duration::from_nanos(slow.mean_ns as u64))
    );
    println!("\nFine-grained extensions cannot afford the boundary; coarse ones");
    println!("(like the Logical Disk, one upcall per block write) can — the");
    println!("paper's §6 conclusion.");
}
