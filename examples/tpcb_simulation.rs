//! The paper's §3.1/§5.4 story end to end: a TPC-B database server runs
//! over the simulated VM, announces hot pages, and we account the
//! *total* virtual time — page faults charged at the disk model's
//! hard-fault cost, graft decisions charged at each technology's
//! measured invocation cost — to see which technologies actually pay
//! for themselves.
//!
//! Run with: `cargo run --release --example tpcb_simulation`

use std::time::Duration;

use graftbench::api::{ExtensionEngine, Technology};
use graftbench::core::GraftManager;
use graftbench::grafts::eviction::{self, Scenario};
use graftbench::kernsim::btree::BtreeModel;
use graftbench::kernsim::stats::measure_per_iter;
use graftbench::kernsim::vm::{EvictionPolicy, LruPolicy, LruQueue, PageId, Pager};
use graftbench::kernsim::DiskModel;

/// Eviction policy that consults a loaded graft, like the kernel would.
struct GraftPolicy {
    engine: Box<dyn ExtensionEngine>,
    hot: Vec<u64>,
    invocations: u64,
}

impl EvictionPolicy for GraftPolicy {
    fn select_victim(&mut self, queue: &LruQueue) -> Option<PageId> {
        self.invocations += 1;
        let scenario = Scenario {
            queue: queue.iter_lru().collect(),
            hot: self.hot.clone(),
        };
        let (lru, hot) = scenario.marshal(self.engine.as_mut()).ok()?;
        self.engine
            .invoke("select_victim", &[lru, hot])
            .ok()
            .map(|v| v as u64)
    }
}

/// The server's access trace: per level-3 page, announce its leaves as
/// hot, wander through random other leaves (faults that force
/// evictions), then consume the hot leaves.
fn run_trace<P: EvictionPolicy>(
    pager: &mut Pager<P>,
    model: &BtreeModel,
    set_hot: impl Fn(&mut Pager<P>, Vec<u64>),
) {
    let scatter = model.random_leaf_faults(3000, 7);
    let mut scatter = scatter.into_iter();
    for l3 in (0..model.l3_pages).step_by(97).take(6) {
        let hot = model.hot_list(l3);
        let hot = hot[..24].to_vec();
        set_hot(pager, hot.clone());
        // Fault the hot pages in (first touch).
        for &p in &hot {
            pager.access(p);
        }
        // Unrelated lookups churn the cache.
        for p in scatter.by_ref().take(420) {
            pager.access(p);
        }
        // The server now consumes the hot pages it announced.
        for &p in &hot {
            pager.access(p);
        }
    }
}

fn main() {
    let model = BtreeModel::default();
    let disk = DiskModel::default();
    let fault_cost = disk.page_fault(Duration::from_micros(3), 4096, 1);
    let frames = 64;
    println!(
        "TPC-B model: {} leaf pages, {frames} frames, hard fault {fault_cost:.1?}\n",
        model.leaf_pages()
    );

    // Baseline: the kernel's own LRU.
    let mut lru = Pager::new(frames, LruPolicy);
    run_trace(&mut lru, &model, |_, _| {});
    let lru_stats = lru.stats();
    let lru_time = fault_cost * lru_stats.faults as u32;
    println!(
        "{:<22} faults {:>4}  refaults {:>3}  total {:.1?}",
        "plain LRU (no graft)", lru_stats.faults, lru_stats.refaults, lru_time
    );

    let spec = eviction::spec();
    let manager = GraftManager::new();
    for tech in [
        Technology::RustNative,
        Technology::CompiledUnchecked,
        Technology::SafeCompiled,
        Technology::Sfi,
        Technology::Bytecode,
        Technology::Script,
    ] {
        // Measure this technology's per-decision cost on the standard
        // 64-entry scenario (as in Table 2).
        let mut probe = manager.load(&spec, tech).expect("load");
        let sc = Scenario::paper_default(1);
        let (lru_arg, hot_arg) = sc.marshal(probe.as_mut()).expect("marshal");
        let iters = if tech == Technology::Script { 20 } else { 2_000 };
        let per_call = measure_per_iter(3, iters, || {
            let _ = probe.invoke("select_victim", &[lru_arg, hot_arg]);
        })
        .best();

        // Run the simulation with the graft deciding evictions.
        let engine = manager.load(&spec, tech).expect("load");
        let mut pager = Pager::new(
            frames,
            GraftPolicy {
                engine,
                hot: Vec::new(),
                invocations: 0,
            },
        );
        run_trace(&mut pager, &model, |p, hot| p.policy_mut().hot = hot);
        let stats = pager.stats();
        let invocations = pager.policy_mut().invocations;
        let total = fault_cost * stats.faults as u32 + per_call * invocations as u32;
        let verdict = if total < lru_time { "wins" } else { "loses" };
        println!(
            "{:<22} faults {:>4}  refaults {:>3}  graft {:>5}x{:<9.1?} total {:.1?}  {}",
            tech.paper_name(),
            stats.faults,
            stats.refaults,
            invocations,
            per_call,
            total,
            verdict
        );
    }
    println!("\nCompiled technologies convert refaults into cheap decisions and win;");
    println!("the script technology spends more deciding than the faults it saves —");
    println!("the paper's break-even argument, played out in simulation.");
}
