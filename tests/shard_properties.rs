//! Property harness for the sharded extension kernel: for every
//! technology, a `ShardedHost` driven through [`VirtualShards`] (the
//! deterministic loom-style interleaving mode) must be observationally
//! equivalent to a single [`GraftHost`] fed the same operation
//! sequence — same verdicts, same ledger totals, same quarantine
//! decisions, same control-plane statistics.
//!
//! Each interleaving is a short random program over the host API
//! (install at either chain end, uninstall, readmit, chain dispatch,
//! direct invoke, marshalling failure) generated from a seeded
//! [`SmallRng`], so every run of the suite replays the exact same
//! programs — the property is checked over >= 200 interleavings per
//! technology and stays reproducible in CI.
//!
//! The second half is the fault-injection harness: an rng-scheduled
//! saboteur traps on chosen (shard, invocation) slots, and the suite
//! asserts the quarantine detach propagates to every shard (no
//! post-detach invocations anywhere, deterministic `Unavailable` on
//! re-invoke, epoch stamped against the membership order).

use graft_rng::SmallRng;
use graftbench::api::{
    GraftClass, GraftError, GraftSpec, Motivation, RegionStore, Technology, Trap, Verdict,
};
use graftbench::core::GraftManager;
use graftbench::kernel::{
    AttachPoint, GraftHost, GraftId, HostConfig, RunQueues, ShardedHost, StealPolicy,
    VirtualShards,
};

const POINT: AttachPoint = AttachPoint::VmEvict;

/// Every technology row of the paper's tables.
const ALL_TECHS: [Technology; 7] = [
    Technology::CompiledUnchecked,
    Technology::SafeCompiled,
    Technology::Sfi,
    Technology::Bytecode,
    Technology::Script,
    Technology::RustNative,
    Technology::UserLevel,
];

/// A *pure* graft: `select_victim(a, b)` depends only on its arguments,
/// so a per-shard replica computes exactly what the scalar host's
/// single engine computes — the precondition for sharded/scalar
/// equivalence. `b == 0` divides by zero (the one trap every safe
/// technology and the unchecked one agree on); `b < 0` spins until the
/// fuel meter preempts it (only dispatched by the metered fault tests).
fn pure_spec() -> GraftSpec {
    let grail = r#"
        fn select_victim(a: int, b: int) -> int {
            if b == 0 { return a / b; }
            if b < 0 { let i = 0; while true { i = i + 1; } return i; }
            return (a + b) % 7 - 3;
        }
    "#;
    let tickle = r#"
        proc select_victim {a b} {
            if {$b == 0} { return [expr $a / $b] }
            if {$b < 0} { while {1} { } }
            return [expr ($a + $b) % 7 - 3]
        }
    "#;
    GraftSpec::new("pure-pick", GraftClass::Prioritization, Motivation::Policy)
        .entry("select_victim", 2)
        .with_grail(grail)
        .with_tickle(tickle)
        .with_native(Box::new(|| {
            Box::new(
                |entry: &str, args: &[i64], _regions: &mut RegionStore| {
                    if entry != "select_victim" {
                        return Err(GraftError::Unavailable {
                            graft: "pure-pick".into(),
                            missing: format!("entry {entry}"),
                        });
                    }
                    let (a, b) = (args[0], args[1]);
                    if b == 0 {
                        return Err(GraftError::Trap(Trap::DivByZero));
                    }
                    if b < 0 {
                        return Err(GraftError::Trap(Trap::FuelExhausted));
                    }
                    Ok((a + b) % 7 - 3)
                },
            )
        }))
}

fn marshal_err() -> GraftError {
    GraftError::Unavailable {
        graft: "pure-pick".into(),
        missing: "kernel-side marshalling (injected)".into(),
    }
}

/// Flattens a verdict into the replay trace.
fn encode_verdict(v: Verdict) -> i64 {
    match v {
        Verdict::Continue => -500,
        Verdict::Override(x) => x,
    }
}

/// Flattens an invoke result into the replay trace.
fn encode_result(r: &Result<i64, GraftError>) -> i64 {
    match r {
        Ok(v) => *v,
        Err(e) => match e.as_trap() {
            Some(t) => -1000 - t.kind() as i64,
            None => -2000,
        },
    }
}

/// Errors compare by observable class: same trap kind, or both
/// `Unavailable` (the ids embedded in the messages legitimately differ
/// between the two hosts).
fn same_error(a: &GraftError, b: &GraftError) -> bool {
    match (a.as_trap(), b.as_trap()) {
        (Some(x), Some(y)) => x.kind() == y.kind(),
        (None, None) => {
            matches!(a, GraftError::Unavailable { .. })
                == matches!(b, GraftError::Unavailable { .. })
        }
        _ => false,
    }
}

/// Runs one random interleaving of host operations against both a
/// scalar `GraftHost` and a `ShardedHost` with 1-4 shards, asserting
/// observational equivalence at every step and over the final ledgers,
/// states, and statistics. Returns the replay trace so the determinism
/// test can compare two runs of the same seed.
fn check_one(manager: &GraftManager, spec: &GraftSpec, tech: Technology, seed: u64) -> Vec<i64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let shards = 1 + rng.bounded_u64(4) as usize;
    let mut single = GraftHost::new();
    let mut sharded = ShardedHost::new(shards);
    let mut vs = VirtualShards::new(&mut sharded, seed ^ 0xA5A5_5A5A);
    // Parallel id map: (scalar id, sharded id), in install order.
    let mut installed: Vec<(GraftId, GraftId)> = Vec::new();
    let mut trace = vec![shards as i64];
    let ctx = |seed: u64| format!("{tech} seed {seed:#x}");

    let ops = 12 + rng.bounded_u64(20) as usize;
    for _ in 0..ops {
        let roll = if installed.is_empty() {
            0
        } else {
            rng.bounded_u64(100)
        };
        if roll < 15 && installed.len() < 3 {
            // Install the same pure graft into both hosts, at the same
            // chain end.
            let e1 = manager.load(spec, tech).expect("scalar load");
            let e2 = manager.load(spec, tech).expect("sharded load");
            let front = rng.bounded_u64(2) == 0;
            let pair = if front {
                let a = single.install_front(POINT, "pure", e1).expect("install");
                let b = vs_install_front(&sharded, e2);
                installed.insert(0, (a, b));
                (a, b)
            } else {
                let a = single.install(POINT, "pure", e1).expect("install");
                let b = sharded.install(POINT, "pure", e2).expect("install");
                installed.push((a, b));
                (a, b)
            };
            trace.push(100 + pair.0 .0 as i64);
        } else if roll < 25 {
            let k = rng.bounded_u64(installed.len() as u64) as usize;
            let (a, b) = installed.remove(k);
            assert_eq!(
                single.uninstall(a),
                sharded.uninstall(b),
                "uninstall parity, {}",
                ctx(seed)
            );
            trace.push(200);
        } else if roll < 33 {
            let k = rng.bounded_u64(installed.len() as u64) as usize;
            let (a, b) = installed[k];
            assert_eq!(
                single.readmit(a),
                sharded.readmit(b),
                "readmit parity, {}",
                ctx(seed)
            );
            trace.push(300);
        } else if roll < 43 {
            // Direct invocation through the host, on whichever shard
            // the rotation lands on.
            let k = rng.bounded_u64(installed.len() as u64) as usize;
            let (a, b) = installed[k];
            let aa = rng.bounded_u64(1000) as i64;
            let bb = rng.bounded_u64(4) as i64;
            let r1 = single.invoke(a, &[aa, bb]);
            let r2 = vs.next_shard().invoke(b, &[aa, bb]);
            match (&r1, &r2) {
                (Ok(x), Ok(y)) => assert_eq!(x, y, "invoke value, {}", ctx(seed)),
                (Err(x), Err(y)) => {
                    assert!(same_error(x, y), "invoke error {x} vs {y}, {}", ctx(seed))
                }
                _ => panic!("invoke divergence {r1:?} vs {r2:?}, {}", ctx(seed)),
            }
            trace.push(encode_result(&r1));
        } else if roll < 48 {
            // Kernel-side marshalling failure: charged to the host's
            // failure counter, never to the graft.
            let v1 = single.dispatch(POINT, |_| Err(marshal_err()));
            let v2 = vs.dispatch(POINT, |_| Err(marshal_err()));
            assert_eq!(v1, v2, "marshal-failure verdict, {}", ctx(seed));
            trace.push(400);
        } else {
            let aa = rng.bounded_u64(1000) as i64;
            let bb = rng.bounded_u64(5) as i64;
            let v1 = single.dispatch(POINT, |_| Ok(vec![aa, bb]));
            let v2 = vs.dispatch(POINT, |_| Ok(vec![aa, bb]));
            assert_eq!(v1, v2, "dispatch verdict ({aa},{bb}), {}", ctx(seed));
            trace.push(encode_verdict(v1));
        }
    }

    // Merge every shard's private ledgers before reading the totals.
    vs.flush_all();

    // Control-plane statistics agree exactly, field for field.
    assert_eq!(single.stats(), sharded.stats(), "host stats, {}", ctx(seed));

    // Per-graft ledgers and lifecycle states agree for every graft
    // still installed (wall-clock ns is the one legitimately
    // machine-dependent field; everything countable must match).
    for &(a, b) in &installed {
        let l1 = *single.ledger(a).expect("scalar ledger");
        let l2 = sharded.ledger(b).expect("sharded ledger");
        assert_eq!(l1.invocations, l2.invocations, "invocations, {}", ctx(seed));
        assert_eq!(l1.traps, l2.traps, "traps, {}", ctx(seed));
        assert_eq!(l1.fuel_used, l2.fuel_used, "fuel, {}", ctx(seed));
        assert_eq!(l1.trap_counts, l2.trap_counts, "trap kinds, {}", ctx(seed));
        assert_eq!(single.state(a), sharded.state(b), "state, {}", ctx(seed));
        trace.push(l1.invocations as i64);
        trace.push(l1.traps as i64);
    }

    // Every shard sees the same membership as the scalar host.
    for s in 0..vs.len() {
        assert_eq!(
            single.active_len(POINT),
            vs.shard_mut(s).active_len(POINT),
            "shard {s} active chain, {}",
            ctx(seed)
        );
        assert_eq!(
            single.chain(POINT).len(),
            vs.shard_mut(s).chain(POINT).len(),
            "shard {s} chain length, {}",
            ctx(seed)
        );
    }
    trace
}

/// `ShardedHost::install_front` with the same shape as the scalar call.
fn vs_install_front(host: &ShardedHost, engine: Box<dyn graftbench::api::ExtensionEngine>) -> GraftId {
    host.install_front(POINT, "pure", engine).expect("install front")
}

/// >= 200 seeded interleavings for one technology.
fn run_equivalence(tech: Technology, base_seed: u64) {
    const INTERLEAVINGS: usize = 200;
    let manager = GraftManager::new();
    let spec = pure_spec();
    for i in 0..INTERLEAVINGS {
        let seed = base_seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        check_one(&manager, &spec, tech, seed);
    }
}

#[test]
fn sharded_matches_scalar_compiled_unchecked() {
    run_equivalence(Technology::CompiledUnchecked, 0xC0);
}

#[test]
fn sharded_matches_scalar_safe_compiled() {
    run_equivalence(Technology::SafeCompiled, 0x53);
}

#[test]
fn sharded_matches_scalar_sfi() {
    run_equivalence(Technology::Sfi, 0x5F1);
}

#[test]
fn sharded_matches_scalar_bytecode() {
    run_equivalence(Technology::Bytecode, 0xB1);
}

#[test]
fn sharded_matches_scalar_script() {
    run_equivalence(Technology::Script, 0x7C1);
}

#[test]
fn sharded_matches_scalar_rust_native() {
    run_equivalence(Technology::RustNative, 0x4A);
}

#[test]
fn sharded_matches_scalar_user_level() {
    run_equivalence(Technology::UserLevel, 0x0E);
}

#[test]
fn interleavings_replay_identically_from_the_same_seed() {
    // The harness is only as good as its reproducibility: the same
    // seed must replay the same program with the same observable
    // outcomes, or a CI failure could never be investigated.
    let manager = GraftManager::new();
    let spec = pure_spec();
    for i in 0..32u64 {
        let seed = 0xD00D_F00D ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let first = check_one(&manager, &spec, Technology::SafeCompiled, seed);
        let again = check_one(&manager, &spec, Technology::SafeCompiled, seed);
        assert_eq!(first, again, "seed {seed:#x} did not replay");
    }
}

// ---------------------------------------------------------------------
// Fault injection: rng-scheduled saboteur on (shard, invocation) slots.
// ---------------------------------------------------------------------

#[test]
fn scheduled_saboteur_detach_propagates_to_every_shard() {
    const SHARDS: usize = 4;
    const ROUNDS: usize = 12;
    let manager = GraftManager::new();
    let spec = pure_spec();
    for tech in ALL_TECHS {
        let mut rng = SmallRng::seed_from_u64(0xFA01_7000 + tech as u64);
        let mut host = ShardedHost::new(SHARDS);
        let threshold = host.config().trap_threshold as u64;
        let engine = manager.load(&spec, tech).expect("load saboteur");
        let id = host.install(POINT, "saboteur", engine).expect("install");
        let epoch_at_install = host.epoch();
        let mut vs = VirtualShards::new(&mut host, 0xBEEF);

        // The trap schedule: exactly `threshold` distinct
        // (shard, round) slots drawn from the seeded rng. Every other
        // slot dispatches clean arguments that decode to Continue, so
        // the chain keeps being consulted until the supervisor trips.
        let mut plan = [[false; ROUNDS]; SHARDS];
        let mut placed = 0;
        while placed < threshold {
            let s = rng.bounded_u64(SHARDS as u64) as usize;
            let k = rng.bounded_u64(ROUNDS as u64) as usize;
            if !plan[s][k] {
                plan[s][k] = true;
                placed += 1;
            }
        }

        let mut expected_invocations = 0u64;
        let mut expected_traps = 0u64;
        for k in 0..ROUNDS {
            for (s, shard_plan) in plan.iter().enumerate() {
                let live = !host.is_quarantined(id);
                let b = if shard_plan[k] { 0 } else { 1 };
                if live {
                    expected_invocations += 1;
                    if b == 0 {
                        expected_traps += 1;
                    }
                }
                let v = vs.shard_mut(s).dispatch(POINT, |_| Ok(vec![7, b]));
                // (7 + 1) % 7 - 3 = -2: the graft always declines, so
                // every dispatch falls through to the kernel default.
                assert_eq!(v, Verdict::Continue, "{tech} shard {s} round {k}");
            }
        }

        // The third scheduled trap detached the graft — globally.
        assert!(host.is_quarantined(id), "{tech}: saboteur still attached");
        assert_eq!(expected_traps, threshold, "{tech}: schedule under-fired");
        let detach = host.detach_epoch(id).expect("detach epoch");
        assert!(
            detach >= epoch_at_install && detach <= host.epoch(),
            "{tech}: detach epoch {detach} outside [{epoch_at_install}, {}]",
            host.epoch()
        );

        // Ledger totals match the deterministic schedule exactly.
        vs.flush_all();
        let ledger = host.ledger(id).expect("ledger");
        assert_eq!(ledger.traps, threshold, "{tech}");
        assert_eq!(ledger.invocations, expected_invocations, "{tech}");

        // No post-detach invocation on *any* shard: more dispatches
        // leave the ledger untouched and the active chain empty.
        for s in 0..SHARDS {
            for _ in 0..3 {
                let v = vs.shard_mut(s).dispatch(POINT, |_| Ok(vec![7, 1]));
                assert_eq!(v, Verdict::Continue, "{tech} shard {s}");
            }
            assert_eq!(vs.shard_mut(s).active_len(POINT), 0, "{tech} shard {s}");
        }
        vs.flush_all();
        assert_eq!(
            host.ledger(id).expect("ledger").invocations,
            expected_invocations,
            "{tech}: a detached graft was invoked"
        );

        // Re-invoking the detached graft refuses deterministically on
        // every shard, with the same message everywhere, and the
        // refusal is never charged to the ledger.
        let mut messages = Vec::new();
        for s in 0..SHARDS {
            let e1 = vs.shard_mut(s).invoke(id, &[1, 1]).unwrap_err();
            let e2 = vs.shard_mut(s).invoke(id, &[1, 1]).unwrap_err();
            assert!(
                matches!(&e1, GraftError::Unavailable { .. }),
                "{tech} shard {s}: {e1}"
            );
            assert_eq!(e1.to_string(), e2.to_string(), "{tech} shard {s}");
            messages.push(e1.to_string());
        }
        messages.dedup();
        assert_eq!(messages.len(), 1, "{tech}: refusals differ across shards");
        vs.flush_all();
        assert_eq!(
            host.ledger(id).expect("ledger").invocations,
            expected_invocations,
            "{tech}: refusal charged the ledger"
        );
    }
}

#[test]
fn scheduled_saboteur_replays_identically() {
    // Same seed, same schedule, same detach point: run the scheduled
    // saboteur twice and compare where the supervisor tripped.
    let manager = GraftManager::new();
    let spec = pure_spec();
    let run = |seed: u64| -> (u64, u64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut host = ShardedHost::new(3);
        let id = host
            .install(POINT, "saboteur", manager.load(&spec, Technology::Bytecode).unwrap())
            .unwrap();
        let mut vs = VirtualShards::new(&mut host, seed);
        let mut step = 0u64;
        let mut tripped_at = 0u64;
        while !host.is_quarantined(id) {
            step += 1;
            let b = i64::from(rng.bounded_u64(3) != 0);
            vs.dispatch(POINT, |_| Ok(vec![7, b]));
            tripped_at = step;
            assert!(step < 10_000, "saboteur never tripped");
        }
        vs.flush_all();
        (tripped_at, host.ledger(id).unwrap().invocations)
    };
    for seed in [1u64, 0xFEED, 0x1234_5678] {
        assert_eq!(run(seed), run(seed), "seed {seed:#x}");
    }
}

// ---------------------------------------------------------------------
// Flight-recorder properties: the merged cross-shard timeline is
// causally ordered and semantically identical to the scalar host's
// event stream over the same operation sequence.
// ---------------------------------------------------------------------

/// Arms the flight recorder. The toggles are process-global, so every
/// trace test arms and none disarms — harmless for the rest of this
/// binary (the equivalence properties read ledgers and stats, which
/// are host state, not telemetry).
fn arm_recorder() -> bool {
    graftbench::telemetry::set_enabled(true);
    graftbench::telemetry::set_tracing(true);
    // False in a noop-telemetry build: nothing to assert there.
    graftbench::telemetry::tracing()
}

#[test]
fn merged_timeline_is_causally_ordered_per_trace() {
    if !arm_recorder() {
        return;
    }
    let manager = GraftManager::new();
    let spec = pure_spec();
    for seed in [0x7EA5u64, 0xACE0_FBA5u64, 0x5EED_CAFEu64] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut host = ShardedHost::new(4);
        let front = manager.load(&spec, Technology::SafeCompiled).expect("load");
        let back = manager.load(&spec, Technology::Bytecode).expect("load");
        host.install(POINT, "front", front).expect("install");
        host.install(POINT, "back", back).expect("install");
        let mut vs = VirtualShards::new(&mut host, seed);
        for _ in 0..48 {
            let a = rng.bounded_u64(100) as i64;
            let b = 1 + rng.bounded_u64(3) as i64; // never traps
            vs.dispatch(POINT, |_| Ok(vec![a, b]));
        }
        let merged = vs.merged_timeline();
        assert!(!merged.is_empty(), "recorder armed but timeline empty");

        // Total order: strictly ascending (ts, trace, seq) keys, so the
        // merge is deterministic and duplicate-free.
        for w in merged.windows(2) {
            assert!(
                w[0].key() < w[1].key(),
                "timeline out of order: {:?} then {:?}",
                w[0],
                w[1]
            );
        }

        // Per-trace happens-before: in timeline order every trace's
        // seqs read 0, 1, ... with no gaps, and one dispatch's events
        // never span shards (the chain runs where the dispatch landed).
        use std::collections::HashMap;
        let mut next_seq: HashMap<u64, u32> = HashMap::new();
        let mut shard_of: HashMap<u64, u32> = HashMap::new();
        for e in &merged {
            let want = next_seq.entry(e.trace.0).or_insert(0);
            assert_eq!(e.seq, *want, "trace {:#x} skipped a seq", e.trace.0);
            *want += 1;
            let s = shard_of.entry(e.trace.0).or_insert(e.shard);
            assert_eq!(*s, e.shard, "trace {:#x} spans shards", e.trace.0);
        }
        // A two-graft chain yields one or two events per dispatch: two
        // when the front graft declines, one when it overrides and the
        // walk stops.
        assert!(
            next_seq.values().all(|&n| (1..=2).contains(&n)),
            "seed {seed:#x}: trace lengths {:?}",
            next_seq.values().collect::<Vec<_>>()
        );
    }
}

#[test]
fn merged_timeline_matches_the_scalar_event_stream() {
    if !arm_recorder() {
        return;
    }
    let manager = GraftManager::new();
    let spec = pure_spec();
    for seed in [1u64, 0xBEEF, 0x1234_5678] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut single = GraftHost::new();
        let mut sharded = ShardedHost::new(4);
        let e1 = manager.load(&spec, Technology::SafeCompiled).expect("load");
        let e2 = manager.load(&spec, Technology::SafeCompiled).expect("load");
        single.install(POINT, "pure", e1).expect("install");
        sharded.install(POINT, "pure", e2).expect("install");
        let mut vs = VirtualShards::new(&mut sharded, seed);
        for _ in 0..40 {
            let a = rng.bounded_u64(1000) as i64;
            let b = rng.bounded_u64(4) as i64; // b == 0 traps
            let v1 = single.dispatch(POINT, |_| Ok(vec![a, b]));
            let v2 = vs.dispatch(POINT, |_| Ok(vec![a, b]));
            assert_eq!(v1, v2, "verdict parity, seed {seed:#x}");
        }
        single.flush();
        vs.flush_all();
        // Same dispatches, same chain, same traps: the merged sharded
        // timeline carries exactly the scalar host's event sequence —
        // (point, tech, verdict, value) for every invocation, in the
        // same order (trace ids and shard stamps legitimately differ).
        let scalar: Vec<_> = single.trace_events().iter().map(|e| e.semantics()).collect();
        let merged: Vec<_> = vs
            .merged_timeline()
            .iter()
            .map(|e| e.semantics())
            .collect();
        assert!(!scalar.is_empty(), "seed {seed:#x}: scalar recorded nothing");
        assert_eq!(scalar, merged, "event streams diverge, seed {seed:#x}");
    }
}

#[test]
fn one_fuel_exhaustion_detaches_globally() {
    // FuelExhausted is a single-strike offence: one preempted
    // invocation on one shard detaches the graft everywhere, even
    // though the trap threshold has not been reached.
    let cfg = HostConfig {
        fuel_budget: Some(20_000),
        ..HostConfig::default()
    };
    let manager = GraftManager::new();
    let spec = pure_spec();
    for tech in [
        Technology::SafeCompiled,
        Technology::Sfi,
        Technology::Bytecode,
        Technology::Script,
    ] {
        let mut host = ShardedHost::with_config(4, cfg);
        let engine = manager.load(&spec, tech).expect("load");
        let id = host.install(POINT, "spinner", engine).expect("install");
        let mut vs = VirtualShards::new(&mut host, 0x10E1);

        // A clean dispatch on every shard first: all attached.
        for s in 0..4 {
            vs.shard_mut(s).dispatch(POINT, |_| Ok(vec![7, 1]));
            assert_eq!(vs.shard_mut(s).active_len(POINT), 1, "{tech} shard {s}");
        }
        assert!(!host.is_quarantined(id), "{tech}");

        // One runaway invocation on shard 2.
        let v = vs.shard_mut(2).dispatch(POINT, |_| Ok(vec![7, -1]));
        assert_eq!(v, Verdict::Continue, "{tech}");
        assert!(host.is_quarantined(id), "{tech}: fuel trap did not detach");

        // Every shard observes the detach at its very next dispatch.
        for s in 0..4 {
            vs.shard_mut(s).dispatch(POINT, |_| Ok(vec![7, 1]));
            assert_eq!(vs.shard_mut(s).active_len(POINT), 0, "{tech} shard {s}");
        }
        vs.flush_all();
        let ledger = host.ledger(id).expect("ledger");
        assert_eq!(ledger.traps, 1, "{tech}");
        assert_eq!(ledger.invocations, 5, "{tech}");
    }
}

// ---------------------------------------------------------------------
// Adaptive dispatch plane: work-stealing interleavings replayed against
// the scalar host. The sharded run drives a keyed trace through
// [`RunQueues`] with stealing on, recording the order items actually
// completed (home drains, diversions, and steals included); the scalar
// host then replays the identical items in that completion order, one
// dispatch each. Verdict-for-verdict equality plus ledger, lifecycle,
// and postmortem parity proves a stolen dispatch is charged exactly
// once and quarantine semantics survive cross-shard handoff.
// ---------------------------------------------------------------------

/// One stealing interleaving against the scalar replay. Returns the
/// replay trace so determinism can be asserted over repeated runs.
fn check_one_stealing(
    manager: &GraftManager,
    spec: &GraftSpec,
    tech: Technology,
    seed: u64,
) -> Vec<i64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let shards = 2 + rng.bounded_u64(3) as usize; // stealing needs a peer
    let mut sharded = ShardedHost::new(shards);
    let engine = manager.load(spec, tech).expect("sharded load");
    let id = sharded.install(POINT, "pure", engine).expect("install");
    let q: RunQueues<(i64, i64)> = sharded.run_queues(StealPolicy::default());
    let mut vs = VirtualShards::new(&mut sharded, seed ^ 0x57EA_1000);
    let ctx = format!("{tech} seed {seed:#x}");

    // A keyed trace over a small hot key space: half the items hit one
    // hot key, so the plane genuinely diverts and steals; `b == 0`
    // traps, so some seeds quarantine the graft mid-trace (including
    // mid-steal, when the trapping item was pulled from another
    // shard's queue).
    let total = 24 + rng.bounded_u64(40) as usize;
    let mut submitted = 0usize;
    let mut order: Vec<((i64, i64), Verdict)> = Vec::new();
    let to_args = |&(a, b): &(i64, i64)| vec![a, b];
    while submitted < total || q.total_depth() > 0 {
        if submitted < total && rng.bounded_u64(3) != 0 {
            let key = if rng.bounded_u64(2) == 0 {
                0
            } else {
                rng.bounded_u64(8)
            };
            let a = rng.bounded_u64(1000) as i64;
            let b = if rng.bounded_u64(24) == 0 {
                0 // div-by-zero trap
            } else {
                1 + rng.bounded_u64(3) as i64
            };
            if sharded.enqueue(&q, key, Some(id), (a, b)).is_ok() {
                submitted += 1;
                continue;
            }
            // Backpressure: fall through to a drain.
        }
        vs.drive_queue_with(&q, POINT, to_args, |w, v| order.push((w.payload, v)));
    }
    vs.flush_all();
    assert_eq!(order.len(), total, "plane lost or duplicated items, {ctx}");

    // Scalar replay in the sharded plane's completion order.
    let mut single = GraftHost::new();
    let sid = single
        .install(POINT, "pure", manager.load(spec, tech).expect("scalar load"))
        .expect("install");
    let mut trace = vec![shards as i64];
    for (i, ((a, b), sharded_verdict)) in order.iter().enumerate() {
        let v = single.dispatch(POINT, |_| Ok(vec![*a, *b]));
        assert_eq!(v, *sharded_verdict, "verdict {i}/{total}, {ctx}");
        trace.push(encode_verdict(v));
    }

    // Ledger parity: every stolen dispatch charged exactly once.
    let l1 = *single.ledger(sid).expect("scalar ledger");
    let l2 = sharded.ledger(id).expect("sharded ledger");
    assert_eq!(l1.invocations, l2.invocations, "invocations, {ctx}");
    assert_eq!(l1.traps, l2.traps, "traps, {ctx}");
    assert_eq!(l1.fuel_used, l2.fuel_used, "fuel, {ctx}");
    assert_eq!(l1.trap_counts, l2.trap_counts, "trap kinds, {ctx}");
    trace.push(l1.invocations as i64);
    trace.push(l1.traps as i64);

    // Lifecycle parity: a trace with >= 3 traps quarantined both hosts
    // at the same completion index, or neither.
    assert_eq!(single.state(sid), sharded.state(id), "state, {ctx}");
    assert_eq!(
        single.is_quarantined(sid),
        sharded.is_quarantined(id),
        "quarantine, {ctx}"
    );

    // Postmortem parity, tail included: same reason, same strike count,
    // same frozen ledger, and the fatal event at the end of the tail
    // carries the same semantics. The sharded report additionally names
    // the shard that tripped the supervisor — which, mid-steal, is the
    // thief, not the item's home.
    let pm2 = sharded.take_postmortems();
    let pm1 = single.postmortems();
    assert_eq!(pm1.len(), pm2.len(), "postmortem count, {ctx}");
    for (x, y) in pm1.iter().zip(&pm2) {
        assert_eq!(x.reason, y.reason, "postmortem reason, {ctx}");
        assert_eq!(x.strikes, y.strikes, "postmortem strikes, {ctx}");
        // The sharded report freezes the *detaching shard's* local
        // ledger: it saw at least the fatal strike, never more than
        // the scalar (global) total — strikes on other shards merge at
        // flush time, after the report is cut.
        assert!(
            (1..=x.ledger.traps).contains(&y.ledger.traps),
            "postmortem ledger traps {} outside [1, {}], {ctx}",
            y.ledger.traps,
            x.ledger.traps
        );
        assert!(y.shard.is_some(), "sharded postmortem lost its shard, {ctx}");
        if let (Some(ex), Some(ey)) = (x.events.last(), y.events.last()) {
            assert_eq!(
                ex.semantics(),
                ey.semantics(),
                "postmortem tail diverges, {ctx}"
            );
        }
        trace.push(i64::from(x.strikes));
    }
    trace
}

/// >= 200 seeded stealing interleavings for one technology.
fn run_steal_equivalence(tech: Technology, base_seed: u64) {
    const INTERLEAVINGS: usize = 200;
    let manager = GraftManager::new();
    let spec = pure_spec();
    for i in 0..INTERLEAVINGS {
        let seed = base_seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        check_one_stealing(&manager, &spec, tech, seed);
    }
}

#[test]
fn stealing_matches_scalar_compiled_unchecked() {
    run_steal_equivalence(Technology::CompiledUnchecked, 0x5C0);
}

#[test]
fn stealing_matches_scalar_safe_compiled() {
    run_steal_equivalence(Technology::SafeCompiled, 0x553);
}

#[test]
fn stealing_matches_scalar_sfi() {
    run_steal_equivalence(Technology::Sfi, 0x55F1);
}

#[test]
fn stealing_matches_scalar_bytecode() {
    run_steal_equivalence(Technology::Bytecode, 0x5B1);
}

#[test]
fn stealing_matches_scalar_script() {
    run_steal_equivalence(Technology::Script, 0x57C1);
}

#[test]
fn stealing_matches_scalar_rust_native() {
    run_steal_equivalence(Technology::RustNative, 0x54A);
}

#[test]
fn stealing_matches_scalar_user_level() {
    run_steal_equivalence(Technology::UserLevel, 0x50E);
}

#[test]
fn stealing_interleavings_replay_identically_from_the_same_seed() {
    let manager = GraftManager::new();
    let spec = pure_spec();
    for i in 0..16u64 {
        let seed = 0x57EA_D00D ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let first = check_one_stealing(&manager, &spec, Technology::Bytecode, seed);
        let again = check_one_stealing(&manager, &spec, Technology::Bytecode, seed);
        assert_eq!(first, again, "seed {seed:#x} did not replay");
    }
}

#[test]
fn saboteur_quarantined_mid_steal_names_the_thief_and_counts_once() {
    // All work homes on one shard; the trapping items sit in the back
    // half of its queue — exactly the slice a thief steals. The
    // supervisor must trip on the thief (the postmortem names it), the
    // strikes must count exactly once despite the cross-shard handoff,
    // and the scalar replay of the completion order must agree verdict
    // for verdict.
    let manager = GraftManager::new();
    let spec = pure_spec();
    for tech in [
        Technology::SafeCompiled,
        Technology::Bytecode,
        Technology::RustNative,
    ] {
        let mut host = ShardedHost::new(2);
        let threshold = host.config().trap_threshold as u64;
        let id = host
            .install(POINT, "saboteur", manager.load(&spec, tech).expect("load"))
            .expect("install");
        let q: RunQueues<(i64, i64)> = host.run_queues(StealPolicy::default());
        let home = q.home(0);
        let thief = 1 - home;
        // Ten items keyed to the home shard: seven clean, then
        // `threshold` trapping ones at the back. A steal takes the back
        // half (five items), which contains every trap.
        for i in 0..10u64 {
            let b = if i >= 10 - threshold { 0 } else { 1 };
            host.enqueue(&q, 0, Some(id), (7i64, b)).expect("room");
        }
        let mut vs = VirtualShards::new(&mut host, 0x7EEF);
        let to_args = |&(a, b): &(i64, i64)| vec![a, b];
        let mut order: Vec<((i64, i64), Verdict)> = Vec::new();
        let stolen = vs.shard_mut(thief).drain_queue_with(&q, POINT, to_args, |w, v| {
            order.push((w.payload, v));
        });
        assert_eq!(stolen, 5, "{tech}: thief did not steal the back half");
        assert!(host.is_quarantined(id), "{tech}: saboteur survived");
        // The home shard mops up its remaining front half against a
        // detached chain.
        let mut rest = 0;
        while q.total_depth() > 0 {
            rest += vs.shard_mut(home).drain_queue_with(&q, POINT, to_args, |w, v| {
                order.push((w.payload, v));
            });
        }
        assert_eq!(rest, 5, "{tech}: home lost its front half");
        vs.flush_all();

        let ledger = host.ledger(id).expect("ledger");
        assert_eq!(ledger.traps, threshold, "{tech}: strikes double-counted");
        assert_eq!(ledger.invocations, 5, "{tech}: stolen batch miscounted");
        let pm = host.take_postmortems();
        assert_eq!(pm.len(), 1, "{tech}");
        assert_eq!(pm[0].shard, Some(thief as u32), "{tech}: wrong shard blamed");
        assert_eq!(pm[0].strikes as u64, threshold, "{tech}");

        // Scalar replay in completion order.
        let mut single = GraftHost::new();
        let sid = single
            .install(POINT, "saboteur", manager.load(&spec, tech).expect("load"))
            .expect("install");
        for (i, ((a, b), sharded_verdict)) in order.iter().enumerate() {
            let v = single.dispatch(POINT, |_| Ok(vec![*a, *b]));
            assert_eq!(v, *sharded_verdict, "{tech}: verdict {i}");
        }
        let l1 = single.ledger(sid).expect("scalar ledger");
        assert_eq!(l1.traps, ledger.traps, "{tech}");
        assert_eq!(l1.invocations, ledger.invocations, "{tech}");
        assert!(single.is_quarantined(sid), "{tech}");
    }
}
