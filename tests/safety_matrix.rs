//! The protection matrix: what each technology does with a misbehaving
//! graft — the reliability half of the paper's comparison (§4).
//!
//! | fault             | unsafe C      | Modula-3 | SFI        | Java  | Tcl   |
//! |-------------------|---------------|----------|------------|-------|-------|
//! | out-of-bounds     | silent garbage| trap     | confined   | trap  | trap  |
//! | NIL pointer chase | silent garbage| trap     | confined   | trap  | trap  |
//! | divide by zero    | trap          | trap     | trap       | trap  | trap  |
//! | infinite loop     | hangs kernel  | fuel trap| fuel trap  | fuel  | fuel  |
//! | deep recursion    | stack trap    | stack    | stack      | stack | stack |

use graftbench::api::{GraftClass, GraftError, GraftSpec, Motivation, RegionSpec, Technology, Trap};
use graftbench::core::GraftManager;
use graftbench::kernel::{shared, AttachPoint, GraftHost, HostedEviction};
use graftbench::kernsim::vm::Pager;

fn hostile_spec() -> GraftSpec {
    let grail = r#"
        fn oob_read(i: int) -> int { return data[i]; }
        fn oob_write(i: int) -> int { data[i] = 777; return 0; }
        fn nil_chase() -> int { return list[0]; }
        fn div(a: int, b: int) -> int { return a / b; }
        fn spin() -> int { let i = 0; while true { i = i + 1; } return i; }
        fn recurse(n: int) -> int { return recurse(n + 1); }
    "#;
    let tickle = r#"
        proc oob_read {i} { return [rload data $i] }
        proc oob_write {i} { rstore data $i 777; return 0 }
        proc nil_chase {} { return [rload list 0] }
        proc div {a b} { return [expr $a / $b] }
        proc spin {} { while {1} { } }
        proc recurse {n} { return [recurse [expr $n + 1]] }
    "#;
    GraftSpec::new("hostile", GraftClass::BlackBox, Motivation::Functionality)
        .region(RegionSpec::data("data", 16))
        .region(RegionSpec::linked("list", 16))
        .entry("oob_read", 1)
        .entry("oob_write", 1)
        .entry("nil_chase", 0)
        .entry("div", 2)
        .entry("spin", 0)
        .entry("recurse", 1)
        .with_grail(grail)
        .with_tickle(tickle)
}

const SAFE_TECHS: [Technology; 3] = [
    Technology::SafeCompiled,
    Technology::Bytecode,
    Technology::Script,
];

#[test]
fn out_of_bounds_traps_under_checked_technologies() {
    let spec = hostile_spec();
    for tech in SAFE_TECHS {
        let mut e = GraftManager::new().load(&spec, tech).unwrap();
        for entry in ["oob_read", "oob_write"] {
            let err = e.invoke(entry, &[10_000]).unwrap_err();
            assert!(
                matches!(err.as_trap(), Some(Trap::OutOfBounds { .. })),
                "{tech}/{entry}: {err}"
            );
        }
    }
}

#[test]
fn out_of_bounds_is_silent_garbage_under_unsafe_and_confined_under_sfi() {
    let spec = hostile_spec();
    for tech in [Technology::CompiledUnchecked, Technology::Sfi] {
        let mut e = GraftManager::new().load(&spec, tech).unwrap();
        // No trap — and, crucially, no effect outside the graft's own
        // memory. The kernel-side view of the region is intact except
        // where the wrap landed.
        e.invoke("oob_write", &[1 << 30]).unwrap();
        e.invoke("oob_read", &[-3]).unwrap();
    }
}

#[test]
fn nil_chase_behaviour_matches_the_paper_matrix() {
    let spec = hostile_spec();
    for tech in SAFE_TECHS {
        let mut e = GraftManager::new().load(&spec, tech).unwrap();
        let err = e.invoke("nil_chase", &[]).unwrap_err();
        assert!(
            matches!(err.as_trap(), Some(Trap::NilDeref { .. })),
            "{tech}: {err}"
        );
    }
    // The Solaris-style ablation: no explicit NIL check emitted.
    let relaxed = GraftManager {
        nil_checks: false,
        ..GraftManager::new()
    };
    let mut e = relaxed.load(&spec, Technology::SafeCompiled).unwrap();
    assert_eq!(e.invoke("nil_chase", &[]).unwrap(), 0);
}

#[test]
fn divide_by_zero_traps_everywhere() {
    let spec = hostile_spec();
    for tech in [
        Technology::CompiledUnchecked,
        Technology::SafeCompiled,
        Technology::Sfi,
        Technology::Bytecode,
        Technology::Script,
    ] {
        let mut e = GraftManager::new().load(&spec, tech).unwrap();
        let err = e.invoke("div", &[1, 0]).unwrap_err();
        assert_eq!(err.as_trap(), Some(&Trap::DivByZero), "{tech}");
        // And the engine is still usable afterwards.
        assert_eq!(e.invoke("div", &[6, 3]).unwrap(), 2);
    }
}

#[test]
fn runaway_loops_are_preempted_exactly_where_the_paper_says() {
    let spec = hostile_spec();
    // Safe technologies can be metered...
    for tech in [
        Technology::SafeCompiled,
        Technology::Sfi,
        Technology::Bytecode,
        Technology::Script,
    ] {
        let mut e = GraftManager::new().load(&spec, tech).unwrap();
        e.set_fuel(Some(50_000));
        let err = e.invoke("spin", &[]).unwrap_err();
        assert_eq!(err.as_trap(), Some(&Trap::FuelExhausted), "{tech}");
    }
    // ...and the paper's point about unprotected code is that it
    // cannot: `Technology::preemptible` documents the hazard.
    assert!(!Technology::CompiledUnchecked.preemptible());
}

#[test]
fn fuel_reporting_is_conformant_across_metered_technologies() {
    // Every engine that accepts a meter must also report through it:
    // after `set_fuel(Some(_))`, `fuel_used()` is `Some(_)` whether the
    // invocation ran to completion or was preempted — including through
    // the user-level upcall boundary, where the reading is an RPC to
    // the server-side engine.
    let spec = hostile_spec();
    let mgr = GraftManager {
        user_level_inner: Technology::SafeCompiled,
        ..GraftManager::new()
    };
    for tech in [
        Technology::SafeCompiled,
        Technology::Sfi,
        Technology::Bytecode,
        Technology::Script,
        Technology::UserLevel,
    ] {
        let mut e = mgr.load(&spec, tech).unwrap();
        e.set_fuel(Some(50_000));

        // A successful metered invocation reports a reading.
        assert_eq!(e.invoke("div", &[10, 2]).unwrap(), 5);
        let calm = e.fuel_used();
        assert!(calm.is_some(), "{tech}: no fuel reading after metered call");

        // A preempted invocation reports (roughly) the whole budget.
        let err = e.invoke("spin", &[]).unwrap_err();
        assert_eq!(err.as_trap(), Some(&Trap::FuelExhausted), "{tech}");
        let spent = e.fuel_used();
        assert!(
            spent.unwrap_or(0) >= 50_000,
            "{tech}: preempted run reported {spent:?} of a 50k budget"
        );

        // Withdrawing the meter withdraws the claim.
        e.set_fuel(None);
        assert_eq!(e.invoke("div", &[10, 2]).unwrap(), 5);
        assert_eq!(e.fuel_used(), None, "{tech}: unmetered reading");
    }
}

#[test]
fn runaway_recursion_is_contained_everywhere() {
    let spec = hostile_spec();
    for tech in [
        Technology::CompiledUnchecked,
        Technology::SafeCompiled,
        Technology::Sfi,
        Technology::Bytecode,
        Technology::Script,
    ] {
        let mut e = GraftManager::new().load(&spec, tech).unwrap();
        let err = e.invoke("recurse", &[0]).unwrap_err();
        assert_eq!(err.as_trap(), Some(&Trap::StackOverflow), "{tech}");
    }
}

/// An eviction-shaped graft (same region/entry ABI as the paper's VM
/// graft) whose body divides by zero — the one fault every safe
/// technology turns into a trap.
fn saboteur_spec() -> GraftSpec {
    use graftbench::grafts::eviction::{MAX_HOT, MAX_QUEUE};
    let grail = "fn select_victim(a: int, b: int) -> int { return a / (b - b); }";
    let tickle = "proc select_victim {a b} { return [expr $a / ($b - $b)] }";
    GraftSpec::new("saboteur", GraftClass::Prioritization, Motivation::Policy)
        .region(RegionSpec::linked("lru", 1 + 2 * MAX_QUEUE))
        .region(RegionSpec::linked("hot", 1 + 2 * MAX_HOT))
        .entry("select_victim", 2)
        .with_grail(grail)
        .with_tickle(tickle)
}

#[test]
fn quarantine_row_detach_serve_and_deterministic_refusal() {
    // The multi-tenant row of the matrix: under every safe technology a
    // hostile graft is detached by the quarantine supervisor after N
    // trapped invocations, the substrate keeps serving on the built-in
    // policy, and re-invoking the detached graft through the host is a
    // deterministic error — never a panic, never a hung kernel.
    let spec = saboteur_spec();
    for tech in SAFE_TECHS {
        let engine = GraftManager::new().load(&spec, tech).unwrap();
        let host = shared(GraftHost::new());
        let threshold = host.borrow().config().trap_threshold as u64;
        let id = host
            .borrow_mut()
            .install(AttachPoint::VmEvict, "saboteur", engine)
            .unwrap();

        let mut pager = Pager::new(4, HostedEviction::new(host.clone()));
        for p in 0..32u64 {
            pager.access(p);
        }

        // Detached after exactly `trap_threshold` trapped invocations.
        assert!(host.borrow().is_quarantined(id), "{tech}: not quarantined");
        {
            let h = host.borrow();
            let ledger = h.ledger(id).unwrap();
            assert_eq!(ledger.traps, threshold, "{tech}");
            assert_eq!(ledger.invocations, threshold, "{tech}");
        }

        // The pager behaved exactly like stock LRU throughout: every
        // dispatch fell back to the built-in policy (the queue head).
        assert_eq!(pager.stats().faults, 32, "{tech}");
        assert_eq!(pager.stats().evictions, 28, "{tech}");

        // Re-invoking the detached graft refuses deterministically.
        let err = host.borrow_mut().invoke(id, &[0, 0]).unwrap_err();
        assert!(
            matches!(&err, GraftError::Unavailable { .. }),
            "{tech}: {err}"
        );
        let again = host.borrow_mut().invoke(id, &[0, 0]).unwrap_err();
        assert_eq!(err.to_string(), again.to_string(), "{tech}");
        // And the refusal did not charge the ledger.
        assert_eq!(host.borrow().ledger(id).unwrap().invocations, threshold);
    }
}

#[test]
fn quarantine_row_holds_under_sharded_dispatch() {
    // The same row, multi-core: the saboteur is installed in a
    // 4-shard host (one engine replica per shard) and each shard runs
    // its own pager. The supervisor's strikes accumulate *globally*,
    // so whichever shard observes the third trap detaches the graft on
    // every shard at once; the remaining pagers never invoke it, serve
    // stock LRU throughout, and re-invocation refuses deterministically
    // on every shard.
    use std::cell::RefCell;
    use std::rc::Rc;

    use graftbench::kernel::ShardedHost;

    const SHARDS: usize = 4;
    let spec = saboteur_spec();
    for tech in SAFE_TECHS {
        let engine = GraftManager::new().load(&spec, tech).unwrap();
        let mut host = ShardedHost::new(SHARDS);
        let threshold = host.config().trap_threshold as u64;
        let id = host.install(AttachPoint::VmEvict, "saboteur", engine).unwrap();

        let handles: Vec<_> = host
            .take_handles()
            .into_iter()
            .map(|h| Rc::new(RefCell::new(h)))
            .collect();
        let mut pagers: Vec<_> = handles
            .iter()
            .map(|h| Pager::new(4, HostedEviction::new(h.clone())))
            .collect();

        // Shard 0's pager alone supplies the three strikes; by the
        // time the other shards run, the graft is already detached
        // globally and their pagers never reach it.
        for (s, pager) in pagers.iter_mut().enumerate() {
            for p in 0..32u64 {
                pager.access(p);
            }
            assert!(host.is_quarantined(id), "{tech}: shard {s} left it attached");
            // Every shard's pager behaved exactly like stock LRU.
            assert_eq!(pager.stats().faults, 32, "{tech} shard {s}");
            assert_eq!(pager.stats().evictions, 28, "{tech} shard {s}");
        }

        // Deterministic refusal on every shard, with one message.
        let mut messages = Vec::new();
        for (s, h) in handles.iter().enumerate() {
            let err = h.borrow_mut().invoke(id, &[0, 0]).unwrap_err();
            let again = h.borrow_mut().invoke(id, &[0, 0]).unwrap_err();
            assert!(
                matches!(&err, GraftError::Unavailable { .. }),
                "{tech} shard {s}: {err}"
            );
            assert_eq!(err.to_string(), again.to_string(), "{tech} shard {s}");
            messages.push(err.to_string());
        }
        messages.dedup();
        assert_eq!(messages.len(), 1, "{tech}: refusals differ across shards");

        // Tear down (pager -> handle) so every shard's private ledger
        // merges, then check the global totals: exactly `threshold`
        // trapped invocations, all charged by shard 0, none by the
        // refusals above.
        drop(pagers);
        drop(handles);
        let ledger = host.ledger(id).unwrap();
        assert_eq!(ledger.traps, threshold, "{tech}");
        assert_eq!(ledger.invocations, threshold, "{tech}");
    }
}

#[test]
fn traps_do_not_corrupt_engine_state() {
    let spec = hostile_spec();
    for tech in SAFE_TECHS {
        let mut e = GraftManager::new().load(&spec, tech).unwrap();
        e.load_region("data", 0, &[5; 16]).unwrap();
        let _ = e.invoke("oob_read", &[999_999]);
        // Region contents and entry points still work after the trap.
        assert_eq!(e.read_region("data", 3).unwrap(), 5);
        assert_eq!(e.invoke("oob_read", &[3]).unwrap(), 5, "{tech}");
    }
}
