//! The protection matrix: what each technology does with a misbehaving
//! graft — the reliability half of the paper's comparison (§4).
//!
//! | fault             | unsafe C      | Modula-3 | SFI        | Java  | Tcl   |
//! |-------------------|---------------|----------|------------|-------|-------|
//! | out-of-bounds     | silent garbage| trap     | confined   | trap  | trap  |
//! | NIL pointer chase | silent garbage| trap     | confined   | trap  | trap  |
//! | divide by zero    | trap          | trap     | trap       | trap  | trap  |
//! | infinite loop     | hangs kernel  | fuel trap| fuel trap  | fuel  | fuel  |
//! | deep recursion    | stack trap    | stack    | stack      | stack | stack |

use graftbench::api::{GraftClass, GraftError, GraftSpec, Motivation, RegionSpec, Technology, Trap};
use graftbench::core::GraftManager;
use graftbench::kernel::{shared, AttachPoint, GraftHost, HostedEviction};
use graftbench::kernsim::vm::Pager;

fn hostile_spec() -> GraftSpec {
    let grail = r#"
        fn oob_read(i: int) -> int { return data[i]; }
        fn oob_write(i: int) -> int { data[i] = 777; return 0; }
        fn nil_chase() -> int { return list[0]; }
        fn div(a: int, b: int) -> int { return a / b; }
        fn spin() -> int { let i = 0; while true { i = i + 1; } return i; }
        fn recurse(n: int) -> int { return recurse(n + 1); }
    "#;
    let tickle = r#"
        proc oob_read {i} { return [rload data $i] }
        proc oob_write {i} { rstore data $i 777; return 0 }
        proc nil_chase {} { return [rload list 0] }
        proc div {a b} { return [expr $a / $b] }
        proc spin {} { while {1} { } }
        proc recurse {n} { return [recurse [expr $n + 1]] }
    "#;
    GraftSpec::new("hostile", GraftClass::BlackBox, Motivation::Functionality)
        .region(RegionSpec::data("data", 16))
        .region(RegionSpec::linked("list", 16))
        .entry("oob_read", 1)
        .entry("oob_write", 1)
        .entry("nil_chase", 0)
        .entry("div", 2)
        .entry("spin", 0)
        .entry("recurse", 1)
        .with_grail(grail)
        .with_tickle(tickle)
}

const SAFE_TECHS: [Technology; 3] = [
    Technology::SafeCompiled,
    Technology::Bytecode,
    Technology::Script,
];

#[test]
fn out_of_bounds_traps_under_checked_technologies() {
    let spec = hostile_spec();
    for tech in SAFE_TECHS {
        let mut e = GraftManager::new().load(&spec, tech).unwrap();
        for entry in ["oob_read", "oob_write"] {
            let err = e.invoke(entry, &[10_000]).unwrap_err();
            assert!(
                matches!(err.as_trap(), Some(Trap::OutOfBounds { .. })),
                "{tech}/{entry}: {err}"
            );
        }
    }
}

#[test]
fn out_of_bounds_is_silent_garbage_under_unsafe_and_confined_under_sfi() {
    let spec = hostile_spec();
    for tech in [Technology::CompiledUnchecked, Technology::Sfi] {
        let mut e = GraftManager::new().load(&spec, tech).unwrap();
        // No trap — and, crucially, no effect outside the graft's own
        // memory. The kernel-side view of the region is intact except
        // where the wrap landed.
        e.invoke("oob_write", &[1 << 30]).unwrap();
        e.invoke("oob_read", &[-3]).unwrap();
    }
}

#[test]
fn nil_chase_behaviour_matches_the_paper_matrix() {
    let spec = hostile_spec();
    for tech in SAFE_TECHS {
        let mut e = GraftManager::new().load(&spec, tech).unwrap();
        let err = e.invoke("nil_chase", &[]).unwrap_err();
        assert!(
            matches!(err.as_trap(), Some(Trap::NilDeref { .. })),
            "{tech}: {err}"
        );
    }
    // The Solaris-style ablation: no explicit NIL check emitted.
    let relaxed = GraftManager {
        nil_checks: false,
        ..GraftManager::new()
    };
    let mut e = relaxed.load(&spec, Technology::SafeCompiled).unwrap();
    assert_eq!(e.invoke("nil_chase", &[]).unwrap(), 0);
}

#[test]
fn divide_by_zero_traps_everywhere() {
    let spec = hostile_spec();
    for tech in [
        Technology::CompiledUnchecked,
        Technology::SafeCompiled,
        Technology::Sfi,
        Technology::Bytecode,
        Technology::Script,
    ] {
        let mut e = GraftManager::new().load(&spec, tech).unwrap();
        let err = e.invoke("div", &[1, 0]).unwrap_err();
        assert_eq!(err.as_trap(), Some(&Trap::DivByZero), "{tech}");
        // And the engine is still usable afterwards.
        assert_eq!(e.invoke("div", &[6, 3]).unwrap(), 2);
    }
}

#[test]
fn runaway_loops_are_preempted_exactly_where_the_paper_says() {
    let spec = hostile_spec();
    // Safe technologies can be metered...
    for tech in [
        Technology::SafeCompiled,
        Technology::Sfi,
        Technology::Bytecode,
        Technology::Script,
    ] {
        let mut e = GraftManager::new().load(&spec, tech).unwrap();
        e.set_fuel(Some(50_000));
        let err = e.invoke("spin", &[]).unwrap_err();
        assert_eq!(err.as_trap(), Some(&Trap::FuelExhausted), "{tech}");
    }
    // ...and the paper's point about unprotected code is that it
    // cannot: `Technology::preemptible` documents the hazard.
    assert!(!Technology::CompiledUnchecked.preemptible());
}

#[test]
fn fuel_reporting_is_conformant_across_metered_technologies() {
    // Every engine that accepts a meter must also report through it:
    // after `set_fuel(Some(_))`, `fuel_used()` is `Some(_)` whether the
    // invocation ran to completion or was preempted — including through
    // the user-level upcall boundary, where the reading is an RPC to
    // the server-side engine.
    let spec = hostile_spec();
    let mgr = GraftManager {
        user_level_inner: Technology::SafeCompiled,
        ..GraftManager::new()
    };
    for tech in [
        Technology::SafeCompiled,
        Technology::Sfi,
        Technology::Bytecode,
        Technology::Script,
        Technology::UserLevel,
    ] {
        let mut e = mgr.load(&spec, tech).unwrap();
        e.set_fuel(Some(50_000));

        // A successful metered invocation reports a reading.
        assert_eq!(e.invoke("div", &[10, 2]).unwrap(), 5);
        let calm = e.fuel_used();
        assert!(calm.is_some(), "{tech}: no fuel reading after metered call");

        // A preempted invocation reports (roughly) the whole budget.
        let err = e.invoke("spin", &[]).unwrap_err();
        assert_eq!(err.as_trap(), Some(&Trap::FuelExhausted), "{tech}");
        let spent = e.fuel_used();
        assert!(
            spent.unwrap_or(0) >= 50_000,
            "{tech}: preempted run reported {spent:?} of a 50k budget"
        );

        // Withdrawing the meter withdraws the claim.
        e.set_fuel(None);
        assert_eq!(e.invoke("div", &[10, 2]).unwrap(), 5);
        assert_eq!(e.fuel_used(), None, "{tech}: unmetered reading");
    }
}

#[test]
fn runaway_recursion_is_contained_everywhere() {
    let spec = hostile_spec();
    for tech in [
        Technology::CompiledUnchecked,
        Technology::SafeCompiled,
        Technology::Sfi,
        Technology::Bytecode,
        Technology::Script,
    ] {
        let mut e = GraftManager::new().load(&spec, tech).unwrap();
        let err = e.invoke("recurse", &[0]).unwrap_err();
        assert_eq!(err.as_trap(), Some(&Trap::StackOverflow), "{tech}");
    }
}

/// An eviction-shaped graft (same region/entry ABI as the paper's VM
/// graft) whose body divides by zero — the one fault every safe
/// technology turns into a trap.
fn saboteur_spec() -> GraftSpec {
    use graftbench::grafts::eviction::{MAX_HOT, MAX_QUEUE};
    let grail = "fn select_victim(a: int, b: int) -> int { return a / (b - b); }";
    let tickle = "proc select_victim {a b} { return [expr $a / ($b - $b)] }";
    GraftSpec::new("saboteur", GraftClass::Prioritization, Motivation::Policy)
        .region(RegionSpec::linked("lru", 1 + 2 * MAX_QUEUE))
        .region(RegionSpec::linked("hot", 1 + 2 * MAX_HOT))
        .entry("select_victim", 2)
        .with_grail(grail)
        .with_tickle(tickle)
}

#[test]
fn quarantine_row_detach_serve_and_deterministic_refusal() {
    // The multi-tenant row of the matrix: under every safe technology a
    // hostile graft is detached by the quarantine supervisor after N
    // trapped invocations, the substrate keeps serving on the built-in
    // policy, and re-invoking the detached graft through the host is a
    // deterministic error — never a panic, never a hung kernel.
    let spec = saboteur_spec();
    for tech in SAFE_TECHS {
        let engine = GraftManager::new().load(&spec, tech).unwrap();
        let host = shared(GraftHost::new());
        let threshold = host.borrow().config().trap_threshold as u64;
        let id = host
            .borrow_mut()
            .install(AttachPoint::VmEvict, "saboteur", engine)
            .unwrap();

        let mut pager = Pager::new(4, HostedEviction::new(host.clone()));
        for p in 0..32u64 {
            pager.access(p);
        }

        // Detached after exactly `trap_threshold` trapped invocations.
        assert!(host.borrow().is_quarantined(id), "{tech}: not quarantined");
        {
            let h = host.borrow();
            let ledger = h.ledger(id).unwrap();
            assert_eq!(ledger.traps, threshold, "{tech}");
            assert_eq!(ledger.invocations, threshold, "{tech}");
        }

        // The pager behaved exactly like stock LRU throughout: every
        // dispatch fell back to the built-in policy (the queue head).
        assert_eq!(pager.stats().faults, 32, "{tech}");
        assert_eq!(pager.stats().evictions, 28, "{tech}");

        // Re-invoking the detached graft refuses deterministically.
        let err = host.borrow_mut().invoke(id, &[0, 0]).unwrap_err();
        assert!(
            matches!(&err, GraftError::Unavailable { .. }),
            "{tech}: {err}"
        );
        let again = host.borrow_mut().invoke(id, &[0, 0]).unwrap_err();
        assert_eq!(err.to_string(), again.to_string(), "{tech}");
        // And the refusal did not charge the ledger.
        assert_eq!(host.borrow().ledger(id).unwrap().invocations, threshold);
    }
}

#[test]
fn quarantine_row_holds_under_sharded_dispatch() {
    // The same row, multi-core: the saboteur is installed in a
    // 4-shard host (one engine replica per shard) and each shard runs
    // its own pager. The supervisor's strikes accumulate *globally*,
    // so whichever shard observes the third trap detaches the graft on
    // every shard at once; the remaining pagers never invoke it, serve
    // stock LRU throughout, and re-invocation refuses deterministically
    // on every shard.
    use std::cell::RefCell;
    use std::rc::Rc;

    use graftbench::kernel::ShardedHost;

    const SHARDS: usize = 4;
    let spec = saboteur_spec();
    for tech in SAFE_TECHS {
        let engine = GraftManager::new().load(&spec, tech).unwrap();
        let mut host = ShardedHost::new(SHARDS);
        let threshold = host.config().trap_threshold as u64;
        let id = host.install(AttachPoint::VmEvict, "saboteur", engine).unwrap();

        let handles: Vec<_> = host
            .take_handles()
            .into_iter()
            .map(|h| Rc::new(RefCell::new(h)))
            .collect();
        let mut pagers: Vec<_> = handles
            .iter()
            .map(|h| Pager::new(4, HostedEviction::new(h.clone())))
            .collect();

        // Shard 0's pager alone supplies the three strikes; by the
        // time the other shards run, the graft is already detached
        // globally and their pagers never reach it.
        for (s, pager) in pagers.iter_mut().enumerate() {
            for p in 0..32u64 {
                pager.access(p);
            }
            assert!(host.is_quarantined(id), "{tech}: shard {s} left it attached");
            // Every shard's pager behaved exactly like stock LRU.
            assert_eq!(pager.stats().faults, 32, "{tech} shard {s}");
            assert_eq!(pager.stats().evictions, 28, "{tech} shard {s}");
        }

        // Deterministic refusal on every shard, with one message.
        let mut messages = Vec::new();
        for (s, h) in handles.iter().enumerate() {
            let err = h.borrow_mut().invoke(id, &[0, 0]).unwrap_err();
            let again = h.borrow_mut().invoke(id, &[0, 0]).unwrap_err();
            assert!(
                matches!(&err, GraftError::Unavailable { .. }),
                "{tech} shard {s}: {err}"
            );
            assert_eq!(err.to_string(), again.to_string(), "{tech} shard {s}");
            messages.push(err.to_string());
        }
        messages.dedup();
        assert_eq!(messages.len(), 1, "{tech}: refusals differ across shards");

        // Tear down (pager -> handle) so every shard's private ledger
        // merges, then check the global totals: exactly `threshold`
        // trapped invocations, all charged by shard 0, none by the
        // refusals above.
        drop(pagers);
        drop(handles);
        let ledger = host.ledger(id).unwrap();
        assert_eq!(ledger.traps, threshold, "{tech}");
        assert_eq!(ledger.invocations, threshold, "{tech}");
    }
}

// ---------------------------------------------------------------------
// The recovery rows of the matrix: detaching a trapped graft is not
// enough when kernel state lives *inside* it. These rows assert the
// full salvage → degraded-mode → re-admission story, per safe
// technology and under sharded dispatch.
// ---------------------------------------------------------------------

use graftbench::kernel::{GraftState, HostConfig, ShardedHost, VirtualShards};
use graftbench::kernsim::{DiskFault, DiskModel, FaultPlan, FaultyDisk};
use graftbench::logdisk::{LdConfig, LogicalDisk};

const LD_BLOCKS: usize = 256;
const LD_CONFIG: LdConfig = LdConfig {
    blocks: LD_BLOCKS,
    segment_blocks: 16,
};

fn ld_stream(seed: u64) -> Vec<i64> {
    graftbench::logdisk::workload::skewed(LD_BLOCKS, 512, seed)
        .map(|w| w as i64)
        .collect()
}

/// A hair-trigger supervisor: the bomb's single trap detaches.
fn hair_trigger() -> HostConfig {
    HostConfig {
        trap_threshold: 1,
        ..HostConfig::default()
    }
}

/// Loads the time-bomb Logical Disk under `tech`, or `None` where the
/// technology cannot express it (no Tcl Logical Disk, as in Table 6).
fn bomb_engine(tech: Technology) -> Option<Box<dyn graftbench::api::ExtensionEngine>> {
    let spec = graftbench::grafts::logdisk::spec_bomb_sized(LD_BLOCKS);
    match GraftManager::new().load(&spec, tech) {
        Ok(engine) => Some(engine),
        Err(GraftError::Unavailable { .. }) => None,
        Err(err) => panic!("{tech}: unexpected load failure: {err}"),
    }
}

#[test]
fn salvage_detach_row_keeps_serving_correct_mappings() {
    // Row: a black-box Logical Disk graft traps mid-stream. The
    // supervisor detaches it *and* lifts its map out through the
    // salvage plan; the built-in adopts the map and serves the rest of
    // the stream with zero lost or misdirected mappings against an
    // oracle that never failed over.
    let stream = ld_stream(9);
    let half = 256; // segment-aligned hand-off point
    let mut covered = 0usize;
    for tech in SAFE_TECHS {
        let Some(mut engine) = bomb_engine(tech) else {
            continue;
        };
        covered += 1;
        graftbench::grafts::logdisk::init_map(engine.as_mut(), LD_BLOCKS).unwrap();
        for &w in &stream[..half] {
            engine.invoke("ld_write", &[w]).unwrap();
        }

        let mut host = GraftHost::with_config(hair_trigger());
        let id = host
            .install(AttachPoint::DiskWrite, "logical-disk", engine)
            .unwrap();
        host.set_salvage_plan(id, &["map"]).unwrap();
        host.engine_mut(id).unwrap().invoke("ld_arm", &[1]).unwrap();

        let err = host.invoke(id, &[stream[half]]).unwrap_err();
        assert!(matches!(err, GraftError::Trap(_)), "{tech}: {err}");
        assert!(host.is_quarantined(id), "{tech}: bomb must detach");
        let salvage = host.take_salvage(id).expect("salvaged at detach");
        assert_eq!(salvage.words(), LD_BLOCKS, "{tech}: whole map lifted");

        // Degraded mode: the built-in adopts the salvaged map.
        let mut degraded = LogicalDisk::with_map(LD_CONFIG, salvage.region("map").unwrap());
        for &w in &stream[half..] {
            degraded.write(w as u64);
        }
        let mut oracle = LogicalDisk::new(LD_CONFIG);
        for &w in &stream {
            oracle.write(w as u64);
        }
        assert_eq!(
            degraded.map(),
            oracle.map(),
            "{tech}: degraded mode lost or misdirected mappings"
        );
    }
    assert!(covered >= 2, "row must cover the compiled safe technologies");
}

#[test]
fn salvage_detach_row_holds_under_sharded_dispatch() {
    // The same row on the sharded kernel: the trap fires on one shard,
    // the winning detach salvages *that shard's* replica, the detach is
    // visible on every shard at once, and the built-in serves on the
    // salvaged map with nothing lost.
    const SHARDS: usize = 2;
    let stream = ld_stream(9);
    let half = 256;
    for tech in SAFE_TECHS {
        let Some(engine) = bomb_engine(tech) else {
            continue;
        };
        let mut host = ShardedHost::with_config(SHARDS, hair_trigger());
        let id = host
            .install_with_salvage(AttachPoint::DiskWrite, "logical-disk", engine, &["map"])
            .unwrap();

        let mut vs = VirtualShards::new(&mut host, 7);
        // Populate shard 0's replica only: the map is shard-local state
        // and the trap will fire where the state lives.
        {
            let replica = vs.shard_mut(0).engine_mut(id).unwrap();
            graftbench::grafts::logdisk::init_map(replica, LD_BLOCKS).unwrap();
        }
        for &w in &stream[..half] {
            vs.shard_mut(0).invoke(id, &[w]).unwrap();
        }
        vs.shard_mut(0).engine_mut(id).unwrap().invoke("ld_arm", &[1]).unwrap();
        let err = vs.shard_mut(0).invoke(id, &[stream[half]]).unwrap_err();
        assert!(matches!(err, GraftError::Trap(_)), "{tech}: {err}");

        // Detach is global, immediately: the *other* shard refuses too.
        assert!(host.is_quarantined(id), "{tech}");
        let err = vs.shard_mut(1).invoke(id, &[stream[half]]).unwrap_err();
        assert!(
            matches!(err, GraftError::Unavailable { .. }),
            "{tech} shard 1: {err}"
        );

        let salvage = host.take_salvage(id).expect("winning shard salvaged");
        let mut degraded = LogicalDisk::with_map(LD_CONFIG, salvage.region("map").unwrap());
        for &w in &stream[half..] {
            degraded.write(w as u64);
        }
        let mut oracle = LogicalDisk::new(LD_CONFIG);
        for &w in &stream {
            oracle.write(w as u64);
        }
        assert_eq!(degraded.map(), oracle.map(), "{tech}: sharded salvage lost mappings");
    }
}

#[test]
fn backoff_readmits_after_a_clean_window_and_doubles_on_the_second_strike() {
    // Row: the backoff ladder. After the first quarantine the graft is
    // re-admitted once the chain serves `backoff_base` dispatches
    // without it; a strike on probation detaches instantly and the
    // window doubles; at the ban ceiling the graft is out for good.
    let spec = saboteur_spec();
    for tech in SAFE_TECHS {
        let engine = GraftManager::new().load(&spec, tech).unwrap();
        let mut host = GraftHost::with_config(HostConfig {
            trap_threshold: 1,
            probation_clean: 2,
            backoff_base: 4,
            ban_ceiling: 3,
            ..HostConfig::default()
        });
        let id = host.install(AttachPoint::VmEvict, "saboteur", engine).unwrap();
        let dispatch = |host: &mut GraftHost| {
            host.dispatch(AttachPoint::VmEvict, |_| Ok(vec![7, 3]));
        };

        // Trip 1: one trap detaches; the ladder arms a 4-dispatch window.
        dispatch(&mut host);
        assert!(host.is_quarantined(id), "{tech}");
        assert_eq!(host.quarantine_count(id), Some(1), "{tech}");
        for _ in 0..3 {
            dispatch(&mut host);
            assert!(host.is_quarantined(id), "{tech}: readmitted early");
        }
        dispatch(&mut host); // 4th clean dispatch: window exhausted
        assert!(
            matches!(host.state(id), Some(GraftState::Probation { .. })),
            "{tech}: ladder must re-admit on probation, got {:?}",
            host.state(id)
        );

        // Trip 2: a probation strike detaches instantly and the window
        // doubles — 7 clean dispatches are not enough, the 8th is.
        dispatch(&mut host);
        assert!(host.is_quarantined(id), "{tech}: probation strike must detach");
        assert_eq!(host.quarantine_count(id), Some(2), "{tech}");
        for i in 0..7 {
            dispatch(&mut host);
            assert!(host.is_quarantined(id), "{tech}: window did not double (clean #{i})");
        }
        dispatch(&mut host);
        assert!(
            matches!(host.state(id), Some(GraftState::Probation { .. })),
            "{tech}: second re-admission, got {:?}",
            host.state(id)
        );

        // Trip 3 hits the ceiling: permanently banned, manual readmit
        // refuses, and no amount of clean dispatches brings it back.
        dispatch(&mut host);
        assert_eq!(host.state(id), Some(GraftState::Banned), "{tech}");
        assert!(!host.readmit(id), "{tech}: banned grafts must not readmit");
        for _ in 0..40 {
            dispatch(&mut host);
        }
        assert_eq!(host.state(id), Some(GraftState::Banned), "{tech}");

        let stats = host.stats();
        assert_eq!(stats.quarantine_trips, 3, "{tech}");
        assert_eq!(stats.auto_readmits, 2, "{tech}");
        assert_eq!(stats.bans, 1, "{tech}");
    }
}

#[test]
fn backoff_ladder_holds_under_sharded_dispatch() {
    // The ladder's counters are shared atomics: dispatches served on
    // *any* shard count toward the clean window, the re-admission is
    // visible everywhere at once, and the ban is final on every shard.
    const SHARDS: usize = 2;
    let spec = saboteur_spec();
    for tech in SAFE_TECHS {
        let engine = GraftManager::new().load(&spec, tech).unwrap();
        let mut host = ShardedHost::with_config(
            SHARDS,
            HostConfig {
                trap_threshold: 1,
                probation_clean: 2,
                backoff_base: 4,
                ban_ceiling: 2,
                ..HostConfig::default()
            },
        );
        let id = host.install(AttachPoint::VmEvict, "saboteur", engine).unwrap();
        let mut vs = VirtualShards::new(&mut host, 11);

        // Trip 1 on whichever shard the rotation picks.
        vs.dispatch(AttachPoint::VmEvict, |_| Ok(vec![7, 3]));
        assert!(host.is_quarantined(id), "{tech}");
        // Four dispatches spread across shards re-admit it...
        for _ in 0..3 {
            vs.dispatch(AttachPoint::VmEvict, |_| Ok(vec![7, 3]));
            assert!(host.is_quarantined(id), "{tech}: readmitted early");
        }
        vs.dispatch(AttachPoint::VmEvict, |_| Ok(vec![7, 3]));
        assert!(
            matches!(host.state(id), Some(GraftState::Probation { .. })),
            "{tech}: cross-shard window must re-admit, got {:?}",
            host.state(id)
        );

        // ...and the probation strike hits the 2-trip ceiling: banned,
        // everywhere, for good.
        vs.dispatch(AttachPoint::VmEvict, |_| Ok(vec![7, 3]));
        assert_eq!(host.state(id), Some(GraftState::Banned), "{tech}");
        assert_eq!(host.quarantine_count(id), Some(2), "{tech}");
        assert!(!host.readmit(id), "{tech}");
        for shard in 0..SHARDS {
            let err = vs.shard_mut(shard).invoke(id, &[0, 0]).unwrap_err();
            assert!(
                matches!(err, GraftError::Unavailable { .. }),
                "{tech} shard {shard}: {err}"
            );
        }

        vs.flush_all();
        let stats = host.stats();
        assert_eq!(stats.quarantine_trips, 2, "{tech}");
        assert_eq!(stats.auto_readmits, 1, "{tech}");
        assert_eq!(stats.bans, 1, "{tech}");
    }
}

#[test]
fn crash_and_rebuild_restore_an_observationally_equal_map() {
    // Row: a mid-stream crash tears the in-flight segment write; the
    // Logical Disk discards the torn segment's summary, rebuilds its
    // map from the durable summaries, and redoes the lost writes. The
    // rebuilt map must answer block-for-block exactly what each safe
    // technology's own bookkeeping answers for the same stream — the
    // graft is the oracle here, so the row also re-proves the
    // graft/built-in agreement *through* a crash.
    let stream = ld_stream(21);
    let spec = graftbench::grafts::logdisk::spec_sized(LD_BLOCKS);
    for tech in SAFE_TECHS {
        let mut engine = match GraftManager::new().load(&spec, tech) {
            Ok(engine) => engine,
            Err(GraftError::Unavailable { .. }) => continue,
            Err(err) => panic!("{tech}: {err}"),
        };
        graftbench::grafts::logdisk::init_map(engine.as_mut(), LD_BLOCKS).unwrap();

        let plan = FaultPlan::chaos(5).with_crash_after(8);
        let mut faulty = FaultyDisk::new(DiskModel::default(), plan);
        let mut ld = LogicalDisk::new(LD_CONFIG);
        for &w in &stream {
            engine.invoke("ld_write", &[w]).unwrap();
            if ld.write(w as u64).is_none() {
                continue;
            }
            loop {
                match faulty.segment_write() {
                    Ok(_) => break,
                    Err(DiskFault::RetriesExhausted { .. }) => continue,
                    Err(DiskFault::Crashed) => {
                        let redo = ld.crash_with_unpersisted(1);
                        faulty.recover();
                        assert!(ld.rebuild_map() > 0, "{tech}: nothing replayed");
                        for r in redo {
                            if ld.write(r).is_some() {
                                while let Err(DiskFault::RetriesExhausted { .. }) =
                                    faulty.segment_write()
                                {}
                            }
                        }
                        break;
                    }
                }
            }
        }
        assert_eq!(faulty.stats().crashes, 1, "{tech}: the drill must crash once");

        // Observational equality, block for block.
        let map = engine.bind_region("map").unwrap();
        let snap = engine.snapshot_region(map).unwrap();
        assert_eq!(
            ld.map(),
            &snap[..],
            "{tech}: rebuilt map diverges from the technology's bookkeeping"
        );
        for (block, &want) in snap.iter().enumerate() {
            assert_eq!(
                engine.invoke("ld_lookup", &[block as i64]).unwrap(),
                want,
                "{tech}: block {block}"
            );
        }
    }
}

#[test]
fn traps_do_not_corrupt_engine_state() {
    let spec = hostile_spec();
    for tech in SAFE_TECHS {
        let mut e = GraftManager::new().load(&spec, tech).unwrap();
        e.load_region("data", 0, &[5; 16]).unwrap();
        let _ = e.invoke("oob_read", &[999_999]);
        // Region contents and entry points still work after the trap.
        assert_eq!(e.read_region("data", 3).unwrap(), 5);
        assert_eq!(e.invoke("oob_read", &[3]).unwrap(), 5, "{tech}");
    }
}
