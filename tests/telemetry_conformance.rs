//! Conformance for the `--no-telemetry` runtime toggle: with recording
//! disabled, the dispatch paths must record *nothing* — no counters, no
//! histogram entries, no spans, and no flight-recorder events — while
//! the hosts' own bookkeeping (ledgers, quarantine decisions,
//! postmortem reports) still works, because that is host state, not
//! telemetry.
//!
//! Every test in this binary runs with telemetry disabled; none
//! re-enables it, so the process-global toggle cannot race between
//! tests. (The bench binaries apply the same toggle from the
//! `--no-telemetry` flag before any experiment runs.)

use graftbench::api::{
    GraftClass, GraftError, GraftSpec, Motivation, RegionStore, Technology, Trap, Verdict,
};
use graftbench::core::GraftManager;
use graftbench::kernel::{AttachPoint, GraftHost, ShardedHost, VirtualShards};
use graftbench::telemetry;

const POINT: AttachPoint = AttachPoint::VmEvict;

/// The pure two-argument graft the shard properties use: `b == 0`
/// divides by zero, anything else picks `(a + b) % 7 - 3`.
fn pure_spec() -> GraftSpec {
    let grail = r#"
        fn select_victim(a: int, b: int) -> int {
            if b == 0 { return a / b; }
            return (a + b) % 7 - 3;
        }
    "#;
    GraftSpec::new("pure-pick", GraftClass::Prioritization, Motivation::Policy)
        .entry("select_victim", 2)
        .with_grail(grail)
        .with_native(Box::new(|| {
            Box::new(
                |entry: &str, args: &[i64], _regions: &mut RegionStore| {
                    if entry != "select_victim" {
                        return Err(GraftError::Unavailable {
                            graft: "pure-pick".into(),
                            missing: format!("entry {entry}"),
                        });
                    }
                    if args[1] == 0 {
                        return Err(GraftError::Trap(Trap::DivByZero));
                    }
                    Ok((args[0] + args[1]) % 7 - 3)
                },
            )
        }))
}

/// Sum of all counter values in a snapshot.
fn counter_total(s: &telemetry::MetricsSnapshot) -> u64 {
    s.counters.iter().map(|&(_, v)| v).sum()
}

/// Sum of all histogram entry counts in a snapshot.
fn histogram_total(s: &telemetry::MetricsSnapshot) -> u64 {
    s.histograms.iter().map(|h| h.count).sum()
}

#[test]
fn disabled_telemetry_records_nothing_through_dispatch() {
    telemetry::set_enabled(false);
    // Arming the recorder must be inert while recording is disabled:
    // `tracing()` gates on both toggles.
    telemetry::set_tracing(true);
    assert!(!telemetry::tracing());
    let before = telemetry::snapshot();

    let manager = GraftManager::new();
    let spec = pure_spec();

    // Scalar host: clean dispatches, direct invokes, a marshalling
    // failure, and enough traps to trip the quarantine supervisor.
    let mut single = GraftHost::new();
    let threshold = single.config().trap_threshold;
    let id = single
        .install(POINT, "pure", manager.load(&spec, Technology::SafeCompiled).unwrap())
        .expect("install");
    for _ in 0..8 {
        // (7 + 1) % 7 - 3 = -2: the graft declines, the kernel default
        // wins, and the chain keeps being consulted.
        let v = single.dispatch(POINT, |_| Ok(vec![7, 1]));
        assert_eq!(v, Verdict::Continue);
    }
    // (3 + 2) % 7 - 3 = 2: direct invocation still works.
    assert_eq!(single.invoke(id, &[3, 2]).unwrap(), 2);
    let _ = single.dispatch(POINT, |_| {
        Err(GraftError::Unavailable {
            graft: "pure-pick".into(),
            missing: "kernel-side marshalling (injected)".into(),
        })
    });
    let mut trapped = 0;
    while !single.is_quarantined(id) && trapped < 4 * threshold {
        single.dispatch(POINT, |_| Ok(vec![9, 0]));
        trapped += 1;
    }
    assert!(single.is_quarantined(id), "saboteur never quarantined");
    single.flush();

    // Sharded host through the deterministic interleaver.
    let mut sharded = ShardedHost::new(4);
    let sid = sharded
        .install(POINT, "pure", manager.load(&spec, Technology::SafeCompiled).unwrap())
        .expect("install");
    let mut vs = VirtualShards::new(&mut sharded, 0xD15A);
    for i in 0..16 {
        vs.dispatch(POINT, |_| Ok(vec![i, 1 + (i % 3)]));
    }
    vs.flush_all();

    // The hosts did real work and kept their own books...
    let ledger = *single.ledger(id).expect("ledger");
    assert!(ledger.invocations > 0);
    assert_eq!(ledger.traps, u64::from(threshold));
    assert!(sharded.ledger(sid).expect("ledger").invocations > 0);
    // ...including the postmortem for the quarantine trip, which is
    // host state and must survive `--no-telemetry` (with an empty
    // event tail, since the recorder was inert).
    let reports = single.take_postmortems();
    assert_eq!(reports.len(), 1);
    assert!(reports[0].events.is_empty());

    // ...but the telemetry registry saw none of it.
    let after = telemetry::snapshot();
    assert_eq!(
        counter_total(&before),
        counter_total(&after),
        "counters moved: {:?} -> {:?}",
        before.counters,
        after.counters
    );
    assert_eq!(
        histogram_total(&before),
        histogram_total(&after),
        "histogram entries were recorded"
    );
    assert_eq!(before.spans.len(), after.spans.len(), "spans were recorded");
    assert_eq!(
        before.traces.len(),
        after.traces.len(),
        "trace events were published"
    );
    // And the per-host flight recorders stayed empty too.
    assert!(single.trace_events().is_empty());
    assert!(vs.merged_timeline().is_empty());
}

#[test]
fn disabled_telemetry_keeps_histogram_queries_inert() {
    telemetry::set_enabled(false);
    let before = telemetry::snapshot();
    // Recording into the macro-registered cells is a no-op while
    // disabled, for every instrument kind.
    telemetry::counter!("conformance.counter").incr();
    telemetry::histogram!("conformance.hist").record(42);
    {
        let _span = telemetry::span!("conformance.span");
    }
    let after = telemetry::snapshot();
    assert_eq!(counter_total(&before), counter_total(&after));
    assert_eq!(histogram_total(&before), histogram_total(&after));
    assert_eq!(before.spans.len(), after.spans.len());
}
