//! Semantic-preservation tests for the load-time IR optimizer, run
//! through the real engines (they live here rather than in `graft-ir`
//! to avoid a dev-dependency cycle with the engines).

use graft_rng::{Rng, SmallRng};
use graftbench::api::{ExtensionEngine, RegionSpec, Technology, Trap};
use graftbench::ir;
use graftbench::native::{CompiledEngine, SafetyMode};

fn lower(src: &str) -> ir::Module {
    let hir = graftbench::lang::compile(src, &[RegionSpec::data("buf", 8)]).unwrap();
    ir::lower(&hir)
}

fn run(module: ir::Module, mode: SafetyMode, entry: &str, args: &[i64]) -> i64 {
    let mut e = CompiledEngine::load(module, mode).unwrap();
    e.invoke(entry, args).unwrap()
}

#[test]
fn optimizer_preserves_a_representative_program() {
    let src = r#"
        var acc = 0;
        fn helper(x: int) -> int { return x * 2 + 1; }
        fn f(n: int) -> int {
            acc = 0;
            let i = 0;
            while i < n {
                buf[i & 7] = helper(i);
                acc = acc + buf[i & 7];
                i = i + 1;
            }
            if n > 100 { return 0 - acc; }
            return acc;
        }
    "#;
    let plain = lower(src);
    let mut opt = plain.clone();
    ir::optimize(&mut opt);
    ir::verify(&opt).unwrap();
    for n in [0i64, 1, 7, 20, 150] {
        for mode in [
            SafetyMode::Unchecked,
            SafetyMode::Safe { nil_checks: true },
            SafetyMode::Sfi { read_protect: true },
        ] {
            assert_eq!(
                run(plain.clone(), mode, "f", &[n]),
                run(opt.clone(), mode, "f", &[n]),
                "n = {n}, {mode:?}"
            );
        }
    }
}

#[test]
fn optimizer_keeps_constant_division_trapping() {
    let mut m = lower("fn f() -> int { return 1 / 0; }");
    ir::optimize(&mut m);
    let mut e = CompiledEngine::load(m, SafetyMode::Unchecked).unwrap();
    assert_eq!(
        e.invoke("f", &[]).unwrap_err().as_trap(),
        Some(&Trap::DivByZero)
    );
}

#[test]
fn manager_optimize_flag_is_transparent() {
    let spec = graftbench::grafts::eviction::spec();
    let scenario = graftbench::grafts::eviction::Scenario::paper_default(5);
    for optimize in [false, true] {
        let manager = graftbench::core::GraftManager {
            optimize,
            ..graftbench::core::GraftManager::new()
        };
        for tech in [
            Technology::CompiledUnchecked,
            Technology::SafeCompiled,
            Technology::Sfi,
        ] {
            let mut e = manager.load(&spec, tech).unwrap();
            let (lru, hot) = scenario.marshal(e.as_mut()).unwrap();
            assert_eq!(
                e.invoke("select_victim", &[lru, hot]).unwrap(),
                scenario.reference_victim() as i64,
                "optimize={optimize}, {tech}"
            );
        }
    }
}

/// Random straight-line arithmetic: optimized and unoptimized code
/// agree on every engine mode.
#[test]
fn optimizer_preserves_random_arithmetic() {
    let mut rng = SmallRng::seed_from_u64(0x0B7);
    for _case in 0..48 {
        let a = rng.gen_range(-1000i64..1000);
        let b = rng.gen_range(-1000i64..1000);
        let x = rng.next_u64() as u16 as i16;
        let src = format!(
            "fn f(x: int) -> int {{ let t = {a} * 3 + {b}; return (x ^ t) + (t >> 2) - (x & {a}); }}"
        );
        let plain = lower(&src);
        let mut opt = plain.clone();
        ir::optimize(&mut opt);
        ir::verify(&opt).unwrap();
        let args = [x as i64];
        assert_eq!(
            run(plain, SafetyMode::Unchecked, "f", &args),
            run(opt, SafetyMode::Unchecked, "f", &args)
        );
    }
}
