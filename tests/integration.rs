//! Cross-crate integration: a graft actually driving kernel policy.
//!
//! This is the paper's whole premise exercised end to end: the kernel
//! simulator's pager consults the eviction graft (running under a safe
//! technology) on every eviction, and the application's hot pages stay
//! resident where plain LRU would have evicted them.

use graftbench::api::{ExtensionEngine, Technology};
use graftbench::core::GraftManager;
use graftbench::grafts::eviction::{self, Scenario};
use graftbench::kernsim::vm::{EvictionPolicy, LruPolicy, LruQueue, PageId, Pager};

/// An eviction policy that upcalls into a loaded graft, marshalling the
/// kernel's LRU queue and the application's hot list on each decision.
struct GraftPolicy {
    engine: Box<dyn ExtensionEngine>,
    hot: Vec<u64>,
}

impl EvictionPolicy for GraftPolicy {
    fn select_victim(&mut self, queue: &LruQueue) -> Option<PageId> {
        let snapshot: Vec<u64> = queue.iter_lru().collect();
        let scenario = Scenario {
            queue: snapshot,
            hot: self.hot.clone(),
        };
        let (lru, hot) = scenario.marshal(self.engine.as_mut()).ok()?;
        self.engine
            .invoke("select_victim", &[lru, hot])
            .ok()
            .map(|v| v as u64)
    }
}

/// A workload where hot-list protection matters: the application
/// announces pages it will revisit, then streams through filler pages
/// that would flush them out of a plain LRU.
fn run_workload<P: EvictionPolicy>(pager: &mut Pager<P>) {
    let hot: Vec<u64> = (0..8).collect();
    // Touch the hot pages once.
    for &p in &hot {
        pager.access(p);
    }
    // Stream 3 rounds of filler, then revisit the hot set, repeatedly.
    for round in 0..5u64 {
        for filler in 0..24 {
            pager.access(1000 + round * 24 + filler);
        }
        for &p in &hot {
            pager.access(p);
        }
    }
}

#[test]
fn graft_policy_protects_hot_pages_where_lru_thrashes() {
    for tech in [
        Technology::SafeCompiled,
        Technology::Sfi,
        Technology::RustNative,
    ] {
        let engine = GraftManager::new()
            .load(&eviction::spec(), tech)
            .expect("load eviction graft");
        let policy = GraftPolicy {
            engine,
            hot: (0..8).collect(),
        };
        let mut grafted = Pager::new(16, policy);
        let mut plain = Pager::new(16, LruPolicy);
        run_workload(&mut grafted);
        run_workload(&mut plain);

        let g = grafted.stats();
        let l = plain.stats();
        assert!(
            g.refaults < l.refaults,
            "{tech}: graft refaults {} must beat LRU refaults {}",
            g.refaults,
            l.refaults
        );
    }
}

#[test]
fn graft_policy_decisions_match_between_technologies_in_vivo() {
    // Run the same pager workload under two technologies and require
    // identical eviction statistics — the technologies must be
    // behaviorally indistinguishable, only differently priced.
    let mut stats = Vec::new();
    for tech in [
        Technology::CompiledUnchecked,
        Technology::SafeCompiled,
        Technology::Bytecode,
        Technology::RustNative,
    ] {
        let engine = GraftManager::new()
            .load(&eviction::spec(), tech)
            .expect("load");
        let policy = GraftPolicy {
            engine,
            hot: (0..8).collect(),
        };
        let mut pager = Pager::new(16, policy);
        run_workload(&mut pager);
        stats.push((tech, pager.stats()));
    }
    for pair in stats.windows(2) {
        assert_eq!(
            pair[0].1, pair[1].1,
            "{} and {} disagree",
            pair[0].0, pair[1].0
        );
    }
}

#[test]
fn md5_graft_fingerprints_what_the_kernel_streams() {
    // Kernel reads a "file" in odd-sized chunks and streams it through
    // the graft; the fingerprint must match hashing the file directly.
    let file: Vec<u8> = (0..100_000u32).map(|i| (i * 131 % 256) as u8).collect();
    let want = graftbench::md5::digest(&file);
    let spec = graftbench::grafts::md5::spec();
    let mut engine = GraftManager::new()
        .load(&spec, Technology::SafeCompiled)
        .expect("load");
    let mut graft = graftbench::grafts::md5::Md5Graft::start(engine.as_mut()).expect("start");
    let mut at = 0usize;
    let mut step = 1usize;
    while at < file.len() {
        let end = (at + step).min(file.len());
        graft.update(&file[at..end]).expect("update");
        at = end;
        step = step % 4096 + 97; // odd, varying chunk sizes
    }
    assert_eq!(graft.finish().expect("finish"), want);
}

#[test]
fn logical_disk_graft_tracks_the_reference_through_kernel_flushes() {
    use graftbench::logdisk::{LdConfig, LogicalDisk};
    let blocks = 2048;
    let spec = graftbench::grafts::logdisk::spec_sized(blocks);
    let mut engine = GraftManager::new()
        .load(&spec, Technology::Sfi)
        .expect("load");
    graftbench::grafts::logdisk::init_map(engine.as_mut(), blocks).expect("init");
    let mut reference = LogicalDisk::new(LdConfig {
        blocks,
        segment_blocks: 16,
    });
    let mut graft_flushes = 0u64;
    for w in graftbench::logdisk::workload::skewed(blocks, 3_000, 5) {
        let flushed = engine.invoke("ld_write", &[w as i64]).expect("write");
        if reference.write(w).is_some() {
            assert_eq!(flushed, 1, "flush boundaries must align");
            graft_flushes += 1;
        } else {
            assert_eq!(flushed, 0);
        }
    }
    assert_eq!(graft_flushes, reference.stats().segments_flushed);
}
