//! Differential fuzzing across extension technologies.
//!
//! The paper's comparison is only meaningful if all technologies compute
//! the *same function*; these tests generate random programs and random
//! workloads from a seeded RNG and require every engine to agree bit for
//! bit with a Rust evaluator.

use graft_rng::{Rng, SmallRng};

use graftbench::api::{ExtensionEngine, RegionSpec};
use graftbench::bytecode::BytecodeEngine;
use graftbench::native::{load_grail, SafetyMode};
use graftbench::script::ScriptEngine;

/// A random arithmetic expression over three integer parameters.
#[derive(Debug, Clone)]
enum E {
    Lit(i64),
    Var(usize),
    Bin(&'static str, Box<E>, Box<E>),
    Neg(Box<E>),
    BitNot(Box<E>),
}

const OPS: [&str; 10] = ["+", "-", "*", "&", "|", "^", "<<", ">>", "/", "%"];

/// Draws a random expression with bounded depth, the moral equivalent
/// of the old `prop_recursive` strategy.
fn random_expr(rng: &mut SmallRng, depth: usize) -> E {
    if depth == 0 || rng.gen_bool(0.3) {
        return if rng.gen_bool(0.5) {
            E::Lit(rng.gen_range(-100_000i64..100_000))
        } else {
            E::Var(rng.gen_range(0usize..3))
        };
    }
    match rng.gen_range(0u32..4) {
        0 | 1 => E::Bin(
            OPS[rng.gen_range(0usize..OPS.len())],
            Box::new(random_expr(rng, depth - 1)),
            Box::new(random_expr(rng, depth - 1)),
        ),
        2 => E::Neg(Box::new(random_expr(rng, depth - 1))),
        _ => E::BitNot(Box::new(random_expr(rng, depth - 1))),
    }
}

impl E {
    /// Reference semantics (identical to Grail's defined semantics).
    fn eval(&self, vars: &[i64; 3]) -> i64 {
        match self {
            E::Lit(v) => *v,
            E::Var(i) => vars[*i],
            E::Neg(e) => e.eval(vars).wrapping_neg(),
            E::BitNot(e) => !e.eval(vars),
            E::Bin(op, a, b) => {
                let (a, b) = (a.eval(vars), b.eval(vars));
                match *op {
                    "+" => a.wrapping_add(b),
                    "-" => a.wrapping_sub(b),
                    "*" => a.wrapping_mul(b),
                    "&" => a & b,
                    "|" => a | b,
                    "^" => a ^ b,
                    "<<" => a.wrapping_shl(b as u32 & 63),
                    ">>" => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
                    "/" => a.wrapping_div(b | 1),
                    "%" => a.wrapping_rem(b | 1),
                    other => unreachable!("{other}"),
                }
            }
        }
    }

    /// Renders to a Grail expression (fully parenthesized).
    fn grail(&self) -> String {
        match self {
            E::Lit(v) if *v < 0 => format!("(0 - {})", v.unsigned_abs()),
            E::Lit(v) => v.to_string(),
            E::Var(i) => ["a", "b", "c"][*i].to_string(),
            E::Neg(e) => format!("(-{})", e.grail()),
            E::BitNot(e) => format!("(~{})", e.grail()),
            E::Bin(op, a, b) => match *op {
                "/" | "%" => format!("({} {op} ({} | 1))", a.grail(), b.grail()),
                _ => format!("({} {op} {})", a.grail(), b.grail()),
            },
        }
    }

    /// Renders to a Tickle `expr` expression.
    fn tickle(&self) -> String {
        match self {
            E::Lit(v) if *v < 0 => format!("(0 - {})", v.unsigned_abs()),
            E::Lit(v) => v.to_string(),
            E::Var(i) => format!("${}", ["a", "b", "c"][*i]),
            E::Neg(e) => format!("(-{})", e.tickle()),
            E::BitNot(e) => format!("(~{})", e.tickle()),
            E::Bin(op, a, b) => match *op {
                "/" | "%" => format!("({} {op} ({} | 1))", a.tickle(), b.tickle()),
                // Tickle's `>>` is logical, same as Grail's.
                _ => format!("({} {op} {})", a.tickle(), b.tickle()),
            },
        }
    }
}

/// Every compiled/interpreted technology computes the reference value
/// for arbitrary expressions — the core soundness property of the whole
/// comparison.
#[test]
fn engines_agree_on_random_expressions() {
    let mut rng = SmallRng::seed_from_u64(0xD1FF);
    for _case in 0..64 {
        let e = random_expr(&mut rng, 5);
        let vars = [
            rng.next_u64() as u32 as i32 as i64,
            rng.next_u64() as u32 as i32 as i64,
            rng.next_u64() as u32 as i32 as i64,
        ];
        let want = e.eval(&vars);

        let grail = format!(
            "fn f(a: int, b: int, c: int) -> int {{ return {}; }}",
            e.grail()
        );
        for mode in [
            SafetyMode::Unchecked,
            SafetyMode::Safe { nil_checks: true },
            SafetyMode::Sfi { read_protect: true },
        ] {
            let mut eng = load_grail(&grail, &[], mode).unwrap();
            assert_eq!(eng.invoke("f", &vars).unwrap(), want, "{:?}", mode);
        }
        let mut bc = BytecodeEngine::load_grail(&grail, &[]).unwrap();
        assert_eq!(bc.invoke("f", &vars).unwrap(), want, "bytecode");
    }
}

/// The script technology agrees too (fewer cases — it is four orders of
/// magnitude slower, which is rather the point).
#[test]
fn tickle_agrees_on_random_expressions() {
    let mut rng = SmallRng::seed_from_u64(0x71C);
    for _case in 0..32 {
        let e = random_expr(&mut rng, 4);
        let vars = [
            rng.next_u64() as u16 as i16 as i64,
            rng.next_u64() as u16 as i16 as i64,
            rng.next_u64() as u16 as i16 as i64,
        ];
        let want = e.eval(&vars);
        let tickle = format!("proc f {{a b c}} {{ return [expr {}] }}", e.tickle());
        let mut eng = ScriptEngine::load(&tickle, &[]).unwrap();
        assert_eq!(eng.invoke("f", &vars).unwrap(), want);
    }
}

/// Region traffic: random store/load sequences behave like a plain
/// array under every technology.
#[test]
fn region_semantics_match_a_flat_array() {
    let mut rng = SmallRng::seed_from_u64(0x4E6);
    for _case in 0..16 {
        let grail = r#"
            fn put(i: int, v: int) { buf[i] = v; }
            fn get(i: int) -> int { return buf[i]; }
        "#;
        let regions = [RegionSpec::data("buf", 32)];
        let mut engines: Vec<Box<dyn ExtensionEngine>> = vec![
            Box::new(load_grail(grail, &regions, SafetyMode::Unchecked).unwrap()),
            Box::new(load_grail(grail, &regions, SafetyMode::Safe { nil_checks: true }).unwrap()),
            Box::new(load_grail(grail, &regions, SafetyMode::Sfi { read_protect: false }).unwrap()),
            Box::new(BytecodeEngine::load_grail(grail, &regions).unwrap()),
        ];
        let mut model = [0i64; 32];
        let nops = rng.gen_range(1usize..40);
        for _ in 0..nops {
            let i = rng.gen_range(0usize..32);
            let v = rng.next_u64() as u32 as i32 as i64;
            model[i] = v;
            for eng in engines.iter_mut() {
                eng.invoke("put", &[i as i64, v]).unwrap();
            }
        }
        for (i, &want) in model.iter().enumerate() {
            for eng in engines.iter_mut() {
                assert_eq!(eng.invoke("get", &[i as i64]).unwrap(), want);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Two-phase ABI conformance: for every technology and graft, the
// bind-then-invoke fast path must compute exactly what the legacy
// string-keyed path computes, and bad handles must fail deterministically
// (a trap, never UB or a panic).
// ---------------------------------------------------------------------

use graftbench::api::{EntryId, GraftError, RegionId, Technology, Trap};
use graftbench::core::GraftManager;

/// Engines for every technology that can host `spec` (missing sources
/// are skipped, mirroring the paper's blank table cells).
fn engines_for(spec: &graftbench::api::GraftSpec) -> Vec<(Technology, Box<dyn ExtensionEngine>)> {
    let manager = GraftManager::new();
    Technology::ALL
        .into_iter()
        .filter_map(|tech| match manager.load(spec, tech) {
            Ok(engine) => Some((tech, engine)),
            Err(GraftError::Unavailable { .. }) => None,
            Err(err) => panic!("{tech:?}: unexpected load failure: {err}"),
        })
        .collect()
}

/// Property: `bind_entry` + `invoke_id` ≡ string `invoke`, and
/// `invoke_batch` ≡ the same calls one by one — for every technology,
/// on the paper's eviction graft.
#[test]
fn bind_then_invoke_matches_string_invoke_on_every_technology() {
    let spec = graftbench::grafts::eviction::spec();
    let scenario = graftbench::grafts::eviction::Scenario::paper_default(9);
    for (tech, mut engine) in engines_for(&spec) {
        let (lru, hot) = scenario.marshal(engine.as_mut()).unwrap();
        let via_string = engine.invoke("select_victim", &[lru, hot]).unwrap();
        let id = engine.bind_entry("select_victim").unwrap();
        assert_eq!(
            engine.bind_entry("select_victim").unwrap(),
            id,
            "{tech:?}: bind must be idempotent"
        );
        let via_id = engine.invoke_id(id, &[lru, hot]).unwrap();
        assert_eq!(via_id, via_string, "{tech:?}: handle path diverged");
        assert_eq!(via_id, scenario.reference_victim() as i64, "{tech:?}");

        // A batch of four identical calls returns four identical results.
        let args = [lru, hot, lru, hot, lru, hot, lru, hot];
        let mut out = Vec::new();
        engine.invoke_batch(id, 4, &args, &mut out).unwrap();
        assert_eq!(out, vec![via_id; 4], "{tech:?}: batch diverged");
    }
}

/// Property: the logdisk write stream produces identical bookkeeping
/// whether driven by string invokes or by handle-based batches.
#[test]
fn batched_writes_match_string_driven_writes() {
    let spec = graftbench::grafts::logdisk::spec_sized(512);
    let writes: Vec<i64> = graftbench::logdisk::workload::skewed(512, 512, 3)
        .map(|w| w as i64)
        .collect();
    for (tech, mut by_name) in engines_for(&spec) {
        let mut by_id = GraftManager::new().load(&spec, tech).unwrap();
        graftbench::grafts::logdisk::init_map(by_name.as_mut(), 512).unwrap();
        graftbench::grafts::logdisk::init_map(by_id.as_mut(), 512).unwrap();
        let mut flushes_name = 0i64;
        for &w in &writes {
            flushes_name += by_name.invoke("ld_write", &[w]).unwrap();
        }
        let wr = by_id.bind_entry("ld_write").unwrap();
        let mut out = Vec::new();
        for chunk in writes.chunks(32) {
            by_id.invoke_batch(wr, chunk.len(), chunk, &mut out).unwrap();
        }
        let flushes_id: i64 = out.iter().sum();
        assert_eq!(flushes_id, flushes_name, "{tech:?}: flush counts differ");
        for stat in 0..3 {
            assert_eq!(
                by_id.invoke("ld_stat", &[stat]).unwrap(),
                by_name.invoke("ld_stat", &[stat]).unwrap(),
                "{tech:?}: ld_stat({stat}) differs"
            );
        }
    }
}

/// Property: region handles and region names address the same storage.
#[test]
fn region_handles_alias_region_names_on_every_technology() {
    let spec = graftbench::grafts::md5::spec();
    for (tech, mut engine) in engines_for(&spec) {
        let msg = engine.bind_region("msg").unwrap();
        engine.load_region_id(msg, 0, &[7, 8, 9]).unwrap();
        assert_eq!(engine.read_region("msg", 1).unwrap(), 8, "{tech:?}");
        engine.write_region("msg", 1, 80).unwrap();
        assert_eq!(engine.read_region_id(msg, 1).unwrap(), 80, "{tech:?}");
        let mut out = [0i64; 3];
        engine.read_region_slice_id(msg, 0, &mut out).unwrap();
        assert_eq!(out, [7, 80, 9], "{tech:?}");
        assert!(engine.bind_region("no_such_region").is_err(), "{tech:?}");
    }
}

/// Negative: binding an undeclared entry fails at bind time — load-time
/// name resolution is part of the safety story for every technology.
#[test]
fn unknown_entries_fail_at_bind_on_every_technology() {
    let spec = graftbench::grafts::eviction::spec();
    for (tech, mut engine) in engines_for(&spec) {
        let err = engine
            .bind_entry("definitely_not_an_entry")
            .expect_err(&format!("{tech:?}: bind of unknown entry must fail"));
        assert!(
            matches!(
                err.as_trap(),
                Some(Trap::NoSuchFunction(_)) | Some(Trap::BadHandle { .. })
            ),
            "{tech:?}: wrong error: {err}"
        );
    }
}

/// Negative: stale or forged handles trap deterministically — the same
/// `BadHandle` shape on every technology, in-process or across the
/// upcall boundary. Never UB, never a panic.
#[test]
fn stale_handles_trap_deterministically_on_every_technology() {
    let spec = graftbench::grafts::eviction::spec();
    for (tech, mut engine) in engines_for(&spec) {
        let err = engine.invoke_id(EntryId(4_000), &[]).unwrap_err();
        assert!(
            matches!(err.as_trap(), Some(Trap::BadHandle { kind: "entry", .. })),
            "{tech:?}: invoke_id: {err}"
        );
        let mut out = Vec::new();
        let err = engine.invoke_batch(EntryId(4_000), 1, &[0], &mut out).unwrap_err();
        assert!(
            matches!(err.as_trap(), Some(Trap::BadHandle { kind: "entry", .. })),
            "{tech:?}: invoke_batch: {err}"
        );
        let err = engine.read_region_id(RegionId(9_999), 0).unwrap_err();
        assert!(
            matches!(err.as_trap(), Some(Trap::BadHandle { kind: "region", .. })),
            "{tech:?}: read_region_id: {err}"
        );
        let err = engine.write_region_id(RegionId(9_999), 0, 1).unwrap_err();
        assert!(
            matches!(err.as_trap(), Some(Trap::BadHandle { kind: "region", .. })),
            "{tech:?}: write_region_id: {err}"
        );
    }
}

/// Negative: a malformed batch (argument count not divisible by the
/// call count) is rejected before any call runs.
#[test]
fn malformed_batches_are_rejected_up_front() {
    let spec = graftbench::grafts::eviction::spec();
    for (tech, mut engine) in engines_for(&spec) {
        let id = engine.bind_entry("select_victim").unwrap();
        let mut out = Vec::new();
        let err = engine.invoke_batch(id, 3, &[1, 2, 3, 4], &mut out).unwrap_err();
        assert!(
            matches!(err, GraftError::Verify(_)),
            "{tech:?}: expected shape error, got {err}"
        );
        assert!(out.is_empty(), "{tech:?}: no call may have run");
    }
}

// ---------------------------------------------------------------------
// State-salvage seam conformance: snapshot_region / restore_region
// round-trips bit for bit on every technology, snapshots agree across
// technologies, and fork_for_shard replicas speak the same seam.
// ---------------------------------------------------------------------

const SALVAGE_BLOCKS: usize = 256;

fn salvage_writes() -> Vec<i64> {
    graftbench::logdisk::workload::skewed(SALVAGE_BLOCKS, 192, 0xEC0)
        .map(|w| w as i64)
        .collect()
}

/// Property: a salvaged region snapshot equals the graft's own lookups
/// word for word, survives later donor writes untouched, restores into
/// a fresh engine bit-exact, and a length-mismatched restore is
/// rejected before any word lands. Snapshots are also bit-identical
/// *across* technologies, so a salvaged map can re-seed a replacement
/// built on any other technology.
#[test]
fn region_snapshots_round_trip_bit_exact_on_every_technology() {
    let spec = graftbench::grafts::logdisk::spec_sized(SALVAGE_BLOCKS);
    let writes = salvage_writes();
    let mut snapshots: Vec<(Technology, Vec<i64>)> = Vec::new();
    for (tech, mut donor) in engines_for(&spec) {
        graftbench::grafts::logdisk::init_map(donor.as_mut(), SALVAGE_BLOCKS).unwrap();
        for &w in &writes {
            donor.invoke("ld_write", &[w]).unwrap();
        }
        let map = donor.bind_region("map").unwrap();
        let snap = donor.snapshot_region(map).unwrap();
        assert_eq!(snap.len(), SALVAGE_BLOCKS, "{tech:?}: one word per block");
        for (block, &word) in snap.iter().enumerate() {
            assert_eq!(
                donor.invoke("ld_lookup", &[block as i64]).unwrap(),
                word,
                "{tech:?}: snapshot diverges from the graft's own lookup at block {block}"
            );
        }

        // The snapshot is a copy: a write after the snapshot moves the
        // donor's mapping but must not reach the salvaged words.
        let touched = writes[0];
        donor.invoke("ld_write", &[touched]).unwrap();
        let after = donor.snapshot_region(map).unwrap();
        assert_ne!(
            after[touched as usize], snap[touched as usize],
            "{tech:?}: a fresh write must move the mapping"
        );

        // Restore into a fresh engine of the same technology.
        let mut fresh = GraftManager::new().load(&spec, tech).unwrap();
        graftbench::grafts::logdisk::init_map(fresh.as_mut(), SALVAGE_BLOCKS).unwrap();
        let fresh_map = fresh.bind_region("map").unwrap();

        // Wrong-length restores fail closed, before any word is written.
        let err = fresh
            .restore_region(fresh_map, &snap[..SALVAGE_BLOCKS - 1])
            .unwrap_err();
        assert!(matches!(err, GraftError::Verify(_)), "{tech:?}: {err}");
        assert_eq!(
            fresh.invoke("ld_lookup", &[touched]).unwrap(),
            -1,
            "{tech:?}: a rejected restore must not touch the region"
        );

        fresh.restore_region(fresh_map, &snap).unwrap();
        assert_eq!(fresh.snapshot_region(fresh_map).unwrap(), snap, "{tech:?}");
        for (block, &word) in snap.iter().enumerate() {
            assert_eq!(
                fresh.invoke("ld_lookup", &[block as i64]).unwrap(),
                word,
                "{tech:?}: restored lookup differs at block {block}"
            );
        }
        snapshots.push((tech, snap));
    }

    // Same workload, same bookkeeping: every technology salvages the
    // exact same words.
    let (first_tech, reference) = &snapshots[0];
    for (tech, snap) in &snapshots[1..] {
        assert_eq!(
            snap, reference,
            "{tech:?} and {first_tech:?} salvage different maps from the same workload"
        );
    }
}

/// Property: `fork_for_shard` replicas speak the same salvage seam —
/// a snapshot restores into a replica and reads back bit-exact, and
/// replica writes never leak into the donor's region. This is what
/// lets the sharded host re-seed any replica from a salvaged map.
#[test]
fn snapshots_restore_into_fork_replicas_bit_exact() {
    let spec = graftbench::grafts::logdisk::spec_sized(SALVAGE_BLOCKS);
    let writes = salvage_writes();
    let mut forked = 0usize;
    for (tech, mut donor) in engines_for(&spec) {
        graftbench::grafts::logdisk::init_map(donor.as_mut(), SALVAGE_BLOCKS).unwrap();
        for &w in &writes {
            donor.invoke("ld_write", &[w]).unwrap();
        }
        let map = donor.bind_region("map").unwrap();
        let snap = donor.snapshot_region(map).unwrap();
        let mut replica = match donor.fork_for_shard(1) {
            Ok(replica) => replica,
            Err(GraftError::Unavailable { .. }) => continue,
            Err(err) => panic!("{tech:?}: unexpected fork failure: {err}"),
        };
        forked += 1;
        graftbench::grafts::logdisk::init_map(replica.as_mut(), SALVAGE_BLOCKS).unwrap();
        let replica_map = replica.bind_region("map").unwrap();
        replica.restore_region(replica_map, &snap).unwrap();
        assert_eq!(
            replica.snapshot_region(replica_map).unwrap(),
            snap,
            "{tech:?}: replica round trip"
        );
        for (block, &word) in snap.iter().enumerate() {
            assert_eq!(
                replica.invoke("ld_lookup", &[block as i64]).unwrap(),
                word,
                "{tech:?}: replica lookup differs at block {block}"
            );
        }
        // Replica and donor regions stay independent after the restore.
        replica.invoke("ld_write", &[writes[0]]).unwrap();
        assert_eq!(
            donor.snapshot_region(map).unwrap(),
            snap,
            "{tech:?}: donor must not observe replica writes"
        );
    }
    assert!(forked > 0, "no technology exercised the fork path");
}

/// The MD5 graft matches the reference implementation on arbitrary
/// inputs and chunkings.
#[test]
fn md5_graft_matches_reference_on_random_bytes() {
    let mut rng = SmallRng::seed_from_u64(0x3D55);
    for _case in 0..24 {
        let len = rng.gen_range(0usize..400);
        let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let split = rng.gen_range(0usize..400).min(data.len());
        let spec = graftbench::grafts::md5::spec();
        let mut eng = load_grail(
            spec.grail.as_ref().unwrap(),
            &spec.regions,
            SafetyMode::Safe { nil_checks: true },
        )
        .unwrap();
        let mut g = graftbench::grafts::md5::Md5Graft::start(&mut eng).unwrap();
        g.update(&data[..split]).unwrap();
        g.update(&data[split..]).unwrap();
        assert_eq!(g.finish().unwrap(), graftbench::md5::digest(&data));
    }
}
