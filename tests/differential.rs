//! Differential fuzzing across extension technologies.
//!
//! The paper's comparison is only meaningful if all technologies compute
//! the *same function*; these tests generate random programs and random
//! workloads from a seeded RNG and require every engine to agree bit for
//! bit with a Rust evaluator.

use graft_rng::{Rng, SmallRng};

use graftbench::api::{ExtensionEngine, RegionSpec};
use graftbench::bytecode::BytecodeEngine;
use graftbench::native::{load_grail, SafetyMode};
use graftbench::script::ScriptEngine;

/// A random arithmetic expression over three integer parameters.
#[derive(Debug, Clone)]
enum E {
    Lit(i64),
    Var(usize),
    Bin(&'static str, Box<E>, Box<E>),
    Neg(Box<E>),
    BitNot(Box<E>),
}

const OPS: [&str; 10] = ["+", "-", "*", "&", "|", "^", "<<", ">>", "/", "%"];

/// Draws a random expression with bounded depth, the moral equivalent
/// of the old `prop_recursive` strategy.
fn random_expr(rng: &mut SmallRng, depth: usize) -> E {
    if depth == 0 || rng.gen_bool(0.3) {
        return if rng.gen_bool(0.5) {
            E::Lit(rng.gen_range(-100_000i64..100_000))
        } else {
            E::Var(rng.gen_range(0usize..3))
        };
    }
    match rng.gen_range(0u32..4) {
        0 | 1 => E::Bin(
            OPS[rng.gen_range(0usize..OPS.len())],
            Box::new(random_expr(rng, depth - 1)),
            Box::new(random_expr(rng, depth - 1)),
        ),
        2 => E::Neg(Box::new(random_expr(rng, depth - 1))),
        _ => E::BitNot(Box::new(random_expr(rng, depth - 1))),
    }
}

impl E {
    /// Reference semantics (identical to Grail's defined semantics).
    fn eval(&self, vars: &[i64; 3]) -> i64 {
        match self {
            E::Lit(v) => *v,
            E::Var(i) => vars[*i],
            E::Neg(e) => e.eval(vars).wrapping_neg(),
            E::BitNot(e) => !e.eval(vars),
            E::Bin(op, a, b) => {
                let (a, b) = (a.eval(vars), b.eval(vars));
                match *op {
                    "+" => a.wrapping_add(b),
                    "-" => a.wrapping_sub(b),
                    "*" => a.wrapping_mul(b),
                    "&" => a & b,
                    "|" => a | b,
                    "^" => a ^ b,
                    "<<" => a.wrapping_shl(b as u32 & 63),
                    ">>" => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
                    "/" => a.wrapping_div(b | 1),
                    "%" => a.wrapping_rem(b | 1),
                    other => unreachable!("{other}"),
                }
            }
        }
    }

    /// Renders to a Grail expression (fully parenthesized).
    fn grail(&self) -> String {
        match self {
            E::Lit(v) if *v < 0 => format!("(0 - {})", v.unsigned_abs()),
            E::Lit(v) => v.to_string(),
            E::Var(i) => ["a", "b", "c"][*i].to_string(),
            E::Neg(e) => format!("(-{})", e.grail()),
            E::BitNot(e) => format!("(~{})", e.grail()),
            E::Bin(op, a, b) => match *op {
                "/" | "%" => format!("({} {op} ({} | 1))", a.grail(), b.grail()),
                _ => format!("({} {op} {})", a.grail(), b.grail()),
            },
        }
    }

    /// Renders to a Tickle `expr` expression.
    fn tickle(&self) -> String {
        match self {
            E::Lit(v) if *v < 0 => format!("(0 - {})", v.unsigned_abs()),
            E::Lit(v) => v.to_string(),
            E::Var(i) => format!("${}", ["a", "b", "c"][*i]),
            E::Neg(e) => format!("(-{})", e.tickle()),
            E::BitNot(e) => format!("(~{})", e.tickle()),
            E::Bin(op, a, b) => match *op {
                "/" | "%" => format!("({} {op} ({} | 1))", a.tickle(), b.tickle()),
                // Tickle's `>>` is logical, same as Grail's.
                _ => format!("({} {op} {})", a.tickle(), b.tickle()),
            },
        }
    }
}

/// Every compiled/interpreted technology computes the reference value
/// for arbitrary expressions — the core soundness property of the whole
/// comparison.
#[test]
fn engines_agree_on_random_expressions() {
    let mut rng = SmallRng::seed_from_u64(0xD1FF);
    for _case in 0..64 {
        let e = random_expr(&mut rng, 5);
        let vars = [
            rng.next_u64() as u32 as i32 as i64,
            rng.next_u64() as u32 as i32 as i64,
            rng.next_u64() as u32 as i32 as i64,
        ];
        let want = e.eval(&vars);

        let grail = format!(
            "fn f(a: int, b: int, c: int) -> int {{ return {}; }}",
            e.grail()
        );
        for mode in [
            SafetyMode::Unchecked,
            SafetyMode::Safe { nil_checks: true },
            SafetyMode::Sfi { read_protect: true },
        ] {
            let mut eng = load_grail(&grail, &[], mode).unwrap();
            assert_eq!(eng.invoke("f", &vars).unwrap(), want, "{:?}", mode);
        }
        let mut bc = BytecodeEngine::load_grail(&grail, &[]).unwrap();
        assert_eq!(bc.invoke("f", &vars).unwrap(), want, "bytecode");
    }
}

/// The script technology agrees too (fewer cases — it is four orders of
/// magnitude slower, which is rather the point).
#[test]
fn tickle_agrees_on_random_expressions() {
    let mut rng = SmallRng::seed_from_u64(0x71C);
    for _case in 0..32 {
        let e = random_expr(&mut rng, 4);
        let vars = [
            rng.next_u64() as u16 as i16 as i64,
            rng.next_u64() as u16 as i16 as i64,
            rng.next_u64() as u16 as i16 as i64,
        ];
        let want = e.eval(&vars);
        let tickle = format!("proc f {{a b c}} {{ return [expr {}] }}", e.tickle());
        let mut eng = ScriptEngine::load(&tickle, &[]).unwrap();
        assert_eq!(eng.invoke("f", &vars).unwrap(), want);
    }
}

/// Region traffic: random store/load sequences behave like a plain
/// array under every technology.
#[test]
fn region_semantics_match_a_flat_array() {
    let mut rng = SmallRng::seed_from_u64(0x4E6);
    for _case in 0..16 {
        let grail = r#"
            fn put(i: int, v: int) { buf[i] = v; }
            fn get(i: int) -> int { return buf[i]; }
        "#;
        let regions = [RegionSpec::data("buf", 32)];
        let mut engines: Vec<Box<dyn ExtensionEngine>> = vec![
            Box::new(load_grail(grail, &regions, SafetyMode::Unchecked).unwrap()),
            Box::new(load_grail(grail, &regions, SafetyMode::Safe { nil_checks: true }).unwrap()),
            Box::new(load_grail(grail, &regions, SafetyMode::Sfi { read_protect: false }).unwrap()),
            Box::new(BytecodeEngine::load_grail(grail, &regions).unwrap()),
        ];
        let mut model = [0i64; 32];
        let nops = rng.gen_range(1usize..40);
        for _ in 0..nops {
            let i = rng.gen_range(0usize..32);
            let v = rng.next_u64() as u32 as i32 as i64;
            model[i] = v;
            for eng in engines.iter_mut() {
                eng.invoke("put", &[i as i64, v]).unwrap();
            }
        }
        for i in 0..32usize {
            for eng in engines.iter_mut() {
                assert_eq!(eng.invoke("get", &[i as i64]).unwrap(), model[i]);
            }
        }
    }
}

/// The MD5 graft matches the reference implementation on arbitrary
/// inputs and chunkings.
#[test]
fn md5_graft_matches_reference_on_random_bytes() {
    let mut rng = SmallRng::seed_from_u64(0x3D55);
    for _case in 0..24 {
        let len = rng.gen_range(0usize..400);
        let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let split = rng.gen_range(0usize..400).min(data.len());
        let spec = graftbench::grafts::md5::spec();
        let mut eng = load_grail(
            spec.grail.as_ref().unwrap(),
            &spec.regions,
            SafetyMode::Safe { nil_checks: true },
        )
        .unwrap();
        let mut g = graftbench::grafts::md5::Md5Graft::start(&mut eng).unwrap();
        g.update(&data[..split]).unwrap();
        g.update(&data[split..]).unwrap();
        assert_eq!(g.finish().unwrap(), graftbench::md5::digest(&data));
    }
}
