//! Differential fuzzing across extension technologies.
//!
//! The paper's comparison is only meaningful if all technologies compute
//! the *same function*; these properties generate random programs and
//! random workloads and require every engine to agree bit for bit with
//! a Rust evaluator.

use proptest::prelude::*;

use graftbench::api::{ExtensionEngine, RegionSpec};
use graftbench::bytecode::BytecodeEngine;
use graftbench::native::{load_grail, SafetyMode};
use graftbench::script::ScriptEngine;

/// A random arithmetic expression over three integer parameters.
#[derive(Debug, Clone)]
enum E {
    Lit(i64),
    Var(usize),
    Bin(&'static str, Box<E>, Box<E>),
    Neg(Box<E>),
    BitNot(Box<E>),
}

impl E {
    /// Reference semantics (identical to Grail's defined semantics).
    fn eval(&self, vars: &[i64; 3]) -> i64 {
        match self {
            E::Lit(v) => *v,
            E::Var(i) => vars[*i],
            E::Neg(e) => e.eval(vars).wrapping_neg(),
            E::BitNot(e) => !e.eval(vars),
            E::Bin(op, a, b) => {
                let (a, b) = (a.eval(vars), b.eval(vars));
                match *op {
                    "+" => a.wrapping_add(b),
                    "-" => a.wrapping_sub(b),
                    "*" => a.wrapping_mul(b),
                    "&" => a & b,
                    "|" => a | b,
                    "^" => a ^ b,
                    "<<" => a.wrapping_shl(b as u32 & 63),
                    ">>" => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
                    "/" => a.wrapping_div(b | 1),
                    "%" => a.wrapping_rem(b | 1),
                    other => unreachable!("{other}"),
                }
            }
        }
    }

    /// Renders to a Grail expression (fully parenthesized).
    fn grail(&self) -> String {
        match self {
            E::Lit(v) if *v < 0 => format!("(0 - {})", v.unsigned_abs()),
            E::Lit(v) => v.to_string(),
            E::Var(i) => ["a", "b", "c"][*i].to_string(),
            E::Neg(e) => format!("(-{})", e.grail()),
            E::BitNot(e) => format!("(~{})", e.grail()),
            E::Bin(op, a, b) => match *op {
                "/" | "%" => format!("({} {op} ({} | 1))", a.grail(), b.grail()),
                _ => format!("({} {op} {})", a.grail(), b.grail()),
            },
        }
    }

    /// Renders to a Tickle `expr` expression.
    fn tickle(&self) -> String {
        match self {
            E::Lit(v) if *v < 0 => format!("(0 - {})", v.unsigned_abs()),
            E::Lit(v) => v.to_string(),
            E::Var(i) => format!("${}", ["a", "b", "c"][*i]),
            E::Neg(e) => format!("(-{})", e.tickle()),
            E::BitNot(e) => format!("(~{})", e.tickle()),
            E::Bin(op, a, b) => match *op {
                "/" | "%" => format!("({} {op} ({} | 1))", a.tickle(), b.tickle()),
                // Tickle's `>>` is logical, same as Grail's.
                _ => format!("({} {op} {})", a.tickle(), b.tickle()),
            },
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-100_000i64..100_000).prop_map(E::Lit),
        (0usize..3).prop_map(E::Var),
    ];
    leaf.prop_recursive(5, 32, 3, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just("+"),
                    Just("-"),
                    Just("*"),
                    Just("&"),
                    Just("|"),
                    Just("^"),
                    Just("<<"),
                    Just(">>"),
                    Just("/"),
                    Just("%"),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| E::Bin(op, Box::new(a), Box::new(b))),
            inner.clone().prop_map(|e| E::Neg(Box::new(e))),
            inner.prop_map(|e| E::BitNot(Box::new(e))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every compiled/interpreted technology computes the reference
    /// value for arbitrary expressions — the core soundness property of
    /// the whole comparison.
    #[test]
    fn engines_agree_on_random_expressions(
        e in expr_strategy(),
        vars in [any::<i32>(), any::<i32>(), any::<i32>()],
    ) {
        let vars = [vars[0] as i64, vars[1] as i64, vars[2] as i64];
        let want = e.eval(&vars);

        let grail = format!(
            "fn f(a: int, b: int, c: int) -> int {{ return {}; }}",
            e.grail()
        );
        for mode in [
            SafetyMode::Unchecked,
            SafetyMode::Safe { nil_checks: true },
            SafetyMode::Sfi { read_protect: true },
        ] {
            let mut eng = load_grail(&grail, &[], mode).unwrap();
            prop_assert_eq!(eng.invoke("f", &vars).unwrap(), want, "{:?}", mode);
        }
        let mut bc = BytecodeEngine::load_grail(&grail, &[]).unwrap();
        prop_assert_eq!(bc.invoke("f", &vars).unwrap(), want, "bytecode");
    }

    /// The script technology agrees too (fewer cases — it is four
    /// orders of magnitude slower, which is rather the point).
    #[test]
    fn tickle_agrees_on_random_expressions(
        e in expr_strategy(),
        vars in [any::<i16>(), any::<i16>(), any::<i16>()],
    ) {
        let vars = [vars[0] as i64, vars[1] as i64, vars[2] as i64];
        let want = e.eval(&vars);
        let tickle = format!(
            "proc f {{a b c}} {{ return [expr {}] }}",
            e.tickle()
        );
        let mut eng = ScriptEngine::load(&tickle, &[]).unwrap();
        prop_assert_eq!(eng.invoke("f", &vars).unwrap(), want);
    }

    /// Region traffic: random store/load sequences behave like a plain
    /// array under every technology.
    #[test]
    fn region_semantics_match_a_flat_array(
        ops in prop::collection::vec((0usize..32, any::<i32>()), 1..40),
    ) {
        let grail = r#"
            fn put(i: int, v: int) { buf[i] = v; }
            fn get(i: int) -> int { return buf[i]; }
        "#;
        let regions = [RegionSpec::data("buf", 32)];
        let mut engines: Vec<Box<dyn ExtensionEngine>> = vec![
            Box::new(load_grail(grail, &regions, SafetyMode::Unchecked).unwrap()),
            Box::new(load_grail(grail, &regions, SafetyMode::Safe { nil_checks: true }).unwrap()),
            Box::new(load_grail(grail, &regions, SafetyMode::Sfi { read_protect: false }).unwrap()),
            Box::new(BytecodeEngine::load_grail(grail, &regions).unwrap()),
        ];
        let mut model = [0i64; 32];
        for (i, v) in ops {
            let v = v as i64;
            model[i] = v;
            for eng in engines.iter_mut() {
                eng.invoke("put", &[i as i64, v]).unwrap();
            }
        }
        for i in 0..32usize {
            for eng in engines.iter_mut() {
                prop_assert_eq!(eng.invoke("get", &[i as i64]).unwrap(), model[i]);
            }
        }
    }

    /// The MD5 graft matches the reference implementation on arbitrary
    /// inputs and chunkings.
    #[test]
    fn md5_graft_matches_reference_on_random_bytes(
        data in prop::collection::vec(any::<u8>(), 0..400),
        split in 0usize..400,
    ) {
        let split = split.min(data.len());
        let spec = graftbench::grafts::md5::spec();
        let mut eng = load_grail(
            spec.grail.as_ref().unwrap(),
            &spec.regions,
            SafetyMode::Safe { nil_checks: true },
        )
        .unwrap();
        let mut g = graftbench::grafts::md5::Md5Graft::start(&mut eng).unwrap();
        g.update(&data[..split]).unwrap();
        g.update(&data[split..]).unwrap();
        prop_assert_eq!(g.finish().unwrap(), graftbench::md5::digest(&data));
    }
}
