#!/bin/sh
# One-command verification of the whole reproduction:
#   build (offline), test, emit a quick run artifact, self-diff it.
#
# Usage: scripts/verify.sh [--full] [--threads]
#   --full     use paper-scale iteration counts for the artifact run
#   --threads  long conformance pass: replay the threaded server
#              against the deterministic reference for 200 seeds and
#              run the wire fuzzer at 200 seeds (release)
#
# Exits nonzero on the first failure. Safe on an air-gapped machine:
# the workspace has no external dependencies.
set -eu

cd "$(dirname "$0")/.."

MODE=--quick
THREADS=0
for arg in "$@"; do
    case "$arg" in
        --full) MODE=--full ;;
        --threads) THREADS=1 ;;
        *) echo "unknown flag: $arg" >&2; exit 2 ;;
    esac
done

ART=$(mktemp /tmp/graft-verify-XXXXXX.json)
T7ART=$(mktemp /tmp/graft-table7-XXXXXX.json)
T8ART=$(mktemp /tmp/graft-table8-XXXXXX.json)
T8OUT=$(mktemp /tmp/graft-table8-XXXXXX.txt)
T9ART=$(mktemp /tmp/graft-table9-XXXXXX.json)
T9OUT=$(mktemp /tmp/graft-table9-XXXXXX.txt)
T12ART=$(mktemp /tmp/graft-table12-XXXXXX.json)
T12OUT=$(mktemp /tmp/graft-table12-XXXXXX.txt)
T13ART=$(mktemp /tmp/graft-table13-XXXXXX.json)
T13OUT=$(mktemp /tmp/graft-table13-XXXXXX.txt)
T11ART=$(mktemp /tmp/graft-table11-XXXXXX.json)
T11OUT=$(mktemp /tmp/graft-table11-XXXXXX.txt)
T14ART=$(mktemp /tmp/graft-table14-XXXXXX.json)
T14OUT=$(mktemp /tmp/graft-table14-XXXXXX.txt)
trap 'rm -f "$ART" "$T7ART" "$T8ART" "$T8OUT" "$T9ART" "$T9OUT" "$T12ART" "$T12OUT" "$T13ART" "$T13OUT" "$T11ART" "$T11OUT" "$T14ART" "$T14OUT"' EXIT

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo clippy --workspace (warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo test --offline --workspace"
cargo test -q --offline --workspace

# Threaded-server conformance: the live worker plane must be
# indistinguishable from the deterministic single-threaded replay
# (reply sets, ledgers, standings, strike counts, stats), and the
# framing layer must survive a seeded mutation barrage without
# leaking tenant state. The 48/64-seed tier-1 versions already ran
# in the workspace test step; --threads buys the long pass.
if [ "$THREADS" = 1 ]; then
    echo "==> threaded conformance, 200 seeds (release)"
    GRAFT_CONFORMANCE_SEEDS=200 cargo test -q --offline --release \
        -p graft-server --test threaded_conformance
    echo "==> wire fuzz, 200 seeds (release)"
    GRAFT_FUZZ_SEEDS=200 cargo test -q --offline --release \
        -p graft-server --test wire_fuzz
fi

echo "==> regenerate all tables ($MODE --offline) with run artifact"
cargo run --release --offline -q -p graft-bench --bin all -- \
    "$MODE" --offline --json "$ART" > /dev/null

echo "==> graftstat self-diff (must report zero drift)"
cargo run --release --offline -q -p graft-bench --bin graftstat -- \
    "$ART" "$ART" | tail -1

echo "==> graftstat summary"
cargo run --release --offline -q -p graft-bench --bin graftstat -- "$ART" \
    | head -5

# Regression gate: fresh quick run vs the committed seed baseline.
# Shared-container timing is noisy, so the gate is generous (200%):
# it exists to catch order-of-magnitude regressions (a string lookup
# sneaking back onto a hot path), not scheduler jitter. One-sided keys
# alone (new samples such as the batched-upcall figure, absent from
# baselines that predate an ABI change) are reported but tolerated.
if [ -f BENCH_seed.json ]; then
    echo "==> graftstat regression gate vs BENCH_seed.json (threshold 200%)"
    GATE=$(cargo run --release --offline -q -p graft-bench --bin graftstat -- \
        BENCH_seed.json "$ART" --threshold 200) || {
        case "$GATE" in
            *"drift: 0 of"*) : ;; # no shared sample moved; only one-sided keys
            *)
                echo "$GATE"
                echo "regression gate FAILED"
                exit 1
                ;;
        esac
    }
    echo "$GATE" | tail -1
fi

# Graft-host containment gate: a fresh Table 7 churn run must keep its
# shared samples (per-technology baseline/post throughput, host
# machinery probes) within the same generous 200% envelope against the
# committed kernel baseline. Table 7 samples are absent from artifacts
# that predate the graft-host subsystem (BENCH_seed.json,
# BENCH_abi.json), so those keys show up one-sided above and are
# tolerated; this step is where they get real shared-sample gating.
echo "==> table7 churn run ($MODE --offline) with run artifact"
cargo run --release --offline -q -p graft-bench --bin table7 -- \
    "$MODE" --offline --json "$T7ART" > /dev/null

if [ -f BENCH_kernel.json ]; then
    echo "==> graftstat regression gate vs BENCH_kernel.json (threshold 200%)"
    GATE=$(cargo run --release --offline -q -p graft-bench --bin graftstat -- \
        BENCH_kernel.json "$T7ART" --threshold 200) || {
        case "$GATE" in
            *"drift: 0 of"*) : ;; # no shared sample moved; only one-sided keys
            *)
                echo "$GATE"
                echo "table7 regression gate FAILED"
                exit 1
                ;;
        esac
    }
    echo "$GATE" | tail -1
fi

# Sharded-dispatch gate: a fresh Table 8 run over the full shard
# ladder must (a) keep its shared samples within the 200% envelope
# against the committed shard baseline and (b) reproduce the headline:
# the in-kernel native row's aggregate throughput at 4 shards beats
# 1 shard by at least 2.5x (critical-path measurement; see
# docs/kernel.md "Sharded dispatch").
echo "==> table8 sharded-dispatch run ($MODE --offline) with run artifact"
cargo run --release --offline -q -p graft-bench --bin table8 -- \
    "$MODE" --offline --json "$T8ART" > "$T8OUT"

echo "==> native 4-shard speedup gate (>= 2.5x over 1 shard)"
awk '/in-kernel native/ {
         found = 1; s1 = $3; s4 = $5
         printf "    native: %.3f -> %.3f M accesses/s (%.2fx)\n", s1, s4, s4 / s1
         if (s4 / s1 < 2.5) bad = 1
     }
     END { exit (bad || !found) }' "$T8OUT" || {
    echo "table8 native speedup gate FAILED"
    exit 1
}

if [ -f BENCH_shard.json ]; then
    echo "==> graftstat regression gate vs BENCH_shard.json (threshold 200%)"
    GATE=$(cargo run --release --offline -q -p graft-bench --bin graftstat -- \
        BENCH_shard.json "$T8ART" --threshold 200) || {
        case "$GATE" in
            *"drift: 0 of"*) : ;; # no shared sample moved; only one-sided keys
            *)
                echo "$GATE"
                echo "table8 regression gate FAILED"
                exit 1
                ;;
        esac
    }
    echo "$GATE" | tail -1
fi

# Recovery gate: a fresh Table 9 run under the fixed chaos seed must
# (a) lose zero mappings — in every per-technology degraded-mode
# hand-off *and* in the fault-injected crash/rebuild drill — and
# (b) keep the degraded-mode service cost within 5% of a built-in that
# never failed over (post/base >= 0.95). Both quantities are
# deterministic under the seed (lost mappings are exact block
# comparisons; the hand-off cost is priced through the DiskModel, not
# wall-clock), so there are no retries: a miss is a regression.
echo "==> table9 recovery run ($MODE --offline, chaos seed 42) with run artifact"
cargo run --release --offline -q -p graft-bench --bin table9 -- \
    "$MODE" --offline --faults 42 --json "$T9ART" > "$T9OUT"

grep -q "lost mappings total: 0" "$T9OUT" || {
    cat "$T9OUT"
    echo "table9 zero-lost gate FAILED"
    exit 1
}

echo "==> degraded-mode hand-off gate (lost = 0, post/base >= 0.95)"
awk 'NR > 2 && /^[^ ]/ {
         rows += 1
         printf "    %-20s lost %s  post/base %s\n", $1, $(NF-1), $NF
         if ($(NF-1) + 0 != 0 || $NF + 0 < 0.95) bad = 1
     }
     END { exit (bad || rows < 6) }' "$T9OUT" || {
    echo "table9 hand-off gate FAILED"
    exit 1
}

if [ -f BENCH_recovery.json ]; then
    echo "==> graftstat regression gate vs BENCH_recovery.json (threshold 200%)"
    GATE=$(cargo run --release --offline -q -p graft-bench --bin graftstat -- \
        BENCH_recovery.json "$T9ART" --threshold 200) || {
        case "$GATE" in
            *"drift: 0 of"*) : ;; # no shared sample moved; only one-sided keys
            *)
                echo "$GATE"
                echo "table9 regression gate FAILED"
                exit 1
                ;;
        esac
    }
    echo "$GATE" | tail -1
fi

# Flight-recorder gate: a fresh Table 12 run prices the recorder on
# the Table 7 baseline rig in all three modes. The observability
# contract is (a) armed recording costs at most 10% per access in the
# worst technology row, and (b) the seeded quarantine drill
# reconstructs the *same* trapped-invocation tail from the scalar
# host's recorder and the 4-shard merged timeline (tails MATCH). The
# gated mode is reported but not gated here: its true cost is two
# relaxed atomic loads, far below shared-container timing noise.
echo "==> table12 flight-recorder run ($MODE --offline) with run artifact"
cargo run --release --offline -q -p graft-bench --bin table12 -- \
    "$MODE" --offline --json "$T12ART" > "$T12OUT"

echo "==> flight-recorder overhead gate (recording <= 10%)"
awk '/worst-case overhead/ {
         found = 1
         gsub(/[+%]/, "")
         printf "    gated %s%%  recording %s%%\n", $4, $7
         if ($7 + 0 > 10) bad = 1
     }
     END { exit (bad || !found) }' "$T12OUT" || {
    cat "$T12OUT"
    echo "table12 recording-overhead gate FAILED"
    exit 1
}

echo "==> postmortem drill gate (scalar and sharded tails MATCH)"
grep -q "tails MATCH" "$T12OUT" || {
    cat "$T12OUT"
    echo "table12 postmortem-drill gate FAILED"
    exit 1
}
grep "postmortem drill" "$T12OUT" | sed 's/^ */    /'

if [ -f BENCH_trace.json ]; then
    echo "==> graftstat regression gate vs BENCH_trace.json (threshold 200%)"
    GATE=$(cargo run --release --offline -q -p graft-bench --bin graftstat -- \
        BENCH_trace.json "$T12ART" --threshold 200) || {
        case "$GATE" in
            *"drift: 0 of"*) : ;; # no shared sample moved; only one-sided keys
            *)
                echo "$GATE"
                echo "table12 regression gate FAILED"
                exit 1
                ;;
        esac
    }
    echo "$GATE" | tail -1
fi

# Adaptive-dispatch gate: a fresh Table 13 run drives the skewed-load
# ladder through both dispatch planes. The contract is (a) on the 99/1
# trace the stealing plane beats static hash placement by at least
# 1.5x at 8 shards, and (b) stealing holds the per-shard processed
# imbalance at 16 shards to at most 5%. Both are deterministic under
# the seeded trace: the imbalance is exact item counts, and the
# speedup compares critical paths over identical work, far above the
# 1.5x bar (see docs/kernel.md "Adaptive dispatch").
echo "==> table13 adaptive-dispatch run ($MODE --offline) with run artifact"
cargo run --release --offline -q -p graft-bench --bin table13 -- \
    "$MODE" --offline --json "$T13ART" > "$T13OUT"

echo "==> steal speedup gate (99/1 @8 native >= 1.5x static)"
awk '/gate: 99-1 @8 native steal\/static/ {
         found = 1
         v = $NF; gsub(/x/, "", v)
         printf "    steal/static @8: %sx\n", v
         if (v + 0 < 1.5) bad = 1
     }
     END { exit (bad || !found) }' "$T13OUT" || {
    cat "$T13OUT"
    echo "table13 steal speedup gate FAILED"
    exit 1
}

echo "==> steal imbalance gate (99/1 @16 native <= 5%)"
awk '/gate: 99-1 @16 native steal imbalance/ {
         found = 1
         v = $NF; gsub(/%/, "", v)
         printf "    imbalance @16: %s%%\n", v
         if (v + 0 > 5) bad = 1
     }
     END { exit (bad || !found) }' "$T13OUT" || {
    cat "$T13OUT"
    echo "table13 steal imbalance gate FAILED"
    exit 1
}

if [ -f BENCH_steal.json ]; then
    echo "==> graftstat regression gate vs BENCH_steal.json (threshold 200%)"
    GATE=$(cargo run --release --offline -q -p graft-bench --bin graftstat -- \
        BENCH_steal.json "$T13ART" --threshold 200) || {
        case "$GATE" in
            *"drift: 0 of"*) : ;; # no shared sample moved; only one-sided keys
            *)
                echo "$GATE"
                echo "table13 regression gate FAILED"
                exit 1
                ;;
        esac
    }
    echo "$GATE" | tail -1
fi

# Graft-server gate: a fresh Table 11 run drives the networked host
# with its default open-loop population. The contract is (a) the run
# really is multi-tenant at scale (>= 100,000 tenants), (b) the
# worker ladder scales: native throughput at 4 drain workers beats 1
# worker by at least 2.5x on the critical path, (c) no reply ever
# carries another tenant's value (leakage is an exact count), (d) in
# the noisy-neighbor drill the victims' p99 under attack stays within
# 2x of the quiet baseline, and (e) the saboteur ends the drill
# quarantined (see docs/server.md "Threading model").
echo "==> table11 graft-server run ($MODE --offline) with run artifact"
cargo run --release --offline -q -p graft-bench --bin table11 -- \
    "$MODE" --offline --json "$T11ART" > "$T11OUT"

echo "==> server tenant-scale gate (>= 100000 tenants)"
awk '/gate: tenants/ {
         found = 1
         printf "    tenants: %s\n", $NF
         if ($NF + 0 < 100000) bad = 1
     }
     END { exit (bad || !found) }' "$T11OUT" || {
    cat "$T11OUT"
    echo "table11 tenant-scale gate FAILED"
    exit 1
}

echo "==> worker scaling gate (native @4 >= 2.5x over 1 worker)"
awk '/gate: native worker scaling @4/ {
         found = 1
         v = $NF; gsub(/x/, "", v)
         printf "    native worker scaling @4: %sx\n", v
         if (v + 0 < 2.5) bad = 1
     }
     END { exit (bad || !found) }' "$T11OUT" || {
    cat "$T11OUT"
    echo "table11 worker-scaling gate FAILED"
    exit 1
}

echo "==> server isolation gate (zero cross-tenant leakage)"
awk '/gate: cross-tenant leakage/ {
         found = 1
         printf "    leaked replies: %s\n", $NF
         if ($NF + 0 != 0) bad = 1
     }
     END { exit (bad || !found) }' "$T11OUT" || {
    cat "$T11OUT"
    echo "table11 isolation gate FAILED"
    exit 1
}

echo "==> noisy-neighbor gate (victim p99 <= 2x quiet p99)"
awk '/gate: noisy victim p99/ {
         found = 1
         v = $NF; gsub(/x/, "", v)
         printf "    victim p99 ratio: %sx\n", v
         if (v + 0 > 2.0) bad = 1
     }
     END { exit (bad || !found) }' "$T11OUT" || {
    cat "$T11OUT"
    echo "table11 noisy-neighbor gate FAILED"
    exit 1
}

echo "==> quarantine gate (saboteur quarantined = yes)"
grep -q "gate: saboteur quarantined = yes" "$T11OUT" || {
    cat "$T11OUT"
    echo "table11 quarantine gate FAILED"
    exit 1
}
grep "noisy-neighbor drill" "$T11OUT" | sed 's/^ */    /'

if [ -f BENCH_server.json ]; then
    echo "==> graftstat regression gate vs BENCH_server.json (threshold 200%)"
    GATE=$(cargo run --release --offline -q -p graft-bench --bin graftstat -- \
        BENCH_server.json "$T11ART" --threshold 200) || {
        case "$GATE" in
            *"drift: 0 of"*) : ;; # no shared sample moved; only one-sided keys
            *)
                echo "$GATE"
                echo "table11 regression gate FAILED"
                exit 1
                ;;
        esac
    }
    echo "$GATE" | tail -1
fi

# Durable-logdisk gate: a fresh Table 14 run scrubs a retention-merged
# history, runs the seeded bit-rot drills, and hands a midpoint restore
# to every technology. The contract is (a) the checksum audit detects
# 100% of injected corruptions (duplicate strikes on an already-rotted
# segment are accounted as undetectable-by-design, never silently
# dropped), (b) zero silent-wrong-map outcomes across all drill seeds —
# after quarantine + redo every logical block resolves to its newest
# content or the failure was loud, (c) restore_to_lsn reproduces the
# midpoint map bit-exactly, (d) every technology's adopted map answers
# ld_lookup without a single mismatch, and (e) serving the tail on the
# restored state costs no more than 1/0.95 of the never-crashed
# baseline (see docs/recovery.md "Durability & time travel").
echo "==> table14 durable-logdisk run ($MODE --offline) with run artifact"
cargo run --release --offline -q -p graft-bench --bin table14 -- \
    "$MODE" --offline --json "$T14ART" > "$T14OUT"

echo "==> bit-rot detection gate (100% of injected corruptions)"
awk '/gate: bitrot detection rate/ {
         found = 1
         v = $NF; gsub(/%/, "", v)
         printf "    detection rate: %s%%\n", v
         if (v + 0 != 100) bad = 1
     }
     END { exit (bad || !found) }' "$T14OUT" || {
    cat "$T14OUT"
    echo "table14 detection gate FAILED"
    exit 1
}

echo "==> silent-corruption gate (zero silent wrong map)"
awk '/gate: silent wrong map/ {
         found = 1
         printf "    silent wrong map: %s\n", $NF
         if ($NF + 0 != 0) bad = 1
     }
     END { exit (bad || !found) }' "$T14OUT" || {
    cat "$T14OUT"
    echo "table14 silent-corruption gate FAILED"
    exit 1
}

echo "==> restore exactness gate (zero divergence, zero mismatches)"
awk '/gate: restore divergence/ { rfound = 1; if ($NF + 0 != 0) bad = 1 }
     /gate: lookup mismatches/ { lfound = 1; if ($NF + 0 != 0) bad = 1 }
     END { exit (bad || !rfound || !lfound) }' "$T14OUT" || {
    cat "$T14OUT"
    echo "table14 restore exactness gate FAILED"
    exit 1
}

echo "==> post-restore service gate (post/base >= 0.95)"
awk '/gate: min post\/base/ {
         found = 1
         printf "    min post/base: %s\n", $NF
         if ($NF + 0 < 0.95) bad = 1
     }
     END { exit (bad || !found) }' "$T14OUT" || {
    cat "$T14OUT"
    echo "table14 post-restore service gate FAILED"
    exit 1
}
grep "scrub:" "$T14OUT" | sed 's/^ */    /'

if [ -f BENCH_durable.json ]; then
    echo "==> graftstat regression gate vs BENCH_durable.json (threshold 200%)"
    GATE=$(cargo run --release --offline -q -p graft-bench --bin graftstat -- \
        BENCH_durable.json "$T14ART" --threshold 200) || {
        case "$GATE" in
            *"drift: 0 of"*) : ;; # no shared sample moved; only one-sided keys
            *)
                echo "$GATE"
                echo "table14 regression gate FAILED"
                exit 1
                ;;
        esac
    }
    echo "$GATE" | tail -1
fi

echo "verify: OK"
