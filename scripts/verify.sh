#!/bin/sh
# One-command verification of the whole reproduction:
#   build (offline), test, emit a quick run artifact, self-diff it.
#
# Usage: scripts/verify.sh [--full]
#   --full   use paper-scale iteration counts for the artifact run
#
# Exits nonzero on the first failure. Safe on an air-gapped machine:
# the workspace has no external dependencies.
set -eu

cd "$(dirname "$0")/.."

MODE=--quick
if [ "${1:-}" = "--full" ]; then
    MODE=--full
fi

ART=$(mktemp /tmp/graft-verify-XXXXXX.json)
trap 'rm -f "$ART"' EXIT

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test --offline --workspace"
cargo test -q --offline --workspace

echo "==> regenerate all tables ($MODE --offline) with run artifact"
cargo run --release --offline -q -p graft-bench --bin all -- \
    "$MODE" --offline --json "$ART" > /dev/null

echo "==> graftstat self-diff (must report zero drift)"
cargo run --release --offline -q -p graft-bench --bin graftstat -- \
    "$ART" "$ART" | tail -1

echo "==> graftstat summary"
cargo run --release --offline -q -p graft-bench --bin graftstat -- "$ART" \
    | head -5

echo "verify: OK"
