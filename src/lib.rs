//! # graftbench
//!
//! A from-scratch reproduction of *"A Comparison of OS Extension
//! Technologies"* (Christopher Small and Margo Seltzer, USENIX 1996
//! Annual Technical Conference) as a Rust workspace.
//!
//! The paper asks: when an application grafts code into a running kernel,
//! what does each *extension technology* — unsafe compiled C, a safe
//! compiled language (Modula-3), software fault isolation (Omniware),
//! interpreted bytecode (Java), a source-interpreted script language
//! (Tcl), or a user-level server reached by upcall — cost, and when is a
//! graft worth it?
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`api`] — taxonomy, technologies, the region ABI, the engine trait.
//! * [`lang`] — Grail, the extension language grafts are written in.
//! * [`ir`] — the machine-independent register IR for compiled engines.
//! * [`native`] — the threaded-code engine (C / Modula-3 / Omniware
//!   modes) with SFI instrumentation and load-time verification.
//! * [`bytecode`] — the stack bytecode VM (Java analogue).
//! * [`script`] — Tickle, the Tcl-analogue string interpreter.
//! * [`kernsim`] — the simulated kernel substrate: VM paging, disk
//!   model, upcall server, and lmbench-style live measurements.
//! * [`md5`] — RFC 1321 MD5, the paper's stream graft workload.
//! * [`logdisk`] — the Logical Disk facility, the black-box workload.
//! * [`grafts`] — the benchmark grafts in every technology.
//! * [`kernel`] — graft-host, the multi-tenant extension kernel:
//!   attach points, chained grafts, per-graft ledgers, and the
//!   quarantine supervisor.
//! * [`telemetry`] — counters, histograms, spans, and the causal
//!   flight recorder (compiled to no-ops without the `telemetry`
//!   feature).
//! * [`core`] — the `GraftManager`, break-even analysis, and the
//!   experiment runners that regenerate each table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use graftbench::api::Technology;
//! use graftbench::core::GraftManager;
//! use graftbench::grafts::eviction;
//!
//! // Load the paper's VM page-eviction graft under the Modula-3-analogue
//! // technology and ask it to pick an eviction victim.
//! let spec = eviction::spec();
//! let mut engine = GraftManager::new().load(&spec, Technology::SafeCompiled).unwrap();
//! let scenario = eviction::Scenario::example();
//! let (lru_head, hot_head) = scenario.marshal(engine.as_mut()).unwrap();
//! let victim = engine.invoke("select_victim", &[lru_head, hot_head]).unwrap();
//! assert_eq!(victim as u64, scenario.reference_victim());
//! ```

pub use engine_bytecode as bytecode;
pub use engine_native as native;
pub use engine_script as script;
pub use graft_api as api;
pub use graft_core as core;
pub use graft_ir as ir;
pub use graft_kernel as kernel;
pub use graft_lang as lang;
pub use graft_md5 as md5;
pub use graft_telemetry as telemetry;
pub use grafts;
pub use kernsim;
pub use logdisk;
