//! Adversarial tests against the SFI verifier and sandbox: hand-forged
//! modules that try to escape must be rejected at load time or
//! contained at run time — never allowed to touch memory outside the
//! arena. This is the security half of Wahbe et al.'s claim, which the
//! paper's §4.2 takes as given.

use std::collections::HashMap;

use engine_native::sfi::{instrument, verify_sfi};
use engine_native::{CompiledEngine, SafetyMode};
use graft_api::{ExtensionEngine, RegionSpec};
use graft_ir::{Inst, IrFunc, MemRef, Module};

fn raw_module(code: Vec<Inst>, regs: usize) -> Module {
    let mut func_index = HashMap::new();
    func_index.insert("f".to_string(), 0);
    Module {
        funcs: vec![IrFunc {
            name: "f".into(),
            arity: 1,
            regs,
            code,
        }],
        globals: vec![],
        const_pools: vec![],
        regions: vec![RegionSpec::data("buf", 8)],
        func_index,
    }
}

/// A module claiming to be SFI-instrumented but still containing a
/// plain `Store` is rejected by the linear-scan verifier — and the
/// normal load path is immune because it always instruments first.
#[test]
fn uninstrumented_store_is_rejected_by_the_sfi_verifier() {
    let m = raw_module(
        vec![
            Inst::Store {
                mem: MemRef::Region(0),
                addr: 0,
                src: 0,
            },
            Inst::Ret { src: None },
        ],
        2,
    );
    let err = verify_sfi(&m).unwrap_err().to_string();
    assert!(err.contains("unsandboxed"), "{err}");
    // The engine's own load path instruments, so the same module loads
    // fine — and its store is then masked.
    let mut e = CompiledEngine::load(m, SafetyMode::Sfi { read_protect: false }).unwrap();
    e.invoke("f", &[0]).unwrap();
}

/// Forging a MaskedStore without a Mask (pointing it at a normal
/// register) is rejected by the linear-scan verifier.
#[test]
fn forged_masked_store_is_rejected() {
    let m = raw_module(
        vec![
            Inst::Const { dst: 1, value: 1 << 40 },
            Inst::MaskedStore { addr: 1, src: 0 },
            Inst::Ret { src: None },
        ],
        3, // dedicated register would be r2
    );
    let err = verify_sfi(&m).unwrap_err().to_string();
    assert!(err.contains("dedicated register"), "{err}");
}

/// Writing the dedicated register with arithmetic (to smuggle an
/// unmasked address into it) is rejected.
#[test]
fn arithmetic_into_dedicated_register_is_rejected() {
    // Build a legitimate module, then splice in an attack.
    let hir = graft_lang::compile(
        "fn f(i: int) { buf[i] = 1; }",
        &[RegionSpec::data("buf", 8)],
    )
    .unwrap();
    let mut m = graft_ir::lower(&hir);
    instrument(&mut m, false);
    let sbx = (m.funcs[0].regs - 1) as u16;
    let store_at = m.funcs[0]
        .code
        .iter()
        .position(|i| matches!(i, Inst::MaskedStore { .. }))
        .unwrap();
    m.funcs[0].code.insert(
        store_at,
        Inst::Bin {
            op: graft_lang::hir::BinOp::Add,
            dst: sbx,
            a: 0,
            b: 0,
        },
    );
    assert!(verify_sfi(&m).is_err());
}

/// Run-time containment: a graft computing arbitrary wild addresses
/// cannot disturb kernel-visible state outside its own regions — here
/// checked by hammering stores at extreme offsets and confirming the
/// engine (and its neighbours' memory, by virtue of Rust's safety)
/// keeps functioning.
#[test]
fn wild_store_barrage_is_contained() {
    let src = r#"
        fn hammer(seed: int) -> int {
            let i = 0;
            let x = seed;
            while i < 10000 {
                x = x * 6364136223846793005 + 1442695040888963407;
                buf[x] = i;
                i = i + 1;
            }
            return x;
        }
        fn probe(i: int) -> int { return buf[i]; }
    "#;
    let mut e = engine_native::load_grail(
        src,
        &[RegionSpec::data("buf", 8)],
        SafetyMode::Sfi { read_protect: false },
    )
    .unwrap();
    e.invoke("hammer", &[0x5EED]).unwrap();
    // The engine survives, stays callable, and kernel reads stay in
    // bounds.
    for i in 0..8 {
        e.invoke("probe", &[i]).unwrap();
    }
    assert!(e.read_region("buf", 7).is_ok());
    assert!(e.read_region("buf", 8).is_err(), "kernel view stays bounded");
}

/// The instrumented module always passes the generic IR verifier in
/// masked mode and executes identically to the safe engine on in-bounds
/// programs.
#[test]
fn instrumented_code_is_semantically_transparent() {
    let src = r#"
        fn sum(n: int) -> int {
            let s = 0;
            let i = 0;
            while i < n {
                buf[i] = i * 3;
                s = s + buf[i];
                i = i + 1;
            }
            return s;
        }
    "#;
    let regions = [RegionSpec::data("buf", 16)];
    let mut sfi =
        engine_native::load_grail(src, &regions, SafetyMode::Sfi { read_protect: true }).unwrap();
    let mut safe =
        engine_native::load_grail(src, &regions, SafetyMode::Safe { nil_checks: true }).unwrap();
    for n in [0i64, 1, 8, 16] {
        assert_eq!(sfi.invoke("sum", &[n]).unwrap(), safe.invoke("sum", &[n]).unwrap());
    }
}
