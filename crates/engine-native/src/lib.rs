//! The threaded-code ("compiled") extension engine.
//!
//! This crate implements the three *compiled* technologies the paper
//! compares, as load-time translation modes over the same `graft-ir`
//! module (Section 4.2 of the paper):
//!
//! * [`SafetyMode::Unchecked`] — the unsafe C baseline (`gcc -O`):
//!   no bounds checks, no NIL checks, no sandbox. A stray index reads or
//!   writes *somewhere* (deterministically wrapped into the region
//!   allocation) instead of trapping, which is exactly the reliability
//!   hazard the paper ascribes to unprotected extensions.
//! * [`SafetyMode::Safe`] — the Modula-3 analogue: every region and
//!   constant-table access is bounds-checked, pointer-chasing loads from
//!   linked regions are NIL-checked, and arithmetic overflow is defined.
//!   The `nil_checks` flag reproduces the paper's §5.4 discussion of the
//!   Linux Modula-3 compiler emitting explicit NIL checks that Solaris
//!   and Alpha got for free from page protection.
//! * [`SafetyMode::Sfi`] — the Omniware analogue: the module is rewritten
//!   at load time by [`sfi::instrument`], which lays every region and
//!   constant pool out in one power-of-two sandbox arena and inserts an
//!   explicit address-mask instruction before every write (and every
//!   read, when `read_protect` is on — the paper measured omniC++ 1.0β
//!   *without* read protection and says so twice). A linear-time
//!   verifier ([`sfi::verify_sfi`]) then proves every arena access is
//!   masked, mirroring Wahbe et al.'s load-time check.
//!
//! All three modes execute on the same pre-decoded dispatch loop in
//! [`interp`], so the *only* difference between technologies is the
//! checking work — which is the property that makes the paper's
//! normalized comparisons meaningful.

pub mod interp;
pub mod memory;
pub mod sfi;

use std::collections::HashMap;
use std::sync::Arc;

use graft_api::{EntryId, ExtensionEngine, GraftError, RegionId, Technology};
use graft_ir::Module;

/// Load-time translation mode: which technology the engine realizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SafetyMode {
    /// Unsafe compiled C: no checks at all.
    Unchecked,
    /// Safe compiled language (Modula-3): bounds + NIL checks.
    Safe {
        /// Emit NIL checks on loads from linked regions (the Linux
        /// Modula-3 configuration); disable to model platforms where
        /// page protection makes the check free.
        nil_checks: bool,
    },
    /// Software fault isolation (Omniware): sandbox arena + masks.
    Sfi {
        /// Also mask reads (full protection). The paper's omniC++ 1.0β
        /// had write/jump protection only.
        read_protect: bool,
    },
}

impl SafetyMode {
    /// The technology this mode realizes.
    pub fn technology(self) -> Technology {
        match self {
            SafetyMode::Unchecked => Technology::CompiledUnchecked,
            SafetyMode::Safe { .. } => Technology::SafeCompiled,
            SafetyMode::Sfi { .. } => Technology::Sfi,
        }
    }

    /// The paper's default configuration for this technology.
    pub fn paper_default(tech: Technology) -> Option<SafetyMode> {
        match tech {
            Technology::CompiledUnchecked => Some(SafetyMode::Unchecked),
            Technology::SafeCompiled => Some(SafetyMode::Safe { nil_checks: true }),
            Technology::Sfi => Some(SafetyMode::Sfi {
                read_protect: false,
            }),
            _ => None,
        }
    }
}

/// Per-invoke SFI operation tally.
///
/// Plain (non-atomic) words bumped only from the four SFI-only dispatch
/// arms in [`interp`], so the Unchecked and Safe modes never touch them
/// and pay nothing. [`CompiledEngine::invoke`] zeroes the tally before
/// each run and flushes it to `graft-telemetry` counters afterwards —
/// one flush per invocation, no atomics in the dispatch loop.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SfiTally {
    /// `Mask` instructions executed (address sandboxing ops).
    pub masks: u64,
    /// `MaskedLoad`s executed (read protection on).
    pub masked_loads: u64,
    /// `MaskedStore`s executed (write protection, always on under SFI).
    pub masked_stores: u64,
    /// Fused `ArenaLoad`s executed (read protection off).
    pub arena_loads: u64,
}

/// A graft module loaded under one of the compiled technologies.
pub struct CompiledEngine {
    module: Arc<Module>,
    mode: SafetyMode,
    pub(crate) memory: memory::Memory,
    pub(crate) globals: Vec<i64>,
    region_ids: HashMap<String, u16>,
    pub(crate) fuel: u64,
    metered: bool,
    fuel_limit: u64,
    last_fuel_used: u64,
    pub(crate) sfi_tally: SfiTally,
}

impl CompiledEngine {
    /// Translates `module` at load time under `mode`.
    ///
    /// Runs the structural IR verifier; under SFI additionally
    /// instruments the code and runs the SFI verifier. Rejected modules
    /// never execute.
    pub fn load(module: Module, mode: SafetyMode) -> Result<Self, GraftError> {
        graft_ir::verify(&module)?;
        let (module, memory) = match mode {
            SafetyMode::Sfi { read_protect } => {
                let mut module = module;
                let layout = sfi::instrument(&mut module, read_protect);
                graft_ir::verify::verify_with(&module, true)?;
                sfi::verify_sfi(&module)?;
                let arena = memory::Arena::new(&module, layout);
                (module, memory::Memory::Arena(arena))
            }
            _ => {
                let plain = memory::PlainMemory::new(&module);
                (module, memory::Memory::Plain(plain))
            }
        };
        let globals = module.globals.clone();
        let region_ids = module
            .regions
            .iter()
            .enumerate()
            .map(|(i, r)| (r.name.clone(), i as u16))
            .collect();
        Ok(CompiledEngine {
            module: Arc::new(module),
            mode,
            memory,
            globals,
            region_ids,
            fuel: u64::MAX,
            metered: false,
            fuel_limit: 0,
            last_fuel_used: 0,
            sfi_tally: SfiTally::default(),
        })
    }

    /// The translation mode this engine was loaded under.
    pub fn mode(&self) -> SafetyMode {
        self.mode
    }

    /// The (possibly SFI-instrumented) module, for inspection in tests
    /// and the code-expansion report.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Validates a pre-bound region handle and returns its raw index
    /// plus the region name (for error construction only).
    fn checked_region(&self, id: RegionId) -> Result<(u16, &str), GraftError> {
        match self.module.regions.get(id.index()) {
            Some(region) => Ok((id.0, &region.name)),
            None => Err(GraftError::bad_handle("region", u32::from(id.0))),
        }
    }
}

impl ExtensionEngine for CompiledEngine {
    fn technology(&self) -> Technology {
        self.mode.technology()
    }

    fn bind_entry(&mut self, entry: &str) -> Result<EntryId, GraftError> {
        match self.module.func_id(entry) {
            Some(func) => Ok(EntryId(func as u32)),
            None => Err(graft_api::engine::no_such_entry(entry)),
        }
    }

    fn bind_region(&self, name: &str) -> Result<RegionId, GraftError> {
        self.region_ids
            .get(name)
            .copied()
            .map(RegionId)
            .ok_or_else(|| GraftError::NoSuchRegion(name.to_string()))
    }

    fn invoke_id(&mut self, entry: EntryId, args: &[i64]) -> Result<i64, GraftError> {
        let module = Arc::clone(&self.module);
        let func = entry.index();
        let Some(decl) = module.funcs.get(func) else {
            return Err(GraftError::bad_handle("entry", entry.0));
        };
        if decl.arity != args.len() {
            return Err(GraftError::BadArity {
                entry: decl.name.clone(),
                expected: decl.arity,
                got: args.len(),
            });
        }
        // Unprotected compiled code cannot be preempted; see
        // `Technology::preemptible`.
        let metered = self.metered && self.mode != SafetyMode::Unchecked;
        self.fuel = if metered { self.fuel_limit } else { u64::MAX };
        self.sfi_tally = SfiTally::default();
        let result = interp::run(self, &module, func, args);
        self.last_fuel_used = if metered {
            self.fuel_limit - self.fuel
        } else {
            0
        };
        // Telemetry flush point: the dispatch loop only bumps plain
        // locals on the engine; the counter atomics happen once per
        // invocation, and only under the SFI technology.
        if matches!(self.mode, SafetyMode::Sfi { .. }) && graft_telemetry::enabled() {
            let t = self.sfi_tally;
            graft_telemetry::counter!("sfi.mask_ops").add(t.masks);
            graft_telemetry::counter!("sfi.masked_loads").add(t.masked_loads);
            graft_telemetry::counter!("sfi.masked_stores").add(t.masked_stores);
            graft_telemetry::counter!("sfi.arena_loads").add(t.arena_loads);
        }
        result
    }

    fn invoke_id_traced(
        &mut self,
        entry: EntryId,
        args: &[i64],
        trace: graft_telemetry::TraceId,
    ) -> Result<i64, GraftError> {
        // Hosts route through this seam only in recording mode, so the
        // extra clock read never taxes the untraced fast path.
        let _ = trace;
        let started = std::time::Instant::now();
        let out = self.invoke_id(entry, args);
        graft_telemetry::histogram!("compiled.invoke_ns").record_duration(started.elapsed());
        out
    }

    fn load_region_id(
        &mut self,
        id: RegionId,
        offset: usize,
        data: &[i64],
    ) -> Result<(), GraftError> {
        // Clone the Arc (one refcount bump, no allocation) so the region
        // name borrows the module, not `self`, freeing `memory` for `&mut`.
        let module = Arc::clone(&self.module);
        let Some(region) = module.regions.get(id.index()) else {
            return Err(GraftError::bad_handle("region", u32::from(id.0)));
        };
        self.memory.kernel_load(id.0, &region.name, offset, data)
    }

    fn read_region_id(&self, id: RegionId, index: usize) -> Result<i64, GraftError> {
        let (raw, name) = self.checked_region(id)?;
        self.memory.kernel_read(raw, name, index)
    }

    fn write_region_id(
        &mut self,
        id: RegionId,
        index: usize,
        value: i64,
    ) -> Result<(), GraftError> {
        let module = Arc::clone(&self.module);
        let Some(region) = module.regions.get(id.index()) else {
            return Err(GraftError::bad_handle("region", u32::from(id.0)));
        };
        self.memory.kernel_write(id.0, &region.name, index, value)
    }

    fn read_region_slice_id(
        &self,
        id: RegionId,
        offset: usize,
        out: &mut [i64],
    ) -> Result<(), GraftError> {
        let (raw, name) = self.checked_region(id)?;
        self.memory.kernel_read_slice(raw, name, offset, out)
    }

    fn region_len(&self, id: RegionId) -> Result<usize, GraftError> {
        match self.module.regions.get(id.index()) {
            Some(region) => Ok(region.len),
            None => Err(GraftError::bad_handle("region", u32::from(id.0))),
        }
    }

    fn set_fuel(&mut self, fuel: Option<u64>) {
        match fuel {
            Some(f) => {
                self.metered = true;
                self.fuel_limit = f;
            }
            None => {
                self.metered = false;
            }
        }
    }

    fn fuel_used(&self) -> Option<u64> {
        if self.metered && self.mode != SafetyMode::Unchecked {
            Some(self.last_fuel_used)
        } else {
            None
        }
    }

    fn fork_for_shard(&self, _shard: usize) -> Result<Box<dyn ExtensionEngine>, GraftError> {
        // Share the translated (and, under SFI, instrumented + verified)
        // module via its `Arc`; re-running `load` here would instrument
        // twice. Memory and globals are snapshotted so install-time
        // marshalling propagates; fuel accounting starts fresh.
        Ok(Box::new(CompiledEngine {
            module: Arc::clone(&self.module),
            mode: self.mode,
            memory: self.memory.clone(),
            globals: self.globals.clone(),
            region_ids: self.region_ids.clone(),
            fuel: u64::MAX,
            metered: false,
            fuel_limit: 0,
            last_fuel_used: 0,
            sfi_tally: SfiTally::default(),
        }))
    }
}

/// Convenience: compile Grail source and load it in one step.
pub fn load_grail(
    source: &str,
    regions: &[graft_api::RegionSpec],
    mode: SafetyMode,
) -> Result<CompiledEngine, GraftError> {
    let hir = graft_lang::compile(source, regions)?;
    let module = graft_ir::lower(&hir);
    CompiledEngine::load(module, mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_api::{RegionSpec, Trap};

    const MODES: [SafetyMode; 4] = [
        SafetyMode::Unchecked,
        SafetyMode::Safe { nil_checks: true },
        SafetyMode::Sfi {
            read_protect: false,
        },
        SafetyMode::Sfi { read_protect: true },
    ];

    fn run_all(src: &str, regions: &[RegionSpec], entry: &str, args: &[i64]) -> Vec<i64> {
        MODES
            .iter()
            .map(|&mode| {
                let mut e = load_grail(src, regions, mode).unwrap();
                e.invoke(entry, args).unwrap()
            })
            .collect()
    }

    /// Every mode must compute identical results on well-behaved code —
    /// the technologies differ in protection, not semantics.
    #[test]
    fn modes_agree_on_wellbehaved_code() {
        let src = r#"
            const K[4] = { 2, 3, 5, 7 };
            var acc = 0;
            fn mix(n: int) -> int {
                acc = 0;
                let i = 0;
                while i < n {
                    buf[i] = K[i & 3] * i;
                    acc = acc + buf[i];
                    i = i + 1;
                }
                return acc;
            }
        "#;
        let regions = [RegionSpec::data("buf", 16)];
        let results = run_all(src, &regions, "mix", &[10]);
        assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:?}");
        // 3*1 + 5*2 + 7*3 + 2*4 + 3*5 + 5*6 + 7*7 + 2*8 + 3*9 = 179.
        assert_eq!(results[0], 179);
    }

    #[test]
    fn recursion_works_and_overflows_gracefully() {
        let src = r#"
            fn fib(n: int) -> int {
                if n < 2 { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            fn forever(n: int) -> int { return forever(n + 1); }
        "#;
        for &mode in &MODES {
            let mut e = load_grail(src, &[], mode).unwrap();
            assert_eq!(e.invoke("fib", &[15]).unwrap(), 610);
            let err = e.invoke("forever", &[0]).unwrap_err();
            assert_eq!(err.as_trap(), Some(&Trap::StackOverflow));
        }
    }

    #[test]
    fn safe_mode_traps_out_of_bounds_where_unchecked_wraps() {
        let src = "fn poke(i: int) -> int { buf[i] = 42; return buf[i]; }";
        let regions = [RegionSpec::data("buf", 8)];

        let mut safe = load_grail(src, &regions, SafetyMode::Safe { nil_checks: true }).unwrap();
        let err = safe.invoke("poke", &[100]).unwrap_err();
        assert!(matches!(err.as_trap(), Some(Trap::OutOfBounds { .. })));

        // Unsafe C does not trap; the store lands somewhere in the
        // graft's own allocation (wrapped), like a stray pointer.
        let mut unchecked = load_grail(src, &regions, SafetyMode::Unchecked).unwrap();
        assert_eq!(unchecked.invoke("poke", &[100]).unwrap(), 42);
    }

    #[test]
    fn sfi_confines_wild_stores_to_the_sandbox() {
        let src = "fn poke(i: int) -> int { buf[i] = 7; return 0; }";
        let regions = [RegionSpec::data("buf", 8)];
        let mut e = load_grail(
            src,
            &regions,
            SafetyMode::Sfi {
                read_protect: false,
            },
        )
        .unwrap();
        // A wildly out-of-range store must neither trap nor corrupt
        // anything outside the arena: it wraps inside the sandbox.
        e.invoke("poke", &[1 << 40]).unwrap();
        e.invoke("poke", &[-5]).unwrap();
    }

    #[test]
    fn nil_check_traps_only_in_safe_mode_on_linked_regions() {
        let src = "fn chase() -> int { return queue[0]; }";
        let regions = [RegionSpec::linked("queue", 8)];

        let mut safe = load_grail(src, &regions, SafetyMode::Safe { nil_checks: true }).unwrap();
        let err = safe.invoke("chase", &[]).unwrap_err();
        assert!(matches!(err.as_trap(), Some(Trap::NilDeref { .. })));

        // The Solaris configuration: no explicit check emitted.
        let mut relaxed =
            load_grail(src, &regions, SafetyMode::Safe { nil_checks: false }).unwrap();
        assert_eq!(relaxed.invoke("chase", &[]).unwrap(), 0);

        let mut unchecked = load_grail(src, &regions, SafetyMode::Unchecked).unwrap();
        assert_eq!(unchecked.invoke("chase", &[]).unwrap(), 0);
    }

    #[test]
    fn division_by_zero_traps_in_every_mode() {
        let src = "fn f(a: int, b: int) -> int { return a / b; }";
        for &mode in &MODES {
            let mut e = load_grail(src, &[], mode).unwrap();
            let err = e.invoke("f", &[1, 0]).unwrap_err();
            assert_eq!(err.as_trap(), Some(&Trap::DivByZero));
        }
    }

    #[test]
    fn fuel_preempts_runaway_safe_code_but_not_unchecked() {
        let src = "fn spin() -> int { let i = 0; while true { i = i + 1; if i > 100000000 { return i; } } return 0; }";
        let mut safe = load_grail(src, &[], SafetyMode::Safe { nil_checks: true }).unwrap();
        safe.set_fuel(Some(10_000));
        let err = safe.invoke("spin", &[]).unwrap_err();
        assert_eq!(err.as_trap(), Some(&Trap::FuelExhausted));
        assert_eq!(safe.fuel_used(), Some(10_000));

        // The unprotected technology ignores metering — the paper's
        // complaint about unsafe in-kernel code. Use a short loop so the
        // test terminates.
        let src2 = "fn spin() -> int { let i = 0; while i < 100000 { i = i + 1; } return i; }";
        let mut unchecked = load_grail(src2, &[], SafetyMode::Unchecked).unwrap();
        unchecked.set_fuel(Some(10));
        assert_eq!(unchecked.invoke("spin", &[]).unwrap(), 100_000);
    }

    #[test]
    fn kernel_marshalling_round_trips_through_every_mode() {
        let src = "fn sum(n: int) -> int { let s = 0; let i = 0; while i < n { s = s + buf[i]; i = i + 1; } return s; }";
        let regions = [RegionSpec::data("buf", 8)];
        for &mode in &MODES {
            let mut e = load_grail(src, &regions, mode).unwrap();
            e.load_region("buf", 0, &[1, 2, 3, 4]).unwrap();
            e.write_region("buf", 4, 10).unwrap();
            assert_eq!(e.invoke("sum", &[5]).unwrap(), 20, "{mode:?}");
            assert_eq!(e.read_region("buf", 3).unwrap(), 4);
            let mut out = [0i64; 2];
            e.read_region_slice("buf", 3, &mut out).unwrap();
            assert_eq!(out, [4, 10]);
        }
    }

    #[test]
    fn abort_builtin_traps_with_code() {
        let src = "fn f() -> int { abort(42); }";
        for &mode in &MODES {
            let mut e = load_grail(src, &[], mode).unwrap();
            let err = e.invoke("f", &[]).unwrap_err();
            assert_eq!(err.as_trap(), Some(&Trap::Abort(42)));
        }
    }

    #[test]
    fn bad_arity_is_rejected_before_execution() {
        let src = "fn f(a: int) -> int { return a; }";
        let mut e = load_grail(src, &[], SafetyMode::Unchecked).unwrap();
        assert!(matches!(
            e.invoke("f", &[]),
            Err(GraftError::BadArity { .. })
        ));
        assert!(e.invoke("g", &[]).is_err());
    }

    #[test]
    fn globals_persist_across_invocations() {
        let src = "var n = 100; fn bump() -> int { n = n + 1; return n; }";
        for &mode in &MODES {
            let mut e = load_grail(src, &[], mode).unwrap();
            assert_eq!(e.invoke("bump", &[]).unwrap(), 101);
            assert_eq!(e.invoke("bump", &[]).unwrap(), 102, "{mode:?}");
        }
    }

    #[test]
    fn sfi_read_protection_costs_extra_instructions() {
        let src = "fn get(i: int) -> int { return buf[i]; }";
        let regions = [RegionSpec::data("buf", 8)];
        let unprot =
            load_grail(src, &regions, SafetyMode::Sfi { read_protect: false }).unwrap();
        let prot = load_grail(src, &regions, SafetyMode::Sfi { read_protect: true }).unwrap();
        assert!(
            prot.module().code_len() > unprot.module().code_len(),
            "read protection must insert mask instructions"
        );
    }

    #[test]
    fn bind_then_invoke_matches_string_invoke_in_every_mode() {
        let src = "fn add(a: int, b: int) -> int { return a + b; }";
        for &mode in &MODES {
            let mut e = load_grail(src, &[], mode).unwrap();
            let id = e.bind_entry("add").unwrap();
            assert_eq!(e.bind_entry("add").unwrap(), id);
            assert_eq!(e.invoke_id(id, &[20, 22]).unwrap(), 42);
            assert_eq!(e.invoke("add", &[20, 22]).unwrap(), 42);
            assert!(e.bind_entry("missing").is_err());
        }
    }

    #[test]
    fn region_handles_work_in_every_mode() {
        let src = "fn get(i: int) -> int { return buf[i]; }";
        let regions = [RegionSpec::data("buf", 8)];
        for &mode in &MODES {
            let mut e = load_grail(src, &regions, mode).unwrap();
            let buf = e.bind_region("buf").unwrap();
            e.load_region_id(buf, 0, &[4, 5, 6]).unwrap();
            e.write_region_id(buf, 3, 7).unwrap();
            assert_eq!(e.read_region_id(buf, 1).unwrap(), 5, "{mode:?}");
            let mut out = [0i64; 2];
            e.read_region_slice_id(buf, 2, &mut out).unwrap();
            assert_eq!(out, [6, 7]);
            assert_eq!(e.invoke("get", &[3]).unwrap(), 7);
            assert!(e.bind_region("nope").is_err());
        }
    }

    #[test]
    fn stale_handles_trap_deterministically_in_every_mode() {
        let src = "fn f() -> int { return 1; }";
        let regions = [RegionSpec::data("buf", 4)];
        for &mode in &MODES {
            let mut e = load_grail(src, &regions, mode).unwrap();
            let err = e.invoke_id(graft_api::EntryId(77), &[]).unwrap_err();
            assert!(matches!(
                err.as_trap(),
                Some(Trap::BadHandle { kind: "entry", id: 77 })
            ));
            let stale = graft_api::RegionId(55);
            for err in [
                e.read_region_id(stale, 0).unwrap_err(),
                e.load_region_id(stale, 0, &[1]).unwrap_err(),
                e.write_region_id(stale, 0, 1).unwrap_err(),
                e.read_region_slice_id(stale, 0, &mut [0]).unwrap_err(),
            ] {
                assert!(matches!(
                    err.as_trap(),
                    Some(Trap::BadHandle { kind: "region", id: 55 })
                ));
            }
        }
    }

    #[test]
    fn invoke_batch_runs_many_calls_in_every_mode() {
        let src = "var acc = 0; fn bump(d: int) -> int { acc = acc + d; return acc; }";
        for &mode in &MODES {
            let mut e = load_grail(src, &[], mode).unwrap();
            let id = e.bind_entry("bump").unwrap();
            let mut out = Vec::new();
            e.invoke_batch(id, 4, &[1, 2, 3, 4], &mut out).unwrap();
            assert_eq!(out, [1, 3, 6, 10], "{mode:?}");
        }
    }

    #[test]
    fn logical_short_circuit_avoids_side_effects() {
        let src = r#"
            var touched = 0;
            fn touch() -> bool { touched = touched + 1; return true; }
            fn f(x: int) -> int {
                if x > 0 && touch() { return touched; }
                return touched;
            }
        "#;
        for &mode in &MODES {
            let mut e = load_grail(src, &[], mode).unwrap();
            assert_eq!(e.invoke("f", &[0]).unwrap(), 0, "rhs must not run");
            assert_eq!(e.invoke("f", &[1]).unwrap(), 1);
        }
    }
}
