//! Software fault isolation: load-time instrumentation and verification.
//!
//! Follows Wahbe et al. ([WAHBE93], as cited by the paper) with the
//! *dedicated register* technique: each function reserves one register
//! that only the `Mask` instruction may write. `Mask` computes
//! `(index + region_base) & arena_mask`, so whatever control flow reaches
//! a `MaskedLoad`/`MaskedStore`, the dedicated register always holds an
//! address inside the sandbox — a jump that skips the mask merely reuses
//! the previous (still sandboxed) address. Verification is a single
//! linear scan, matching the paper's "at load time, a linear-time
//! algorithm can be used" description.

use graft_api::GraftError;
use graft_ir::{Inst, Module};

use crate::memory::pow2_at_least;

/// Arena placement of every pool and region.
#[derive(Debug, Clone, Default)]
pub struct ArenaLayout {
    /// `(base, len)` per constant pool, in module order.
    pub pools: Vec<(u32, u32)>,
    /// `(base, len)` per shared region, in ABI order.
    pub regions: Vec<(u32, u32)>,
    /// Total words used (arena capacity is the next power of two).
    pub total: usize,
}

impl ArenaLayout {
    /// Computes the layout for a module: pools first, then regions.
    pub fn for_module(module: &Module) -> Self {
        let mut layout = ArenaLayout::default();
        let mut at: u32 = 0;
        for pool in &module.const_pools {
            layout.pools.push((at, pool.len() as u32));
            at += pool.len() as u32;
        }
        for region in &module.regions {
            layout.regions.push((at, region.len as u32));
            at += region.len as u32;
        }
        layout.total = at as usize;
        layout
    }

    /// The arena address mask implied by this layout.
    pub fn mask(&self) -> usize {
        pow2_at_least(self.total) - 1
    }
}

/// Rewrites every region/pool access in `module` into sandboxed arena
/// accesses and returns the arena layout.
///
/// * stores become `Mask` + `MaskedStore` (write protection, always on);
/// * loads become `Mask` + `MaskedLoad` when `read_protect`, else a
///   single fused [`Inst::ArenaLoad`] (the omniC++ 1.0β configuration).
///
/// Each function gains one dedicated sandbox register (the new highest
/// register). Returns the arena layout the rewritten code assumes.
pub fn instrument(module: &mut Module, read_protect: bool) -> ArenaLayout {
    // Span-timed: SFI rewriting is the load-time cost of the Omniware
    // technology, reported in the run artifact next to runtime numbers.
    let _span = graft_telemetry::span!("sfi_instrument");
    let mut mask_sites = 0u64;
    let mut fused_load_sites = 0u64;
    let layout = ArenaLayout::for_module(module);
    for func in &mut module.funcs {
        let sbx = func.regs as u16;
        func.regs += 1;
        let old = std::mem::take(&mut func.code);
        // First pass: emit, recording where each old instruction begins.
        let mut new_code: Vec<Inst> = Vec::with_capacity(old.len());
        let mut new_pos: Vec<u32> = Vec::with_capacity(old.len());
        for inst in &old {
            new_pos.push(new_code.len() as u32);
            match inst {
                Inst::Load { dst, mem, addr } => {
                    let (base, _) = layout.place(*mem);
                    if read_protect {
                        mask_sites += 1;
                        new_code.push(Inst::Mask {
                            dst: sbx,
                            src: *addr,
                            offset: base,
                        });
                        new_code.push(Inst::MaskedLoad {
                            dst: *dst,
                            addr: sbx,
                        });
                    } else {
                        fused_load_sites += 1;
                        new_code.push(Inst::ArenaLoad {
                            dst: *dst,
                            src: *addr,
                            offset: base,
                        });
                    }
                }
                Inst::Store { mem, addr, src } => {
                    let (base, _) = layout.place(*mem);
                    mask_sites += 1;
                    new_code.push(Inst::Mask {
                        dst: sbx,
                        src: *addr,
                        offset: base,
                    });
                    new_code.push(Inst::MaskedStore {
                        addr: sbx,
                        src: *src,
                    });
                }
                other => new_code.push(other.clone()),
            }
        }
        // Second pass: retarget jumps through the position map.
        for inst in &mut new_code {
            match inst {
                Inst::Jmp { target } => *target = new_pos[*target as usize],
                Inst::Br { then_t, else_t, .. } => {
                    *then_t = new_pos[*then_t as usize];
                    *else_t = new_pos[*else_t as usize];
                }
                _ => {}
            }
        }
        func.code = new_code;
    }
    graft_telemetry::counter!("sfi.modules_instrumented").incr();
    graft_telemetry::counter!("sfi.mask_sites").add(mask_sites);
    graft_telemetry::counter!("sfi.fused_load_sites").add(fused_load_sites);
    layout
}

impl ArenaLayout {
    fn place(&self, mem: graft_ir::MemRef) -> (u32, u32) {
        match mem {
            graft_ir::MemRef::Pool(p) => self.pools[p as usize],
            graft_ir::MemRef::Region(r) => self.regions[r as usize],
        }
    }
}

/// Linear-time SFI verification of an instrumented module.
///
/// Checks, per function:
///
/// 1. no un-sandboxed `Load`/`Store` instructions remain;
/// 2. only `Mask` writes the dedicated register (`regs - 1`);
/// 3. every `MaskedLoad`/`MaskedStore` addresses the dedicated register.
///
/// Together with the dedicated-register invariant this guarantees every
/// arena write goes through a mask, regardless of control flow.
pub fn verify_sfi(module: &Module) -> Result<(), GraftError> {
    for func in &module.funcs {
        let sbx = (func.regs - 1) as u16;
        for (at, inst) in func.code.iter().enumerate() {
            let fail = |msg: &str| {
                Err(GraftError::Verify(format!(
                    "SFI: {} at {}:{at}: {msg}",
                    func.name, func.name
                )))
            };
            match inst {
                Inst::Load { .. } | Inst::Store { .. } => {
                    return fail("unsandboxed memory access");
                }
                Inst::Mask { dst, .. } => {
                    if *dst != sbx {
                        return fail("Mask must write the dedicated register");
                    }
                }
                Inst::MaskedLoad { addr, .. } | Inst::MaskedStore { addr, .. } => {
                    if *addr != sbx {
                        return fail("masked access must use the dedicated register");
                    }
                }
                // Every other instruction must not write the dedicated
                // register.
                Inst::Const { dst, .. }
                | Inst::Mov { dst, .. }
                | Inst::Un { dst, .. }
                | Inst::Bin { dst, .. }
                | Inst::GlobalGet { dst, .. }
                | Inst::Call { dst, .. }
                | Inst::ArenaLoad { dst, .. } => {
                    if *dst == sbx {
                        return fail("dedicated register written by non-Mask instruction");
                    }
                }
                Inst::Jmp { .. }
                | Inst::Br { .. }
                | Inst::GlobalSet { .. }
                | Inst::Ret { .. }
                | Inst::Abort { .. } => {}
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_api::RegionSpec;

    fn lower(src: &str, regions: &[RegionSpec]) -> Module {
        let hir = graft_lang::compile(src, regions).unwrap();
        graft_ir::lower(&hir)
    }

    #[test]
    fn layout_places_pools_before_regions() {
        let m = lower(
            "const K[4] = {1,2,3,4}; fn f() -> int { return K[0] + a[0] + b[0]; }",
            &[RegionSpec::data("a", 10), RegionSpec::data("b", 6)],
        );
        let layout = ArenaLayout::for_module(&m);
        assert_eq!(layout.pools, vec![(0, 4)]);
        assert_eq!(layout.regions, vec![(4, 10), (14, 6)]);
        assert_eq!(layout.total, 20);
        assert_eq!(layout.mask(), 31);
    }

    #[test]
    fn instrumentation_sandboxes_all_accesses_and_verifies() {
        let mut m = lower(
            "fn f(i: int) -> int { buf[i] = i; return buf[i + 1]; }",
            &[RegionSpec::data("buf", 8)],
        );
        let before = m.code_len();
        instrument(&mut m, false);
        assert!(m.code_len() > before, "store masking adds instructions");
        graft_ir::verify::verify_with(&m, true).unwrap();
        verify_sfi(&m).unwrap();
        assert!(!m.funcs[0]
            .code
            .iter()
            .any(|i| matches!(i, Inst::Load { .. } | Inst::Store { .. })));
    }

    #[test]
    fn read_protection_expands_code_more() {
        let src = "fn f(i: int) -> int { return buf[i] + buf[i+1] + buf[i+2]; }";
        let regions = [RegionSpec::data("buf", 8)];
        let mut unprot = lower(src, &regions);
        let mut prot = lower(src, &regions);
        instrument(&mut unprot, false);
        instrument(&mut prot, true);
        assert!(prot.code_len() > unprot.code_len());
        verify_sfi(&prot).unwrap();
    }

    #[test]
    fn verifier_rejects_unsandboxed_store() {
        let mut m = lower(
            "fn f(i: int) { buf[i] = 1; }",
            &[RegionSpec::data("buf", 8)],
        );
        // A module that skipped instrumentation entirely.
        for f in &mut m.funcs {
            f.regs += 1; // pretend a dedicated register exists
        }
        let err = verify_sfi(&m).unwrap_err().to_string();
        assert!(err.contains("unsandboxed"));
    }

    #[test]
    fn verifier_rejects_forged_mask_register() {
        let mut m = lower(
            "fn f(i: int) { buf[i] = 1; }",
            &[RegionSpec::data("buf", 8)],
        );
        instrument(&mut m, false);
        // Attack: overwrite the dedicated register with an arbitrary
        // value after the mask, before the store.
        let sbx = (m.funcs[0].regs - 1) as u16;
        let store_at = m.funcs[0]
            .code
            .iter()
            .position(|i| matches!(i, Inst::MaskedStore { .. }))
            .unwrap();
        m.funcs[0]
            .code
            .insert(store_at, Inst::Const { dst: sbx, value: 1 << 40 });
        let err = verify_sfi(&m).unwrap_err().to_string();
        assert!(err.contains("dedicated register"));
    }

    #[test]
    fn verifier_rejects_masked_store_via_other_register() {
        let mut m = lower(
            "fn f(i: int) { buf[i] = 1; }",
            &[RegionSpec::data("buf", 8)],
        );
        instrument(&mut m, false);
        for inst in &mut m.funcs[0].code {
            if let Inst::MaskedStore { addr, .. } = inst {
                *addr = 0; // bypass the dedicated register
            }
        }
        let err = verify_sfi(&m).unwrap_err().to_string();
        assert!(err.contains("dedicated register"));
    }

    #[test]
    fn jump_targets_survive_instrumentation() {
        let mut m = lower(
            "fn f(n: int) -> int { let s = 0; let i = 0; while i < n { s = s + buf[i]; buf[i] = s; i = i + 1; } return s; }",
            &[RegionSpec::data("buf", 64)],
        );
        instrument(&mut m, true);
        graft_ir::verify::verify_with(&m, true).unwrap();
        verify_sfi(&m).unwrap();
    }
}
