//! The pre-decoded dispatch loop shared by all compiled modes.
//!
//! The loop is deliberately identical across technologies; only the
//! memory-access arms differ (wrap, check, or arena), so measured
//! differences between modes are the cost of the protection mechanism
//! itself, as in the paper's normalized tables.
//!
//! ## Why there is `unsafe` here
//!
//! This engine stands in for *compiled native code*, and the paper's
//! Section 4.2 argument applies directly: once the kernel's load-time
//! verifier has proven a module well formed, the translated code may
//! run without redundant checks — trusting the verifier is exactly the
//! "trust in the language translation tools" trade the paper describes.
//! Concretely, [`graft_ir::verify`] (which [`CompiledEngine::load`]
//! always runs, and without which no module reaches this loop) proves:
//!
//! * every register operand is `< func.regs`, and the frame is
//!   allocated with exactly `func.regs` slots;
//! * every jump target is `< code.len()`, and every function ends in
//!   `Ret`, so `pc` never walks past the end;
//! * every call's arity matches its callee.
//!
//! Each `unsafe` block below cites the invariant it relies on. The
//! *memory* accesses a graft performs (regions, pools, the SFI arena)
//! stay checked or masked per technology — those checks are the
//! measurement.

use graft_api::{GraftError, Trap};
use graft_ir::{Inst, MemRef, Module};
use graft_lang::hir::ops;

use crate::memory::Memory;
use crate::{CompiledEngine, SafetyMode};

/// Maximum graft call depth before [`Trap::StackOverflow`].
pub const MAX_DEPTH: usize = 192;

/// Runs function `func` of `module` on `engine` with the given arguments.
pub fn run(
    engine: &mut CompiledEngine,
    module: &Module,
    func: usize,
    args: &[i64],
) -> Result<i64, GraftError> {
    call(engine, module, func, args, 0)
}

fn oob(module: &Module, mem: MemRef, index: i64) -> GraftError {
    let (region, len) = match mem {
        MemRef::Region(r) => {
            let spec = &module.regions[r as usize];
            (spec.name.clone(), spec.len)
        }
        MemRef::Pool(p) => (format!("pool#{p}"), module.const_pools[p as usize].len()),
    };
    Trap::OutOfBounds { region, index, len }.into()
}

fn nil(module: &Module, mem: MemRef) -> GraftError {
    let region = match mem {
        MemRef::Region(r) => module.regions[r as usize].name.clone(),
        MemRef::Pool(p) => format!("pool#{p}"),
    };
    Trap::NilDeref { region }.into()
}

#[inline]
fn burn(fuel: &mut u64) -> Result<(), GraftError> {
    *fuel = fuel.wrapping_sub(1);
    if *fuel == 0 {
        Err(Trap::FuelExhausted.into())
    } else {
        Ok(())
    }
}

fn call(
    engine: &mut CompiledEngine,
    module: &Module,
    func_id: usize,
    args: &[i64],
    depth: usize,
) -> Result<i64, GraftError> {
    if depth >= MAX_DEPTH {
        return Err(Trap::StackOverflow.into());
    }
    let func = &module.funcs[func_id];
    let mut frame = vec![0i64; func.regs];
    frame[..args.len()].copy_from_slice(args);

    let (checked, nil_checks) = match engine.mode() {
        SafetyMode::Safe { nil_checks } => (true, nil_checks),
        _ => (false, false),
    };
    let code = &func.code[..];
    let mut pc = 0usize;

    // Register accessors backed by the load-time verifier (see the
    // module docs). The `debug_assert!`s restate the invariant.
    macro_rules! reg {
        ($r:expr) => {{
            let r = $r as usize;
            debug_assert!(r < frame.len());
            // SAFETY: the IR verifier proved every register operand is
            // below `func.regs`, and `frame` has `func.regs` slots.
            unsafe { *frame.get_unchecked(r) }
        }};
    }
    macro_rules! set_reg {
        ($r:expr, $v:expr) => {{
            let r = $r as usize;
            let v = $v;
            debug_assert!(r < frame.len());
            // SAFETY: as in `reg!`.
            unsafe { *frame.get_unchecked_mut(r) = v };
        }};
    }

    loop {
        debug_assert!(pc < code.len());
        // SAFETY: jump targets are verified below `code.len()`, every
        // function ends in `Ret`, and straight-line `pc + 1` stepping
        // only happens from non-terminal instructions, so `pc` is
        // always in range.
        let inst = unsafe { code.get_unchecked(pc) };
        match inst {
            Inst::Const { dst, value } => {
                set_reg!(*dst, *value);
                pc += 1;
            }
            Inst::Mov { dst, src } => {
                set_reg!(*dst, reg!(*src));
                pc += 1;
            }
            Inst::Un { op, dst, src } => {
                set_reg!(*dst, ops::unary(*op, reg!(*src)));
                pc += 1;
            }
            Inst::Bin { op, dst, a, b } => {
                match ops::binary(*op, reg!(*a), reg!(*b)) {
                    Some(v) => set_reg!(*dst, v),
                    None => return Err(Trap::DivByZero.into()),
                }
                pc += 1;
            }
            Inst::Jmp { target } => {
                let target = *target as usize;
                if target <= pc {
                    burn(&mut engine.fuel)?;
                }
                pc = target;
            }
            Inst::Br {
                cond,
                then_t,
                else_t,
            } => {
                let target = if reg!(*cond) != 0 {
                    *then_t as usize
                } else {
                    *else_t as usize
                };
                if target <= pc {
                    burn(&mut engine.fuel)?;
                }
                pc = target;
            }
            Inst::Load { dst, mem, addr } => {
                let idx = reg!(*addr);
                let Memory::Plain(plain) = &engine.memory else {
                    return Err(GraftError::Verify(
                        "plain load reached an SFI engine".into(),
                    ));
                };
                let buf = match mem {
                    MemRef::Region(r) => &plain.regions[*r as usize],
                    MemRef::Pool(p) => &plain.pools[*p as usize],
                };
                let value = if checked {
                    if nil_checks && buf.linked && idx == 0 {
                        return Err(nil(module, *mem));
                    }
                    match buf.get_checked(idx) {
                        Some(v) => v,
                        None => return Err(oob(module, *mem, idx)),
                    }
                } else {
                    buf.get_wrapped(idx)
                };
                set_reg!(*dst, value);
                pc += 1;
            }
            Inst::Store { mem, addr, src } => {
                let idx = reg!(*addr);
                let value = reg!(*src);
                let Memory::Plain(plain) = &mut engine.memory else {
                    return Err(GraftError::Verify(
                        "plain store reached an SFI engine".into(),
                    ));
                };
                let MemRef::Region(r) = mem else {
                    return Err(GraftError::Verify("store into pool".into()));
                };
                let buf = &mut plain.regions[*r as usize];
                if checked {
                    if nil_checks && buf.linked && idx == 0 {
                        return Err(nil(module, *mem));
                    }
                    if !buf.set_checked(idx, value) {
                        return Err(oob(module, *mem, idx));
                    }
                } else {
                    buf.set_wrapped(idx, value);
                }
                pc += 1;
            }
            Inst::GlobalGet { dst, index } => {
                set_reg!(*dst, engine.globals[*index as usize]);
                pc += 1;
            }
            Inst::GlobalSet { index, src } => {
                engine.globals[*index as usize] = reg!(*src);
                pc += 1;
            }
            Inst::Call {
                dst,
                func: callee,
                args,
            } => {
                burn(&mut engine.fuel)?;
                let mut argv = [0i64; 12];
                let n = args.len();
                if n > argv.len() {
                    return Err(GraftError::Verify("call with more than 12 args".into()));
                }
                for (slot, r) in argv[..n].iter_mut().zip(args.iter()) {
                    *slot = reg!(*r);
                }
                let value = call(engine, module, *callee as usize, &argv[..n], depth + 1)?;
                set_reg!(*dst, value);
                pc += 1;
            }
            Inst::Ret { src } => {
                return Ok(src.map_or(0, |r| reg!(r)));
            }
            Inst::Abort { code } => {
                return Err(Trap::Abort(reg!(*code)).into());
            }
            // The four SFI-only arms bump plain per-invoke tally words on
            // the engine (flushed to telemetry counters once per invoke by
            // `CompiledEngine::invoke`). Non-SFI modes never reach these
            // arms and pay nothing.
            Inst::Mask { dst, src, offset } => {
                engine.sfi_tally.masks += 1;
                let Memory::Arena(arena) = &engine.memory else {
                    return Err(GraftError::Verify("Mask outside SFI engine".into()));
                };
                let raw = reg!(*src).wrapping_add(*offset as i64);
                set_reg!(*dst, ((raw as usize) & arena.mask) as i64);
                pc += 1;
            }
            Inst::MaskedLoad { dst, addr } => {
                engine.sfi_tally.masked_loads += 1;
                let Memory::Arena(arena) = &engine.memory else {
                    return Err(GraftError::Verify("MaskedLoad outside SFI engine".into()));
                };
                set_reg!(*dst, arena.load(reg!(*addr)));
                pc += 1;
            }
            Inst::MaskedStore { addr, src } => {
                engine.sfi_tally.masked_stores += 1;
                let value = reg!(*src);
                let at = reg!(*addr);
                let Memory::Arena(arena) = &mut engine.memory else {
                    return Err(GraftError::Verify("MaskedStore outside SFI engine".into()));
                };
                arena.store(at, value);
                pc += 1;
            }
            Inst::ArenaLoad { dst, src, offset } => {
                engine.sfi_tally.arena_loads += 1;
                let Memory::Arena(arena) = &engine.memory else {
                    return Err(GraftError::Verify("ArenaLoad outside SFI engine".into()));
                };
                let raw = reg!(*src).wrapping_add(*offset as i64);
                set_reg!(*dst, arena.load(raw));
                pc += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_grail;
    use graft_api::ExtensionEngine;

    #[test]
    fn deep_but_bounded_recursion_is_fine() {
        let src = "fn down(n: int) -> int { if n == 0 { return 0; } return down(n - 1) + 1; }";
        let mut e = load_grail(src, &[], SafetyMode::Unchecked).unwrap();
        assert_eq!(e.invoke("down", &[100]).unwrap(), 100);
        assert!(e.invoke("down", &[(MAX_DEPTH + 10) as i64]).is_err());
    }

    #[test]
    fn forward_jumps_do_not_burn_fuel() {
        // A long straight-line chain of `if`s should execute with tiny
        // fuel since only loops/calls are metered.
        let src = "fn f(x: int) -> int { if x > 0 { x = x + 1; } if x > 1 { x = x + 1; } return x; }";
        let mut e = load_grail(src, &[], SafetyMode::Safe { nil_checks: true }).unwrap();
        e.set_fuel(Some(2));
        assert_eq!(e.invoke("f", &[5]).unwrap(), 7);
    }

    #[test]
    fn call_with_many_args_works() {
        let src = r#"
            fn g(a: int, b: int, c: int, d: int, e: int, f: int, h: int, i: int) -> int {
                return a + b + c + d + e + f + h + i;
            }
            fn top() -> int { return g(1, 2, 3, 4, 5, 6, 7, 8); }
        "#;
        let mut e = load_grail(src, &[], SafetyMode::Unchecked).unwrap();
        assert_eq!(e.invoke("top", &[]).unwrap(), 36);
    }

    /// The unchecked register fast path must agree with a checked debug
    /// run on every mode (this test exists to exercise the
    /// `debug_assert!` restatements of the verifier's invariants).
    #[test]
    fn all_modes_compute_fib_identically() {
        let src = "fn fib(n: int) -> int { if n < 2 { return n; } return fib(n-1) + fib(n-2); }";
        for mode in [
            SafetyMode::Unchecked,
            SafetyMode::Safe { nil_checks: true },
            SafetyMode::Sfi { read_protect: true },
        ] {
            let mut e = load_grail(src, &[], mode).unwrap();
            assert_eq!(e.invoke("fib", &[17]).unwrap(), 1597, "{mode:?}");
        }
    }
}
