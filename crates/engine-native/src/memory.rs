//! Graft memory layouts: padded per-region buffers (unchecked / safe
//! modes) and the SFI sandbox arena.

use graft_api::GraftError;
use graft_ir::Module;

use crate::sfi::ArenaLayout;

/// Rounds up to a power of two, with a small floor so masks always work.
pub(crate) fn pow2_at_least(n: usize) -> usize {
    n.max(2).next_power_of_two()
}

/// One region buffer, padded to a power of two so the unchecked mode can
/// wrap stray indexes with a single AND (the "reads garbage instead of
/// trapping" semantics of unsafe C, made deterministic).
#[derive(Debug, Clone)]
pub struct Buf {
    data: Vec<i64>,
    /// Capacity mask (`capacity - 1`).
    pub mask: usize,
    /// True (ABI) length for bounds checks.
    pub len: usize,
    /// Whether word 0 is the NIL sentinel (linked records).
    pub linked: bool,
}

impl Buf {
    fn new(len: usize, linked: bool) -> Self {
        let cap = pow2_at_least(len);
        Buf {
            data: vec![0; cap],
            mask: cap - 1,
            len,
            linked,
        }
    }

    fn from_values(values: &[i64]) -> Self {
        let mut b = Buf::new(values.len(), false);
        b.data[..values.len()].copy_from_slice(values);
        b
    }

    /// Unchecked (wrapping) read — the unsafe-C semantics: a stray
    /// index reads garbage from the graft's own allocation.
    #[inline]
    pub fn get_wrapped(&self, idx: i64) -> i64 {
        let at = (idx as usize) & self.mask;
        debug_assert!(at < self.data.len());
        // SAFETY: `data` is allocated with capacity `mask + 1` (a power
        // of two, see `Buf::new`), so any index ANDed with `mask` is in
        // range.
        unsafe { *self.data.get_unchecked(at) }
    }

    /// Unchecked (wrapping) write.
    #[inline]
    pub fn set_wrapped(&mut self, idx: i64, value: i64) {
        let at = (idx as usize) & self.mask;
        debug_assert!(at < self.data.len());
        // SAFETY: as in `get_wrapped`.
        unsafe { *self.data.get_unchecked_mut(at) = value };
    }

    /// Bounds-checked read; `None` when out of range.
    #[inline]
    pub fn get_checked(&self, idx: i64) -> Option<i64> {
        if (idx as u64) < self.len as u64 {
            Some(self.data[idx as usize])
        } else {
            None
        }
    }

    /// Bounds-checked write; `false` when out of range.
    #[inline]
    pub fn set_checked(&mut self, idx: i64, value: i64) -> bool {
        if (idx as u64) < self.len as u64 {
            self.data[idx as usize] = value;
            true
        } else {
            false
        }
    }

    fn words(&self) -> &[i64] {
        &self.data[..self.len]
    }

    fn words_mut(&mut self) -> &mut [i64] {
        let len = self.len;
        &mut self.data[..len]
    }
}

/// Region memory for the unchecked and safe modes.
#[derive(Debug, Clone)]
pub struct PlainMemory {
    /// Kernel-shared regions, by ABI order.
    pub regions: Vec<Buf>,
    /// Module constant pools.
    pub pools: Vec<Buf>,
}

impl PlainMemory {
    /// Allocates zeroed regions and initialized pools for `module`.
    pub fn new(module: &Module) -> Self {
        PlainMemory {
            regions: module
                .regions
                .iter()
                .map(|r| Buf::new(r.len, r.linked))
                .collect(),
            pools: module
                .const_pools
                .iter()
                .map(|p| Buf::from_values(p))
                .collect(),
        }
    }
}

/// The SFI sandbox: one contiguous power-of-two arena holding every
/// constant pool and region, plus the layout that maps region ids to
/// arena offsets.
#[derive(Debug, Clone)]
pub struct Arena {
    /// Backing words.
    pub words: Vec<i64>,
    /// `capacity - 1`.
    pub mask: usize,
    /// Layout (region/pool bases and lengths).
    pub layout: ArenaLayout,
}

impl Arena {
    /// Builds the arena for an instrumented module, copying constant
    /// pools into place.
    pub fn new(module: &Module, layout: ArenaLayout) -> Self {
        let cap = pow2_at_least(layout.total);
        let mut words = vec![0; cap];
        for (pool, &(base, _len)) in module.const_pools.iter().zip(&layout.pools) {
            words[base as usize..base as usize + pool.len()].copy_from_slice(pool);
        }
        Arena {
            mask: cap - 1,
            words,
            layout,
        }
    }

    /// Graft-side masked read (`addr` already includes the region base).
    #[inline]
    pub fn load(&self, addr: i64) -> i64 {
        let at = (addr as usize) & self.mask;
        debug_assert!(at < self.words.len());
        // SAFETY: the arena is allocated with capacity `mask + 1` (a
        // power of two, see `Arena::new`), so the masked address is in
        // range — this is the SFI guarantee itself.
        unsafe { *self.words.get_unchecked(at) }
    }

    /// Graft-side masked write.
    #[inline]
    pub fn store(&mut self, addr: i64, value: i64) {
        let at = (addr as usize) & self.mask;
        debug_assert!(at < self.words.len());
        // SAFETY: as in `load`.
        unsafe { *self.words.get_unchecked_mut(at) = value };
    }
}

/// Engine memory: one of the two layouts.
#[derive(Debug, Clone)]
pub enum Memory {
    /// Per-region buffers (unchecked / safe modes).
    Plain(PlainMemory),
    /// SFI sandbox arena.
    Arena(Arena),
}

impl Memory {
    fn range_err(name: &str, index: usize, len: usize) -> GraftError {
        GraftError::RegionRange {
            region: name.to_string(),
            index,
            len,
        }
    }

    /// Kernel-side bulk marshal into region `id`.
    pub fn kernel_load(
        &mut self,
        id: u16,
        name: &str,
        offset: usize,
        data: &[i64],
    ) -> Result<(), GraftError> {
        match self {
            Memory::Plain(mem) => {
                let buf = &mut mem.regions[id as usize];
                let end = offset
                    .checked_add(data.len())
                    .filter(|&e| e <= buf.len)
                    .ok_or_else(|| Self::range_err(name, offset.saturating_add(data.len()), buf.len))?;
                buf.words_mut()[offset..end].copy_from_slice(data);
                Ok(())
            }
            Memory::Arena(arena) => {
                let (base, len) = arena.layout.regions[id as usize];
                let end = offset
                    .checked_add(data.len())
                    .filter(|&e| e <= len as usize)
                    .ok_or_else(|| {
                        Self::range_err(name, offset.saturating_add(data.len()), len as usize)
                    })?;
                let base = base as usize;
                arena.words[base + offset..base + end].copy_from_slice(data);
                Ok(())
            }
        }
    }

    /// Kernel-side single-word read.
    pub fn kernel_read(&self, id: u16, name: &str, index: usize) -> Result<i64, GraftError> {
        match self {
            Memory::Plain(mem) => {
                let buf = &mem.regions[id as usize];
                buf.words()
                    .get(index)
                    .copied()
                    .ok_or_else(|| Self::range_err(name, index, buf.len))
            }
            Memory::Arena(arena) => {
                let (base, len) = arena.layout.regions[id as usize];
                if index < len as usize {
                    Ok(arena.words[base as usize + index])
                } else {
                    Err(Self::range_err(name, index, len as usize))
                }
            }
        }
    }

    /// Kernel-side single-word write.
    pub fn kernel_write(
        &mut self,
        id: u16,
        name: &str,
        index: usize,
        value: i64,
    ) -> Result<(), GraftError> {
        match self {
            Memory::Plain(mem) => {
                let buf = &mut mem.regions[id as usize];
                let len = buf.len;
                buf.words_mut()
                    .get_mut(index)
                    .map(|slot| *slot = value)
                    .ok_or_else(|| Self::range_err(name, index, len))
            }
            Memory::Arena(arena) => {
                let (base, len) = arena.layout.regions[id as usize];
                if index < len as usize {
                    arena.words[base as usize + index] = value;
                    Ok(())
                } else {
                    Err(Self::range_err(name, index, len as usize))
                }
            }
        }
    }

    /// Kernel-side bulk read.
    pub fn kernel_read_slice(
        &self,
        id: u16,
        name: &str,
        offset: usize,
        out: &mut [i64],
    ) -> Result<(), GraftError> {
        match self {
            Memory::Plain(mem) => {
                let buf = &mem.regions[id as usize];
                let end = offset
                    .checked_add(out.len())
                    .filter(|&e| e <= buf.len)
                    .ok_or_else(|| Self::range_err(name, offset.saturating_add(out.len()), buf.len))?;
                out.copy_from_slice(&buf.words()[offset..end]);
                Ok(())
            }
            Memory::Arena(arena) => {
                let (base, len) = arena.layout.regions[id as usize];
                let end = offset
                    .checked_add(out.len())
                    .filter(|&e| e <= len as usize)
                    .ok_or_else(|| {
                        Self::range_err(name, offset.saturating_add(out.len()), len as usize)
                    })?;
                let base = base as usize;
                out.copy_from_slice(&arena.words[base + offset..base + end]);
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buf_pads_to_power_of_two() {
        let b = Buf::new(100, false);
        assert_eq!(b.mask + 1, 128);
        assert_eq!(b.len, 100);
    }

    #[test]
    fn wrapped_access_never_panics() {
        let mut b = Buf::new(8, false);
        b.set_wrapped(-1, 9);
        assert_eq!(b.get_wrapped(-1), 9);
        assert_eq!(b.get_wrapped(7 + 8), b.get_wrapped(7));
        b.set_wrapped(i64::MIN, 3);
        assert_eq!(b.get_wrapped(0), 3);
    }

    #[test]
    fn checked_access_rejects_oob_and_negatives() {
        let mut b = Buf::new(8, false);
        assert!(b.get_checked(8).is_none());
        assert!(b.get_checked(-1).is_none());
        assert!(!b.set_checked(100, 1));
        assert!(b.set_checked(7, 5));
        assert_eq!(b.get_checked(7), Some(5));
    }

    #[test]
    fn tiny_regions_still_get_a_valid_mask() {
        let b = Buf::new(1, false);
        assert!(b.mask >= 1);
        assert_eq!(b.get_wrapped(1), 0);
    }
}
