//! The paper's contribution as a library.
//!
//! `graft-core` ties the workspace together the way the paper's
//! framework ties its systems together:
//!
//! * [`GraftManager`] loads a portable [`GraftSpec`] under any
//!   [`Technology`] — compiling Grail for the compiled and bytecode
//!   engines, interpreting Tickle for the script engine, instantiating
//!   the native implementation, or pushing any of them behind the
//!   user-level upcall boundary;
//! * [`breakeven`] is the paper's break-even arithmetic: how many times
//!   may a graft run per page fault (or disk seek) saved, and what
//!   upcall latency would a user-level server need to compete
//!   (Figure 1);
//! * [`experiment`] regenerates every table and figure of Section 5 as
//!   typed results;
//! * [`report`] renders them in the paper's format (means with relative
//!   standard deviations in parentheses, normalized-to-C rows);
//! * [`artifact`] freezes a whole run — host, config, every table,
//!   every sample, and the telemetry snapshot — into the versioned JSON
//!   document `--json` writes and `graftstat` diffs.
//!
//! [`GraftSpec`]: graft_api::GraftSpec
//! [`Technology`]: graft_api::Technology

pub mod artifact;
pub mod breakeven;
pub mod experiment;
pub mod manager;
pub mod report;

pub use breakeven::{break_even, figure1_series, Figure1Point};
pub use manager::GraftManager;

#[cfg(test)]
mod tests {
    use super::*;
    use graft_api::Technology;

    #[test]
    fn manager_loads_every_paper_technology_for_eviction() {
        let spec = grafts::eviction::spec();
        let manager = GraftManager::new();
        for tech in Technology::ALL {
            let engine = manager.load(&spec, tech);
            assert!(engine.is_ok(), "{tech}: {:?}", engine.err());
            assert_eq!(engine.unwrap().technology(), tech);
        }
    }

    #[test]
    fn loaded_engines_compute_the_same_victim() {
        let spec = grafts::eviction::spec();
        let scenario = grafts::eviction::Scenario::paper_default(3);
        let want = scenario.reference_victim() as i64;
        let manager = GraftManager::new();
        for tech in Technology::ALL {
            let mut engine = manager.load(&spec, tech).unwrap();
            let (lru, hot) = scenario.marshal(engine.as_mut()).unwrap();
            let got = engine.invoke("select_victim", &[lru, hot]).unwrap();
            assert_eq!(got, want, "{tech}");
        }
    }
}
