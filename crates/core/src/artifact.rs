//! The machine-readable run artifact (`--json`).
//!
//! A [`RunArtifact`] freezes one experiment run — host facts, the
//! [`RunConfig`] it ran under, every table and figure as structured
//! rows, a flattened index of every timing sample, the full telemetry
//! [`MetricsSnapshot`], and the wall-clock cost of producing it all —
//! into a deterministic JSON document. Two artifacts from different
//! commits (or different hosts) can then be compared mechanically by
//! `graftstat` instead of by eyeballing table printouts.
//!
//! The schema is versioned ([`SCHEMA`]) and serialization is key-sorted
//! (see [`graft_telemetry::json`]), so artifact diffs are stable.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use graft_telemetry::json::{self, Json};
use graft_telemetry::MetricsSnapshot;
use kernsim::stats::Sample;

use crate::experiment::{
    Figure1, RunConfig, Table1, Table11, Table12, Table13, Table14, Table2, Table3, Table4, Table5,
    Table6, Table7, Table8, Table9,
};

/// Schema identifier embedded in every artifact.
pub const SCHEMA: &str = "graft-run-artifact/v1";

/// One run's worth of results, ready to serialize.
#[derive(Debug, Clone)]
pub struct RunArtifact {
    /// Host facts: os, arch, cores, build profile, telemetry state.
    pub host: Json,
    /// The configuration the run used.
    pub config: RunConfig,
    /// Table/figure name → structured result rows.
    pub tables: BTreeMap<String, Json>,
    /// Flattened `table/row/...` → timing-sample index (see
    /// [`RunArtifact::add_table`]); the uniform surface `graftstat`
    /// diffs.
    pub samples: BTreeMap<String, Json>,
    /// The telemetry snapshot taken at [`RunArtifact::finish`].
    pub metrics: Json,
    /// Wall-clock time from [`RunArtifact::begin`] to
    /// [`RunArtifact::finish`].
    pub wall_clock: Duration,
    started: Option<Instant>,
}

/// Captures the host facts an artifact records.
fn host_json() -> Json {
    let mut host = Json::object();
    host.set("os", std::env::consts::OS)
        .set("arch", std::env::consts::ARCH)
        .set(
            "cores",
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
        .set(
            "profile",
            if cfg!(debug_assertions) { "debug" } else { "release" },
        )
        .set("telemetry", graft_telemetry::enabled());
    host
}

impl RunArtifact {
    /// Starts an artifact: captures host facts and the wall clock.
    pub fn begin(config: &RunConfig) -> Self {
        RunArtifact {
            host: host_json(),
            config: *config,
            tables: BTreeMap::new(),
            samples: BTreeMap::new(),
            metrics: Json::object(),
            wall_clock: Duration::ZERO,
            started: Some(Instant::now()),
        }
    }

    /// Adds one table/figure result and indexes every timing sample in
    /// it under `table/row-path` keys.
    ///
    /// The sample scan is structural: any nested object carrying both
    /// `mean_ns` and `runs` is a [`Sample`]. Path components come from
    /// object keys; rows (array elements) contribute their `tech` name
    /// when they have one, their index otherwise.
    pub fn add_table(&mut self, name: &str, table: Json) {
        collect_samples(name, &table, &mut self.samples);
        self.tables.insert(name.to_string(), table);
    }

    /// Seals the artifact: records wall clock and the metrics snapshot.
    pub fn finish(&mut self, metrics: &MetricsSnapshot) {
        self.wall_clock = self.started.map(|t| t.elapsed()).unwrap_or_default();
        self.metrics = metrics_json(metrics);
    }

    /// The complete JSON document.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::object();
        doc.set("schema", SCHEMA)
            .set("host", self.host.clone())
            .set("config", config_json(&self.config))
            .set("tables", Json::Obj(self.tables.clone()))
            .set("samples", Json::Obj(self.samples.clone()))
            .set("metrics", self.metrics.clone())
            .set("wall_clock_ns", self.wall_clock.as_nanos().min(u64::MAX as u128) as u64);
        doc
    }

    /// Pretty-printed document, what `--json <path>` writes.
    pub fn to_pretty_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Writes the artifact to a file.
    pub fn write_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_pretty_string())
    }

    /// Parses an artifact back from JSON text (as written by
    /// [`RunArtifact::to_pretty_string`]).
    pub fn from_json_str(text: &str) -> Result<RunArtifact, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing `schema`")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema `{schema}` (want `{SCHEMA}`)"));
        }
        let tables = doc
            .get("tables")
            .and_then(Json::as_obj)
            .cloned()
            .ok_or("missing `tables`")?;
        let samples = doc
            .get("samples")
            .and_then(Json::as_obj)
            .cloned()
            .ok_or("missing `samples`")?;
        Ok(RunArtifact {
            host: doc.get("host").cloned().unwrap_or_else(Json::object),
            config: config_from_json(doc.get("config").ok_or("missing `config`")?)?,
            tables,
            samples,
            metrics: doc.get("metrics").cloned().unwrap_or_else(Json::object),
            wall_clock: Duration::from_nanos(
                doc.get("wall_clock_ns").and_then(Json::as_u64).unwrap_or(0),
            ),
            started: None,
        })
    }

    /// The `min_ns` (robust estimate) of an indexed sample.
    pub fn sample_best_ns(&self, key: &str) -> Option<f64> {
        self.samples.get(key)?.get("min_ns")?.as_f64()
    }

    /// The value of a recorded counter, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.metrics
            .get_path("counters")
            .and_then(|c| c.get(name))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    }

    /// Number of counters/histograms that recorded data.
    pub fn distinct_metrics(&self) -> usize {
        let counters = self
            .metrics
            .get("counters")
            .and_then(Json::as_obj)
            .map(|m| m.values().filter(|v| v.as_u64().unwrap_or(0) > 0).count())
            .unwrap_or(0);
        let histograms = self
            .metrics
            .get("histograms")
            .and_then(Json::as_arr)
            .map(|a| {
                a.iter()
                    .filter(|h| h.get("count").and_then(Json::as_u64).unwrap_or(0) > 0)
                    .count()
            })
            .unwrap_or(0);
        counters + histograms
    }
}

/// Walks `node`, indexing every [`Sample`]-shaped object under
/// slash-joined paths into `out`.
fn collect_samples(path: &str, node: &Json, out: &mut BTreeMap<String, Json>) {
    match node {
        Json::Obj(map) => {
            if map.contains_key("mean_ns") && map.contains_key("runs") {
                out.insert(path.to_string(), node.clone());
                return;
            }
            for (k, v) in map {
                collect_samples(&format!("{path}/{k}"), v, out);
            }
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                let label = item
                    .get("tech")
                    .and_then(Json::as_str)
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| i.to_string());
                collect_samples(&format!("{path}/{label}"), item, out);
            }
        }
        _ => {}
    }
}

/// A [`Sample`] as JSON.
pub fn sample_json(s: &Sample) -> Json {
    let mut obj = Json::object();
    obj.set("mean_ns", s.mean_ns)
        .set("std_pct", s.std_pct)
        .set("min_ns", s.min_ns)
        .set("median_ns", s.median_ns)
        .set("runs", s.runs);
    obj
}

fn dur_ns(d: Duration) -> Json {
    Json::from(d.as_nanos().min(u64::MAX as u128) as u64)
}

/// [`RunConfig`] as JSON.
pub fn config_json(c: &RunConfig) -> Json {
    let mut obj = Json::object();
    obj.set("runs", c.runs)
        .set("evict_iters", c.evict_iters)
        .set("script_evict_iters", c.script_evict_iters)
        .set("md5_bytes", c.md5_bytes)
        .set("script_md5_bytes", c.script_md5_bytes)
        .set("ld_writes", c.ld_writes)
        .set("ld_blocks", c.ld_blocks)
        .set("live", c.live);
    // The fault plan is optional *on disk* too: clean-run artifacts
    // (and every artifact committed before fault injection existed)
    // simply omit the key.
    if let Some(p) = &c.faults {
        let mut plan = Json::object();
        plan.set("seed", p.seed)
            .set("io_error_permille", u64::from(p.io_error_permille))
            .set("torn_permille", u64::from(p.torn_permille))
            .set("bitrot_permille", u64::from(p.bitrot_permille))
            .set("max_retries", u64::from(p.max_retries));
        if let Some(n) = p.crash_after_ios {
            plan.set("crash_after_ios", n);
        }
        obj.set("faults", plan);
    }
    obj
}

fn config_from_json(j: &Json) -> Result<RunConfig, String> {
    let field = |name: &str| -> Result<u64, String> {
        j.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("config missing `{name}`"))
    };
    Ok(RunConfig {
        runs: field("runs")? as usize,
        evict_iters: field("evict_iters")? as usize,
        script_evict_iters: field("script_evict_iters")? as usize,
        md5_bytes: field("md5_bytes")? as usize,
        script_md5_bytes: field("script_md5_bytes")? as usize,
        ld_writes: field("ld_writes")? as usize,
        ld_blocks: field("ld_blocks")? as usize,
        live: j
            .get("live")
            .and_then(Json::as_bool)
            .ok_or("config missing `live`")?,
        faults: match j.get("faults") {
            None => None, // pre-fault-injection artifacts omit the key
            Some(p) => {
                let pf = |name: &str| -> Result<u64, String> {
                    p.get(name)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("fault plan missing `{name}`"))
                };
                Some(kernsim::FaultPlan {
                    seed: pf("seed")?,
                    io_error_permille: pf("io_error_permille")? as u16,
                    torn_permille: pf("torn_permille")? as u16,
                    // Absent in artifacts committed before bit-rot
                    // injection existed: those plans drew none.
                    bitrot_permille: p
                        .get("bitrot_permille")
                        .and_then(Json::as_u64)
                        .unwrap_or(0) as u16,
                    crash_after_ios: p.get("crash_after_ios").and_then(Json::as_u64),
                    max_retries: pf("max_retries")? as u32,
                })
            }
        },
    })
}

/// Trace events the artifact retains from the global ring: the most
/// recent tail, so `graftstat timeline` works from the artifact alone
/// without committed baselines ballooning.
pub const TRACES_IN_ARTIFACT: usize = 256;

/// [`MetricsSnapshot`] as JSON: counters object, histogram array with
/// derived mean/p50/p90/p99/p999, recent span events, and the tail of
/// the flight-recorder ring (empty unless a run traced).
pub fn metrics_json(m: &MetricsSnapshot) -> Json {
    let mut counters = Json::object();
    for (name, value) in &m.counters {
        counters.set(name, *value);
    }
    let histograms: Vec<Json> = m
        .histograms
        .iter()
        .map(|h| {
            let mut obj = Json::object();
            obj.set("name", h.name.as_str())
                .set("count", h.count)
                .set("sum", h.sum)
                .set("mean", h.mean())
                .set("p50", h.quantile(0.5))
                .set("p90", h.quantile(0.9))
                .set("p99", h.quantile(0.99))
                .set("p999", h.quantile(0.999))
                .set(
                    "buckets",
                    h.buckets
                        .iter()
                        .map(|&(b, n)| Json::Arr(vec![Json::from(b), Json::from(n)]))
                        .collect::<Vec<_>>(),
                );
            obj
        })
        .collect();
    let spans: Vec<Json> = m
        .spans
        .iter()
        .map(|s| {
            let mut obj = Json::object();
            obj.set("name", s.name)
                .set("start_ns", s.start_ns)
                .set("duration_ns", s.duration_ns);
            obj
        })
        .collect();
    let skip = m.traces.len().saturating_sub(TRACES_IN_ARTIFACT);
    let traces: Vec<Json> = m.traces[skip..]
        .iter()
        .map(graft_kernel::postmortem::trace_event_json)
        .collect();
    let mut out = Json::object();
    out.set("counters", counters)
        .set("histograms", histograms)
        .set("spans", spans)
        .set("traces", traces);
    out
}

/// Table 1 as JSON.
pub fn table1_json(t: &Table1) -> Json {
    let mut obj = Json::object();
    match &t.signals {
        Some(s) => {
            let mut sig = Json::object();
            sig.set("handled", sample_json(&s.handled))
                .set("ignored", sample_json(&s.ignored))
                .set("per_signal_us", s.per_signal_us);
            obj.set("signals", sig);
        }
        None => {
            obj.set("signals", Json::Null);
        }
    }
    obj.set("upcall_roundtrip", sample_json(&t.upcall_roundtrip));
    obj.set("upcall_batched", sample_json(&t.upcall_batched));
    obj.set("batch", t.batch);
    obj
}

/// Table 2 as JSON.
pub fn table2_json(t: &Table2) -> Json {
    let rows: Vec<Json> = t
        .rows
        .iter()
        .map(|r| {
            let mut row = Json::object();
            row.set("tech", r.tech.paper_name())
                .set("sample", sample_json(&r.sample))
                .set("normalized", r.normalized)
                .set("vs_native", r.vs_native)
                .set("break_even", r.break_even)
                .set("reduced_iters", r.reduced_iters);
            row
        })
        .collect();
    let mut obj = Json::object();
    obj.set("rows", rows)
        .set("fault_ns", dur_ns(t.fault))
        .set("invocations_per_save", t.invocations_per_save);
    obj
}

/// Table 3 as JSON.
pub fn table3_json(t: &Table3) -> Json {
    let mut obj = Json::object();
    match &t.soft {
        Some(s) => obj.set("soft", sample_json(s)),
        None => obj.set("soft", Json::Null),
    };
    obj.set(
        "hard",
        t.hard
            .iter()
            .map(|&(pages, d)| {
                let mut row = Json::object();
                row.set("pages", pages).set("time_ns", dur_ns(d));
                row
            })
            .collect::<Vec<_>>(),
    );
    obj
}

/// Table 4 as JSON.
pub fn table4_json(t: &Table4) -> Json {
    let mut obj = Json::object();
    match &t.measured {
        Some(bw) => {
            let mut m = Json::object();
            m.set("bytes_per_sec", bw.bytes_per_sec)
                .set("megabyte_access_ns", dur_ns(bw.megabyte_access()))
                .set("sample", sample_json(&bw.sample));
            obj.set("measured", m)
        }
        None => obj.set("measured", Json::Null),
    };
    let mut model = Json::object();
    model
        .set("bandwidth_bytes_per_sec", t.model.bandwidth)
        .set("avg_seek_ns", dur_ns(t.model.avg_seek))
        .set("avg_rotation_ns", dur_ns(t.model.avg_rotation))
        .set("block_size", t.model.block_size)
        .set("segment_blocks", t.model.segment_blocks)
        .set("megabyte_access_ns", dur_ns(t.model.megabyte_access()));
    obj.set("model", model);
    obj
}

/// Table 5 as JSON.
pub fn table5_json(t: &Table5) -> Json {
    let rows: Vec<Json> = t
        .rows
        .iter()
        .map(|r| {
            let mut row = Json::object();
            row.set("tech", r.tech.paper_name())
                .set("per_mb_ns", dur_ns(r.per_mb))
                .set("sample", sample_json(&r.sample))
                .set("normalized", r.normalized)
                .set("vs_native", r.vs_native)
                .set("md5_over_disk", r.md5_over_disk)
                .set("bytes", r.bytes);
            row
        })
        .collect();
    let mut obj = Json::object();
    obj.set("rows", rows).set("disk_mb_ns", dur_ns(t.disk_mb));
    obj
}

/// Table 6 as JSON.
pub fn table6_json(t: &Table6) -> Json {
    let rows: Vec<Json> = t
        .rows
        .iter()
        .map(|r| {
            let mut row = Json::object();
            row.set("tech", r.tech.paper_name())
                .set("sample", sample_json(&r.total))
                .set("normalized", r.normalized)
                .set("vs_native", r.vs_native)
                .set("per_block_ns", dur_ns(r.per_block))
                .set("pays_off", r.pays_off);
            row
        })
        .collect();
    let mut sharded = Json::object();
    sharded
        .set("tech", t.sharded.tech.paper_name())
        .set("shards", t.sharded.shards)
        .set("sample", sample_json(&t.sharded.total))
        .set("per_block_ns", dur_ns(t.sharded.per_block))
        .set("throughput_m", t.sharded.throughput_m)
        .set("enqueued", t.sharded.enqueued)
        .set("steals", t.sharded.steals)
        .set("diverted", t.sharded.diverted);
    let mut obj = Json::object();
    obj.set("rows", rows)
        .set("writes", t.writes)
        .set("saving_per_block_ns", dur_ns(t.saving_per_block))
        .set("sharded", sharded);
    obj
}

/// Table 7 as JSON.
pub fn table7_json(t: &Table7) -> Json {
    let rows: Vec<Json> = t
        .rows
        .iter()
        .map(|r| {
            let mut row = Json::object();
            row.set("tech", r.tech.paper_name())
                .set("baseline", sample_json(&r.baseline))
                .set("post", sample_json(&r.post))
                .set("post_over_baseline", r.post_over_baseline)
                .set("quarantined", r.quarantined)
                .set(
                    "quarantined_by",
                    match r.quarantined_by {
                        Some(kind) => Json::from(kind.name()),
                        None => Json::Null,
                    },
                )
                .set("trapped_invocations", r.trapped_invocations)
                .set("quarantine_latency_ns", dur_ns(r.quarantine_latency))
                .set("churn_accesses", r.churn_accesses);
            row
        })
        .collect();
    let mut overhead = Json::object();
    overhead
        .set("direct", sample_json(&t.direct))
        .set("hosted", sample_json(&t.hosted))
        .set("empty_chain", sample_json(&t.empty_chain));
    let mut obj = Json::object();
    obj.set("rows", rows)
        .set("overhead", overhead)
        .set("trap_threshold", t.trap_threshold)
        .set("accesses", t.accesses);
    obj
}

/// Table 8 as JSON. Each technology row carries one object per ladder
/// rung keyed `s<N>`, whose `per_access` sample (critical-path ns per
/// aggregate access) lands in the flattened sample index — the surface
/// the shard-scaling CI gate diffs.
pub fn table8_json(t: &Table8) -> Json {
    let rows: Vec<Json> = t
        .rows
        .iter()
        .map(|r| {
            let mut row = Json::object();
            row.set("tech", r.tech.paper_name());
            for c in &r.cells {
                let mut cell = Json::object();
                cell.set("shards", c.shards)
                    .set("per_access", sample_json(&c.per_access))
                    .set("throughput_m", c.throughput_m)
                    .set("efficiency", c.efficiency)
                    .set("accesses", c.accesses);
                row.set(&format!("s{}", c.shards), cell);
            }
            let top = *t.ladder.last().expect("non-empty ladder");
            row.set("top_speedup", r.speedup(top).unwrap_or(f64::NAN));
            row
        })
        .collect();
    let mut obj = Json::object();
    obj.set("rows", rows)
        .set(
            "ladder",
            t.ladder.iter().map(|&s| Json::from(s as u64)).collect::<Vec<_>>(),
        )
        .set("runs", t.runs);
    obj
}

/// Table 9 as JSON. Each row's `snapshot`/`salvage_detach`/`restore`
/// samples land in the flattened index (the surface the recovery CI
/// gate diffs); `lost_mappings` is the hard-zero correctness field the
/// verify script asserts on.
pub fn table9_json(t: &Table9) -> Json {
    let rows: Vec<Json> = t
        .rows
        .iter()
        .map(|r| {
            let mut row = Json::object();
            row.set("tech", r.tech.paper_name())
                .set("snapshot", sample_json(&r.snapshot))
                .set("salvage_detach", sample_json(&r.salvage_detach))
                .set("restore", sample_json(&r.restore))
                .set("recovery_ns", dur_ns(r.recovery))
                .set("salvaged_words", r.salvaged_words)
                .set("lost_mappings", r.lost_mappings)
                .set("post_over_base", r.post_over_base)
                .set("populated", r.populated);
            row
        })
        .collect();
    let mut crash = Json::object();
    crash
        .set("crash_after_ios", t.crash.crash_after_ios)
        .set("rebuild", sample_json(&t.crash.rebuild))
        .set("time_to_recovery_ns", dur_ns(t.crash.time_to_recovery))
        .set("replayed", t.crash.replayed)
        .set("redone", t.crash.redone)
        .set("lost_mappings", t.crash.lost_mappings)
        .set("ios", t.crash.faults.ios)
        .set("injected", t.crash.faults.injected)
        .set("retries", t.crash.faults.retries)
        .set("torn_writes", t.crash.faults.torn_writes)
        .set("exhausted", t.crash.faults.exhausted)
        .set("crashes", t.crash.faults.crashes);
    let mut plan = Json::object();
    plan.set("seed", t.plan.seed)
        .set("io_error_permille", u64::from(t.plan.io_error_permille))
        .set("torn_permille", u64::from(t.plan.torn_permille))
        .set("max_retries", u64::from(t.plan.max_retries));
    let mut obj = Json::object();
    obj.set("rows", rows)
        .set("crash", crash)
        .set("plan", plan)
        .set("writes", t.writes)
        .set("blocks", t.blocks)
        .set("lost_total", t.lost_total())
        .set("runs", t.runs);
    obj
}

/// Table 14 as JSON. Each row's `adopt` sample and every curve point's
/// `restore` sample land in the flattened index (the surface the
/// durability CI gate diffs); the drill objects carry the full
/// detection ledger, so a baseline diff also catches accounting drift.
pub fn table14_json(t: &Table14) -> Json {
    let rows: Vec<Json> = t
        .rows
        .iter()
        .map(|r| {
            let mut row = Json::object();
            row.set("tech", r.tech.paper_name())
                .set("adopt", sample_json(&r.adopt))
                .set("verified_lookups", r.verified_lookups)
                .set("lookup_mismatches", r.lookup_mismatches)
                .set("post_over_base", r.post_over_base);
            row
        })
        .collect();
    let curve: Vec<Json> = t
        .restore_curve
        .iter()
        .map(|p| {
            let mut point = Json::object();
            point
                .set("distance", p.distance)
                .set("lsn", p.lsn)
                .set("restore", sample_json(&p.restore))
                .set("mappings", p.mappings);
            point
        })
        .collect();
    let drills: Vec<Json> = t
        .drills
        .iter()
        .map(|d| {
            let mut drill = Json::object();
            drill
                .set("seed", d.seed)
                .set("injected", d.injected)
                .set("corrupted", d.corrupted)
                .set("detected", d.detected)
                .set("undetected_by_design", d.undetected_by_design)
                .set("redone", d.redone)
                .set("silent_wrong_map", d.silent_wrong_map)
                .set("recovery_ns", dur_ns(d.recovery))
                .set("detection_rate", d.detection_rate())
                .set("bitrot", d.faults.bitrot)
                .set("ios", d.faults.ios);
            drill
        })
        .collect();
    let mut scrub = Json::object();
    scrub
        .set("segments", t.scrub.segments)
        .set("entries", t.scrub.entries)
        .set("scrub", sample_json(&t.scrub.scrub))
        .set("throughput_m", t.scrub.throughput_m);
    let mut plan = Json::object();
    plan.set("seed", t.plan.seed)
        .set("bitrot_permille", u64::from(t.plan.bitrot_permille))
        .set("max_retries", u64::from(t.plan.max_retries));
    let mut obj = Json::object();
    obj.set("rows", rows)
        .set("restore_curve", curve)
        .set("scrub", scrub)
        .set("drills", drills)
        .set("plan", plan)
        .set("writes", t.writes)
        .set("blocks", t.blocks)
        .set("retention_window", t.retention_window)
        .set("pruned_entries", t.pruned_entries)
        .set("retained_entries", t.retained_entries)
        .set("restore_divergence", t.restore_divergence)
        .set("detection_rate", t.detection_rate())
        .set("silent_total", t.silent_total())
        .set("min_post_over_base", t.min_post_over_base())
        .set("runs", t.runs);
    obj
}

/// Table 12 as JSON. Each row's `off`/`gated`/`recording` samples land
/// in the flattened index (the surface the tracing-overhead CI gate
/// diffs); the drill object embeds both [`PostmortemReport`]s — the
/// machine-readable surface `graftstat postmortem` renders.
///
/// [`PostmortemReport`]: graft_kernel::PostmortemReport
pub fn table12_json(t: &Table12) -> Json {
    let rows: Vec<Json> = t
        .rows
        .iter()
        .map(|r| {
            let mut row = Json::object();
            row.set("tech", r.tech.paper_name())
                .set("off", sample_json(&r.off))
                .set("gated", sample_json(&r.gated))
                .set("recording", sample_json(&r.recording))
                .set("gated_overhead_pct", r.gated_overhead_pct)
                .set("recording_overhead_pct", r.recording_overhead_pct);
            row
        })
        .collect();
    let d = &t.drill;
    let pm_json = |pm: &Option<graft_kernel::PostmortemReport>| match pm {
        Some(p) => p.to_json(),
        None => Json::Null,
    };
    let mut drill = Json::object();
    drill
        .set("tech", d.tech.paper_name())
        .set("seed", d.seed)
        .set("trap_threshold", d.trap_threshold)
        .set("shards", d.shards)
        .set("traced", d.traced)
        .set("scalar_trapped", d.scalar_trapped)
        .set("sharded_trapped", d.sharded_trapped)
        .set("scalar_events", d.scalar_events)
        .set("sharded_events", d.sharded_events)
        .set("tails_match", d.tails_match)
        .set("scalar_postmortem", pm_json(&d.scalar))
        .set("sharded_postmortem", pm_json(&d.sharded));
    let mut obj = Json::object();
    obj.set("rows", rows).set("drill", drill).set("runs", t.runs);
    obj
}

/// Table 13 as JSON. Rows are labeled `tech@skew` so every
/// (technology, skew) pair lands under a distinct path in the
/// flattened sample index (the surface the steal CI gate diffs); each
/// cell carries both dispatch-plane modes side by side.
pub fn table13_json(t: &Table13) -> Json {
    let mode_json = |m: &crate::experiment::ModeResult| {
        let mut mode = Json::object();
        mode.set("per_access", sample_json(&m.per_access))
            .set("throughput_m", m.throughput_m)
            .set("imbalance_pct", m.imbalance_pct)
            .set("steals", m.steals)
            .set("steal_fail", m.steal_fail)
            .set("diverted", m.diverted);
        mode
    };
    let rows: Vec<Json> = t
        .rows
        .iter()
        .map(|r| {
            let mut row = Json::object();
            row.set("tech", format!("{}@{}", r.tech.paper_name(), r.skew.name()))
                .set("skew", r.skew.name());
            for c in &r.cells {
                let mut cell = Json::object();
                cell.set("shards", c.shards);
                match &c.static_ {
                    Some(m) => cell.set("static", mode_json(m)),
                    None => cell.set("static", Json::Null),
                };
                match &c.steal {
                    Some(m) => cell.set("steal", mode_json(m)),
                    None => cell.set("steal", Json::Null),
                };
                match c.speedup() {
                    Some(s) => cell.set("speedup", s),
                    None => cell.set("speedup", Json::Null),
                };
                row.set(&format!("s{}", c.shards), cell);
            }
            row
        })
        .collect();
    let mut obj = Json::object();
    obj.set("rows", rows)
        .set(
            "ladder",
            t.ladder.iter().map(|&s| Json::from(s as u64)).collect::<Vec<_>>(),
        )
        .set("runs", t.runs);
    obj
}

/// Table 11 as JSON. Rows are labeled `tech@arrival` so every
/// (technology, arrival) pair lands under a distinct path in the
/// flattened sample index (the surface the service CI gate diffs);
/// each cell carries the per-request sample plus the latency
/// percentiles and plane counters, and the drill object carries the
/// noisy-neighbor verdicts.
pub fn table11_json(t: &Table11) -> Json {
    let rows: Vec<Json> = t
        .rows
        .iter()
        .map(|r| {
            let mut row = Json::object();
            row.set(
                "tech",
                format!("{}@{}", r.tech.paper_name(), r.arrival.name()),
            )
            .set("arrival", r.arrival.name());
            for c in &r.cells {
                let s = &c.service;
                let mut cell = Json::object();
                cell.set("shards", c.shards)
                    .set("per_request", sample_json(&s.per_request))
                    .set("throughput_krps", s.throughput_krps)
                    .set("p50_ns", s.p50_ns)
                    .set("p99_ns", s.p99_ns)
                    .set("p999_ns", s.p999_ns)
                    .set("served", s.served)
                    .set("rejected", s.rejected)
                    .set("distinct_tenants", s.distinct_tenants)
                    .set("steals", s.steals)
                    .set("diverted", s.diverted)
                    .set("serial_frac", s.serial_frac)
                    .set("churned", s.churned)
                    .set("slowloris", s.slowloris);
                row.set(&format!("s{}", c.shards), cell);
            }
            row
        })
        .collect();
    let d = &t.drill;
    let mut drill = Json::object();
    drill
        .set("shards", d.shards)
        .set("victims", d.victims)
        .set("per_victim", d.per_victim)
        .set("quiet_p99_ns", d.quiet_p99_ns)
        .set("noisy_p99_ns", d.noisy_p99_ns)
        .set("victim_p99_ratio", d.victim_p99_ratio)
        .set("saboteur_quarantined", d.saboteur_quarantined)
        .set("saboteur_rejections", d.saboteur_rejections)
        .set("victim_served", d.victim_served);
    let mut obj = Json::object();
    obj.set("rows", rows)
        .set(
            "ladder",
            t.ladder.iter().map(|&s| Json::from(s as u64)).collect::<Vec<_>>(),
        )
        .set("tenants", t.tenants)
        .set("conns", t.conns)
        .set("requests", t.requests)
        .set("leaked", t.leaked)
        .set("drill", drill)
        .set("runs", t.runs);
    obj
}

/// Figure 1 as JSON.
pub fn figure1_json(f: &Figure1) -> Json {
    let series: Vec<Json> = f
        .series
        .iter()
        .map(|p| {
            let mut pt = Json::object();
            pt.set("upcall_ns", dur_ns(p.upcall))
                .set("user_level_break_even", p.user_level_break_even);
            pt
        })
        .collect();
    let mut obj = Json::object();
    obj.set("series", series)
        .set("safe_line", f.safe_line)
        .set("sfi_line", f.sfi_line)
        .set("bytecode_line", f.bytecode_line);
    match f.competitive_upcall {
        Some(d) => obj.set("competitive_upcall_ns", dur_ns(d)),
        None => obj.set("competitive_upcall_ns", Json::Null),
    };
    match f.measured_upcall {
        Some(d) => obj.set("measured_upcall_ns", dur_ns(d)),
        None => obj.set("measured_upcall_ns", Json::Null),
    };
    obj
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{figure1, table2, table3, table4, table5, table6, table7};
    use kernsim::DiskModel;

    fn tiny() -> RunConfig {
        RunConfig {
            runs: 2,
            evict_iters: 30,
            script_evict_iters: 3,
            md5_bytes: 128,
            script_md5_bytes: 128,
            ld_writes: 64,
            ld_blocks: 64,
            live: false,
            faults: None,
        }
    }

    fn tiny_artifact() -> RunArtifact {
        let cfg = tiny();
        let mut art = RunArtifact::begin(&cfg);
        let t3 = table3(&cfg, DiskModel::default());
        let fault = t3.hard_single_page();
        let t2 = table2(&cfg, fault).unwrap();
        let t4 = table4(&cfg, false);
        let t5 = table5(&cfg, t4.megabyte_access()).unwrap();
        let t6 = table6(&cfg, &t4.model).unwrap();
        let t7 = table7(&cfg).unwrap();
        let fig = figure1(&t2, None);
        art.add_table("table2", table2_json(&t2));
        art.add_table("table3", table3_json(&t3));
        art.add_table("table4", table4_json(&t4));
        art.add_table("table5", table5_json(&t5));
        art.add_table("table6", table6_json(&t6));
        art.add_table("table7", table7_json(&t7));
        art.add_table("figure1", figure1_json(&fig));
        art.finish(&graft_telemetry::snapshot());
        art
    }

    #[test]
    fn artifact_round_trips_through_json() {
        let art = tiny_artifact();
        let text = art.to_pretty_string();
        let back = RunArtifact::from_json_str(&text).unwrap();
        assert_eq!(back.to_json(), art.to_json());
        assert_eq!(back.config.runs, art.config.runs);
        assert_eq!(back.tables.len(), art.tables.len());
        assert_eq!(back.samples, art.samples);
    }

    #[test]
    fn samples_are_indexed_by_table_and_technology() {
        let art = tiny_artifact();
        assert!(
            art.sample_best_ns("table2/rows/C/sample").is_some(),
            "keys: {:?}",
            art.samples.keys().collect::<Vec<_>>()
        );
        assert!(art.sample_best_ns("table6/rows/Modula-3/sample").is_some());
        // Nested sample objects inside rows are found too.
        assert!(art
            .samples
            .keys()
            .any(|k| k.starts_with("table5/rows/")));
        // The churn table indexes both its per-technology phases and
        // the host-machinery overhead samples.
        assert!(art.sample_best_ns("table7/rows/Modula-3/baseline").is_some());
        assert!(art.sample_best_ns("table7/overhead/empty_chain").is_some());
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let err = RunArtifact::from_json_str(r#"{"schema":"other/v9"}"#).unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");
        assert!(RunArtifact::from_json_str("not json").is_err());
    }

    #[test]
    fn config_round_trips_exactly() {
        for cfg in [RunConfig::full(), RunConfig::quick(), RunConfig::offline()] {
            let back = config_from_json(&config_json(&cfg)).unwrap();
            assert_eq!(back.runs, cfg.runs);
            assert_eq!(back.evict_iters, cfg.evict_iters);
            assert_eq!(back.ld_writes, cfg.ld_writes);
            assert_eq!(back.live, cfg.live);
        }
    }
}
