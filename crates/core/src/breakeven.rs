//! The paper's break-even arithmetic (§5.4 and Figure 1).

use std::time::Duration;

/// Break-even point: how many times the graft can run per saved event.
///
/// "We divide the page fault time by the time required to run the
/// graft; the result is the number of times we can run the graft for
/// each page eviction saved and still be ahead of the game." A value
/// below 1 means the graft can never pay for itself.
pub fn break_even(event_cost: Duration, graft_cost: Duration) -> f64 {
    if graft_cost.is_zero() {
        return f64::INFINITY;
    }
    event_cost.as_secs_f64() / graft_cost.as_secs_f64()
}

/// Whether a graft with the given break-even point helps an application
/// that saves one event every `invocations_per_save` runs (the paper's
/// model application: one save per 781 invocations).
pub fn graft_pays_off(break_even: f64, invocations_per_save: f64) -> bool {
    break_even >= invocations_per_save
}

/// One point of the Figure 1 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Figure1Point {
    /// Assumed upcall time.
    pub upcall: Duration,
    /// Break-even of a user-level server whose work costs `c_cost` plus
    /// the upcall.
    pub user_level_break_even: f64,
}

/// The Figure 1 series: break-even of a user-level server as a function
/// of upcall time, over `0..=max` in `step` increments.
///
/// The server runs compiled code, so its per-invocation cost is the
/// unsafe-C graft time plus the upcall.
pub fn figure1_series(
    event_cost: Duration,
    c_cost: Duration,
    max: Duration,
    step: Duration,
) -> Vec<Figure1Point> {
    assert!(!step.is_zero(), "step must be positive");
    let mut points = Vec::new();
    let mut upcall = Duration::ZERO;
    loop {
        points.push(Figure1Point {
            upcall,
            user_level_break_even: break_even(event_cost, c_cost + upcall),
        });
        if upcall >= max {
            return points;
        }
        upcall += step;
    }
}

/// The upcall time below which a user-level server beats an in-kernel
/// technology whose graft cost is `in_kernel_cost` (the paper's
/// "sub-10µs upcall needed" observation): the server wins while
/// `c_cost + upcall < in_kernel_cost`.
pub fn competitive_upcall(c_cost: Duration, in_kernel_cost: Duration) -> Option<Duration> {
    in_kernel_cost.checked_sub(c_cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn break_even_reproduces_the_paper_rows() {
        // Alpha: 25.1 ms fault, 2.9 µs C graft → 8655.
        let be = break_even(Duration::from_micros(25_100), Duration::from_nanos(2_900));
        assert!((be - 8655.0).abs() < 15.0, "got {be}");
        // Solaris Java: 6.9 ms fault, 141 µs → ≈49.
        let be = break_even(ms(6) + Duration::from_micros(900), us(141));
        assert!((48.0..50.0).contains(&be), "got {be}");
    }

    #[test]
    fn pays_off_uses_the_one_in_781_rule() {
        assert!(graft_pays_off(1533.0, 781.0)); // Solaris C
        assert!(!graft_pays_off(49.0, 781.0)); // Solaris Java
    }

    #[test]
    fn sub_unit_break_even_never_pays() {
        let be = break_even(us(10), us(40)); // Tcl-style
        assert!(be < 1.0);
        assert!(!graft_pays_off(be, 1.0));
    }

    #[test]
    fn figure1_is_monotonically_decreasing() {
        let series = figure1_series(ms(7), Duration::from_nanos(4_500), us(50), us(1));
        assert_eq!(series.len(), 51);
        assert!(series
            .windows(2)
            .all(|w| w[0].user_level_break_even >= w[1].user_level_break_even));
        // At zero upcall the server equals unsafe C.
        let c_be = break_even(ms(7), Duration::from_nanos(4_500));
        assert!((series[0].user_level_break_even - c_be).abs() < 1.0);
    }

    #[test]
    fn competitive_upcall_matches_paper_shape() {
        // Solaris: C 4.5µs, Modula-3 6.3µs → the server competes only
        // below ~1.8µs; with a realistic 40µs signal-style upcall it
        // cannot.
        let margin = competitive_upcall(us(4) + Duration::from_nanos(500), us(6) + Duration::from_nanos(300))
            .unwrap();
        assert!(margin < us(10), "sub-10µs needed, got {margin:?}");
        assert!(competitive_upcall(us(10), us(5)).is_none());
    }

    #[test]
    fn zero_cost_graft_has_infinite_break_even() {
        assert!(break_even(ms(1), Duration::ZERO).is_infinite());
    }
}
