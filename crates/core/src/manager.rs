//! Loading grafts under a chosen technology.

use engine_bytecode::BytecodeEngine;
use engine_native::{CompiledEngine, SafetyMode};
use engine_script::ScriptEngine;
use graft_api::{ExtensionEngine, GraftError, GraftSpec, NativeEngine, Technology};
use kernsim::upcall::UpcallEngine;

/// Loads [`GraftSpec`]s under any [`Technology`], applying the paper's
/// default engine configurations (overridable for ablations).
#[derive(Debug, Clone, Copy)]
pub struct GraftManager {
    /// Emit NIL checks in the safe-compiled engine (paper default:
    /// true — the Linux Modula-3 configuration it measured there).
    pub nil_checks: bool,
    /// Run the load-time IR optimizer before translating compiled
    /// technologies (paper default: false — the omniC++ 1.0β the paper
    /// measured had no optimizer; see `graft_ir::opt`).
    pub optimize: bool,
    /// Mask reads in the SFI engine (paper default: false — omniC++
    /// 1.0β had write/jump protection only).
    pub sfi_read_protect: bool,
    /// Which technology runs *inside* a user-level server (the paper's
    /// servers ran compiled C).
    pub user_level_inner: Technology,
}

impl Default for GraftManager {
    fn default() -> Self {
        Self::new()
    }
}

impl GraftManager {
    /// A manager with the paper's default configurations.
    pub fn new() -> Self {
        GraftManager {
            nil_checks: true,
            optimize: false,
            sfi_read_protect: false,
            user_level_inner: Technology::CompiledUnchecked,
        }
    }

    fn missing(spec: &GraftSpec, what: &str) -> GraftError {
        GraftError::Unavailable {
            graft: spec.name.clone(),
            missing: what.to_string(),
        }
    }

    /// Loads `spec` under `tech`, verifying as the technology demands.
    pub fn load(
        &self,
        spec: &GraftSpec,
        tech: Technology,
    ) -> Result<Box<dyn ExtensionEngine>, GraftError> {
        match tech {
            Technology::RustNative => {
                let factory = spec
                    .native
                    .as_ref()
                    .ok_or_else(|| Self::missing(spec, "native implementation"))?;
                // Seal the native engine to the spec's declared entry
                // manifest so binding an undeclared name fails at bind
                // time, exactly like the other technologies. The shared
                // factory travels with the engine so a sharded host can
                // fork one replica per worker shard.
                Ok(Box::new(NativeEngine::from_factory(
                    &spec.regions,
                    &spec.entries,
                    factory.clone(),
                )?))
            }
            Technology::CompiledUnchecked => {
                Ok(Box::new(self.load_compiled(spec, SafetyMode::Unchecked)?))
            }
            Technology::SafeCompiled => Ok(Box::new(self.load_compiled(
                spec,
                SafetyMode::Safe {
                    nil_checks: self.nil_checks,
                },
            )?)),
            Technology::Sfi => Ok(Box::new(self.load_compiled(
                spec,
                SafetyMode::Sfi {
                    read_protect: self.sfi_read_protect,
                },
            )?)),
            Technology::Bytecode => {
                let grail = spec
                    .grail
                    .as_ref()
                    .ok_or_else(|| Self::missing(spec, "Grail source"))?;
                Ok(Box::new(BytecodeEngine::load_grail(grail, &spec.regions)?))
            }
            Technology::Script => {
                let tickle = spec
                    .tickle
                    .as_ref()
                    .ok_or_else(|| Self::missing(spec, "Tickle source"))?;
                Ok(Box::new(ScriptEngine::load(tickle, &spec.regions)?))
            }
            Technology::UserLevel => {
                let inner = self.load(spec, self.user_level_inner)?;
                Ok(Box::new(UpcallEngine::new(inner)))
            }
        }
    }

    fn load_compiled(
        &self,
        spec: &GraftSpec,
        mode: SafetyMode,
    ) -> Result<CompiledEngine, GraftError> {
        let grail = spec
            .grail
            .as_ref()
            .ok_or_else(|| Self::missing(spec, "Grail source"))?;
        let hir = graft_lang::compile(grail, &spec.regions)?;
        let mut module = graft_ir::lower(&hir);
        if self.optimize {
            graft_ir::optimize(&mut module);
        }
        CompiledEngine::load(module, mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_sources_surface_as_unavailable() {
        // The Logical Disk graft has no Tickle source, as in the paper.
        let spec = grafts::logdisk::spec_sized(64);
        let err = GraftManager::new()
            .load(&spec, Technology::Script)
            .err()
            .expect("script must be unavailable");
        assert!(matches!(err, GraftError::Unavailable { .. }));
    }

    #[test]
    fn user_level_wraps_the_configured_inner_technology() {
        let spec = grafts::acl::spec();
        let manager = GraftManager {
            user_level_inner: Technology::SafeCompiled,
            ..GraftManager::new()
        };
        let engine = manager.load(&spec, Technology::UserLevel).unwrap();
        assert_eq!(engine.technology(), Technology::UserLevel);
    }

    #[test]
    fn manager_loaded_engines_bind_declared_entries_only() {
        // For every technology the ACL graft supports, bind of a
        // declared entry succeeds and bind of an undeclared name is a
        // deterministic load-time failure — including RustNative, whose
        // engine is sealed to the spec's manifest.
        let spec = grafts::acl::spec();
        let manager = GraftManager::new();
        for tech in [
            Technology::CompiledUnchecked,
            Technology::SafeCompiled,
            Technology::Sfi,
            Technology::Bytecode,
            Technology::RustNative,
            Technology::UserLevel,
        ] {
            let mut engine = manager.load(&spec, tech).unwrap();
            let declared = &spec.entries[0].name;
            engine
                .bind_entry(declared)
                .unwrap_or_else(|e| panic!("{tech:?}: bind {declared}: {e}"));
            assert!(
                engine.bind_entry("definitely_not_declared").is_err(),
                "{tech:?} must reject undeclared entry at bind"
            );
        }
    }

    #[test]
    fn ablation_flags_change_loaded_code() {
        let spec = grafts::acl::spec();
        let base = GraftManager::new();
        let prot = GraftManager {
            sfi_read_protect: true,
            ..base
        };
        // Both load; the read-protected variant carries more code. We
        // can only observe this through the CompiledEngine type.
        let a = engine_native::load_grail(
            spec.grail.as_ref().unwrap(),
            &spec.regions,
            SafetyMode::Sfi {
                read_protect: base.sfi_read_protect,
            },
        )
        .unwrap();
        let b = engine_native::load_grail(
            spec.grail.as_ref().unwrap(),
            &spec.regions,
            SafetyMode::Sfi {
                read_protect: prot.sfi_read_protect,
            },
        )
        .unwrap();
        assert!(b.module().code_len() > a.module().code_len());
    }
}
