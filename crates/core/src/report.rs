//! Paper-style rendering of experiment results.
//!
//! The binaries in `graft-bench` print these tables; EXPERIMENTS.md
//! records them next to the paper's originals.

use std::fmt::Write as _;
use std::time::Duration;

use crate::experiment::{
    Figure1, Skew, Table1, Table11, Table12, Table13, Table13Cell, Table14, Table2, Table3, Table4,
    Table5, Table6, Table7, Table8, Table9,
};

fn dur(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 10_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 10_000_000.0 {
        format!("{:.1}µs", ns / 1e3)
    } else if ns < 1_000_000_000.0 {
        format!("{:.1}ms", ns / 1e6)
    } else {
        format!("{:.2}s", ns / 1e9)
    }
}

fn line(out: &mut String, cols: &[&str], widths: &[usize]) {
    for (c, w) in cols.iter().zip(widths) {
        let _ = write!(out, "{c:<w$}  ", w = w);
    }
    out.push('\n');
}

/// Renders Table 1.
pub fn render_table1(t: &Table1) -> String {
    let mut out = String::new();
    out.push_str("Table 1. Signal Handling Time (paper \u{00a7}5.3)\n");
    match &t.signals {
        Some(s) => {
            let _ = writeln!(
                out,
                "  this host : {:.1}\u{00b5}s per handled signal   [group handled {} | group ignored {}]",
                s.per_signal_us,
                s.handled.paper_style(),
                s.ignored.paper_style()
            );
        }
        None => out.push_str("  this host : (live signal measurement unavailable)\n"),
    }
    let _ = writeln!(
        out,
        "  upcall    : {} round trip through the user-level server transport",
        t.upcall_roundtrip.paper_style()
    );
    let _ = writeln!(
        out,
        "  batched   : {} per call with {} calls per round trip",
        t.upcall_batched.paper_style(),
        t.batch
    );
    out.push_str("  paper     : ");
    for (name, us) in t.paper_us {
        let _ = write!(out, "{name} {us}\u{00b5}s  ");
    }
    out.push('\n');
    out
}

/// Renders Table 2.
pub fn render_table2(t: &Table2) -> String {
    let widths = [20, 30, 8, 11, 12, 6];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2. VM Page Eviction (fault time {}; model app saves 1 in {:.0})",
        dur(t.fault),
        t.invocations_per_save
    );
    line(
        &mut out,
        &["technology", "raw", "vs C", "vs native", "break-even", "note"],
        &widths,
    );
    for row in &t.rows {
        let note = if row.reduced_iters { "(reduced)" } else { "" };
        line(
            &mut out,
            &[
                row.tech.paper_name(),
                &row.sample.robust_style(),
                &format!("{:.2}", row.normalized),
                &format!("{:.1}", row.vs_native),
                &format!("{:.0}", row.break_even),
                note,
            ],
            &widths,
        );
    }
    out
}

/// Renders Table 3.
pub fn render_table3(t: &Table3) -> String {
    let mut out = String::new();
    out.push_str("Table 3. Page Fault Time\n");
    match &t.soft {
        Some(s) => {
            let _ = writeln!(out, "  soft (minor) fault, measured : {}", s.paper_style());
        }
        None => out.push_str("  soft (minor) fault           : (unavailable)\n"),
    }
    for (pages, time) in &t.hard {
        let _ = writeln!(
            out,
            "  hard fault, modeled          : {} ({} page read-ahead)",
            dur(*time),
            pages
        );
    }
    out.push_str("  paper: ");
    for (name, ms, pages) in t.paper {
        let _ = write!(out, "{name} {ms}ms/{pages}p  ");
    }
    out.push('\n');
    out
}

/// Renders Table 4.
pub fn render_table4(t: &Table4) -> String {
    let mut out = String::new();
    out.push_str("Table 4. Disk I/O Time\n");
    match &t.measured {
        Some(bw) => {
            let _ = writeln!(
                out,
                "  this host : {:.0} KB/s write bandwidth; 1MB access {}",
                bw.kb_per_sec(),
                dur(bw.megabyte_access())
            );
        }
        None => out.push_str("  this host : (live bandwidth measurement unavailable)\n"),
    }
    let _ = writeln!(
        out,
        "  model     : {:.0} KB/s; 1MB access {} (used as Table 5 denominator)",
        t.model.bandwidth / 1024.0,
        dur(t.model.megabyte_access())
    );
    out.push_str("  paper     : ");
    for (name, kbs, ms) in t.paper {
        let _ = write!(out, "{name} {kbs}KB/s/{ms}ms  ");
    }
    out.push('\n');
    out
}

/// Renders Table 5.
pub fn render_table5(t: &Table5) -> String {
    let widths = [20, 12, 8, 11, 10, 14];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 5. MD5 Fingerprinting of 1MB (disk 1MB access {})",
        dur(t.disk_mb)
    );
    line(
        &mut out,
        &["technology", "per MB", "vs C", "vs native", "MD5/disk", "hashed bytes"],
        &widths,
    );
    for row in &t.rows {
        line(
            &mut out,
            &[
                row.tech.paper_name(),
                &dur(row.per_mb),
                &format!("{:.2}", row.normalized),
                &format!("{:.1}", row.vs_native),
                &format!("{:.2}", row.md5_over_disk),
                &format!("{}", row.bytes),
            ],
            &widths,
        );
    }
    out
}

/// Renders Table 6.
pub fn render_table6(t: &Table6) -> String {
    let widths = [20, 30, 8, 11, 12, 10];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 6. Logical Disk, {} writes (batching saves {}/block)",
        t.writes,
        dur(t.saving_per_block)
    );
    line(
        &mut out,
        &["technology", "total", "vs C", "vs native", "per block", "pays off"],
        &widths,
    );
    for row in &t.rows {
        line(
            &mut out,
            &[
                row.tech.paper_name(),
                &row.total.robust_style(),
                &format!("{:.2}", row.normalized),
                &format!("{:.1}", row.vs_native),
                &dur(row.per_block),
                if row.pays_off { "yes" } else { "no" },
            ],
            &widths,
        );
    }
    let s = &t.sharded;
    let _ = writeln!(
        out,
        "  sharded plane ({} @{}): per block {} | {:.2} M blk/s | enqueued {} diverted {} steals {}",
        s.tech.paper_name(),
        s.shards,
        dur(s.per_block),
        s.throughput_m,
        s.enqueued,
        s.diverted,
        s.steals,
    );
    out
}

/// Renders Table 7, the multi-tenant churn benchmark.
pub fn render_table7(t: &Table7) -> String {
    let widths = [20, 26, 26, 10, 12, 12, 14];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 7. Multi-Tenant Churn (quarantine after {} traps; {} accesses/phase)",
        t.trap_threshold, t.accesses
    );
    line(
        &mut out,
        &[
            "technology",
            "baseline/access",
            "post-quarantine",
            "post/base",
            "trapped",
            "detach in",
            "detach after",
        ],
        &widths,
    );
    for row in &t.rows {
        line(
            &mut out,
            &[
                row.tech.paper_name(),
                &row.baseline.robust_style(),
                &row.post.robust_style(),
                &format!("{:.2}", row.post_over_baseline),
                &format!(
                    "{} ({})",
                    row.trapped_invocations,
                    row.quarantined_by.map(|k| k.name()).unwrap_or("-")
                ),
                &dur(row.quarantine_latency),
                &format!("{} accesses", row.churn_accesses),
            ],
            &widths,
        );
    }
    let _ = writeln!(
        out,
        "  host machinery: direct invoke {}  |  hosted chain-of-1 {}  |  empty chain {}",
        t.direct.robust_style(),
        t.hosted.robust_style(),
        t.empty_chain.robust_style()
    );
    let _ = writeln!(
        out,
        "  chain overhead vs direct: {:.0}ns/dispatch",
        t.chain_overhead_ns()
    );
    out
}

/// Renders Table 8: per-technology aggregate dispatch throughput (in
/// million accesses/second over the critical path) across the shard
/// ladder, with the top rung's speedup and scaling efficiency.
pub fn render_table8(t: &Table8) -> String {
    let mut out = String::new();
    let top = *t.ladder.last().expect("non-empty ladder");
    let _ = writeln!(
        out,
        "Table 8. Sharded Dispatch Throughput (M accesses/s over the critical path; {} runs/cell)",
        t.runs
    );
    let mut widths = vec![20usize];
    widths.extend(t.ladder.iter().map(|_| 12usize));
    widths.extend([12usize, 12usize]);
    let shard_headers: Vec<String> = t.ladder.iter().map(|s| format!("{s} shard(s)")).collect();
    let mut headers: Vec<&str> = vec!["technology"];
    headers.extend(shard_headers.iter().map(String::as_str));
    let speedup_h = format!("x{top}/x{}", t.ladder[0]);
    headers.push(&speedup_h);
    headers.push("efficiency");
    line(&mut out, &headers, &widths);
    for row in &t.rows {
        let cells: Vec<String> = row
            .cells
            .iter()
            .map(|c| format!("{:.3}", c.throughput_m))
            .collect();
        let speedup = row.speedup(top).unwrap_or(f64::NAN);
        let eff = row
            .cell(top)
            .map(|c| c.efficiency)
            .unwrap_or(f64::NAN);
        let mut cols: Vec<&str> = vec![row.tech.paper_name()];
        cols.extend(cells.iter().map(String::as_str));
        let speedup_s = format!("{speedup:.2}x");
        let eff_s = format!("{:.0}%", eff * 100.0);
        cols.push(&speedup_s);
        cols.push(&eff_s);
        line(&mut out, &cols, &widths);
    }
    out.push_str(
        "  (shards measured one at a time; critical path = slowest shard, i.e. the wall\n   clock on a machine with enough idle cores. See docs/kernel.md.)\n",
    );
    out
}

/// Renders Table 9: per-technology recovery costs plus the
/// fault-injected crash drill.
pub fn render_table9(t: &Table9) -> String {
    let widths = [20, 16, 18, 16, 12, 10, 10];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 9. Graft Recovery ({} writes over {} blocks; {} map words salvaged/row)",
        t.writes, t.blocks, t.blocks
    );
    line(
        &mut out,
        &[
            "technology",
            "snapshot",
            "salvage-detach",
            "restore",
            "recovery",
            "lost",
            "post/base",
        ],
        &widths,
    );
    for row in &t.rows {
        line(
            &mut out,
            &[
                row.tech.paper_name(),
                &row.snapshot.robust_style(),
                &row.salvage_detach.robust_style(),
                &row.restore.robust_style(),
                &dur(row.recovery),
                &row.lost_mappings.to_string(),
                &format!("{:.2}", row.post_over_base),
            ],
            &widths,
        );
    }
    let c = &t.crash;
    let _ = writeln!(
        out,
        "  crash drill (seed {}, {}\u{2030} io-err, {}\u{2030} torn): crash at flush #{}, \
         rebuilt {} mappings in {}, redid {} writes, recovery {}",
        t.plan.seed,
        t.plan.io_error_permille,
        t.plan.torn_permille,
        c.crash_after_ios,
        c.replayed,
        c.rebuild.robust_style(),
        c.redone,
        dur(c.time_to_recovery)
    );
    let _ = writeln!(
        out,
        "  fault accounting: {} ios, {} injected, {} retries, {} torn, {} exhausted, {} crash(es); lost mappings total: {}",
        c.faults.ios,
        c.faults.injected,
        c.faults.retries,
        c.faults.torn_writes,
        c.faults.exhausted,
        c.faults.crashes,
        t.lost_total()
    );
    out
}

/// Renders Table 14: durable-logdisk restore/scrub costs, the seeded
/// bit-rot drills, and per-technology post-restore hand-off, plus
/// machine-parseable `gate:` lines for the CI durability gates
/// (detection rate, silent corruption, restore exactness, post/base).
pub fn render_table14(t: &Table14) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 14. Durable Logdisk ({} writes over {} blocks; retention window {} LSNs, \
         {} entries retained / {} pruned)",
        t.writes, t.blocks, t.retention_window, t.retained_entries, t.pruned_entries
    );
    out.push_str("  restore-to-LSN cost vs distance behind the durable head:\n");
    let widths = [14, 14, 18, 12];
    line(&mut out, &["distance", "lsn", "restore", "mappings"], &widths);
    for p in &t.restore_curve {
        line(
            &mut out,
            &[
                &p.distance.to_string(),
                &p.lsn.to_string(),
                &p.restore.robust_style(),
                &p.mappings.to_string(),
            ],
            &widths,
        );
    }
    let _ = writeln!(
        out,
        "  scrub: {} segments / {} entries audited in {} = {:.1}M entries/s",
        t.scrub.segments,
        t.scrub.entries,
        t.scrub.scrub.robust_style(),
        t.scrub.throughput_m
    );
    out.push_str("  bit-rot drills (quiet plan + latent rot, one bit per strike):\n");
    let dwidths = [6, 9, 10, 9, 11, 7, 13, 10];
    line(
        &mut out,
        &[
            "seed", "injected", "corrupted", "detected", "dup-strikes", "redone", "silent-wrong",
            "recovery",
        ],
        &dwidths,
    );
    for d in &t.drills {
        line(
            &mut out,
            &[
                &d.seed.to_string(),
                &d.injected.to_string(),
                &d.corrupted.to_string(),
                &d.detected.to_string(),
                &d.undetected_by_design.to_string(),
                &d.redone.to_string(),
                &d.silent_wrong_map.to_string(),
                &dur(d.recovery),
            ],
            &dwidths,
        );
    }
    out.push_str("  post-restore hand-off (midpoint restore adopted into each technology):\n");
    let rwidths = [20, 18, 10, 12, 10];
    line(
        &mut out,
        &["technology", "adopt", "lookups", "mismatches", "post/base"],
        &rwidths,
    );
    for row in &t.rows {
        line(
            &mut out,
            &[
                row.tech.paper_name(),
                &row.adopt.robust_style(),
                &row.verified_lookups.to_string(),
                &row.lookup_mismatches.to_string(),
                &format!("{:.2}", row.post_over_base),
            ],
            &rwidths,
        );
    }
    // The CI gates grep these lines (scripts/verify.sh).
    let _ = writeln!(
        out,
        "  gate: bitrot detection rate = {:.0}%",
        t.detection_rate() * 100.0
    );
    let _ = writeln!(out, "  gate: silent wrong map = {}", t.silent_total());
    let _ = writeln!(
        out,
        "  gate: restore divergence = {}",
        t.restore_divergence
    );
    let _ = writeln!(out, "  gate: lookup mismatches = {}", t.mismatch_total());
    let _ = writeln!(
        out,
        "  gate: min post/base = {:.2}",
        t.min_post_over_base()
    );
    out.push_str(
        "  (restore audits the full retained history before replaying — a rotted record\n   is never believed; costs are dominated by that audit. See docs/recovery.md.)\n",
    );
    out
}

/// Renders Table 12: per-technology tracing overhead (ns per pager
/// access under off/gated/recording telemetry) plus the scalar-vs-
/// sharded postmortem drill verdict.
pub fn render_table12(t: &Table12) -> String {
    let widths = [20, 26, 26, 26, 9, 11];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 12. Flight-Recorder Overhead (ns/access on the Table 7 baseline rig; {} runs/mode)",
        t.runs
    );
    line(
        &mut out,
        &["technology", "off", "gated", "recording", "gated%", "recording%"],
        &widths,
    );
    for row in &t.rows {
        line(
            &mut out,
            &[
                row.tech.paper_name(),
                &row.off.robust_style(),
                &row.gated.robust_style(),
                &row.recording.robust_style(),
                &format!("{:+.1}", row.gated_overhead_pct),
                &format!("{:+.1}", row.recording_overhead_pct),
            ],
            &widths,
        );
    }
    let _ = writeln!(
        out,
        "  worst-case overhead: gated {:+.1}% | recording {:+.1}%",
        t.worst_gated_pct(),
        t.worst_recording_pct()
    );
    let d = &t.drill;
    let _ = writeln!(
        out,
        "  postmortem drill (seed {}, {} saboteur, threshold {}): scalar tail {} trap(s) | {}-shard tail {} trap(s) | tails {}",
        d.seed,
        d.scalar
            .as_ref()
            .map(|p| p.reason.name())
            .unwrap_or("missing"),
        d.trap_threshold,
        d.scalar_trapped,
        d.shards,
        d.sharded_trapped,
        if d.tails_match { "MATCH" } else { "DIVERGE" }
    );
    if !d.traced {
        out.push_str("  (flight recorder compiled out: tails empty by construction)\n");
    }
    out
}

/// Renders Table 13: static vs stealing dispatch across key skews and
/// the shard ladder, plus machine-parseable `gate:` lines for the CI
/// steal gate.
pub fn render_table13(t: &Table13) -> String {
    let mut out = String::new();
    let top = *t.ladder.last().expect("non-empty ladder");
    let _ = writeln!(
        out,
        "Table 13. Adaptive Dispatch Under Skew (steal/static speedup per rung; {} runs/mode)",
        t.runs
    );
    let mut widths = vec![20usize, 9usize];
    widths.extend(t.ladder.iter().map(|_| 8usize));
    widths.extend([13usize, 11usize, 10usize, 9usize]);
    let rung_headers: Vec<String> = t.ladder.iter().map(|s| format!("x{s}")).collect();
    let thr_h = format!("thr@{top}(M/s)");
    let mut headers: Vec<&str> = vec!["technology", "skew"];
    headers.extend(rung_headers.iter().map(String::as_str));
    headers.extend([thr_h.as_str(), "imb static", "imb steal", "steals"]);
    line(&mut out, &headers, &widths);
    for row in &t.rows {
        let speedups: Vec<String> = row
            .cells
            .iter()
            .map(|c| match c.speedup() {
                Some(s) => format!("{s:.2}x"),
                None => "-".into(),
            })
            .collect();
        let Some(tc) = row.cell(top) else { continue };
        let mut cols: Vec<&str> = vec![row.tech.paper_name(), row.skew.name()];
        cols.extend(speedups.iter().map(String::as_str));
        let fmt_thr = |m: &Option<crate::experiment::ModeResult>| match m {
            Some(m) => format!("{:.3}", m.throughput_m),
            None => "-".into(),
        };
        let fmt_imb = |m: &Option<crate::experiment::ModeResult>| match m {
            Some(m) => format!("{:.1}%", m.imbalance_pct),
            None => "-".into(),
        };
        let thr_s = fmt_thr(&tc.steal);
        let imb_st = fmt_imb(&tc.static_);
        let imb_ad = fmt_imb(&tc.steal);
        let steals_s = tc
            .steal
            .as_ref()
            .map(|m| m.steals.to_string())
            .unwrap_or_else(|| "-".into());
        cols.extend([thr_s.as_str(), imb_st.as_str(), imb_ad.as_str(), steals_s.as_str()]);
        line(&mut out, &cols, &widths);
    }
    // The CI gate greps these two lines (scripts/verify.sh).
    if let Some(row) = t.row(graft_api::Technology::RustNative, Skew::Skew9901) {
        if let Some(s) = row.cell(8).and_then(Table13Cell::speedup) {
            let _ = writeln!(out, "  gate: 99-1 @8 native steal/static = {s:.2}x");
        }
        if let Some(m) = row.cell(16).and_then(|c| c.steal.as_ref()) {
            let _ = writeln!(
                out,
                "  gate: 99-1 @16 native steal imbalance = {:.1}%",
                m.imbalance_pct
            );
        }
    }
    out.push_str(
        "  (same seeded trace both modes; imbalance = (max-min)/mean over per-shard\n   processed counts at the top rung. See docs/kernel.md \"Adaptive dispatch\".)\n",
    );
    out
}

/// Renders Table 11: the graft server under multi-tenant service
/// load, plus machine-parseable `gate:` lines for the CI service
/// gates (tenant scale, leakage, noisy-neighbor bound, quarantine).
pub fn render_table11(t: &Table11) -> String {
    let mut out = String::new();
    let top = *t.ladder.last().expect("non-empty ladder");
    let _ = writeln!(
        out,
        "Table 11. Graft Server Service Latency and Throughput ({} tenants, {} conns/cohort, {} reqs/rep, {} reps)",
        t.tenants, t.conns, t.requests, t.runs
    );
    let mut widths = vec![20usize, 9usize];
    widths.extend(t.ladder.iter().map(|_| 10usize));
    widths.extend([10usize, 10usize, 10usize, 8usize]);
    let rung_headers: Vec<String> = t.ladder.iter().map(|s| format!("kr/s x{s}")).collect();
    let p50_h = format!("p50@{top}");
    let p99_h = format!("p99@{top}");
    let p999_h = format!("p999@{top}");
    let mut headers: Vec<&str> = vec!["technology", "arrival"];
    headers.extend(rung_headers.iter().map(String::as_str));
    headers.extend([p50_h.as_str(), p99_h.as_str(), p999_h.as_str(), "steals"]);
    line(&mut out, &headers, &widths);
    for row in &t.rows {
        let thr: Vec<String> = row
            .cells
            .iter()
            .map(|c| format!("{:.1}", c.service.throughput_krps))
            .collect();
        let Some(tc) = row.cell(top) else { continue };
        let mut cols: Vec<&str> = vec![row.tech.paper_name(), row.arrival.name()];
        cols.extend(thr.iter().map(String::as_str));
        let p50 = dur(Duration::from_nanos(tc.service.p50_ns));
        let p99 = dur(Duration::from_nanos(tc.service.p99_ns));
        let p999 = dur(Duration::from_nanos(tc.service.p999_ns));
        let steals = tc.service.steals.to_string();
        cols.extend([p50.as_str(), p99.as_str(), p999.as_str(), steals.as_str()]);
        line(&mut out, &cols, &widths);
    }
    let d = &t.drill;
    let _ = writeln!(
        out,
        "  noisy-neighbor drill ({} victims x {} reqs @{} shards): quiet p99 {} | noisy p99 {} | saboteur rejections {} | victims served {}",
        d.victims,
        d.per_victim,
        d.shards,
        dur(Duration::from_nanos(d.quiet_p99_ns)),
        dur(Duration::from_nanos(d.noisy_p99_ns)),
        d.saboteur_rejections,
        d.victim_served
    );
    let _ = writeln!(
        out,
        "  hazards: {} conns churned cold mid-rep | {} slowloris frames dribbled and served",
        t.churned(),
        t.slowloris()
    );
    // The CI gates grep these lines (scripts/verify.sh).
    if let Some(s) = t
        .row(graft_api::Technology::RustNative, Skew::Uniform)
        .and_then(|r| r.worker_scaling(4))
    {
        let _ = writeln!(out, "  gate: native worker scaling @4 = {s:.2}x");
    }
    let _ = writeln!(out, "  gate: tenants = {}", t.tenants);
    let _ = writeln!(out, "  gate: cross-tenant leakage = {}", t.leaked);
    let _ = writeln!(
        out,
        "  gate: noisy victim p99 / quiet p99 = {:.2}x",
        d.victim_p99_ratio
    );
    let _ = writeln!(
        out,
        "  gate: saboteur quarantined = {}",
        if d.saboteur_quarantined { "yes" } else { "no" }
    );
    out.push_str(
        "  (latency measured server-side, admission to completion; throughput over the\n   serve-phase critical path — max(serial pump+reap, busiest worker) — best rep,\n   as on a machine with enough idle cores. See docs/server.md.)\n",
    );
    out
}

/// Renders Figure 1 as a CSV series plus the horizontal lines.
pub fn render_figure1(f: &Figure1) -> String {
    let mut out = String::new();
    out.push_str("Figure 1. Break-Even vs Upcall Time\n");
    let _ = writeln!(
        out,
        "# lines: safe-compiled={:.0} sfi={:.0} bytecode={:.0}",
        f.safe_line, f.sfi_line, f.bytecode_line
    );
    if let Some(w) = f.competitive_upcall {
        let _ = writeln!(
            out,
            "# user-level server competitive below upcall = {}",
            dur(w)
        );
    }
    if let Some(m) = f.measured_upcall {
        let _ = writeln!(out, "# measured upcall round trip on this host = {}", dur(m));
    }
    out.push_str("upcall_us,user_level_break_even\n");
    for p in &f.series {
        let _ = writeln!(
            out,
            "{:.0},{:.1}",
            p.upcall.as_secs_f64() * 1e6,
            p.user_level_break_even
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{figure1, table1, table2, table3, table4, table6, RunConfig};
    use kernsim::DiskModel;
    use std::time::Duration;

    fn tiny() -> RunConfig {
        RunConfig {
            runs: 2,
            evict_iters: 30,
            script_evict_iters: 3,
            md5_bytes: 128,
            script_md5_bytes: 128,
            ld_writes: 64,
            ld_blocks: 64,
            live: false,
            faults: None,
        }
    }

    #[test]
    fn tables_render_without_panicking_and_mention_key_items() {
        let cfg = tiny();
        let t1 = table1(&cfg).unwrap();
        assert!(render_table1(&t1).contains("Signal"));

        let t2 = table2(&cfg, Duration::from_millis(13)).unwrap();
        let s = render_table2(&t2);
        assert!(s.contains("Modula-3"));
        assert!(s.contains("Omniware"));
        assert!(s.contains("Tcl"));
        assert!(s.contains("break-even"));

        let t3 = table3(&cfg, DiskModel::default());
        assert!(render_table3(&t3).contains("read-ahead"));

        let t4 = table4(&cfg, false);
        assert!(render_table4(&t4).contains("KB/s"));

        let t6 = table6(&cfg, &DiskModel::default()).unwrap();
        let s6 = render_table6(&t6);
        assert!(s6.contains("per block"));
        assert!(!s6.contains("Tcl"), "no Tcl row in Table 6");

        let fig = figure1(&t2, None);
        let sf = render_figure1(&fig);
        assert!(sf.contains("upcall_us"));
        assert!(sf.lines().count() > 50);
    }

    #[test]
    fn offline_tables_render_the_unavailable_branches() {
        let cfg = tiny();
        // Offline: no live signal or bandwidth measurement exists, so
        // the renderers must take their "(unavailable)" arms.
        let t1 = table1(&cfg).unwrap();
        assert!(t1.signals.is_none());
        assert!(render_table1(&t1).contains("unavailable"));

        let t3 = table3(&cfg, DiskModel::default());
        assert!(t3.soft.is_none());
        assert!(render_table3(&t3).contains("(unavailable)"));

        let t4 = table4(&cfg, false);
        assert!(t4.measured.is_none());
        assert!(render_table4(&t4).contains("unavailable"));
        // The model row still prints the Table 5 denominator.
        assert!(render_table4(&t4).contains("denominator"));
    }

    #[test]
    fn table5_renders_rows_and_ratios() {
        let cfg = tiny();
        let t4 = table4(&cfg, false);
        let t5 = crate::experiment::table5(&cfg, t4.megabyte_access()).unwrap();
        let s = render_table5(&t5);
        assert!(s.contains("MD5 Fingerprinting"));
        assert!(s.contains("MD5/disk"));
        assert!(s.contains("Modula-3"));
        assert!(s.contains("hashed bytes"));
    }

    #[test]
    fn figure1_csv_carries_the_annotations_and_51_points() {
        let cfg = tiny();
        let t2 = table2(&cfg, Duration::from_millis(13)).unwrap();
        let fig = figure1(&t2, Some(Duration::from_micros(7)));
        let s = render_figure1(&fig);
        assert!(s.contains("# lines:"));
        assert!(s.contains("measured upcall round trip"));
        // Header + comment lines + exactly one CSV row per µs 0..=50.
        let csv_rows = s
            .lines()
            .filter(|l| l.chars().next().is_some_and(|c| c.is_ascii_digit()))
            .count();
        assert_eq!(csv_rows, 51);
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(dur(Duration::from_nanos(500)), "500ns");
        assert_eq!(dur(Duration::from_micros(25)), "25.0µs");
        assert_eq!(dur(Duration::from_millis(25)), "25.0ms");
        assert_eq!(dur(Duration::from_secs(3)), "3.00s");
    }
}
