//! Tables 2, 5, and 6: the per-technology graft measurements.

use std::time::{Duration, Instant};

use graft_api::{GraftError, Technology};
use graft_kernel::{AttachPoint, ShardedHost, StealPolicy};
use grafts::{eviction, logdisk as ld_graft, md5 as md5_graft};
use kernsim::stats::{measure, measure_per_iter, Sample};
use kernsim::DiskModel;

use super::micro::UPCALL_BATCH;
use super::{md5_workload, RunConfig};
use crate::breakeven::break_even;
use crate::manager::GraftManager;

/// The technologies the tables row over, in the paper's column order
/// plus our extra rows (native upper bound, user-level server).
pub const ROW_ORDER: [Technology; 7] = [
    Technology::CompiledUnchecked,
    Technology::Bytecode,
    Technology::SafeCompiled,
    Technology::Sfi,
    Technology::Script,
    Technology::RustNative,
    Technology::UserLevel,
];

fn duration_of(sample: &Sample) -> Duration {
    sample.best()
}

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Technology measured.
    pub tech: Technology,
    /// Time per `select_victim` invocation.
    pub sample: Sample,
    /// Normalized to unsafe compiled C (the paper's second line). This
    /// isolates the *checking tax*: both run on the same translated
    /// dispatch loop.
    pub normalized: f64,
    /// Normalized to the hand-compiled native row. Because the paper's
    /// C baseline was true native code, this is the column to compare
    /// against its Java and Tcl ratios (the *interpretation tax*).
    pub vs_native: f64,
    /// Break-even against the hard page-fault time.
    pub break_even: f64,
    /// True when the row used the reduced script iteration count.
    pub reduced_iters: bool,
}

/// Table 2: the VM page-eviction graft.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Rows, in [`ROW_ORDER`].
    pub rows: Vec<Table2Row>,
    /// The fault time used for break-even.
    pub fault: Duration,
    /// The model application's saves: one per this many invocations.
    pub invocations_per_save: f64,
}

impl Table2 {
    /// The row for a technology.
    pub fn row(&self, tech: Technology) -> Option<&Table2Row> {
        self.rows.iter().find(|r| r.tech == tech)
    }
}

/// Runs the Table 2 experiment.
pub fn table2(cfg: &RunConfig, fault: Duration) -> Result<Table2, GraftError> {
    // Span-timed so the run artifact shows per-table wall-clock.
    let _span = graft_telemetry::span!("table2_eviction");
    let spec = eviction::spec();
    let scenario = eviction::Scenario::paper_default(42);
    let manager = GraftManager::new();
    let mut rows = Vec::new();
    for tech in ROW_ORDER {
        let mut engine = manager.load(&spec, tech)?;
        let (lru, hot) = scenario.marshal(engine.as_mut())?;
        // Two-phase ABI: resolve the entry name once at load time; the
        // measured loop below runs entirely on the pre-bound handle.
        let victim = engine.bind_entry("select_victim")?;
        // Sanity before timing: the graft must answer correctly.
        let got = engine.invoke_id(victim, &[lru, hot])?;
        debug_assert_eq!(got, scenario.reference_victim() as i64);
        let reduced = tech == Technology::Script;
        let iters = if reduced {
            cfg.script_evict_iters
        } else if tech == Technology::UserLevel {
            // Every invocation crosses the upcall boundary (~50µs);
            // full-scale counts would take minutes without changing the
            // answer.
            (cfg.evict_iters / 10).max(100)
        } else {
            cfg.evict_iters
        };
        let sample = measure_per_iter(cfg.runs, iters, || {
            let _ = engine.invoke_id(victim, &[lru, hot]);
        });
        rows.push(Table2Row {
            tech,
            sample,
            normalized: 0.0,
            vs_native: 0.0,
            break_even: break_even(fault, duration_of(&sample)),
            reduced_iters: reduced,
        });
    }
    let c_ns = rows
        .iter()
        .find(|r| r.tech == Technology::CompiledUnchecked)
        .expect("C row present")
        .sample
        .best_ns();
    let native_ns = rows
        .iter()
        .find(|r| r.tech == Technology::RustNative)
        .expect("native row present")
        .sample
        .best_ns();
    for row in &mut rows {
        row.normalized = row.sample.best_ns() / c_ns;
        row.vs_native = row.sample.best_ns() / native_ns;
    }
    let model = kernsim::btree::BtreeModel::default();
    Ok(Table2 {
        rows,
        fault,
        invocations_per_save: 1.0 / model.hot_probability(64),
    })
}

/// One row of Table 5.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Technology measured.
    pub tech: Technology,
    /// Time to fingerprint 1 MB (extrapolated for reduced rows).
    pub per_mb: Duration,
    /// Raw sample over the actual workload size.
    pub sample: Sample,
    /// Normalized to unsafe compiled C (checking tax).
    pub normalized: f64,
    /// Normalized to the native row (interpretation tax; the paper's
    /// basis).
    pub vs_native: f64,
    /// MD5-time / disk-1MB-time: below 1 means the fingerprint hides
    /// inside I/O time.
    pub md5_over_disk: f64,
    /// Bytes actually hashed (differs from 1 MB for reduced rows).
    pub bytes: usize,
}

/// Table 5: MD5 fingerprinting.
#[derive(Debug, Clone)]
pub struct Table5 {
    /// Rows, in [`ROW_ORDER`].
    pub rows: Vec<Table5Row>,
    /// The 1 MB disk access time used as denominator.
    pub disk_mb: Duration,
}

impl Table5 {
    /// The row for a technology.
    pub fn row(&self, tech: Technology) -> Option<&Table5Row> {
        self.rows.iter().find(|r| r.tech == tech)
    }
}

/// Runs the Table 5 experiment.
pub fn table5(cfg: &RunConfig, disk_mb: Duration) -> Result<Table5, GraftError> {
    let _span = graft_telemetry::span!("table5_md5");
    let spec = md5_graft::spec();
    let manager = GraftManager::new();
    let mut rows = Vec::new();
    for tech in ROW_ORDER {
        let bytes = if tech == Technology::Script {
            cfg.script_md5_bytes
        } else {
            cfg.md5_bytes
        };
        let data = md5_workload(bytes);
        let mut engine = manager.load(&spec, tech)?;
        // Correctness before timing.
        let digest = md5_graft::digest_via(engine.as_mut(), &data)?;
        assert_eq!(
            digest,
            graft_md5::digest(&data),
            "{tech} computes a wrong fingerprint"
        );
        let runs = if tech == Technology::Script {
            cfg.runs.min(3)
        } else {
            cfg.runs.min(10)
        };
        let sample = measure(runs, || {
            let _ = md5_graft::digest_via(engine.as_mut(), &data);
        });
        let scale = (1 << 20) as f64 / bytes as f64;
        let per_mb = Duration::from_nanos((sample.best_ns() * scale) as u64);
        rows.push(Table5Row {
            tech,
            per_mb,
            sample,
            normalized: 0.0,
            vs_native: 0.0,
            md5_over_disk: per_mb.as_secs_f64() / disk_mb.as_secs_f64(),
            bytes,
        });
    }
    let c_ns = rows
        .iter()
        .find(|r| r.tech == Technology::CompiledUnchecked)
        .expect("C row present")
        .per_mb
        .as_nanos() as f64;
    let native_ns = rows
        .iter()
        .find(|r| r.tech == Technology::RustNative)
        .expect("native row present")
        .per_mb
        .as_nanos() as f64;
    for row in &mut rows {
        row.normalized = row.per_mb.as_nanos() as f64 / c_ns;
        row.vs_native = row.per_mb.as_nanos() as f64 / native_ns;
    }
    Ok(Table5 { rows, disk_mb })
}

/// One row of Table 6.
#[derive(Debug, Clone)]
pub struct Table6Row {
    /// Technology measured.
    pub tech: Technology,
    /// Total bookkeeping time for the whole write stream.
    pub total: Sample,
    /// Normalized to unsafe compiled C (checking tax).
    pub normalized: f64,
    /// Normalized to the native row (interpretation tax).
    pub vs_native: f64,
    /// Per-block overhead — what each write must save to break even.
    pub per_block: Duration,
    /// Whether batching savings (from the disk model) exceed the
    /// overhead.
    pub pays_off: bool,
}

/// The same write stream served by the adaptive sharded plane: keyed
/// submission through `ShardedHost::enqueue` (home shard by block,
/// diversion and stealing on), so Table 6 exercises the data plane the
/// graft server runs on rather than pre-balanced per-shard slices.
#[derive(Debug, Clone)]
pub struct Table6Sharded {
    /// Worker shards in the host.
    pub shards: usize,
    /// Technology on every shard.
    pub tech: Technology,
    /// Critical path (slowest shard) over the whole stream.
    pub total: Sample,
    /// Critical path divided by writes.
    pub per_block: Duration,
    /// Writes per millisecond on the critical path, best run.
    pub throughput_m: f64,
    /// Items accepted by the plane (must equal the write count).
    pub enqueued: u64,
    /// Items transferred by steals.
    pub steals: u64,
    /// Items placed away from their home shard at submit time.
    pub diverted: u64,
}

/// Table 6: Logical Disk bookkeeping.
#[derive(Debug, Clone)]
pub struct Table6 {
    /// Rows (no script row, as in the paper).
    pub rows: Vec<Table6Row>,
    /// Writes per run.
    pub writes: usize,
    /// Per-block time batching saves under the disk model.
    pub saving_per_block: Duration,
    /// The write stream re-served through the adaptive sharded plane.
    pub sharded: Table6Sharded,
}

impl Table6 {
    /// The row for a technology.
    pub fn row(&self, tech: Technology) -> Option<&Table6Row> {
        self.rows.iter().find(|r| r.tech == tech)
    }
}

/// Runs the Table 6 experiment.
pub fn table6(cfg: &RunConfig, model: &DiskModel) -> Result<Table6, GraftError> {
    let _span = graft_telemetry::span!("table6_logdisk");
    let spec = ld_graft::spec_sized(cfg.ld_blocks);
    let manager = GraftManager::new();
    let writes: Vec<i64> = logdisk::workload::skewed(cfg.ld_blocks, cfg.ld_writes as u64, 42)
        .map(|w| w as i64)
        .collect();
    let mut rows = Vec::new();
    for tech in ROW_ORDER {
        if tech == Technology::Script {
            continue; // the paper took no Tcl measurements here
        }
        let mut engine = manager.load(&spec, tech)?;
        let ld_write = engine.bind_entry("ld_write")?;
        // Batching is now part of the measured workload itself: the
        // write stream goes through `invoke_batch` in UPCALL_BATCH-call
        // chunks. In-process engines loop over `invoke_id` (the default
        // impl), while the user-level row amortizes one upcall
        // rendezvous over the whole chunk — the Logical-Disk batching
        // argument applied at the ABI layer.
        let runs = if tech == Technology::UserLevel {
            cfg.runs.min(2)
        } else {
            cfg.runs.min(10)
        };
        let mut samples = Vec::with_capacity(runs);
        let mut results = Vec::with_capacity(UPCALL_BATCH);
        for _ in 0..runs {
            ld_graft::init_map(engine.as_mut(), cfg.ld_blocks)?;
            let start = std::time::Instant::now();
            for chunk in writes.chunks(UPCALL_BATCH) {
                results.clear();
                engine.invoke_batch(ld_write, chunk.len(), chunk, &mut results)?;
            }
            samples.push(start.elapsed());
        }
        let total = Sample::from_runs(&samples);
        let per_block = Duration::from_nanos((total.best_ns() / writes.len() as f64) as u64);
        rows.push(Table6Row {
            tech,
            total,
            normalized: 0.0,
            vs_native: 0.0,
            per_block,
            pays_off: per_block < model.batching_saving_per_block(),
        });
    }
    let c_ns = rows
        .iter()
        .find(|r| r.tech == Technology::CompiledUnchecked)
        .expect("C row present")
        .total
        .best_ns();
    let native_ns = rows
        .iter()
        .find(|r| r.tech == Technology::RustNative)
        .expect("native row present")
        .total
        .best_ns();
    for row in &mut rows {
        row.normalized = row.total.best_ns() / c_ns;
        row.vs_native = row.total.best_ns() / native_ns;
    }
    let sharded = table6_sharded(cfg, &manager, &writes)?;
    Ok(Table6 {
        rows,
        writes: writes.len(),
        saving_per_block: model.batching_saving_per_block(),
        sharded,
    })
}

/// Shards the host the ROADMAP way: the same skewed write stream,
/// submitted keyed-by-block through `ShardedHost::enqueue` in bounded
/// waves and drained through the stealing plane, shard at a time, so
/// the table's sharded figure prices the adaptive data plane
/// end-to-end (as Table 11's server does) instead of hand-balanced
/// slices.
fn table6_sharded(
    cfg: &RunConfig,
    manager: &GraftManager,
    writes: &[i64],
) -> Result<Table6Sharded, GraftError> {
    const T6_SHARDS: usize = 4;
    let spec = ld_graft::spec_sized(cfg.ld_blocks);
    let engine = manager.load(&spec, Technology::RustNative)?;
    let mut host = ShardedHost::new(T6_SHARDS);
    let id = host.install(AttachPoint::DiskWrite, "t6", engine)?;
    let mut handles = host.take_handles();

    let runs = cfg.runs.clamp(1, 3);
    let mut criticals = Vec::with_capacity(runs);
    let mut stats = graft_kernel::QueueStats::default();
    for _ in 0..runs {
        let q = host.run_queues::<i64>(StealPolicy::default());
        let mut busy = vec![Duration::ZERO; T6_SHARDS];
        let (mut submitted, mut processed) = (0usize, 0usize);
        let mut pending: Option<i64> = None;
        let mut start = 0usize;
        let wave = T6_SHARDS * 16;
        while processed < writes.len() {
            let mut sent = 0usize;
            while submitted < writes.len() && sent < wave {
                let w = pending.take().unwrap_or(writes[submitted]);
                match host.enqueue(&q, w as u64, Some(id), w) {
                    Ok(_) => {
                        submitted += 1;
                        sent += 1;
                    }
                    Err(rejected) => {
                        pending = Some(rejected);
                        break;
                    }
                }
            }
            for i in 0..T6_SHARDS {
                let s = (start + i) % T6_SHARDS;
                let t = Instant::now();
                let k = handles[s].drain_queue(&q, AttachPoint::DiskWrite, |&w| vec![w]);
                if k > 0 {
                    busy[s] += t.elapsed();
                    processed += k;
                }
            }
            start = (start + 1) % T6_SHARDS;
        }
        criticals.push(busy.into_iter().max().unwrap_or(Duration::ZERO));
        stats = q.stats();
    }
    drop(handles);

    let total = Sample::from_runs(&criticals);
    Ok(Table6Sharded {
        shards: T6_SHARDS,
        tech: Technology::RustNative,
        per_block: Duration::from_nanos((total.best_ns() / writes.len() as f64) as u64),
        throughput_m: writes.len() as f64 * 1e3 / total.best_ns(),
        total,
        enqueued: stats.enqueued,
        steals: stats.steals,
        diverted: stats.diverted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunConfig {
        RunConfig {
            runs: 2,
            evict_iters: 50,
            script_evict_iters: 5,
            md5_bytes: 256,
            script_md5_bytes: 128,
            ld_writes: 256,
            ld_blocks: 256,
            live: false,
            faults: None,
        }
    }

    #[test]
    fn table2_orders_technologies_as_the_paper_found() {
        let t = table2(&tiny(), Duration::from_millis(13)).unwrap();
        assert_eq!(t.rows.len(), ROW_ORDER.len());
        let c = t.row(Technology::CompiledUnchecked).unwrap();
        assert!((c.normalized - 1.0).abs() < 1e-9);
        let script = t.row(Technology::Script).unwrap();
        let bytecode = t.row(Technology::Bytecode).unwrap();
        assert!(
            script.normalized > bytecode.normalized,
            "script {} must be slower than bytecode {}",
            script.normalized,
            bytecode.normalized
        );
        assert!(bytecode.normalized > c.normalized);
        // The 1-in-781 save rate comes from the B-tree model.
        assert!((700.0..900.0).contains(&t.invocations_per_save));
    }

    #[test]
    fn table5_validates_fingerprints_and_normalizes() {
        let t = table5(&tiny(), Duration::from_millis(333)).unwrap();
        let c = t.row(Technology::CompiledUnchecked).unwrap();
        assert!((c.normalized - 1.0).abs() < 1e-9);
        let native = t.row(Technology::RustNative).unwrap();
        assert!(native.normalized <= 1.1, "native should not lose to C");
        for row in &t.rows {
            assert!(row.per_mb.as_nanos() > 0);
        }
    }

    #[test]
    fn table6_skips_script_and_computes_per_block() {
        let t = table6(&tiny(), &DiskModel::default()).unwrap();
        assert!(t.row(Technology::Script).is_none());
        assert_eq!(t.rows.len(), ROW_ORDER.len() - 1);
        let c = t.row(Technology::CompiledUnchecked).unwrap();
        assert!(c.per_block.as_nanos() > 0);
        // Compiled bookkeeping is far below the ~12 ms batching saving.
        assert!(c.pays_off);
        assert!(t.saving_per_block > Duration::from_millis(5));
    }

    #[test]
    fn table6_sharded_plane_runs_every_write_through_the_queues() {
        let t = table6(&tiny(), &DiskModel::default()).unwrap();
        let s = &t.sharded;
        assert_eq!(s.shards, 4);
        assert_eq!(s.tech, Technology::RustNative);
        assert_eq!(s.enqueued, t.writes as u64, "writes bypassed the queues");
        assert!(s.per_block.as_nanos() > 0);
        assert!(s.throughput_m > 0.0);
    }
}
