//! Table 13 (ours): adaptive sharded dispatch under skewed load.
//!
//! Table 8 prices the sharded host when every shard arrives with its
//! own balanced work slice. Real extension traffic is keyed — a page,
//! a block, a connection — and keys are skewed, so static hash
//! placement starves most shards while one absorbs the hot key. This
//! experiment prices the adaptive data plane
//! ([`graft_kernel::RunQueues`]) against that failure mode: bounded
//! per-shard run queues, graft-affinity diversion when a home queue
//! fills, work stealing when a shard runs dry, and adaptive batches
//! that widen with backlog and fuse through the engine's
//! `invoke_batch` when accounting-safe.
//!
//! For each technology row, key skew, and shard rung, the same keyed
//! trace is driven through the plane twice:
//!
//! * **static** — hash placement only ([`StealPolicy::static_plane`]):
//!   a full home queue pushes back on the submitter and no shard ever
//!   takes another's work.
//! * **steal** — the adaptive plane: full homes divert to the
//!   least-loaded shard already warm for the graft, and dry shards
//!   steal the back half of the deepest victim's queue.
//!
//! As in Table 8, each shard's busy time is measured in isolation
//! (shard-at-a-time round-robin drains) and the run is priced on the
//! *critical path* — the slowest shard — which is the wall clock on a
//! machine with enough idle cores and is deterministic on the
//! single-core CI container. Load imbalance is reported as
//! `(max − min) / mean` over the per-shard *processed* counts, which
//! are fully deterministic for a seeded trace.

use std::time::{Duration, Instant};

use graft_api::{GraftError, Technology};
use graft_kernel::{AttachPoint, ShardedHost, StealPolicy};
use graft_rng::SmallRng;
use grafts::eviction;
use kernsim::stats::Sample;

use super::RunConfig;
use crate::manager::GraftManager;

/// The default shard ladder (Table 8's ladder plus a 16-shard rung,
/// where skew hurts static placement most).
pub const LADDER13: [usize; 5] = [1, 2, 4, 8, 16];

/// The technologies priced: the cheapest dispatch (native, which takes
/// the fused batch path) and the paper's headline safe technology
/// (fuel-metered, so it dispatches per call).
pub const TECHS13: [Technology; 2] = [Technology::RustNative, Technology::SafeCompiled];

/// Keys in the trace. Small on purpose: with a large key space even a
/// skewed trace self-balances across shards by pure hashing; 64 keys
/// over up to 16 shards keeps the hot key hot.
const KEYS: u64 = 64;

/// Key-popularity distribution of the driven trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Skew {
    /// Every key equally likely.
    Uniform,
    /// 80% of accesses to the first 20% of keys.
    Skew8020,
    /// 99% of accesses to a single hot key.
    Skew9901,
}

impl Skew {
    /// All skews, in report order.
    pub const ALL: [Skew; 3] = [Skew::Uniform, Skew::Skew8020, Skew::Skew9901];

    /// The report label.
    pub fn name(&self) -> &'static str {
        match self {
            Skew::Uniform => "uniform",
            Skew::Skew8020 => "80-20",
            Skew::Skew9901 => "99-1",
        }
    }

    /// Parses a CLI spelling (`uniform`, `8020`/`80-20`, `9901`/`99-1`).
    pub fn parse(s: &str) -> Option<Skew> {
        match s {
            "uniform" => Some(Skew::Uniform),
            "8020" | "80-20" => Some(Skew::Skew8020),
            "9901" | "99-1" => Some(Skew::Skew9901),
            _ => None,
        }
    }

    /// Draws one key of the trace.
    fn key(&self, rng: &mut SmallRng) -> u64 {
        match self {
            Skew::Uniform => rng.bounded_u64(KEYS),
            Skew::Skew8020 => {
                if rng.gen_f64() < 0.8 {
                    rng.bounded_u64(KEYS / 5)
                } else {
                    KEYS / 5 + rng.bounded_u64(KEYS - KEYS / 5)
                }
            }
            Skew::Skew9901 => {
                if rng.gen_f64() < 0.99 {
                    0
                } else {
                    1 + rng.bounded_u64(KEYS - 1)
                }
            }
        }
    }
}

/// One dispatch-plane mode's measurement at one cell.
#[derive(Debug, Clone)]
pub struct ModeResult {
    /// Critical-path time divided by total items driven.
    pub per_access: Sample,
    /// Aggregate throughput in million items/second over the best
    /// run's critical path.
    pub throughput_m: f64,
    /// `(max − min) / mean × 100` over per-shard processed counts
    /// (deterministic for the seeded trace).
    pub imbalance_pct: f64,
    /// Items transferred by steals (0 in static mode).
    pub steals: u64,
    /// Drains that found every queue empty.
    pub steal_fail: u64,
    /// Items placed away from their home shard (0 in static mode).
    pub diverted: u64,
}

/// One (technology, skew) pair at one shard count. Both modes run by
/// default; a `--steal`-only run leaves `static_` unmeasured.
#[derive(Debug, Clone)]
pub struct Table13Cell {
    /// Worker shards in the host.
    pub shards: usize,
    /// Hash placement only (`None` when the baseline was skipped).
    pub static_: Option<ModeResult>,
    /// The adaptive plane (`None` when only the baseline ran).
    pub steal: Option<ModeResult>,
}

impl Table13Cell {
    /// Steal-mode throughput over static-mode throughput, when both
    /// modes were measured.
    pub fn speedup(&self) -> Option<f64> {
        Some(self.steal.as_ref()?.throughput_m / self.static_.as_ref()?.throughput_m)
    }
}

/// One technology's ladder under one skew.
#[derive(Debug, Clone)]
pub struct Table13Row {
    /// Technology hosting the graft on every shard.
    pub tech: Technology,
    /// Key-popularity distribution driven.
    pub skew: Skew,
    /// One cell per ladder rung, ascending.
    pub cells: Vec<Table13Cell>,
}

impl Table13Row {
    /// The cell at a shard count.
    pub fn cell(&self, shards: usize) -> Option<&Table13Cell> {
        self.cells.iter().find(|c| c.shards == shards)
    }
}

/// Table 13: static vs stealing dispatch across skews and the ladder.
#[derive(Debug, Clone)]
pub struct Table13 {
    /// Rows in (technology, skew) order.
    pub rows: Vec<Table13Row>,
    /// The shard counts measured, ascending.
    pub ladder: Vec<usize>,
    /// Timing runs per mode.
    pub runs: usize,
}

impl Table13 {
    /// The row for a (technology, skew) pair.
    pub fn row(&self, tech: Technology, skew: Skew) -> Option<&Table13Row> {
        self.rows.iter().find(|r| r.tech == tech && r.skew == skew)
    }
}

/// Items per shard per run. Floored high enough that the 5% imbalance
/// gate at 16 shards has granularity, then rounded up so the wave
/// count (`per_shard / 16`) divides evenly by the polling rotation's
/// period (`shards`). Without that rounding the surplus rotation
/// residues hand a full steal batch to whichever shards poll early in
/// those waves — a fixed ~6% imbalance at 16 shards that measures the
/// driver's rotation coverage, not the plane.
fn per_shard_for(cfg: &RunConfig, shards: usize) -> usize {
    let base = (cfg.evict_iters / 4).clamp(2_000, 8_000);
    let quantum = 16 * shards;
    base.div_ceil(quantum) * quantum
}

/// Drives one seeded trace through one host in one mode, shard at a
/// time, and prices the critical path.
fn mode_run(
    cfg: &RunConfig,
    manager: &GraftManager,
    tech: Technology,
    shards: usize,
    skew: Skew,
    stealing: bool,
) -> Result<ModeResult, GraftError> {
    let engine = manager.load(&eviction::spec(), tech)?;
    let mut host = ShardedHost::new(shards);
    let id = host.install(AttachPoint::VmEvict, "tenant", engine)?;
    let policy = if stealing {
        StealPolicy::default()
    } else {
        StealPolicy::static_plane()
    };

    let per_shard = per_shard_for(cfg, shards);
    let n = per_shard * shards;
    let runs = cfg.runs.clamp(1, 3);
    let mut handles = host.take_handles();

    let mut criticals = Vec::with_capacity(runs);
    let mut counts = vec![0u64; shards];
    let mut stats = Default::default();
    for _ in 0..runs {
        // A fresh plane and a reseeded trace per run: counts, placement,
        // and steal decisions replay identically, so only time varies.
        let q = host.run_queues::<u64>(policy);
        let mut rng = SmallRng::seed_from_u64(0xAB13 + shards as u64);
        let mut busy = vec![Duration::ZERO; shards];
        counts = vec![0u64; shards];
        let (mut submitted, mut processed) = (0usize, 0usize);
        let mut pending: Option<u64> = None;
        let mut start = 0usize;
        // Arrivals come in bounded waves rather than filling every
        // queue to the brim up front: skewed traffic then starves the
        // cold shards between waves — the shape work stealing exists
        // for — instead of letting submit-time diversion pre-balance
        // the whole trace.
        let wave = shards * 16;
        while processed < n {
            // Submit one wave, or less if the plane pushes back.
            let mut sent = 0usize;
            while submitted < n && sent < wave {
                let key = match pending.take() {
                    Some(k) => k,
                    None => skew.key(&mut rng),
                };
                match host.enqueue(&q, key, Some(id), key) {
                    Ok(_) => {
                        submitted += 1;
                        sent += 1;
                    }
                    Err(k) => {
                        pending = Some(k);
                        break;
                    }
                }
            }
            // One adaptive drain per shard, each timed in isolation.
            // The polling order rotates per wave — real executors poll
            // independently, so no shard is always first to the
            // victim's queue. The marshal pins both chain heads to 0 —
            // the graft's fallback branch — so every item prices pure
            // dispatch.
            for i in 0..shards {
                let s = (start + i) % shards;
                let t = Instant::now();
                let k = handles[s].drain_queue(&q, AttachPoint::VmEvict, |_| vec![0, 0]);
                if k > 0 {
                    busy[s] += t.elapsed();
                    counts[s] += k as u64;
                    processed += k;
                }
            }
            start = (start + 1) % shards.max(1);
        }
        criticals.push(busy.into_iter().max().unwrap_or(Duration::ZERO));
        stats = q.stats();
    }
    drop(handles);

    let (max, min) = (
        counts.iter().copied().max().unwrap_or(0),
        counts.iter().copied().min().unwrap_or(0),
    );
    let mean = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
    let imbalance_pct = if mean > 0.0 {
        (max - min) as f64 / mean * 100.0
    } else {
        0.0
    };
    Ok(ModeResult {
        per_access: Sample::from_runs(&criticals).per(n),
        throughput_m: n as f64 * 1e3 / Sample::from_runs(&criticals).best_ns(),
        imbalance_pct,
        steals: stats.steals,
        steal_fail: stats.steal_fail,
        diverted: stats.diverted,
    })
}

/// Runs the Table 13 experiment over `ladder` (ascending shard counts;
/// pass `&LADDER13` for the default 1/2/4/8/16), both modes, all skews.
pub fn table13(cfg: &RunConfig, ladder: &[usize]) -> Result<Table13, GraftError> {
    table13_with(cfg, ladder, &Skew::ALL, false)
}

/// [`table13`] restricted to `skews` (the `--skew` flag) and, when
/// `steal_only`, to the adaptive plane without its static baseline
/// (the `--steal` flag; speedups are then unmeasurable).
pub fn table13_with(
    cfg: &RunConfig,
    ladder: &[usize],
    skews: &[Skew],
    steal_only: bool,
) -> Result<Table13, GraftError> {
    let _span = graft_telemetry::span!("table13_steal");
    assert!(!ladder.is_empty(), "empty shard ladder");
    assert!(!skews.is_empty(), "empty skew list");
    let manager = GraftManager::new();
    let mut rows = Vec::new();
    for tech in TECHS13 {
        for &skew in skews {
            let mut cells = Vec::new();
            for &shards in ladder {
                let static_ = if steal_only {
                    None
                } else {
                    Some(mode_run(cfg, &manager, tech, shards, skew, false)?)
                };
                let steal = Some(mode_run(cfg, &manager, tech, shards, skew, true)?);
                cells.push(Table13Cell {
                    shards,
                    static_,
                    steal,
                });
            }
            rows.push(Table13Row { tech, skew, cells });
        }
    }
    Ok(Table13 {
        rows,
        ladder: ladder.to_vec(),
        runs: cfg.runs.clamp(1, 3),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunConfig {
        RunConfig {
            runs: 1,
            evict_iters: 160,
            script_evict_iters: 24,
            md5_bytes: 128,
            script_md5_bytes: 128,
            ld_writes: 64,
            ld_blocks: 64,
            live: false,
            faults: None,
        }
    }

    #[test]
    fn both_modes_price_every_cell() {
        let t = table13(&tiny(), &[1, 2]).unwrap();
        assert_eq!(t.rows.len(), TECHS13.len() * Skew::ALL.len());
        for row in &t.rows {
            assert_eq!(row.cells.len(), 2, "{} {}", row.tech, row.skew.name());
            for c in &row.cells {
                let st = c.static_.as_ref().unwrap();
                let ad = c.steal.as_ref().unwrap();
                for m in [st, ad] {
                    assert!(m.per_access.mean_ns > 0.0);
                    assert!(m.throughput_m > 0.0);
                    assert!(m.imbalance_pct.is_finite());
                }
                assert_eq!(st.steals, 0, "static plane must not steal");
                assert_eq!(st.diverted, 0, "static plane must not divert");
                assert!(c.speedup().is_some());
            }
            // One shard cannot be imbalanced.
            assert_eq!(row.cells[0].static_.as_ref().unwrap().imbalance_pct, 0.0);
            assert_eq!(row.cells[0].steal.as_ref().unwrap().imbalance_pct, 0.0);
        }
    }

    #[test]
    fn steal_only_runs_skip_the_static_baseline() {
        let t = table13_with(&tiny(), &[2], &[Skew::Skew9901], true).unwrap();
        assert_eq!(t.rows.len(), TECHS13.len());
        for row in &t.rows {
            assert_eq!(row.skew, Skew::Skew9901);
            let c = &row.cells[0];
            assert!(c.static_.is_none());
            assert!(c.steal.is_some());
            assert!(c.speedup().is_none());
        }
    }

    #[test]
    fn stealing_balances_the_hot_key_across_shards() {
        let t = table13(&tiny(), &[4]).unwrap();
        let row = t.row(Technology::RustNative, Skew::Skew9901).unwrap();
        let cell = &row.cells[0];
        let st = cell.static_.as_ref().unwrap();
        let ad = cell.steal.as_ref().unwrap();
        // Static placement piles ~99% of the trace on the hot key's
        // home shard; the adaptive plane spreads it.
        assert!(
            st.imbalance_pct > 100.0,
            "static 99/1 imbalance only {:.1}%",
            st.imbalance_pct
        );
        assert!(
            ad.imbalance_pct <= 5.0,
            "steal 99/1 imbalance {:.1}%",
            ad.imbalance_pct
        );
        assert!(ad.steals + ad.diverted > 0);
    }

    #[test]
    fn skew_parses_cli_spellings() {
        assert_eq!(Skew::parse("uniform"), Some(Skew::Uniform));
        assert_eq!(Skew::parse("8020"), Some(Skew::Skew8020));
        assert_eq!(Skew::parse("80-20"), Some(Skew::Skew8020));
        assert_eq!(Skew::parse("9901"), Some(Skew::Skew9901));
        assert_eq!(Skew::parse("99-1"), Some(Skew::Skew9901));
        assert_eq!(Skew::parse("zipf"), None);
    }
}
