//! Tables 1, 3, and 4: the substrate measurements.

use std::time::Duration;

use graft_api::{ExtensionEngine, GraftError, NativeEngine, RegionSpec, RegionStore};
use kernsim::measure::{diskbw, pagefault, signals};
use kernsim::stats::Sample;
use kernsim::upcall::UpcallEngine;
use kernsim::DiskModel;

use super::RunConfig;

/// Calls per round trip in the Table 1 batched-upcall harness.
pub const UPCALL_BATCH: usize = 32;

/// Table 1: signal handling time, plus the in-text upcall measurement.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// The fork-and-twenty-signals experiment (None when live
    /// measurement is disabled or unavailable).
    pub signals: Option<signals::SignalTimes>,
    /// Round-trip time of the real cross-thread upcall transport (one
    /// call per crossing).
    pub upcall_roundtrip: Sample,
    /// Per-call time of the batched invoke path: [`UPCALL_BATCH`] calls
    /// amortized over one crossing.
    pub upcall_batched: Sample,
    /// Calls per round trip in the batched measurement.
    pub batch: usize,
    /// The paper's per-signal numbers for its four platforms, for the
    /// side-by-side in EXPERIMENTS.md (µs).
    pub paper_us: [(&'static str, f64); 4],
}

/// Runs the Table 1 experiment.
pub fn table1(cfg: &RunConfig) -> Result<Table1, GraftError> {
    // Span-timed so the run artifact shows per-table wall-clock.
    let _span = graft_telemetry::span!("table1_signals");
    let sig = if cfg.live {
        signals::signal_times(cfg.runs.min(10), 200).ok()
    } else {
        None
    };
    // A no-op graft behind the upcall boundary measures bare transport.
    let noop = NativeEngine::new(
        &[RegionSpec::data("scratch", 1)],
        Box::new(|_: &str, _: &[i64], _: &mut RegionStore| Ok(0i64)),
    )?;
    let mut server = UpcallEngine::new(Box::new(noop));
    let upcall_roundtrip = server.measure_roundtrip(1_000);
    // The batched path: bind once, then UPCALL_BATCH calls per
    // rendezvous — the Logical-Disk batching argument applied to the
    // transport itself.
    let noop_id = server.bind_entry("noop")?;
    let upcall_batched = server.measure_batched(noop_id, UPCALL_BATCH, 1_000 / UPCALL_BATCH + 1);
    Ok(Table1 {
        signals: sig,
        upcall_roundtrip,
        upcall_batched,
        batch: UPCALL_BATCH,
        paper_us: [
            ("Alpha", 19.5),
            ("HP-UX", 25.8),
            ("Linux", 55.9),
            ("Solaris", 40.3),
        ],
    })
}

/// Table 3: page-fault time — measured soft faults plus the modeled
/// hard-fault rows for each read-ahead width the paper observed.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// Measured minor-fault latency on this host (None when offline).
    pub soft: Option<Sample>,
    /// Modeled hard-fault time per read-ahead width: `(pages, time)`.
    pub hard: Vec<(usize, Duration)>,
    /// The disk model used for the hard rows.
    pub model: DiskModel,
    /// The paper's fault times: `(platform, ms, pages)`.
    pub paper: [(&'static str, f64, usize); 4],
}

impl Table3 {
    /// The hard-fault time for single-page read-in (the Table 2
    /// break-even denominator on Linux/Solaris-like systems).
    pub fn hard_single_page(&self) -> Duration {
        self.hard
            .iter()
            .find(|(pages, _)| *pages == 1)
            .map(|&(_, t)| t)
            .expect("single-page row always present")
    }
}

/// Runs the Table 3 experiment against a (possibly calibrated) disk
/// model.
pub fn table3(cfg: &RunConfig, model: DiskModel) -> Table3 {
    let _span = graft_telemetry::span!("table3_pagefault");
    let soft = if cfg.live {
        pagefault::soft_fault_latency(cfg.runs.min(10), 1024).ok()
    } else {
        None
    };
    let soft_overhead = soft
        .map(|s| s.best())
        .unwrap_or(Duration::from_micros(3));
    let hard = [1usize, 4, 16]
        .into_iter()
        .map(|pages| (pages, model.page_fault(soft_overhead, 4096, pages)))
        .collect();
    Table3 {
        soft,
        hard,
        model,
        paper: [
            ("Alpha", 25.1, 16),
            ("HP-UX", 17.9, 4),
            ("Linux", 4.7, 1),
            ("Solaris", 6.9, 1),
        ],
    }
}

/// Table 4: disk write bandwidth and the derived 1 MB access time.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// Measured host bandwidth (None when offline or failed).
    pub measured: Option<diskbw::Bandwidth>,
    /// The disk model (calibrated from the measurement when available).
    pub model: DiskModel,
    /// The paper's rows: `(platform, KB/s, 1 MB access ms)`.
    pub paper: [(&'static str, f64, f64); 4],
}

impl Table4 {
    /// The 1 MB access time used as Table 5's denominator. The paper's
    /// break-even compares against the *1996-class* disk the model
    /// represents; the measured host bandwidth is reported alongside.
    pub fn megabyte_access(&self) -> Duration {
        self.model.megabyte_access()
    }
}

/// Runs the Table 4 experiment.
///
/// `calibrate` controls whether the returned model adopts the measured
/// bandwidth (useful when later tables should be judged against this
/// host's disk rather than a 1996 disk).
pub fn table4(cfg: &RunConfig, calibrate: bool) -> Table4 {
    let _span = graft_telemetry::span!("table4_diskbw");
    let measured = if cfg.live {
        diskbw::write_bandwidth(cfg.runs.min(5), 8 << 20).ok()
    } else {
        None
    };
    let model = match (&measured, calibrate) {
        (Some(bw), true) => DiskModel::with_bandwidth(bw.bytes_per_sec),
        _ => DiskModel::default(),
    };
    Table4 {
        measured,
        model,
        paper: [
            ("Alpha", 4364.0, 235.0),
            ("HP-UX", 1855.0, 552.0),
            ("Linux", 1694.0, 604.0),
            ("Solaris", 3126.0, 320.0),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offline_table3_uses_model_defaults() {
        let t = table3(&RunConfig::offline(), DiskModel::default());
        assert!(t.soft.is_none());
        assert_eq!(t.hard.len(), 3);
        // More read-ahead, more time.
        assert!(t.hard[2].1 > t.hard[0].1);
        // Single-page hard fault lands in the paper's 4–30 ms band.
        let ms = t.hard_single_page().as_secs_f64() * 1e3;
        assert!((4.0..40.0).contains(&ms), "{ms}ms");
    }

    #[test]
    fn offline_table4_reports_the_default_model() {
        let t = table4(&RunConfig::offline(), true);
        assert!(t.measured.is_none());
        let ms = t.megabyte_access().as_millis();
        assert!((200..700).contains(&ms));
    }

    #[test]
    fn table1_upcall_transport_is_measurable_offline() {
        let t = table1(&RunConfig::offline()).unwrap();
        assert!(t.signals.is_none());
        assert!(t.upcall_roundtrip.mean_ns > 0.0);
        assert!(t.upcall_batched.mean_ns > 0.0);
        assert_eq!(t.batch, UPCALL_BATCH);
        assert!(t.batch >= 16, "Table 1 must batch many calls per crossing");
        // Batching must amortize the rendezvous: per-call time strictly
        // below the single-call round trip.
        assert!(
            t.upcall_batched.min_ns < t.upcall_roundtrip.min_ns,
            "batched={} single={}",
            t.upcall_batched.min_ns,
            t.upcall_roundtrip.min_ns
        );
    }

    #[test]
    fn live_table1_and_table3_produce_host_numbers() {
        let cfg = RunConfig {
            runs: 3,
            ..RunConfig::quick()
        };
        let t1 = table1(&cfg).unwrap();
        if let Some(sig) = t1.signals {
            assert!(sig.per_signal_us >= 0.0);
        }
        let t3 = table3(&cfg, DiskModel::default());
        assert!(t3.soft.is_some());
    }
}
