//! Table 12 (ours): the price of the flight recorder, and the
//! postmortem drill that proves it earns its keep.
//!
//! The tracing layer has three runtime modes:
//!
//! * **off** — `--no-telemetry`: every counter, histogram, and trace
//!   hook is behind one relaxed load that fails.
//! * **gated** — telemetry on, flight recorder disarmed (the default):
//!   counters and histograms record, the per-dispatch trace arm is a
//!   dead branch.
//! * **recording** — `--trace`: every dispatch mints a causal
//!   [`graft_telemetry::TraceId`], and every chain step appends a
//!   fixed-size event to the host's thread-confined ring.
//!
//! For every technology row this experiment re-runs Table 7's baseline
//! rig — a well-behaved eviction graft serving the VM pager through
//! [`GraftHost`] under the 80/20-skewed workload — once per mode, and
//! reports ns per pager access plus each mode's overhead over *off*.
//! Measuring per access (not per bare dispatch) prices the recorder
//! where it runs in production: on a workload whose hot path the
//! kernel actually dispatches from.
//!
//! The second half is the **quarantine drill**: a Table 7-style
//! DivByZero saboteur is installed alone and dispatched until the
//! supervisor detaches it (trap_threshold strikes), once under the
//! scalar [`GraftHost`] and once under a 4-shard [`ShardedHost`]
//! driven through seeded [`VirtualShards`]. Both hosts must emit a
//! [`PostmortemReport`] whose event tail reconstructs the exact
//! trapped invocations — compared via [`TraceEvent::semantics`], which
//! ignores timestamps and shard placement and keeps what the
//! supervisor acted on: attach point, technology, verdict, trap kind.

use graft_api::{GraftError, Technology};
use graft_kernel::{shared, AttachPoint, GraftHost, HostedEviction, PostmortemReport, ShardedHost, VirtualShards};
use graft_telemetry::TraceEvent;
use grafts::eviction;
use kernsim::stats::Sample;
use kernsim::vm::Pager;

use super::table7::{hostile_spec, FRAMES, HOT_PAGES, PAGES};
use super::tables::ROW_ORDER;
use super::RunConfig;
use crate::manager::GraftManager;

/// The seed the drill's virtual-shard interleaving replays.
pub const DRILL_SEED: u64 = 42;

/// Worker shards in the drill's sharded host.
pub const DRILL_SHARDS: usize = 4;

/// One technology's tracing-overhead measurements.
#[derive(Debug, Clone)]
pub struct Table12Row {
    /// Technology hosting the eviction tenant.
    pub tech: Technology,
    /// ns per pager access with telemetry disabled at runtime.
    pub off: Sample,
    /// ns per pager access with metrics on, flight recorder off.
    pub gated: Sample,
    /// ns per pager access with the flight recorder armed.
    pub recording: Sample,
    /// `(gated - off) / off`, in percent, over the robust estimates.
    pub gated_overhead_pct: f64,
    /// `(recording - off) / off`, in percent, over the robust
    /// estimates.
    pub recording_overhead_pct: f64,
}

/// The scalar-vs-sharded postmortem drill.
#[derive(Debug, Clone)]
pub struct Table12Drill {
    /// Technology the saboteur ran under.
    pub tech: Technology,
    /// Interleaving seed ([`DRILL_SEED`]).
    pub seed: u64,
    /// The supervisor's trap threshold during the drill.
    pub trap_threshold: u32,
    /// Shards in the sharded half ([`DRILL_SHARDS`]).
    pub shards: usize,
    /// Whether the flight recorder was actually armable (false when
    /// telemetry is compiled out; tails are then empty).
    pub traced: bool,
    /// The scalar host's postmortem report.
    pub scalar: Option<PostmortemReport>,
    /// The sharded host's postmortem report, with its tail re-adopted
    /// from the merged cross-shard timeline.
    pub sharded: Option<PostmortemReport>,
    /// Trapped invocations in the scalar report's event tail.
    pub scalar_trapped: usize,
    /// Trapped invocations in the sharded report's event tail.
    pub sharded_trapped: usize,
    /// Events the scalar recorder retained over the whole drill.
    pub scalar_events: usize,
    /// Events in the merged cross-shard timeline.
    pub sharded_events: usize,
    /// Whether both tails reconstruct the same trapped invocations
    /// (semantics-for-semantics), and — when the recorder was armed —
    /// exactly `trap_threshold` of them.
    pub tails_match: bool,
}

/// Table 12: per-technology tracing overhead plus the drill.
#[derive(Debug, Clone)]
pub struct Table12 {
    /// Rows, in [`ROW_ORDER`].
    pub rows: Vec<Table12Row>,
    /// The scalar-vs-sharded postmortem drill.
    pub drill: Table12Drill,
    /// Timed repetitions per mode.
    pub runs: usize,
}

impl Table12 {
    /// The row for a technology.
    pub fn row(&self, tech: Technology) -> Option<&Table12Row> {
        self.rows.iter().find(|r| r.tech == tech)
    }

    /// The largest per-technology recording overhead, in percent.
    pub fn worst_recording_pct(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.recording_overhead_pct)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The largest per-technology gated overhead, in percent.
    pub fn worst_gated_pct(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.gated_overhead_pct)
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Restores the ambient telemetry mode when the experiment exits,
/// even on an error path: the measurement flips the process-wide
/// toggles and must not leak its last mode to later experiments.
struct ModeGuard {
    enabled: bool,
    tracing: bool,
}

impl ModeGuard {
    fn capture() -> Self {
        ModeGuard {
            enabled: graft_telemetry::enabled(),
            tracing: graft_telemetry::tracing_configured(),
        }
    }
}

impl Drop for ModeGuard {
    fn drop(&mut self) {
        graft_telemetry::set_enabled(self.enabled);
        graft_telemetry::set_tracing(self.tracing);
    }
}

/// Accesses per measured mode for a technology (script and user-level
/// rows use reduced counts, as in Tables 2 and 7). The floors keep
/// each measured run long enough — hundreds of microseconds even on
/// the cheap rows — that timer granularity and scheduler blips
/// amortize to well under a percent; an overhead gate on a
/// single-digit-microsecond run would be measuring clock noise.
fn accesses_for(cfg: &RunConfig, tech: Technology) -> usize {
    match tech {
        Technology::Script => cfg.script_evict_iters.max(2048),
        Technology::UserLevel => (cfg.evict_iters / 10).max(128),
        _ => cfg.evict_iters.max(1024),
    }
}

/// Percent overhead of `mode` over `off`, on the robust estimates.
fn overhead_pct(off: &Sample, mode: &Sample) -> f64 {
    if off.min_ns == 0.0 {
        0.0
    } else {
        (mode.min_ns - off.min_ns) / off.min_ns * 100.0
    }
}

fn price_row(
    cfg: &RunConfig,
    manager: &GraftManager,
    tech: Technology,
) -> Result<Table12Row, GraftError> {
    let good = manager.load(&eviction::spec(), tech)?;
    let host = shared(GraftHost::new());
    let _tenant = host
        .borrow_mut()
        .install(AttachPoint::VmEvict, "tenant", good)?;
    let mut policy = HostedEviction::new(host.clone());
    policy.set_hot((0..HOT_PAGES).collect());
    let mut pager = Pager::new(FRAMES, policy);

    let accesses = accesses_for(cfg, tech);
    let workload: Vec<u64> = logdisk::workload::skewed(PAGES, accesses as u64, 42).collect();
    let runs = cfg.runs.clamp(3, 7);
    let mut idx = 0usize;

    // Steady state before any phase: from the first measured access
    // on, a miss is an eviction and an eviction is a traced dispatch.
    for p in 0..FRAMES as u64 {
        pager.access(2 * PAGES as u64 + p);
    }

    // The three modes are timed *interleaved* — one rep of each per
    // cycle — so a slow scheduling window on a shared machine inflates
    // all three samples together and cancels out of the overhead
    // ratios, instead of landing on whichever mode owned that window.
    // (Measured back-to-back per mode, the robust min still gated a
    // +30% phantom overhead whenever a neighbor ran during one mode's
    // reps.)
    let one_rep = |pager: &mut Pager<HostedEviction>, idx: &mut usize| {
        let start = std::time::Instant::now();
        for _ in 0..accesses {
            pager.access(workload[*idx % workload.len()]);
            *idx += 1;
        }
        start.elapsed() / accesses as u32
    };
    let mut off_reps = Vec::with_capacity(runs);
    let mut gated_reps = Vec::with_capacity(runs);
    let mut recording_reps = Vec::with_capacity(runs);
    for cycle in 0..=runs {
        // Mode 1 — off: the `--no-telemetry` configuration.
        graft_telemetry::set_enabled(false);
        graft_telemetry::set_tracing(false);
        let off_d = one_rep(&mut pager, &mut idx);
        // Mode 2 — gated: metrics on, the trace arm dead.
        graft_telemetry::set_enabled(true);
        let gated_d = one_rep(&mut pager, &mut idx);
        // Mode 3 — recording: the flight recorder armed.
        graft_telemetry::set_tracing(true);
        let recording_d = one_rep(&mut pager, &mut idx);
        graft_telemetry::set_tracing(false);
        if cycle == 0 {
            continue; // warm-up cycle: every mode primed, none recorded
        }
        off_reps.push(off_d);
        gated_reps.push(gated_d);
        recording_reps.push(recording_d);
    }
    let off = Sample::from_runs(&off_reps);
    let gated = Sample::from_runs(&gated_reps);
    let recording = Sample::from_runs(&recording_reps);
    host.borrow_mut().flush();

    Ok(Table12Row {
        tech,
        gated_overhead_pct: overhead_pct(&off, &gated),
        recording_overhead_pct: overhead_pct(&off, &recording),
        off,
        gated,
        recording,
    })
}

/// The semantics triples of a report's trapped tail, oldest first.
fn trapped_semantics(pm: Option<&PostmortemReport>) -> Vec<(u8, u8, u8, i64)> {
    pm.map(|p| p.trapped_events().iter().map(TraceEvent::semantics).collect())
        .unwrap_or_default()
}

fn drill(manager: &GraftManager) -> Result<Table12Drill, GraftError> {
    let tech = Technology::SafeCompiled;
    // The drill arms the recorder unconditionally: postmortem tails
    // are the artifact under test. (The ModeGuard up in `table12`
    // restores the ambient mode.)
    graft_telemetry::set_enabled(true);
    graft_telemetry::set_tracing(true);
    let traced = graft_telemetry::tracing();

    // Scalar half: the saboteur alone on the eviction chain.
    let mut single = GraftHost::new();
    let threshold = single.config().trap_threshold;
    let bad = single.install(
        AttachPoint::VmEvict,
        "saboteur",
        manager.load(&hostile_spec(), tech)?,
    )?;
    let bound = 4 * u64::from(threshold) + 8;
    let mut n = 0u64;
    while !single.is_quarantined(bad) && n < bound {
        let _ = single.dispatch(AttachPoint::VmEvict, |_| Ok(vec![9, 3]));
        n += 1;
    }
    single.flush();
    let scalar_events = single.trace_events().len();
    let scalar = single.take_postmortems().into_iter().next();

    // Sharded half: same saboteur, 4 shards, seeded interleaving. The
    // strikes accumulate in the shared ledger across shards; whichever
    // shard lands the third trap wins the detach and captures the
    // report, whose tail is then re-adopted from the merged timeline
    // (traps may have landed on shards the winner never saw).
    let mut sharded = ShardedHost::new(DRILL_SHARDS);
    let bad2 = sharded.install(
        AttachPoint::VmEvict,
        "saboteur",
        manager.load(&hostile_spec(), tech)?,
    )?;
    let mut vs = VirtualShards::new(&mut sharded, DRILL_SEED);
    let mut n = 0u64;
    while !sharded.is_quarantined(bad2) && n < bound {
        let _ = vs.dispatch(AttachPoint::VmEvict, |_| Ok(vec![9, 3]));
        n += 1;
    }
    vs.flush_all();
    let merged = vs.merged_timeline();
    let sharded_events = merged.len();
    let mut sharded_pm = sharded.take_postmortems().into_iter().next();
    if let Some(pm) = sharded_pm.as_mut() {
        pm.adopt_tail(&merged);
        // Likewise for the ledger: traps that struck on shards the
        // winner never saw reach the shared totals at flush time.
        if let Some(ledger) = sharded.ledger(bad2) {
            pm.adopt_ledger(ledger);
        }
    }

    let scalar_sem = trapped_semantics(scalar.as_ref());
    let sharded_sem = trapped_semantics(sharded_pm.as_ref());
    let tails_match = scalar.is_some()
        && sharded_pm.is_some()
        && scalar_sem == sharded_sem
        && (!traced || scalar_sem.len() == threshold as usize);

    Ok(Table12Drill {
        tech,
        seed: DRILL_SEED,
        trap_threshold: threshold,
        shards: DRILL_SHARDS,
        traced,
        scalar_trapped: scalar_sem.len(),
        sharded_trapped: sharded_sem.len(),
        scalar,
        sharded: sharded_pm,
        scalar_events,
        sharded_events,
        tails_match,
    })
}

/// Runs the Table 12 experiment.
pub fn table12(cfg: &RunConfig) -> Result<Table12, GraftError> {
    let _span = graft_telemetry::span!("table12_trace");
    let _guard = ModeGuard::capture();
    let manager = GraftManager::new();
    let mut rows = Vec::new();
    for tech in ROW_ORDER {
        rows.push(price_row(cfg, &manager, tech)?);
    }
    let drill = drill(&manager)?;
    Ok(Table12 {
        rows,
        drill,
        runs: cfg.runs.clamp(3, 7),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_api::TrapKind;

    fn tiny() -> RunConfig {
        RunConfig {
            runs: 2,
            evict_iters: 200,
            script_evict_iters: 24,
            md5_bytes: 128,
            script_md5_bytes: 128,
            ld_writes: 64,
            ld_blocks: 64,
            live: false,
            faults: None,
        }
    }

    #[test]
    fn every_row_prices_all_three_modes() {
        let before = (graft_telemetry::enabled(), graft_telemetry::tracing_configured());
        let t = table12(&tiny()).unwrap();
        assert_eq!(t.rows.len(), ROW_ORDER.len());
        for row in &t.rows {
            assert!(row.off.mean_ns > 0.0, "{}", row.tech);
            assert!(row.gated.mean_ns > 0.0, "{}", row.tech);
            assert!(row.recording.mean_ns > 0.0, "{}", row.tech);
            assert!(row.gated_overhead_pct.is_finite());
            assert!(row.recording_overhead_pct.is_finite());
        }
        // The experiment restores the ambient telemetry mode.
        assert_eq!(
            (graft_telemetry::enabled(), graft_telemetry::tracing_configured()),
            before
        );
    }

    #[test]
    fn drill_tails_reconstruct_the_detach_on_both_hosts() {
        let t = table12(&tiny()).unwrap();
        let d = &t.drill;
        assert!(d.tails_match, "{d:?}");
        let scalar = d.scalar.as_ref().expect("scalar postmortem");
        let sharded = d.sharded.as_ref().expect("sharded postmortem");
        assert_eq!(scalar.reason, TrapKind::DivByZero);
        assert_eq!(sharded.reason, TrapKind::DivByZero);
        assert_eq!(scalar.ledger.traps, u64::from(d.trap_threshold));
        assert_eq!(sharded.ledger.traps, u64::from(d.trap_threshold));
        assert_eq!(scalar.shard, None);
        assert!(sharded.shard.is_some());
        if d.traced {
            // The recorder was armed: the tails carry exactly the
            // trapped invocations, event for event.
            assert_eq!(d.scalar_trapped, d.trap_threshold as usize);
            assert_eq!(d.sharded_trapped, d.trap_threshold as usize);
            assert!(d.scalar_events >= d.scalar_trapped);
            assert!(d.sharded_events >= d.sharded_trapped);
        } else {
            // Telemetry compiled out: reports survive, tails empty.
            assert_eq!(d.scalar_trapped, 0);
            assert_eq!(d.sharded_trapped, 0);
        }
    }
}
