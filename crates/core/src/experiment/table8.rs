//! Table 8 (ours): sharded multi-core graft dispatch.
//!
//! The paper's measurements are single-processor; its premise — kernel
//! extensions on every hot path — collides with the multi-core kernels
//! that came after it. This experiment measures how each technology's
//! dispatch scales when the graft host is *sharded*: N worker shards,
//! each owning a thread-confined replica of every installed graft
//! (forked through [`graft_api::ExtensionEngine::fork_for_shard`]), no
//! locks anywhere on the dispatch path.
//!
//! For every technology row and every shard count in the ladder
//! (1/2/4/8 by default, or pinned with `--shards N`):
//!
//! 1. A well-behaved eviction graft is installed in a
//!    [`ShardedHost`], which forks one engine replica per shard.
//! 2. Each shard runs its own VM pager (the same [`HostedEviction`]
//!    adapter the scalar kernel uses) over an 80/20-skewed page
//!    workload, so every cold miss is an eviction and every eviction is
//!    a dispatch through that shard's replica.
//! 3. Each shard's busy time is measured **in isolation** (shards run
//!    one at a time), and the aggregate throughput is computed over the
//!    *critical path* — the slowest shard's duration. On a machine with
//!    at least N idle cores the critical path **is** the wall clock;
//!    measuring shard-at-a-time makes the number deterministic and
//!    honest on the single-core CI container this reproduction runs in,
//!    where truly concurrent threads would just time-slice one core.
//!    (The concurrency itself — cross-shard quarantine, epoch
//!    propagation, ledger merging under real threads — is exercised by
//!    the shard property and fault-injection suites, not priced here.)
//!
//! Scaling efficiency is reported per cell as
//! `(T_S / S) / (T_S0 / S0)` against the first rung of the ladder: 1.0
//! means perfectly linear scaling, lower means the per-shard dispatch
//! got slower as shards were added (shared-state contention, colder
//! caches, fork overheads).

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use graft_api::{GraftError, Technology};
use graft_kernel::{AttachPoint, HostedEviction, ShardHandle, ShardedHost};
use grafts::eviction;
use kernsim::stats::Sample;
use kernsim::vm::Pager;

use super::table7::{FRAMES, HOT_PAGES, PAGES};
use super::tables::ROW_ORDER;
use super::RunConfig;
use crate::manager::GraftManager;

/// The default shard ladder.
pub const LADDER: [usize; 4] = [1, 2, 4, 8];

/// One technology at one shard count.
#[derive(Debug, Clone)]
pub struct Table8Cell {
    /// Worker shards in the host.
    pub shards: usize,
    /// Aggregate ns per access: critical-path time divided by the
    /// *total* accesses across all shards. Falls as shards are added.
    pub per_access: Sample,
    /// Aggregate dispatch throughput in million accesses/second,
    /// computed from the best (fastest) run's critical path.
    pub throughput_m: f64,
    /// Scaling efficiency vs the ladder's first rung (1.0 = linear).
    pub efficiency: f64,
    /// Total accesses per measured run, summed over shards.
    pub accesses: usize,
}

/// One technology's scaling curve.
#[derive(Debug, Clone)]
pub struct Table8Row {
    /// Technology hosting the graft on every shard.
    pub tech: Technology,
    /// One cell per ladder rung, in ladder order.
    pub cells: Vec<Table8Cell>,
}

impl Table8Row {
    /// The cell at a shard count.
    pub fn cell(&self, shards: usize) -> Option<&Table8Cell> {
        self.cells.iter().find(|c| c.shards == shards)
    }

    /// Aggregate speedup of `shards` over the ladder's first rung.
    pub fn speedup(&self, shards: usize) -> Option<f64> {
        let base = self.cells.first()?;
        let cell = self.cell(shards)?;
        Some(cell.throughput_m / base.throughput_m)
    }
}

/// Table 8: per-technology dispatch scaling across the shard ladder.
#[derive(Debug, Clone)]
pub struct Table8 {
    /// Rows, in [`ROW_ORDER`].
    pub rows: Vec<Table8Row>,
    /// The shard counts measured, ascending.
    pub ladder: Vec<usize>,
    /// Timing runs per cell.
    pub runs: usize,
}

impl Table8 {
    /// The row for a technology.
    pub fn row(&self, tech: Technology) -> Option<&Table8Row> {
        self.rows.iter().find(|r| r.tech == tech)
    }
}

/// Accesses per measured run for a technology, *summed over shards*
/// (script and user-level rows use reduced counts, as in Table 2/7).
fn accesses_for(cfg: &RunConfig, tech: Technology) -> usize {
    match tech {
        Technology::Script => cfg.script_evict_iters.max(48),
        Technology::UserLevel => (cfg.evict_iters / 10).max(64),
        _ => cfg.evict_iters.max(64),
    }
}

/// One shard's measurement rig: a pager whose eviction policy
/// dispatches through this shard's handle, plus its private slice of
/// the skewed workload.
struct ShardRig {
    handle: Rc<RefCell<ShardHandle>>,
    pager: Pager<HostedEviction<Rc<RefCell<ShardHandle>>>>,
    workload: Vec<u64>,
    idx: usize,
}

impl ShardRig {
    fn new(handle: ShardHandle, shard: usize, accesses: usize) -> ShardRig {
        let handle = Rc::new(RefCell::new(handle));
        let mut policy = HostedEviction::new(handle.clone());
        policy.set_hot((0..HOT_PAGES).collect());
        let mut pager = Pager::new(FRAMES, policy);
        // Pre-fill the frames with throwaway pages so every measured
        // access runs at steady state: a miss is an eviction, and an
        // eviction is a dispatch through this shard's replica.
        for p in 0..FRAMES as u64 {
            pager.access(2 * PAGES as u64 + p);
        }
        // Each shard streams its own 80/20-skewed page slice (distinct
        // seed per shard, same distribution).
        let workload: Vec<u64> =
            logdisk::workload::skewed(PAGES, accesses as u64, 42 + shard as u64).collect();
        ShardRig {
            handle,
            pager,
            workload,
            idx: 0,
        }
    }

    /// Runs `n` accesses and returns this shard's busy time.
    fn run(&mut self, n: usize) -> std::time::Duration {
        let start = Instant::now();
        for _ in 0..n {
            self.pager.access(self.workload[self.idx % self.workload.len()]);
            self.idx += 1;
        }
        start.elapsed()
    }
}

fn cell(
    cfg: &RunConfig,
    manager: &GraftManager,
    tech: Technology,
    shards: usize,
) -> Result<(Table8Cell, u64), GraftError> {
    let engine = manager.load(&eviction::spec(), tech)?;
    let mut host = ShardedHost::new(shards);
    host.install(AttachPoint::VmEvict, "tenant", engine)?;

    let total = accesses_for(cfg, tech);
    let per_shard = (total / shards).max(1);
    let total = per_shard * shards;
    let runs = cfg.runs.clamp(1, 5);

    let mut rigs: Vec<ShardRig> = host
        .take_handles()
        .into_iter()
        .enumerate()
        .map(|(i, h)| ShardRig::new(h, i, per_shard * runs))
        .collect();

    // Shard-at-a-time: each shard's busy time in isolation; the
    // critical path (the slowest shard) is the run's wall clock on a
    // machine with >= `shards` idle cores.
    let mut criticals = Vec::with_capacity(runs);
    for _ in 0..runs {
        let mut slowest = std::time::Duration::ZERO;
        for rig in &mut rigs {
            slowest = slowest.max(rig.run(per_shard));
        }
        criticals.push(slowest);
    }

    // Tear the rigs down (pager -> adapter -> handle) so every shard's
    // private ledger merges into the shared totals before we read them.
    for rig in rigs {
        drop(rig.pager);
        drop(rig.handle);
    }
    let dispatches = host.stats().dispatches;

    let per_access = Sample::from_runs(&criticals).per(total);
    let throughput_m = total as f64 * 1e3 / Sample::from_runs(&criticals).best_ns();
    Ok((
        Table8Cell {
            shards,
            per_access,
            throughput_m,
            efficiency: f64::NAN, // filled in once the base rung is known
            accesses: total,
        },
        dispatches,
    ))
}

/// Runs the Table 8 experiment over `ladder` (ascending shard counts;
/// pass `&LADDER` for the default 1/2/4/8).
pub fn table8(cfg: &RunConfig, ladder: &[usize]) -> Result<Table8, GraftError> {
    let _span = graft_telemetry::span!("table8_shards");
    assert!(!ladder.is_empty(), "empty shard ladder");
    let manager = GraftManager::new();
    let mut rows = Vec::new();
    for tech in ROW_ORDER {
        let mut cells = Vec::new();
        for &shards in ladder {
            let (c, dispatches) = cell(cfg, &manager, tech, shards)?;
            debug_assert!(dispatches > 0, "{tech}: no dispatch reached the host");
            cells.push(c);
        }
        // Efficiency against the ladder's first rung, per shard.
        let base = cells[0].throughput_m / cells[0].shards as f64;
        for c in &mut cells {
            c.efficiency = (c.throughput_m / c.shards as f64) / base;
        }
        rows.push(Table8Row { tech, cells });
    }
    Ok(Table8 {
        rows,
        ladder: ladder.to_vec(),
        runs: cfg.runs.clamp(1, 5),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunConfig {
        RunConfig {
            runs: 2,
            evict_iters: 160,
            script_evict_iters: 24,
            md5_bytes: 128,
            script_md5_bytes: 128,
            ld_writes: 64,
            ld_blocks: 64,
            live: false,
            faults: None,
        }
    }

    #[test]
    fn every_technology_scales_across_the_ladder() {
        let t = table8(&tiny(), &[1, 2]).unwrap();
        assert_eq!(t.rows.len(), ROW_ORDER.len());
        for row in &t.rows {
            assert_eq!(row.cells.len(), 2, "{}", row.tech);
            for c in &row.cells {
                assert!(c.per_access.mean_ns > 0.0, "{}", row.tech);
                assert!(c.throughput_m > 0.0, "{}", row.tech);
                assert!(c.efficiency.is_finite(), "{}", row.tech);
                assert!(c.accesses > 0);
            }
            // The base rung's efficiency is 1.0 by construction.
            assert!((row.cells[0].efficiency - 1.0).abs() < 1e-9);
            assert!(row.speedup(2).is_some());
        }
    }

    #[test]
    fn native_row_gains_from_sharding() {
        // Critical-path throughput at 4 shards should comfortably beat
        // 1 shard for the cheapest dispatch path. Debug-build CI noise
        // makes per-run times jumpy, so the test bound (1.5x) is looser
        // than the committed artifact's headline (>= 2.5x), which
        // verify.sh gates on a release-build run.
        let mut cfg = tiny();
        cfg.runs = 3;
        cfg.evict_iters = 400;
        let t = table8(&cfg, &[1, 4]).unwrap();
        let native = t.row(Technology::RustNative).unwrap();
        let speedup = native.speedup(4).unwrap();
        assert!(speedup > 1.5, "4-shard speedup only {speedup:.2}x");
    }
}
