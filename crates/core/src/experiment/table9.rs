//! Table 9 (ours): graft recovery — crash-consistent state salvage,
//! map rebuild, and time-to-recovery under fault injection.
//!
//! The paper's containment story ends at detach: unload the extension
//! and keep going. For the **black box** class that is not enough —
//! the Logical Disk's logical→physical map lives *inside* the graft,
//! so a bare detach corrupts the kernel's view of the disk. This
//! experiment prices the full recovery path, per technology:
//!
//! 1. **snapshot** — an explicit live checkpoint of the graft's
//!    salvage plan ([`GraftHost::salvage_now`]): the cost of lifting
//!    the map out of a healthy engine through the `snapshot_region`
//!    seam.
//! 2. **salvage-detach** — a time-bomb Logical Disk graft
//!    ([`grafts::logdisk::spec_bomb_sized`]) traps mid-run; we time
//!    the whole supervisor response: trap → quarantine → salvage →
//!    [`GraftHost::take_salvage`].
//! 3. **restore** — re-seeding a fresh replacement engine from the
//!    salvaged state ([`SalvagedState::restore_into`]).
//! 4. **degraded mode** — the built-in [`LogicalDisk`] adopts the
//!    salvaged map ([`LogicalDisk::with_map`]) and serves the rest of
//!    the write stream. Correctness is absolute: block-for-block
//!    equality against an oracle that never crashed (`lost_mappings`
//!    must be 0), and a degraded-mode service cost — priced through
//!    the deterministic [`DiskModel`], one modeled segment write per
//!    flush — within 5% of a built-in that never failed over
//!    (`post_over_base`).
//!
//! Alongside the rows, one technology-independent **crash drill**
//! routes the segment writes through a seeded [`FaultyDisk`] that
//! injects transient I/O errors, torn writes, and one mid-run crash.
//! The crash interrupts a segment write, so that segment's summary
//! block never becomes durable: recovery discards it
//! ([`LogicalDisk::crash_with_unpersisted`]), replays the surviving
//! summaries ([`LogicalDisk::rebuild_map`]), and redoes the lost
//! writes. The drill reports the rebuild cost, the end-to-end
//! time-to-recovery, and — again — zero lost mappings against the
//! no-crash oracle.
//!
//! [`GraftHost::salvage_now`]: graft_kernel::GraftHost::salvage_now
//! [`GraftHost::take_salvage`]: graft_kernel::GraftHost::take_salvage
//! [`SalvagedState::restore_into`]: graft_kernel::SalvagedState::restore_into
//! [`LogicalDisk`]: logdisk::LogicalDisk
//! [`LogicalDisk::with_map`]: logdisk::LogicalDisk::with_map
//! [`LogicalDisk::crash_with_unpersisted`]: logdisk::LogicalDisk::crash_with_unpersisted
//! [`LogicalDisk::rebuild_map`]: logdisk::LogicalDisk::rebuild_map
//! [`FaultyDisk`]: kernsim::FaultyDisk

use std::time::{Duration, Instant};

use graft_api::{GraftError, Technology};
use graft_kernel::{AttachPoint, GraftHost, HostConfig};
use grafts::logdisk as ld_graft;
use kernsim::stats::Sample;
use kernsim::{DiskFault, DiskModel, FaultPlan, FaultStats, FaultyDisk};
use logdisk::{LdConfig, LogicalDisk};

use super::micro::UPCALL_BATCH;
use super::tables::ROW_ORDER;
use super::RunConfig;
use crate::manager::GraftManager;

/// One technology's recovery measurements.
#[derive(Debug, Clone)]
pub struct Table9Row {
    /// Technology hosting the Logical Disk graft.
    pub tech: Technology,
    /// Live checkpoint: `salvage_now` on a healthy graft.
    pub snapshot: Sample,
    /// Trap → quarantine → salvage → `take_salvage`, end to end.
    pub salvage_detach: Sample,
    /// Re-seeding a fresh replacement engine from the salvaged state.
    pub restore: Sample,
    /// Salvage-detach plus the built-in's adoption of the map: the
    /// wall-clock from the trap to degraded-mode service.
    pub recovery: Duration,
    /// Words lifted out of the trapped engine per salvage.
    pub salvaged_words: usize,
    /// Blocks where the degraded-mode map diverges from the no-crash
    /// oracle after serving the rest of the stream. Must be 0.
    pub lost_mappings: u64,
    /// Degraded-mode service cost relative to the never-failed
    /// built-in, priced through the deterministic [`DiskModel`] (one
    /// modeled segment write per flush while serving the identical
    /// tail). 1.0 is a perfect hand-off; below 1.0 the adopted state
    /// costs more to serve. Deterministic under seed replay.
    pub post_over_base: f64,
    /// Writes the graft bookkept before the bomb went off.
    pub populated: usize,
}

/// The technology-independent crash drill.
#[derive(Debug, Clone)]
pub struct Table9Crash {
    /// Charged I/Os after which the injected crash fired.
    pub crash_after_ios: u64,
    /// `rebuild_map` cost at the crash-time summary population.
    pub rebuild: Sample,
    /// Crash → discard torn segment → rebuild → redo, end to end.
    pub time_to_recovery: Duration,
    /// Mapping entries replayed from durable summary blocks.
    pub replayed: u64,
    /// Writes redone because their segment never became durable.
    pub redone: usize,
    /// Blocks diverging from the no-crash oracle at end of run. Must
    /// be 0.
    pub lost_mappings: u64,
    /// Fault-injection accounting for the whole drill.
    pub faults: FaultStats,
}

/// Table 9: per-technology recovery rows plus the crash drill.
#[derive(Debug, Clone)]
pub struct Table9 {
    /// Rows, in [`ROW_ORDER`] (no script row, as in Table 6).
    pub rows: Vec<Table9Row>,
    /// The fault-injected crash/rebuild drill.
    pub crash: Table9Crash,
    /// Write-stream length per row (base technologies).
    pub writes: usize,
    /// Logical blocks on the disk (= salvaged map words).
    pub blocks: usize,
    /// The fault plan the drill ran under.
    pub plan: FaultPlan,
    /// Timed repetitions per measurement.
    pub runs: usize,
}

impl Table9 {
    /// The row for a technology.
    pub fn row(&self, tech: Technology) -> Option<&Table9Row> {
        self.rows.iter().find(|r| r.tech == tech)
    }

    /// Total mappings lost across all rows and the drill (the
    /// verify-script gate: must be 0).
    pub fn lost_total(&self) -> u64 {
        self.rows.iter().map(|r| r.lost_mappings).sum::<u64>() + self.crash.lost_mappings
    }
}

/// Writes the graft bookkeeps before the bomb goes off, segment-aligned
/// so the salvaged map hands over on a clean segment boundary (and the
/// user-level row keeps its upcall count civil).
fn populate_for(cfg: &RunConfig, tech: Technology) -> usize {
    let writes = if tech == Technology::UserLevel {
        (cfg.ld_writes / 20).max(32)
    } else {
        cfg.ld_writes / 2
    };
    (writes / 16).max(1) * 16
}

fn recovery_row(
    cfg: &RunConfig,
    manager: &GraftManager,
    tech: Technology,
    stream: &[i64],
) -> Result<Table9Row, GraftError> {
    let blocks = cfg.ld_blocks;
    let spec = ld_graft::spec_bomb_sized(blocks);
    let mut engine = manager.load(&spec, tech)?;
    ld_graft::init_map(engine.as_mut(), blocks)?;

    // Populate: the graft bookkeeps the first half of the stream
    // (batched, so the user-level row amortizes its upcalls).
    let half = populate_for(cfg, tech).min(stream.len());
    let ld_write = engine.bind_entry("ld_write")?;
    let mut results = Vec::with_capacity(UPCALL_BATCH);
    for chunk in stream[..half].chunks(UPCALL_BATCH) {
        results.clear();
        engine.invoke_batch(ld_write, chunk.len(), chunk, &mut results)?;
    }

    // Install under a hair-trigger supervisor: the bomb is the third
    // strike all by itself.
    let mut host = GraftHost::with_config(HostConfig {
        trap_threshold: 1,
        ..HostConfig::default()
    });
    let id = host.install(AttachPoint::DiskWrite, "logical-disk", engine)?;
    host.set_salvage_plan(id, &["map"])?;

    let runs = if tech == Technology::UserLevel {
        cfg.runs.clamp(1, 2)
    } else {
        cfg.runs.clamp(1, 5)
    };

    // Phase 1 — live checkpoint of a healthy graft.
    let mut snaps = Vec::with_capacity(runs);
    for _ in 0..runs {
        let t0 = Instant::now();
        let s = host.salvage_now(id).expect("live salvage succeeds");
        snaps.push(t0.elapsed());
        debug_assert_eq!(s.words(), blocks);
    }
    let snapshot = Sample::from_runs(&snaps);

    // Phase 2 — the bomb goes off; time the supervisor's whole
    // response. The trap fires *before* any bookkeeping, so the map the
    // supervisor lifts out is exactly the populate-time state — which
    // is why the runs can repeat after a readmit.
    let mut detaches = Vec::with_capacity(runs);
    let mut salvage = None;
    for run in 0..runs {
        if run > 0 {
            assert!(host.readmit(id), "{tech}: readmit from quarantine");
        }
        host.engine_mut(id)
            .expect("graft installed")
            .invoke("ld_arm", &[1])?;
        let next = stream[half % stream.len()];
        let t0 = Instant::now();
        let err = host.invoke(id, &[next]);
        let s = host.take_salvage(id);
        detaches.push(t0.elapsed());
        assert!(
            matches!(err, Err(GraftError::Trap(_))),
            "{tech}: bomb must trap, got {err:?}"
        );
        assert!(host.is_quarantined(id), "{tech}: supervisor must detach");
        salvage = Some(s.expect("supervisor salvaged the map"));
    }
    let salvage_detach = Sample::from_runs(&detaches);
    let salvage = salvage.expect("at least one run");
    let salvaged_words = salvage.words();

    // Phase 3 — re-seed a fresh replacement engine from the salvage.
    let mut replacement = manager.load(&ld_graft::spec_sized(blocks), tech)?;
    ld_graft::init_map(replacement.as_mut(), blocks)?;
    let mut restores = Vec::with_capacity(runs);
    for _ in 0..runs {
        let t0 = Instant::now();
        salvage.restore_into(replacement.as_mut())?;
        restores.push(t0.elapsed());
    }
    let restore = Sample::from_runs(&restores);
    debug_assert_eq!(replacement.invoke("ld_lookup", &[stream[0]])?, {
        let map = salvage.region("map").expect("map salvaged");
        map[stream[0] as usize]
    });

    // Phase 4 — degraded mode: the built-in adopts the salvaged map
    // and serves the rest of the stream.
    let config = LdConfig {
        blocks,
        segment_blocks: 16,
    };
    let map = salvage.region("map").expect("map salvaged");
    let t0 = Instant::now();
    let adopted = LogicalDisk::with_map(config, map);
    let adoption = t0.elapsed();
    let recovery = salvage_detach.best() + adoption;

    // The oracle never crashed: the same built-in fed the full stream.
    let mut oracle = LogicalDisk::new(config);
    for &w in stream {
        oracle.write(w as u64);
    }
    // Baseline built-in at the hand-off point, for the throughput
    // race. It adopts its *own* half-time map through the same
    // `with_map` constructor, so the two contenders are structurally
    // identical (map contents aside: theirs is native, ours salvaged)
    // and the race prices exactly the hand-off, not vector-capacity
    // accidents.
    let mut base_native = LogicalDisk::new(config);
    for &w in &stream[..half] {
        base_native.write(w as u64);
    }
    let base = LogicalDisk::with_map(config, base_native.map());

    let mut degraded = adopted.clone();
    for &w in &stream[half..] {
        degraded.write(w as u64);
    }
    let lost_mappings = degraded
        .map()
        .iter()
        .zip(oracle.map().iter())
        .filter(|(a, b)| a != b)
        .count() as u64;

    // Throughput: serve the identical tail on the adopted disk vs the
    // never-failed baseline, and price the service through the same
    // deterministic [`DiskModel`] the other tables use. Wall-clock is
    // the wrong instrument here — the two contenders run the *same*
    // built-in write loop, so any wall-clock delta is scheduler noise —
    // while the quantity the gate actually guards (does the hand-off
    // leave the built-in with a state that costs more to serve?) is
    // exactly what the model prices: every segment flush pays one
    // modeled segment write. A hand-off that desynchronized the
    // segment fill, doubled the flush rate, or forced extra I/O shows
    // up directly in the ratio — and the ratio is deterministic under
    // seed replay, as a recovery drill must be.
    let tail = &stream[half..];
    let model = DiskModel::default();
    let service_cost = |disk: &LogicalDisk| -> Duration {
        let mut d = disk.clone();
        let mut flushes = 0u32;
        for &w in tail {
            if d.write(w as u64).is_some() {
                flushes += 1;
            }
        }
        model.segment_write() * flushes
    };
    let post_cost = service_cost(&adopted);
    let base_cost = service_cost(&base);
    let post_over_base = if post_cost.is_zero() {
        1.0
    } else {
        base_cost.as_secs_f64() / post_cost.as_secs_f64()
    };

    Ok(Table9Row {
        tech,
        snapshot,
        salvage_detach,
        restore,
        recovery,
        salvaged_words,
        lost_mappings,
        post_over_base,
        populated: half,
    })
}

/// The fault-injected crash drill: run the built-in Logical Disk over
/// the full stream with segment writes priced through a [`FaultyDisk`]
/// armed to crash mid-run, recover, and prove nothing was lost.
fn crash_drill(cfg: &RunConfig, plan: FaultPlan, stream: &[i64]) -> Table9Crash {
    let config = LdConfig {
        blocks: cfg.ld_blocks,
        segment_blocks: 16,
    };
    // Crash halfway through the expected segment flushes.
    let crash_after = ((stream.len() / 16) as u64 / 2).max(1);
    let mut faulty = FaultyDisk::new(DiskModel::default(), plan.with_crash_after(crash_after));

    let mut oracle = LogicalDisk::new(config);
    let mut ld = LogicalDisk::new(config);
    let mut time_to_recovery = Duration::ZERO;
    let mut replayed = 0u64;
    let mut redone = 0usize;

    for &w in stream {
        oracle.write(w as u64);
        if ld.write(w as u64).is_none() {
            continue;
        }
        // A segment filled: issue its write (and the summary block that
        // rides along) until it sticks.
        loop {
            match faulty.segment_write() {
                Ok(_) => break,
                Err(DiskFault::RetriesExhausted { .. }) => continue, // reissue
                Err(DiskFault::Crashed) => {
                    // The crash interrupted this very segment write, so
                    // its summary block never became durable either.
                    let t0 = Instant::now();
                    let redo = ld.crash_with_unpersisted(1);
                    faulty.recover();
                    replayed += ld.rebuild_map();
                    redone += redo.len();
                    for r in redo {
                        if ld.write(r).is_some() {
                            // Post-recovery flushes still pay the disk
                            // (transients may remain; the crash point
                            // is disarmed).
                            while let Err(DiskFault::RetriesExhausted { .. }) =
                                faulty.segment_write()
                            {}
                        }
                    }
                    time_to_recovery = t0.elapsed();
                    break;
                }
            }
        }
    }

    let lost_mappings = ld
        .map()
        .iter()
        .zip(oracle.map().iter())
        .filter(|(a, b)| a != b)
        .count() as u64;

    // Price the rebuild itself at the end-of-run summary population
    // (each run on a fresh clone; rebuild_map is idempotent over the
    // flushed state).
    let runs = cfg.runs.clamp(2, 10);
    let mut rebuilds = Vec::with_capacity(runs);
    for _ in 0..runs {
        let mut probe = ld.clone();
        let t0 = Instant::now();
        let n = probe.rebuild_map();
        rebuilds.push(t0.elapsed());
        debug_assert!(n > 0);
    }

    Table9Crash {
        crash_after_ios: crash_after,
        rebuild: Sample::from_runs(&rebuilds),
        time_to_recovery,
        replayed,
        redone,
        lost_mappings,
        faults: faulty.stats(),
    }
}

/// Runs the Table 9 experiment.
pub fn table9(cfg: &RunConfig) -> Result<Table9, GraftError> {
    let _span = graft_telemetry::span!("table9_recovery");
    let plan = cfg.faults.unwrap_or_else(|| FaultPlan::chaos(42));
    let stream: Vec<i64> = logdisk::workload::skewed(cfg.ld_blocks, cfg.ld_writes as u64, 42)
        .map(|w| w as i64)
        .collect();
    let manager = GraftManager::new();
    let mut rows = Vec::new();
    for tech in ROW_ORDER {
        if tech == Technology::Script {
            continue; // no Tcl Logical Disk, as in Table 6
        }
        rows.push(recovery_row(cfg, &manager, tech, &stream)?);
    }
    let crash = crash_drill(cfg, plan, &stream);
    if graft_telemetry::enabled() {
        graft_telemetry::counter!("kernel.recovery.lost_mappings")
            .add(rows.iter().map(|r| r.lost_mappings).sum::<u64>() + crash.lost_mappings);
    }
    Ok(Table9 {
        rows,
        crash,
        writes: stream.len(),
        blocks: cfg.ld_blocks,
        plan,
        runs: cfg.runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunConfig {
        RunConfig {
            runs: 2,
            evict_iters: 50,
            script_evict_iters: 5,
            md5_bytes: 128,
            script_md5_bytes: 128,
            ld_writes: 512,
            ld_blocks: 256,
            live: false,
            faults: None,
        }
    }

    #[test]
    fn every_row_recovers_without_losing_a_mapping() {
        let t = table9(&tiny()).unwrap();
        assert_eq!(t.rows.len(), ROW_ORDER.len() - 1);
        assert!(t.row(Technology::Script).is_none());
        for row in &t.rows {
            assert_eq!(row.lost_mappings, 0, "{}: degraded mode lost blocks", row.tech);
            assert_eq!(
                row.salvaged_words, t.blocks,
                "{}: salvage must lift the whole map",
                row.tech
            );
            assert!(row.populated.is_multiple_of(16), "{}", row.tech);
            assert!(row.snapshot.best_ns() > 0.0, "{}", row.tech);
            assert!(row.salvage_detach.best_ns() > 0.0, "{}", row.tech);
            assert!(row.restore.best_ns() > 0.0, "{}", row.tech);
            assert!(row.recovery > Duration::ZERO, "{}", row.tech);
            // The hand-off cost is priced through the deterministic
            // DiskModel, so the acceptance gate holds exactly, even in
            // tiny test configurations.
            assert!(
                row.post_over_base >= 0.95,
                "{}: post/base = {:.3}",
                row.tech,
                row.post_over_base
            );
        }
        assert_eq!(t.lost_total(), 0);
    }

    #[test]
    fn crash_drill_rebuilds_bit_exact_under_chaos() {
        let t = table9(&tiny()).unwrap();
        let c = &t.crash;
        assert_eq!(c.lost_mappings, 0, "crash recovery lost mappings");
        assert_eq!(c.faults.crashes, 1, "exactly one injected crash");
        assert!(c.replayed > 0, "summaries replayed");
        // The torn segment (16 blocks) is redone; the open segment at
        // crash time is empty because the crash fires on a flush.
        assert_eq!(c.redone, 16);
        assert!(c.time_to_recovery > Duration::ZERO);
        assert!(c.rebuild.best_ns() > 0.0);
    }

    #[test]
    fn the_drill_is_deterministic_in_the_seed() {
        let cfg = tiny();
        let a = table9(&cfg).unwrap();
        let b = table9(&cfg).unwrap();
        assert_eq!(a.crash.replayed, b.crash.replayed);
        assert_eq!(a.crash.redone, b.crash.redone);
        assert_eq!(a.crash.faults, b.crash.faults);
        assert_eq!(a.plan, b.plan);
    }

    #[test]
    fn a_custom_fault_plan_is_honored() {
        let mut cfg = tiny();
        cfg.faults = Some(FaultPlan::quiet(7));
        let t = table9(&cfg).unwrap();
        assert_eq!(t.plan, FaultPlan::quiet(7));
        // Quiet plan: no transient injections, but the drill's crash
        // still fires (it is armed by the drill, not the plan).
        assert_eq!(t.crash.faults.injected, 0);
        assert_eq!(t.crash.faults.crashes, 1);
        assert_eq!(t.crash.lost_mappings, 0);
    }
}
