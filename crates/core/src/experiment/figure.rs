//! Figure 1: break-even of the eviction graft vs. upcall time.

use std::time::Duration;

use graft_api::Technology;

use super::tables::Table2;
use crate::breakeven::{competitive_upcall, figure1_series, Figure1Point};

/// The Figure 1 result: the user-level-server curve plus the horizontal
/// break-even lines of the compiled in-kernel technologies.
#[derive(Debug, Clone)]
pub struct Figure1 {
    /// Curve points for upcall times 0..=50 µs.
    pub series: Vec<Figure1Point>,
    /// Break-even of the safe-compiled (Modula-3) technology.
    pub safe_line: f64,
    /// Break-even of the SFI (Omniware) technology.
    pub sfi_line: f64,
    /// Break-even of the bytecode (Java) technology.
    pub bytecode_line: f64,
    /// The largest upcall time at which the user-level server still
    /// beats the safe-compiled technology (the paper's "sub-10 µs
    /// upcall needed" observation); `None` if it never does.
    pub competitive_upcall: Option<Duration>,
    /// The measured upcall round trip, for placing "today" on the
    /// curve.
    pub measured_upcall: Option<Duration>,
}

/// Derives Figure 1 from a Table 2 result.
pub fn figure1(table2: &Table2, measured_upcall: Option<Duration>) -> Figure1 {
    let _span = graft_telemetry::span!("figure1_breakeven");
    let c = table2
        .row(Technology::CompiledUnchecked)
        .expect("Table 2 has a C row");
    let c_cost = c.sample.best();
    let series = figure1_series(
        table2.fault,
        c_cost,
        Duration::from_micros(50),
        Duration::from_micros(1),
    );
    let line = |tech: Technology| table2.row(tech).map(|r| r.break_even).unwrap_or(0.0);
    let safe_cost = table2
        .row(Technology::SafeCompiled)
        .map(|r| r.sample.best())
        .unwrap_or(c_cost);
    Figure1 {
        series,
        safe_line: line(Technology::SafeCompiled),
        sfi_line: line(Technology::Sfi),
        bytecode_line: line(Technology::Bytecode),
        competitive_upcall: competitive_upcall(c_cost, safe_cost),
        measured_upcall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::tables::table2;
    use crate::experiment::RunConfig;

    #[test]
    fn figure1_shape_matches_the_paper() {
        let cfg = RunConfig {
            runs: 2,
            evict_iters: 100,
            script_evict_iters: 5,
            ..RunConfig::offline()
        };
        let t2 = table2(&cfg, Duration::from_millis(13)).unwrap();
        let fig = figure1(&t2, Some(Duration::from_micros(5)));

        // Inverse proportionality: the curve decreases monotonically.
        assert!(fig
            .series
            .windows(2)
            .all(|w| w[0].user_level_break_even >= w[1].user_level_break_even));
        assert_eq!(fig.series.len(), 51);

        // The in-kernel compiled lines beat the server at realistic
        // upcall times: by 50 µs the curve is below the safe line.
        let at_50 = fig.series.last().unwrap().user_level_break_even;
        assert!(
            at_50 < fig.safe_line,
            "at 50µs the server ({at_50}) must lose to safe-compiled ({})",
            fig.safe_line
        );

        // The competitive upcall window is tiny (the paper: sub-10µs on
        // 1996 hardware). With tiny debug-build sampling the safe row
        // can measure at or below C, in which case there is no window at
        // all; when there is one, it must be small.
        if let Some(window) = fig.competitive_upcall {
            assert!(window < Duration::from_millis(1), "window {window:?}");
        }
    }
}
