//! Table 7 (ours): multi-tenant churn under the graft-host kernel.
//!
//! The paper measures one graft at a time; its premise (§2, §4) is a
//! kernel hosting many untrusted extensions at once and surviving the
//! bad ones. This experiment measures that directly. For every
//! technology row:
//!
//! 1. **baseline** — a well-behaved eviction graft serves the VM pager
//!    through [`graft_kernel::GraftHost`] while an 80/20-skewed page
//!    workload streams through; we record ns per access.
//! 2. **churn** — a hostile graft (its `select_victim` divides by
//!    zero, the one fault every technology traps) is installed at the
//!    *front* of the chain mid-run. We record how long the quarantine
//!    supervisor takes to detach it and how many invocations it was
//!    allowed.
//! 3. **post** — throughput is measured again with the saboteur
//!    quarantined; containment means this is back at the baseline.
//!
//! Alongside the per-technology rows, the experiment prices the host
//! machinery itself: an empty-chain dispatch and a one-graft hosted
//! dispatch against the bare two-phase `invoke_id` fast path.

use std::time::{Duration, Instant};

use graft_api::{
    GraftClass, GraftError, GraftSpec, Motivation, RegionSpec, RegionStore, Technology, Trap,
    TrapKind,
};
use graft_kernel::{shared, AttachPoint, GraftHost, HostedEviction};
use grafts::eviction::{self, MAX_HOT, MAX_QUEUE};
use kernsim::stats::{measure_per_iter, Sample};
use kernsim::vm::Pager;

use super::tables::ROW_ORDER;
use super::RunConfig;
use crate::manager::GraftManager;

/// Resident frames the churn pager holds.
pub const FRAMES: usize = 64;
/// Distinct pages the skewed workload touches.
pub const PAGES: usize = 512;
/// Pages on the application's hot list.
pub const HOT_PAGES: u64 = 16;

/// One technology's churn measurements.
#[derive(Debug, Clone)]
pub struct Table7Row {
    /// Technology hosting both tenants.
    pub tech: Technology,
    /// ns per pager access with the well-behaved tenant serving.
    pub baseline: Sample,
    /// ns per pager access after the saboteur is quarantined.
    pub post: Sample,
    /// `post / baseline` mean ratio — 1.0 is perfect containment.
    pub post_over_baseline: f64,
    /// Whether the supervisor detached the saboteur.
    pub quarantined: bool,
    /// The trap kind that tripped quarantine.
    pub quarantined_by: Option<TrapKind>,
    /// Invocations the saboteur was allowed before detachment.
    pub trapped_invocations: u64,
    /// Wall clock from hostile install to detachment.
    pub quarantine_latency: Duration,
    /// Pager accesses between hostile install and detachment.
    pub churn_accesses: u64,
}

/// Table 7: churn rows plus the host-machinery overhead samples.
#[derive(Debug, Clone)]
pub struct Table7 {
    /// Rows, in [`ROW_ORDER`].
    pub rows: Vec<Table7Row>,
    /// ns per bare `invoke_id` of the eviction graft (no host).
    pub direct: Sample,
    /// ns per hosted dispatch through a one-graft chain.
    pub hosted: Sample,
    /// ns per dispatch of an empty chain (pure fallback).
    pub empty_chain: Sample,
    /// The supervisor's trap threshold during the run.
    pub trap_threshold: u32,
    /// Pager accesses per measured phase (base technologies).
    pub accesses: usize,
}

impl Table7 {
    /// The row for a technology.
    pub fn row(&self, tech: Technology) -> Option<&Table7Row> {
        self.rows.iter().find(|r| r.tech == tech)
    }

    /// Hosted-dispatch overhead over the bare fast path, in ns.
    pub fn chain_overhead_ns(&self) -> f64 {
        self.hosted.mean_ns - self.direct.mean_ns
    }
}

/// The saboteur: same region/entry ABI as the eviction graft, but its
/// body raises the one trap every technology turns into a fault.
/// Shared with Table 12's postmortem drill.
pub(crate) fn hostile_spec() -> GraftSpec {
    let grail = "fn select_victim(a: int, b: int) -> int { return a / (b - b); }";
    let tickle = "proc select_victim {a b} { return [expr $a / ($b - $b)] }";
    GraftSpec::new("saboteur", GraftClass::Prioritization, Motivation::Policy)
        .region(RegionSpec::linked("lru", 1 + 2 * MAX_QUEUE))
        .region(RegionSpec::linked("hot", 1 + 2 * MAX_HOT))
        .entry("select_victim", 2)
        .with_grail(grail)
        .with_tickle(tickle)
        .with_native(Box::new(|| {
            Box::new(
                |_entry: &str, _args: &[i64], _regions: &mut RegionStore| {
                    Err(GraftError::Trap(Trap::DivByZero))
                },
            )
        }))
}

/// Accesses per measured phase for a technology (script and user-level
/// rows use reduced counts, as in Table 2).
fn accesses_for(cfg: &RunConfig, tech: Technology) -> usize {
    match tech {
        Technology::Script => cfg.script_evict_iters.max(48),
        Technology::UserLevel => (cfg.evict_iters / 10).max(64),
        _ => cfg.evict_iters.max(64),
    }
}

fn churn_row(
    cfg: &RunConfig,
    manager: &GraftManager,
    tech: Technology,
) -> Result<Table7Row, GraftError> {
    let good = manager.load(&eviction::spec(), tech)?;
    let saboteur_engine = manager.load(&hostile_spec(), tech)?;

    let host = shared(GraftHost::new());
    let _tenant = host
        .borrow_mut()
        .install(AttachPoint::VmEvict, "tenant", good)?;
    let mut policy = HostedEviction::new(host.clone());
    policy.set_hot((0..HOT_PAGES).collect());
    let mut pager = Pager::new(FRAMES, policy);

    let accesses = accesses_for(cfg, tech);
    let workload: Vec<u64> = logdisk::workload::skewed(PAGES, accesses as u64, 42).collect();
    let runs = cfg.runs.clamp(1, 3);
    let mut idx = 0usize;

    // Fill the frames with throwaway pages so every phase runs at
    // steady state: from the first measured access on, a miss is an
    // eviction, and an eviction is a dispatch through the chain.
    for p in 0..FRAMES as u64 {
        pager.access(2 * PAGES as u64 + p);
    }

    // Phase 1 — baseline throughput with the tenant serving.
    let baseline = measure_per_iter(runs, accesses, || {
        pager.access(workload[idx % workload.len()]);
        idx += 1;
    });

    // Phase 2 — the saboteur arrives at the front of the chain. The
    // churn stream is a burst of cold misses (pages outside the skewed
    // domain), so every access past frame-fill is a fault that must
    // evict — the dispatch that consults the saboteur first. Detachment
    // is therefore due within `FRAMES + trap_threshold` accesses.
    let bad = host
        .borrow_mut()
        .install_front(AttachPoint::VmEvict, "saboteur", saboteur_engine)?;
    let start = Instant::now();
    let mut churn_accesses = 0u64;
    let bound = (FRAMES as u64) + 2 * u64::from(host.borrow().config().trap_threshold) + 8;
    while !host.borrow().is_quarantined(bad) && churn_accesses < bound {
        pager.access(PAGES as u64 + churn_accesses);
        churn_accesses += 1;
    }
    let quarantine_latency = start.elapsed();
    let quarantined = host.borrow().is_quarantined(bad);
    let trapped_invocations = host
        .borrow()
        .ledger(bad)
        .map(|l| l.invocations)
        .unwrap_or(0);
    let quarantined_by = match host.borrow().state(bad) {
        Some(graft_kernel::GraftState::Quarantined { by }) => Some(by),
        _ => None,
    };

    // Phase 3 — throughput with the saboteur detached.
    let post = measure_per_iter(runs, accesses, || {
        pager.access(workload[idx % workload.len()]);
        idx += 1;
    });

    Ok(Table7Row {
        tech,
        post_over_baseline: post.mean_ns / baseline.mean_ns,
        baseline,
        post,
        quarantined,
        quarantined_by,
        trapped_invocations,
        quarantine_latency,
        churn_accesses,
    })
}

/// Prices the host machinery: bare `invoke_id` vs a one-graft hosted
/// dispatch vs an empty-chain dispatch, all on pre-marshalled state.
fn overhead(
    cfg: &RunConfig,
    manager: &GraftManager,
) -> Result<(Sample, Sample, Sample), GraftError> {
    let spec = eviction::spec();
    // The small example scenario, not the paper-scale one: the probe
    // prices the *host machinery*, so the graft invocation it wraps
    // must be cheap enough not to drown the chain walk.
    let scenario = eviction::Scenario::example();
    let runs = cfg.runs.clamp(2, 10);
    let iters = cfg.evict_iters.max(100);

    // Bare two-phase fast path, exactly Table 2's measured loop.
    let mut engine = manager.load(&spec, Technology::SafeCompiled)?;
    let (lru, hot) = scenario.marshal(engine.as_mut())?;
    let victim = engine.bind_entry("select_victim")?;
    let direct = measure_per_iter(runs, iters, || {
        let _ = engine.invoke_id(victim, &[lru, hot]);
    });

    // The same graft behind a chain of one: chain walk + ledger +
    // verdict decoding on top of the identical invocation.
    let mut tenant = manager.load(&spec, Technology::SafeCompiled)?;
    let (lru2, hot2) = scenario.marshal(tenant.as_mut())?;
    let mut host = GraftHost::new();
    host.install(AttachPoint::VmEvict, "tenant", tenant)?;
    let hosted = measure_per_iter(runs, iters, || {
        let _ = host.dispatch(AttachPoint::VmEvict, |_| Ok(vec![lru2, hot2]));
    });

    // An empty chain: the price a substrate pays for having an attach
    // point at all when no graft is installed.
    let mut empty = GraftHost::new();
    let empty_chain = measure_per_iter(runs, iters, || {
        let _ = empty.dispatch(AttachPoint::VmEvict, |_| Ok(vec![lru2, hot2]));
    });

    Ok((direct, hosted, empty_chain))
}

/// Runs the Table 7 experiment.
pub fn table7(cfg: &RunConfig) -> Result<Table7, GraftError> {
    let _span = graft_telemetry::span!("table7_churn");
    let manager = GraftManager::new();
    let mut rows = Vec::new();
    for tech in ROW_ORDER {
        rows.push(churn_row(cfg, &manager, tech)?);
    }
    let (direct, hosted, empty_chain) = overhead(cfg, &manager)?;
    Ok(Table7 {
        rows,
        direct,
        hosted,
        empty_chain,
        trap_threshold: GraftHost::new().config().trap_threshold,
        accesses: cfg.evict_iters.max(64),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunConfig {
        RunConfig {
            runs: 2,
            evict_iters: 200,
            script_evict_iters: 24,
            md5_bytes: 128,
            script_md5_bytes: 128,
            ld_writes: 64,
            ld_blocks: 64,
            live: false,
            faults: None,
        }
    }

    #[test]
    fn every_row_contains_the_saboteur() {
        let t = table7(&tiny()).unwrap();
        assert_eq!(t.rows.len(), ROW_ORDER.len());
        for row in &t.rows {
            assert!(row.quarantined, "{}: saboteur still attached", row.tech);
            assert_eq!(
                row.trapped_invocations,
                t.trap_threshold as u64,
                "{}: supervisor let the saboteur run too long",
                row.tech
            );
            assert_eq!(row.quarantined_by, Some(TrapKind::DivByZero), "{}", row.tech);
            assert!(row.quarantine_latency > Duration::ZERO);
            // Containment: post-quarantine throughput is in the same
            // regime as the baseline (tiny runs are noisy; the real
            // gate is graftstat's over the committed artifact).
            assert!(
                row.post_over_baseline < 3.0,
                "{}: post/baseline = {:.2}",
                row.tech,
                row.post_over_baseline
            );
        }
    }

    #[test]
    fn hosting_costs_are_ordered() {
        let t = table7(&tiny()).unwrap();
        // An empty chain skips the graft invocation entirely, so it
        // must be far cheaper than a chain of one. (`hosted` vs
        // `direct` differ by mere bookkeeping ns and can flip under
        // tiny-run noise; the committed artifact carries both samples
        // and graftstat gates the drift.)
        assert!(t.empty_chain.mean_ns < t.hosted.mean_ns);
        assert!(t.direct.mean_ns > 0.0 && t.hosted.mean_ns > 0.0);
    }
}
