//! Experiment runners: one per table and figure of Section 5.
//!
//! Every runner returns typed rows; the binaries in `graft-bench` print
//! them via [`crate::report`]. All runners accept a [`RunConfig`] so
//! the full paper-scale runs and the quick CI-scale runs share code.

pub mod figure;
pub mod micro;
pub mod table11;
pub mod table12;
pub mod table13;
pub mod table14;
pub mod table7;
pub mod table8;
pub mod table9;
pub mod tables;

pub use figure::{figure1, Figure1};
pub use kernsim::FaultPlan;
pub use micro::{table1, table3, table4, Table1, Table3, Table4};
pub use table11::{
    table11, table11_with, ServiceLoad, ServiceResult, Table11, Table11Cell, Table11Drill,
    Table11Row, ARRIVALS11, LADDER11, TECHS11,
};
pub use table12::{table12, Table12, Table12Drill, Table12Row, DRILL_SEED, DRILL_SHARDS};
pub use table13::{
    table13, table13_with, ModeResult, Skew, Table13, Table13Cell, Table13Row, LADDER13, TECHS13,
};
pub use table14::{
    table14, RestorePoint, RotDrill, ScrubBench, Table14, Table14Row, BITROT_PERMILLE, ROT_SEEDS,
};
pub use table7::{table7, Table7, Table7Row};
pub use table8::{table8, Table8, Table8Cell, Table8Row, LADDER};
pub use table9::{table9, Table9, Table9Crash, Table9Row};
pub use tables::{
    table2, table5, table6, Table2, Table2Row, Table5, Table5Row, Table6, Table6Row, Table6Sharded,
};

/// Iteration counts and workload sizes for a whole experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// Timed repetitions per measurement (the paper uses 30).
    pub runs: usize,
    /// Eviction-graft invocations per run (the paper uses 100,000).
    pub evict_iters: usize,
    /// Eviction iterations for the script technology (the paper reports
    /// Tcl from shorter runs; it is ~10⁴× slower).
    pub script_evict_iters: usize,
    /// Bytes fingerprinted per MD5 run (the paper uses 1 MB).
    pub md5_bytes: usize,
    /// Bytes fingerprinted under the script technology, extrapolated to
    /// the full size (the paper's Tcl MD5 took 50 minutes; ours would
    /// too).
    pub script_md5_bytes: usize,
    /// Logical Disk writes (the paper uses 262,144).
    pub ld_writes: usize,
    /// Logical Disk size in blocks (the paper uses 262,144).
    pub ld_blocks: usize,
    /// Run live host measurements (signals, page faults, disk
    /// bandwidth); when false, 1996-style model defaults are used.
    pub live: bool,
    /// Optional fault-injection plan (from `--faults`/`--fault-rate`):
    /// experiments that price disk work route it through a
    /// [`kernsim::FaultyDisk`] under this plan. `None` runs clean.
    /// Table 9 always injects: it uses this plan when set, or
    /// [`FaultPlan::chaos`] with its default seed otherwise.
    pub faults: Option<FaultPlan>,
}

impl RunConfig {
    /// Paper-scale configuration.
    pub fn full() -> Self {
        RunConfig {
            runs: 30,
            evict_iters: 100_000,
            script_evict_iters: 200,
            md5_bytes: 1 << 20,
            script_md5_bytes: 8_192,
            ld_writes: 262_144,
            ld_blocks: 262_144,
            live: true,
            faults: None,
        }
    }

    /// Reduced configuration for CI and iteration (same code paths,
    /// smaller counts).
    pub fn quick() -> Self {
        RunConfig {
            runs: 5,
            evict_iters: 1_000,
            script_evict_iters: 20,
            md5_bytes: 1 << 16,
            script_md5_bytes: 1_024,
            ld_writes: 8_192,
            ld_blocks: 8_192,
            live: true,
            faults: None,
        }
    }

    /// Quick configuration without live host measurements (for tests).
    pub fn offline() -> Self {
        RunConfig {
            live: false,
            ..RunConfig::quick()
        }
    }
}

/// The deterministic byte workload every MD5 technology hashes.
pub fn md5_workload(bytes: usize) -> Vec<u8> {
    (0..bytes).map(|i| (i % 251) as u8).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_scale_sanely() {
        let full = RunConfig::full();
        let quick = RunConfig::quick();
        assert!(full.runs > quick.runs);
        assert!(full.evict_iters > quick.evict_iters);
        assert_eq!(full.md5_bytes, 1 << 20);
        assert_eq!(full.ld_writes, 262_144);
    }

    #[test]
    fn md5_workload_is_deterministic() {
        assert_eq!(md5_workload(100), md5_workload(100));
        assert_eq!(md5_workload(3), vec![0, 1, 2]);
    }
}
