//! Table 11 (ours): the graft server under multi-tenant service load.
//!
//! The paper prices technologies inside one process; a production
//! extension host is a *served* system — a hundred thousand untrusted
//! tenants installing and invoking grafts over a wire protocol, with
//! admission control deciding what the data plane ever sees. This
//! experiment drives [`graft_server::GraftServer`] through the
//! byte-faithful in-process transport with an open-loop load
//! generator: 100k simulated tenants, each owning one graft in its
//! private namespace, submitting requests over framed connections in
//! bounded cohorts. Requests are keyed into the stealing plane by
//! tenant, so the adaptive run queues serve the data plane and the
//! worker ladder prices its scaling.
//!
//! **Worker-ladder pricing.** The threaded server splits work between
//! one *pump* thread (framing, admission, the serial completion reap)
//! and one *drain worker* per shard (take a batch, invoke, push
//! completions). A 1-core container cannot time that plane wall-clock,
//! so each rung is priced on the critical path, exactly like Table 8:
//! the serve phase separately accumulates the serial front-end
//! (`ingest` + `pump` + `reap`) and each shard's busy time
//! (`drain_invoke`, the very function a worker thread loops on), and a
//! rep's critical path is `max(pump + reap, busiest shard)` — the wall
//! clock on a machine with enough idle cores. The native graft carries
//! a calibrated compute lever ([`SPIN`]) so the rung ladder measures
//! worker scaling rather than framing overhead; the verify.sh gate is
//! native ≥ 2.5x at 4 workers.
//!
//! **Service hazards ride along.** Every cohort serves one *slowloris*
//! frame — an invoke dribbled a few bytes per wave, admitted only when
//! its last byte lands, and still answered correctly — and tenants
//! with `id % 11 == 5` *churn*: mid-rep their transport drops cold (no
//! `Bye`) and re-opens, after which service resumes on the new
//! connection. Tenants with `id % 16 == 0` sit in a weight-1 admission
//! class against the default weight-3 class, so weighted per-tenant
//! admission is exercised at scale.
//!
//! Reported per (technology, arrival-skew, worker-rung) cell:
//!
//! * **p50/p99/p999 service latency** — measured server-side from
//!   admission to completion (the latency sink), pooled over reps;
//! * **saturation throughput** — requests over the serve-phase
//!   critical path, best rep;
//! * **serial fraction** — the pump thread's share of the critical
//!   path (how close the front-end is to becoming the bottleneck);
//! * **cross-tenant leakage** — every reply's value is checked against
//!   the submitting tenant's expected tag; any foreign verdict counts.
//!
//! The **noisy-neighbor drill** then replays identical victim traffic
//! twice — once quiet, once alongside a saboteur tenant whose graft
//! divides by zero until the supervisor quarantines it and the server
//! bans the tenant — and compares victim p99 across the two runs. The
//! verify.sh gates: ≥ 100k tenants, zero leakage, native worker
//! scaling ≥ 2.5x at 4, saboteur quarantined, victim p99 within 2x.

use std::time::{Duration, Instant};

use graft_api::{
    GraftClass, GraftError, GraftSpec, Motivation, NativeGraft, RegionSpec, RegionStore,
    Technology, Trap,
};
use graft_rng::SmallRng;
use graft_server::{
    GraftClient, GraftServer, QuotaClass, Reply, ServerConfig, Standing, TenantQuotas, MAX_CLASSES,
};
use kernsim::stats::Sample;

use super::table13::Skew;
use super::RunConfig;
use crate::manager::GraftManager;

/// The service ladder: the paper-scale 1/2/4/8 worker rungs.
pub const LADDER11: [usize; 4] = [1, 2, 4, 8];

/// Technologies served: the cheapest dispatch and the headline safe
/// technology, as in Tables 8 and 13.
pub const TECHS11: [Technology; 2] = [Technology::RustNative, Technology::SafeCompiled];

/// Arrival skews driven by default: uniform and 80-20 (`--arrival`
/// restricts to one, and also admits the 99-1 spelling).
pub const ARRIVALS11: [Skew; 2] = [Skew::Uniform, Skew::Skew8020];

/// Victim requests each drill victim submits.
const DRILL_PER_VICTIM: usize = 48;

/// Compute lever in the native tag graft: iterations of a dependent
/// multiply-add chain per invoke, modelling a few microseconds of real
/// extension work. Sized so four workers' share of the busy time still
/// dominates the serial pump+reap path — the scaling gate measures the
/// workers, not the framer.
const SPIN: u64 = 4096;

/// Tenants with this residue mod 11 churn their transport mid-rep.
const CHURN_RESIDUE: u64 = 5;

/// Tenants with this residue mod 16 land in the light admission class.
const LIGHT_RESIDUE: u64 = 0;

/// Simulated population shape: how many tenants exist and how many
/// connections a serving cohort keeps open at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceLoad {
    /// Tenant population requests are drawn from (`--tenants`).
    pub tenants: usize,
    /// Open connections per cohort (`--conns`): active tenants are
    /// served in cohorts of this many simultaneously-open framed
    /// connections.
    pub conns: usize,
}

impl Default for ServiceLoad {
    fn default() -> Self {
        ServiceLoad {
            tenants: 100_000,
            conns: 64,
        }
    }
}

/// One cell's service measurement.
#[derive(Debug, Clone)]
pub struct ServiceResult {
    /// Serve-phase critical path divided by requests (the regression
    /// envelope surface).
    pub per_request: Sample,
    /// Saturation throughput in thousand requests/second, best rep.
    pub throughput_krps: f64,
    /// Median service latency (admission to completion), pooled reps.
    pub p50_ns: u64,
    /// 99th-percentile service latency.
    pub p99_ns: u64,
    /// 99.9th-percentile service latency.
    pub p999_ns: u64,
    /// Requests served to completion across all reps.
    pub served: u64,
    /// Typed refusals across all reps (0 in a well-sized run).
    pub rejected: u64,
    /// Tenants that actually appeared in the drawn trace.
    pub distinct_tenants: usize,
    /// Items the adaptive plane stole across shards.
    pub steals: u64,
    /// Items placed away from their home shard at submit time.
    pub diverted: u64,
    /// Serial front-end (pump + reap) share of the best rep's critical
    /// path.
    pub serial_frac: f64,
    /// Connections dropped cold and re-opened mid-rep, all reps.
    pub churned: u64,
    /// Slowloris frames dribbled byte-wise across waves and served.
    pub slowloris: u64,
}

/// One (technology, arrival) pair at one worker count.
#[derive(Debug, Clone)]
pub struct Table11Cell {
    /// Drain workers serving the data plane (= shards).
    pub shards: usize,
    /// The cell's measurement.
    pub service: ServiceResult,
}

/// One technology's ladder under one arrival skew.
#[derive(Debug, Clone)]
pub struct Table11Row {
    /// Technology hosting every tenant's graft.
    pub tech: Technology,
    /// Arrival skew of the drawn request trace.
    pub arrival: Skew,
    /// One cell per ladder rung, ascending.
    pub cells: Vec<Table11Cell>,
}

impl Table11Row {
    /// The cell at a worker count.
    pub fn cell(&self, shards: usize) -> Option<&Table11Cell> {
        self.cells.iter().find(|c| c.shards == shards)
    }

    /// Critical-path speedup of the `shards`-worker rung over one
    /// worker (throughputs are over identical per-rep work, so the
    /// ratio is the scaling factor).
    pub fn worker_scaling(&self, shards: usize) -> Option<f64> {
        let base = self.cell(1)?;
        let top = self.cell(shards)?;
        Some(top.service.throughput_krps / base.service.throughput_krps)
    }
}

/// The noisy-neighbor drill: identical victim traffic, quiet vs with a
/// trapping saboteur tenant.
#[derive(Debug, Clone)]
pub struct Table11Drill {
    /// Shards serving the drill.
    pub shards: usize,
    /// Victim tenants.
    pub victims: usize,
    /// Requests each victim submits.
    pub per_victim: usize,
    /// Victim p99 with no saboteur (best rep).
    pub quiet_p99_ns: u64,
    /// Victim p99 with the saboteur active (best rep).
    pub noisy_p99_ns: u64,
    /// `noisy_p99 / quiet_p99` — the verify.sh 2x bound.
    pub victim_p99_ratio: f64,
    /// Whether the saboteur tenant ended the noisy runs banned or
    /// parked (every rep).
    pub saboteur_quarantined: bool,
    /// Saboteur requests refused at admission after the ban.
    pub saboteur_rejections: u64,
    /// Victim requests served in the noisy run (must be all of them).
    pub victim_served: u64,
}

/// Table 11: the graft server across technologies, arrivals, and the
/// worker ladder, plus the noisy-neighbor drill.
#[derive(Debug, Clone)]
pub struct Table11 {
    /// Rows in (technology, arrival) order.
    pub rows: Vec<Table11Row>,
    /// The worker counts measured, ascending.
    pub ladder: Vec<usize>,
    /// Tenant population.
    pub tenants: usize,
    /// Open connections per cohort.
    pub conns: usize,
    /// Requests drawn per cell per rep.
    pub requests: usize,
    /// Timing reps per cell.
    pub runs: usize,
    /// Replies whose value did not match the submitting tenant's
    /// expected tag, across every cell and the drill. Gate: zero.
    pub leaked: u64,
    /// The noisy-neighbor drill.
    pub drill: Table11Drill,
}

impl Table11 {
    /// The row for a (technology, arrival) pair.
    pub fn row(&self, tech: Technology, arrival: Skew) -> Option<&Table11Row> {
        self.rows
            .iter()
            .find(|r| r.tech == tech && r.arrival == arrival)
    }

    /// Connections churned (dropped cold + re-opened) across all cells.
    pub fn churned(&self) -> u64 {
        self.rows
            .iter()
            .flat_map(|r| &r.cells)
            .map(|c| c.service.churned)
            .sum()
    }

    /// Slowloris frames dribbled and served across all cells.
    pub fn slowloris(&self) -> u64 {
        self.rows
            .iter()
            .flat_map(|r| &r.cells)
            .map(|c| c.service.slowloris)
            .sum()
    }
}

/// Grail source for the tenant-tag graft: `select_victim(tenant, x)`
/// returns the tenant-unique tag `tenant * 31 + x`, and divides by
/// zero when `x == 0` (the saboteur's payload).
const TAG_GRAIL: &str = r#"
// Tenant tag: a verdict no other tenant's graft can produce, plus a
// deterministic trap lever (x == 0 divides by zero).

fn select_victim(tenant: int, x: int) -> int {
    return tenant * 31 + x + x / x - 1;
}
"#;

/// Native implementation of the same tag, carrying the [`SPIN`] work
/// lever (the interpreted grail pays its work in interpretation; the
/// native graft models an extension doing real compute).
#[derive(Debug, Default)]
struct NativeTag;

impl NativeGraft for NativeTag {
    fn call(
        &mut self,
        entry: &str,
        args: &[i64],
        _regions: &mut RegionStore,
    ) -> Result<i64, GraftError> {
        if entry != "select_victim" {
            return Err(graft_api::engine::no_such_entry(entry));
        }
        if args[1] == 0 {
            return Err(Trap::DivByZero.into());
        }
        let mut acc = args[0] as u64 ^ 0x9E37_79B9_7F4A_7C15;
        for _ in 0..SPIN {
            acc = acc
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(args[1] as u64);
        }
        std::hint::black_box(acc);
        Ok(args[0] * 31 + args[1])
    }
}

/// The tenant-tag graft package.
fn tag_spec() -> GraftSpec {
    GraftSpec::new("tenant-tag", GraftClass::BlackBox, Motivation::Functionality)
        .region(RegionSpec::data("scratch", 8))
        .entry("select_victim", 2)
        .with_grail(TAG_GRAIL)
        .with_native(Box::new(|| Box::<NativeTag>::default()))
}

/// Spec name on the wire.
const SPEC: &str = "tag";

/// VmEvict attach-point code on the wire (Install frame).
const POINT_VM_EVICT: u8 = 0;

/// Requests drawn per cell per rep.
fn requests_for(cfg: &RunConfig) -> usize {
    (cfg.evict_iters * 4).clamp(256, 40_000)
}

/// Submission wave between pump/drain rounds.
fn wave_for(shards: usize) -> usize {
    (shards * 16).max(16)
}

/// Draws one tenant id from a population of `n` under `arrival`.
fn draw_tenant(arrival: Skew, rng: &mut SmallRng, n: u64) -> u64 {
    if n <= 1 {
        return 0;
    }
    match arrival {
        Skew::Uniform => rng.bounded_u64(n),
        Skew::Skew8020 => {
            let hot = (n / 5).max(1);
            if rng.gen_f64() < 0.8 {
                rng.bounded_u64(hot)
            } else {
                hot + rng.bounded_u64(n - hot)
            }
        }
        Skew::Skew9901 => {
            if rng.gen_f64() < 0.99 {
                0
            } else {
                1 + rng.bounded_u64(n - 1)
            }
        }
    }
}

/// Index into a sorted latency pool at `num/den` of the way up.
fn percentile(sorted: &[u64], num: usize, den: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() * num / den).min(sorted.len() - 1)]
}

/// A fresh server for one cell/drill: one-graft-per-tenant quotas, the
/// stealing plane, a 3:1 weighted class split, the `tag` spec loaded
/// through [`GraftManager`], and the latency sink armed.
fn tag_server(shards: usize, backoff_base: u64) -> GraftServer {
    let quotas = TenantQuotas {
        max_grafts: 1,
        fuel_budget: None,
        max_in_flight: 64,
    };
    let mut classes = [QuotaClass::UNUSED; MAX_CLASSES];
    classes[0] = QuotaClass { weight: 3, quotas };
    classes[1] = QuotaClass { weight: 1, quotas };
    let mut server = GraftServer::new(ServerConfig {
        shards,
        quotas,
        classes,
        backoff_base,
        ..ServerConfig::default()
    });
    let manager = GraftManager::new();
    server.register_spec(SPEC, Box::new(move |tech| manager.load(&tag_spec(), tech)));
    server.collect_latency(true);
    server
}

/// One tenant's open connection inside a serving cohort.
struct Session {
    tenant: u64,
    client: GraftClient,
    graft: u64,
    /// `(seq, k)` for every invoke submitted and not yet verified.
    sent: Vec<(u32, i64)>,
    /// Requests still to submit this rep.
    remaining: usize,
    /// Submitted since the last drain (per-tenant in-flight bound).
    outstanding: usize,
    /// Drop the transport cold once `remaining` falls to this.
    churn_at: Option<usize>,
    /// A slowloris frame is mid-dribble on this connection: nothing
    /// else may be written until its last byte lands.
    dribbling: bool,
}

/// Per-rep critical-path clock: the serial front-end (pump + reap) on
/// one side, each drain worker's busy time on the other.
struct ServeClock {
    pump: Duration,
    reap: Duration,
    busy: Vec<Duration>,
}

impl ServeClock {
    fn new(shards: usize) -> Self {
        ServeClock {
            pump: Duration::ZERO,
            reap: Duration::ZERO,
            busy: vec![Duration::ZERO; shards],
        }
    }

    /// The serial pump thread's total.
    fn serial(&self) -> Duration {
        self.pump + self.reap
    }

    /// Wall clock on a machine with enough idle cores: the slower of
    /// the pump thread and the busiest drain worker.
    fn critical(&self) -> Duration {
        self.serial()
            .max(self.busy.iter().copied().max().unwrap_or_default())
    }

    /// Serial share of the critical path.
    fn serial_frac(&self) -> f64 {
        let c = self.critical().as_nanos().max(1) as f64;
        self.serial().as_nanos() as f64 / c
    }
}

/// Mutable bookkeeping one cohort serve threads through.
struct ServeOps<'a> {
    clock: &'a mut ServeClock,
    next_k: &'a mut [i64],
    leaked: &'a mut u64,
    churned: &'a mut u64,
    slowloris: &'a mut u64,
    /// The drill's trapping tenant: always submits `x == 0`.
    saboteur: Option<u64>,
    /// Arm one slowloris dribble for this cohort.
    dribble: bool,
}

/// Counts replies that are values but not the submitting tenant's own
/// tag — the leakage metric.
fn tally_foreign(tenant: u64, sent: &[(u32, i64)], replies: &[Reply]) -> u64 {
    let mut leaked = 0u64;
    for r in replies {
        if let Reply::Value { seq, value } = r {
            match sent.iter().find(|(q, _)| q == seq) {
                Some(&(_, k)) if *value == tenant as i64 * 31 + k => {}
                _ => leaked += 1,
            }
        }
    }
    leaked
}

/// Opens one cohort: hello every tenant, install its graft on first
/// contact (ids persist per tenant across cohorts and reps), and put
/// light-residue tenants in the weight-1 admission class. Untimed —
/// connection churn is not the service cost under measurement.
fn open_cohort(
    server: &mut GraftServer,
    tech: u8,
    tenants: &[(u64, usize)],
    grafts: &mut [Option<u64>],
) -> Vec<Session> {
    let mut sessions = Vec::with_capacity(tenants.len());
    for &(tenant, remaining) in tenants {
        if tenant % 16 == LIGHT_RESIDUE {
            server.assign_class(tenant, 1);
        }
        let conn = server.connect();
        let mut client = GraftClient::new(conn);
        let hello = client.hello(tenant);
        server.ingest(conn, &hello);
        let graft = match grafts[tenant as usize] {
            Some(g) => {
                server.pump_conn(conn);
                let _ = server.take_outbound(conn); // discard the Welcome
                g
            }
            None => {
                let install = client.install(POINT_VM_EVICT, tech, SPEC);
                server.ingest(conn, &install);
                server.pump_conn(conn);
                let out = server.take_outbound(conn);
                let replies = client.on_bytes(&out).expect("well-formed frames");
                let g = replies
                    .iter()
                    .find_map(|r| match r {
                        Reply::Installed { graft, .. } => Some(*graft),
                        _ => None,
                    })
                    .unwrap_or_else(|| panic!("install failed for t{tenant}: {replies:?}"));
                grafts[tenant as usize] = Some(g);
                g
            }
        };
        sessions.push(Session {
            tenant,
            client,
            graft,
            sent: Vec::with_capacity(remaining),
            remaining,
            outstanding: 0,
            churn_at: None,
            dribbling: false,
        });
    }
    sessions
}

/// Serves one cohort to completion: round-robin wave submission, then
/// per wave a *timed pump* (ingest + frame decode + admission), timed
/// per-shard *drain rounds* (each `drain_invoke` is exactly one
/// worker-thread loop body), and a timed serial *reap*. Client-side
/// frame encoding, churn reconnects, and verification stay off the
/// clock. The saboteur id (if any) always submits the trap payload
/// `x == 0`; everyone else advances its per-tenant counter.
fn serve_cohort(
    server: &mut GraftServer,
    sessions: &mut [Session],
    wave: usize,
    ops: &mut ServeOps,
) {
    // Keep per-tenant in-flight under the admission cap (64) even when
    // one hot tenant is the only submitter left in the cohort.
    const OUT_CAP: usize = 32;
    let shards = server.shards();
    let len = sessions.len();
    // A rotating cursor, not a restart-from-zero scan: every session
    // keeps submitting across waves (fair interleaving), so a noisy
    // tenant's traffic genuinely competes with everyone else's.
    let mut cursor = 0usize;

    // Arm the cohort's slowloris: the first eligible session's next
    // invoke arrives a few bytes per wave. Its connection carries
    // nothing else until the frame completes.
    let mut dribble: Option<(usize, Vec<u8>, usize)> = None;
    if ops.dribble {
        if let Some(i) = sessions
            .iter()
            .position(|s| s.remaining > 0 && s.churn_at.is_none())
        {
            let s = &mut sessions[i];
            let k = if ops.saboteur == Some(s.tenant) {
                0
            } else {
                let k = ops.next_k[s.tenant as usize];
                ops.next_k[s.tenant as usize] += 1;
                k
            };
            let (seq, bytes) = s.client.invoke(s.graft, 0, &[s.tenant as i64, k]);
            s.sent.push((seq, k));
            s.remaining -= 1;
            s.dribbling = true;
            dribble = Some((i, bytes, 0));
        }
    }

    loop {
        // Encode this wave's frames client-side — not a server cost.
        let mut frames: Vec<(usize, Vec<u8>)> = Vec::with_capacity(wave);
        let mut sent = 0usize;
        let mut skipped = 0usize;
        while sent < wave && skipped < len {
            let s = &mut sessions[cursor % len];
            cursor += 1;
            if s.remaining == 0 || s.outstanding >= OUT_CAP || s.dribbling {
                skipped += 1;
                continue;
            }
            skipped = 0;
            let k = if ops.saboteur == Some(s.tenant) {
                0
            } else {
                let k = ops.next_k[s.tenant as usize];
                ops.next_k[s.tenant as usize] += 1;
                k
            };
            let (seq, bytes) = s.client.invoke(s.graft, 0, &[s.tenant as i64, k]);
            frames.push((s.client.conn, bytes));
            s.sent.push((seq, k));
            s.remaining -= 1;
            s.outstanding += 1;
            sent += 1;
        }
        if sent == 0 && dribble.is_none() {
            break;
        }

        // Timed: the pump thread's front-end — raw bytes in, frames
        // decoded, admission verdicts, jobs enqueued.
        let t = Instant::now();
        let mut dribble_done = false;
        let mut conns: Vec<usize> = Vec::with_capacity(frames.len() + 1);
        if let Some((i, bytes, off)) = dribble.as_mut() {
            let chunk = (bytes.len() / 6).max(1);
            let end = (*off + chunk).min(bytes.len());
            let conn = sessions[*i].client.conn;
            server.ingest(conn, &bytes[*off..end]);
            *off = end;
            conns.push(conn);
            if end == bytes.len() {
                sessions[*i].dribbling = false;
                dribble_done = true;
            }
        }
        for (conn, bytes) in &frames {
            server.ingest(*conn, bytes);
            conns.push(*conn);
        }
        conns.sort_unstable();
        conns.dedup();
        for conn in conns {
            server.pump_conn(conn);
        }
        ops.clock.pump += t.elapsed();
        if dribble_done {
            dribble = None;
            *ops.slowloris += 1;
        }

        // Timed per shard: round-robin single-batch drain rounds, one
        // `drain_invoke` per non-empty shard per round — each shard's
        // accumulated time is what its worker thread would burn.
        while server.backlog() > 0 {
            for shard in 0..shards {
                if server.shard_depth(shard) == 0 {
                    continue;
                }
                let t = Instant::now();
                server.drain_invoke(shard);
                ops.clock.busy[shard] += t.elapsed();
            }
        }

        // Timed: the serial completion reap back on the pump thread.
        let t = Instant::now();
        while server.in_flight() > 0 {
            if server.reap() == 0 {
                break;
            }
        }
        ops.clock.reap += t.elapsed();

        for s in sessions.iter_mut() {
            s.outstanding = 0;
        }

        // Untimed: transport churn. A churner whose submitted half has
        // fully completed verifies it, drops the connection cold (no
        // Bye), and re-hellos on a fresh connection.
        for s in sessions.iter_mut() {
            let Some(at) = s.churn_at else { continue };
            if s.remaining > at {
                continue;
            }
            s.churn_at = None;
            let out = server.take_outbound(s.client.conn);
            let replies = s.client.on_bytes(&out).expect("well-formed frames");
            *ops.leaked += tally_foreign(s.tenant, &s.sent, &replies);
            s.sent.clear();
            server.disconnect(s.client.conn);
            let conn = server.connect();
            let mut client = GraftClient::new(conn);
            let hello = client.hello(s.tenant);
            server.ingest(conn, &hello);
            server.pump_conn(conn);
            let _ = server.take_outbound(conn); // discard the Welcome
            s.client = client;
            *ops.churned += 1;
        }
    }
}

/// Verifies every reply each session accumulated against the
/// submitting tenant's expected tag, then closes the connection.
/// Returns the number of foreign or mismatched verdicts. Untimed.
fn verify_and_close(server: &mut GraftServer, sessions: Vec<Session>) -> u64 {
    let mut leaked = 0u64;
    for mut s in sessions {
        let out = server.take_outbound(s.client.conn);
        let replies = s.client.on_bytes(&out).expect("well-formed frames");
        leaked += tally_foreign(s.tenant, &s.sent, &replies);
        let bye = s.client.bye();
        server.ingest(s.client.conn, &bye);
        server.pump_conn(s.client.conn);
        let _ = server.take_outbound(s.client.conn);
    }
    leaked
}

/// Runs one (technology, arrival, workers) cell.
fn cell_run(
    cfg: &RunConfig,
    tech: Technology,
    arrival: Skew,
    shards: usize,
    load: &ServiceLoad,
    leaked: &mut u64,
) -> Result<Table11Cell, GraftError> {
    let tech_code = Technology::ALL
        .iter()
        .position(|&t| t == tech)
        .expect("known technology") as u8;
    let requests = requests_for(cfg);
    let reps = cfg.runs.clamp(1, 3);
    let population = load.tenants.max(1);
    let wave = wave_for(shards);

    // The drawn trace: per-tenant request counts, fixed per cell so
    // every rep serves identical work.
    let mut rng = SmallRng::seed_from_u64(
        0x1100 + shards as u64 + ((arrival as u64) << 8) + ((tech_code as u64) << 16),
    );
    let mut counts = vec![0usize; population];
    for _ in 0..requests {
        counts[draw_tenant(arrival, &mut rng, population as u64) as usize] += 1;
    }
    let active: Vec<(u64, usize)> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(t, &c)| (t as u64, c))
        .collect();

    let mut server = tag_server(shards, ServerConfig::default().backoff_base);
    let mut grafts = vec![None; population];
    let mut next_k = vec![1i64; population];
    let mut criticals = Vec::with_capacity(reps);
    let mut pool: Vec<u64> = Vec::with_capacity(requests * reps);
    let mut churned = 0u64;
    let mut slowloris = 0u64;
    let mut best = Duration::MAX;
    let mut serial_frac = 1.0f64;
    for _ in 0..reps {
        let mut clock = ServeClock::new(shards);
        for cohort in active.chunks(load.conns.max(1)) {
            let mut sessions = open_cohort(&mut server, tech_code, cohort, &mut grafts);
            for s in sessions.iter_mut() {
                if s.tenant % 11 == CHURN_RESIDUE && s.remaining >= 2 {
                    s.churn_at = Some(s.remaining / 2);
                }
            }
            let mut ops = ServeOps {
                clock: &mut clock,
                next_k: &mut next_k,
                leaked,
                churned: &mut churned,
                slowloris: &mut slowloris,
                saboteur: None,
                dribble: true,
            };
            serve_cohort(&mut server, &mut sessions, wave, &mut ops);
            *leaked += verify_and_close(&mut server, sessions);
        }
        let critical = clock.critical();
        if critical < best {
            best = critical;
            serial_frac = clock.serial_frac();
        }
        criticals.push(critical);
        pool.extend(server.take_latencies().into_iter().map(|(_, ns)| ns));
    }
    pool.sort_unstable();

    let stats = server.stats();
    let q = server.queue_stats();
    let critical = Sample::from_runs(&criticals);
    Ok(Table11Cell {
        shards,
        service: ServiceResult {
            throughput_krps: requests as f64 * 1e6 / critical.best_ns(),
            per_request: critical.per(requests),
            p50_ns: percentile(&pool, 1, 2),
            p99_ns: percentile(&pool, 99, 100),
            p999_ns: percentile(&pool, 999, 1000),
            served: stats.served,
            rejected: stats.rejected_overloaded + stats.rejected_quota + stats.rejected_quarantined,
            distinct_tenants: active.len(),
            steals: q.steals,
            diverted: q.diverted,
            serial_frac,
            churned,
            slowloris,
        },
    })
}

/// One drill pass: `victims` tenants submit identical traffic; when
/// `saboteur` is true an extra tenant interleaves divide-by-zero
/// payloads until the supervisor quarantines its graft and the server
/// bans the tenant (`backoff_base: 0` makes the park permanent).
/// Returns `(victim p99, victim served, leaked, admission rejections,
/// saboteur quarantined)`.
fn drill_run(
    shards: usize,
    victims: usize,
    per_victim: usize,
    saboteur: bool,
) -> (u64, u64, u64, u64, bool) {
    let sab_id = victims as u64;
    let population = victims + 1;
    let mut server = tag_server(shards, 0);
    let mut grafts = vec![None; population];
    let mut next_k = vec![1i64; population];

    let mut cohort: Vec<(u64, usize)> = (0..victims as u64).map(|t| (t, per_victim)).collect();
    if saboteur {
        // Front of the cohort: the saboteur's traps land while victim
        // traffic is in flight, which is the scenario under test.
        cohort.insert(0, (sab_id, per_victim.min(32)));
    }
    let mut sessions = open_cohort(&mut server, 0, &cohort, &mut grafts);
    let mut clock = ServeClock::new(shards);
    let (mut serve_leaked, mut churned, mut slowloris) = (0u64, 0u64, 0u64);
    let mut ops = ServeOps {
        clock: &mut clock,
        next_k: &mut next_k,
        leaked: &mut serve_leaked,
        churned: &mut churned,
        slowloris: &mut slowloris,
        saboteur: saboteur.then_some(sab_id),
        dribble: false,
    };
    serve_cohort(&mut server, &mut sessions, wave_for(shards), &mut ops);

    let mut victim_lat: Vec<u64> = server
        .take_latencies()
        .into_iter()
        .filter(|&(t, _)| t != sab_id)
        .map(|(_, ns)| ns)
        .collect();
    victim_lat.sort_unstable();
    let victim_served = victim_lat.len() as u64;

    // Verify victims only — the saboteur's replies are traps and
    // refusals by design; its connection is just drained and closed.
    let mut leaked = serve_leaked;
    for s in sessions {
        if s.tenant == sab_id {
            let mut c = s.client;
            let out = server.take_outbound(c.conn);
            let _ = c.on_bytes(&out);
            let bye = c.bye();
            server.ingest(c.conn, &bye);
            server.pump_conn(c.conn);
            let _ = server.take_outbound(c.conn);
        } else {
            leaked += verify_and_close(&mut server, vec![s]);
        }
    }

    let quarantined = matches!(
        server.tenant_standing(sab_id),
        Some(Standing::Banned) | Some(Standing::Parked { .. })
    );
    (
        percentile(&victim_lat, 99, 100),
        victim_served,
        leaked,
        server.stats().rejected_quarantined,
        quarantined,
    )
}

/// Runs the noisy-neighbor drill: paired quiet/noisy passes per rep,
/// reporting the best (minimum) p99 of each side — the repo's robust
/// estimator convention, which keeps the ratio gate CI-stable.
fn drill(cfg: &RunConfig, ladder: &[usize], leaked: &mut u64) -> Table11Drill {
    let shards = ladder.iter().copied().max().unwrap_or(1).min(4);
    let victims = 96;
    let reps = cfg.runs.clamp(1, 3);

    let mut quiet_best = u64::MAX;
    let mut noisy_best = u64::MAX;
    let mut victim_served = 0;
    let mut rejections = 0;
    let mut quarantined = true;
    for _ in 0..reps {
        let (qp99, _, ql, _, _) = drill_run(shards, victims, DRILL_PER_VICTIM, false);
        let (np99, nserved, nl, nrej, nq) = drill_run(shards, victims, DRILL_PER_VICTIM, true);
        *leaked += ql + nl;
        quiet_best = quiet_best.min(qp99.max(1));
        noisy_best = noisy_best.min(np99.max(1));
        victim_served = nserved;
        rejections = nrej;
        quarantined &= nq;
    }
    Table11Drill {
        shards,
        victims,
        per_victim: DRILL_PER_VICTIM,
        quiet_p99_ns: quiet_best,
        noisy_p99_ns: noisy_best,
        victim_p99_ratio: noisy_best as f64 / quiet_best as f64,
        saboteur_quarantined: quarantined,
        saboteur_rejections: rejections,
        victim_served,
    }
}

/// Runs the Table 11 experiment over `ladder` (ascending worker
/// counts; pass `&LADDER11` for the default 1/2/4/8), both default
/// arrivals, and the default 100k-tenant population.
pub fn table11(cfg: &RunConfig, ladder: &[usize]) -> Result<Table11, GraftError> {
    table11_with(cfg, ladder, &ARRIVALS11, &ServiceLoad::default())
}

/// [`table11`] restricted to `arrivals` (the `--arrival` flag) and a
/// custom population shape (`--tenants`/`--conns`).
pub fn table11_with(
    cfg: &RunConfig,
    ladder: &[usize],
    arrivals: &[Skew],
    load: &ServiceLoad,
) -> Result<Table11, GraftError> {
    let _span = graft_telemetry::span!("table11_server");
    assert!(!ladder.is_empty(), "empty shard ladder");
    assert!(!arrivals.is_empty(), "empty arrival list");
    let mut leaked = 0u64;
    let mut rows = Vec::new();
    for tech in TECHS11 {
        for &arrival in arrivals {
            let mut cells = Vec::new();
            for &shards in ladder {
                cells.push(cell_run(cfg, tech, arrival, shards, load, &mut leaked)?);
            }
            rows.push(Table11Row {
                tech,
                arrival,
                cells,
            });
        }
    }
    let drill = drill(cfg, ladder, &mut leaked);
    Ok(Table11 {
        rows,
        ladder: ladder.to_vec(),
        tenants: load.tenants,
        conns: load.conns,
        requests: requests_for(cfg),
        runs: cfg.runs.clamp(1, 3),
        leaked,
        drill,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunConfig {
        RunConfig {
            runs: 1,
            evict_iters: 64,
            script_evict_iters: 8,
            md5_bytes: 128,
            script_md5_bytes: 128,
            ld_writes: 64,
            ld_blocks: 64,
            live: false,
            faults: None,
        }
    }

    fn small_load() -> ServiceLoad {
        ServiceLoad {
            tenants: 200,
            conns: 16,
        }
    }

    #[test]
    fn every_cell_serves_everything_and_nothing_leaks() {
        let t = table11_with(&tiny(), &[1, 2], &ARRIVALS11, &small_load()).unwrap();
        assert_eq!(t.rows.len(), TECHS11.len() * ARRIVALS11.len());
        assert_eq!(t.leaked, 0, "cross-tenant verdict leakage");
        let per_rep = requests_for(&tiny()) as u64;
        for row in &t.rows {
            assert_eq!(row.cells.len(), 2);
            for c in &row.cells {
                let s = &c.service;
                assert_eq!(s.served, per_rep, "{} {}", row.tech, row.arrival.name());
                assert_eq!(s.rejected, 0);
                assert!(s.throughput_krps > 0.0);
                assert!(s.p50_ns <= s.p99_ns && s.p99_ns <= s.p999_ns);
                assert!(s.p50_ns > 0);
                assert!(s.distinct_tenants > 0 && s.distinct_tenants <= 200);
                assert!(s.serial_frac > 0.0 && s.serial_frac <= 1.0);
            }
        }
    }

    #[test]
    fn churn_and_slowloris_ride_along_without_leaking() {
        let t = table11_with(&tiny(), &[1, 2], &ARRIVALS11, &small_load()).unwrap();
        assert!(t.slowloris() > 0, "no cohort dribbled a frame");
        assert!(t.churned() > 0, "no tenant churned its transport");
        assert_eq!(t.leaked, 0);
    }

    #[test]
    fn worker_scaling_is_reported_over_the_ladder() {
        let t = table11_with(&tiny(), &[1, 2], &[Skew::Uniform], &small_load()).unwrap();
        let row = t.row(Technology::RustNative, Skew::Uniform).unwrap();
        let s = row.worker_scaling(2).unwrap();
        assert!(s.is_finite() && s > 0.0);
        assert!(row.worker_scaling(8).is_none(), "rung not measured");
    }

    #[test]
    fn skewed_arrivals_concentrate_the_tenant_set() {
        let t = table11_with(&tiny(), &[1], &ARRIVALS11, &small_load()).unwrap();
        let uni = t.row(Technology::RustNative, Skew::Uniform).unwrap();
        let hot = t.row(Technology::RustNative, Skew::Skew8020).unwrap();
        assert!(
            hot.cells[0].service.distinct_tenants < uni.cells[0].service.distinct_tenants,
            "80-20 hit {} tenants, uniform {}",
            hot.cells[0].service.distinct_tenants,
            uni.cells[0].service.distinct_tenants
        );
    }

    #[test]
    fn noisy_drill_quarantines_the_saboteur_and_victims_keep_serving() {
        let t = table11_with(&tiny(), &[2], &[Skew::Uniform], &small_load()).unwrap();
        let d = &t.drill;
        assert!(d.saboteur_quarantined, "{d:?}");
        assert!(d.saboteur_rejections > 0, "{d:?}");
        assert_eq!(d.victim_served, (d.victims * d.per_victim) as u64, "{d:?}");
        assert!(d.victim_p99_ratio.is_finite() && d.victim_p99_ratio > 0.0);
        assert_eq!(t.leaked, 0);
    }

    #[test]
    fn tenant_draws_cover_the_population_shapes() {
        let mut rng = SmallRng::seed_from_u64(7);
        for arrival in Skew::ALL {
            for _ in 0..100 {
                assert!(draw_tenant(arrival, &mut rng, 50) < 50);
            }
            assert_eq!(draw_tenant(arrival, &mut rng, 1), 0);
        }
    }
}
