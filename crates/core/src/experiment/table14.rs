//! Table 14 (ours): durable logdisk — checksummed segments, seeded
//! bit-rot drills, and point-in-time restore at scale.
//!
//! Table 9 prices recovery when the *graft* fails; this table prices
//! recovery when the **storage under the graft lies**. Four
//! measurements, all on multi-million-block skewed traces
//! ([`logdisk::workload::trace`]):
//!
//! 1. **Restore-to-LSN cost vs distance** — a retention-merged history
//!    disk ([`CleaningDisk::with_retention`]) is rolled back to
//!    progressively older LSNs; each [`restore_to_lsn`] audits the full
//!    retained history and replays the prefix idempotently.
//! 2. **Scrub throughput** — a full checksum audit of the retained
//!    history, reported in million entries per second.
//! 3. **Bit-rot detection drills** — one drill per seed: the write
//!    stream runs over a [`FaultyDisk`] armed with `bitrot_permille`;
//!    every drawn [`Bitrot`] flips one stored bit in a persisted
//!    segment. After a crash, scrub must detect and quarantine every
//!    distinct corrupted segment, LSN-guarded redo-tail replay must
//!    repair the map (a redo never rolls back a block whose newer copy
//!    survives in an intact segment), and a content model — stamping
//!    every physical block with the index of the write that actually
//!    produced it, independent of the redo mechanism — proves **zero
//!    silent-wrong-map** outcomes: every logical block resolves to its
//!    newest content or the corruption was loudly reported, never
//!    silently wrong.
//! 4. **Post-restore service cost per technology** — the Table 9 rig,
//!    one restore back in time: the built-in disk is rolled back to
//!    the stream's midpoint, the restored map is adopted into each
//!    technology's graft (`bind_region("map")` + `restore_region`),
//!    spot-checked through `ld_lookup`, and the tail of the stream is
//!    served on the restored state vs a baseline that never time
//!    traveled — priced through the deterministic [`DiskModel`], gated
//!    at post/base ≥ 0.95 like Table 9.
//!
//! The drills deliberately run under a quiet plan plus bit-rot (no
//! transient I/O noise) whatever `--faults` says: detection accounting
//! must reconcile exactly (injected == detected + undetected-by-design)
//! to gate at a 100% detection rate.
//!
//! [`CleaningDisk::with_retention`]: logdisk::cleaner::CleaningDisk::with_retention
//! [`restore_to_lsn`]: logdisk::LogicalDisk::restore_to_lsn
//! [`FaultyDisk`]: kernsim::FaultyDisk
//! [`Bitrot`]: kernsim::Bitrot
//! [`DiskModel`]: kernsim::DiskModel

use std::collections::HashSet;
use std::time::{Duration, Instant};

use graft_api::{GraftError, Technology};
use grafts::logdisk as ld_graft;
use kernsim::stats::Sample;
use kernsim::{DiskModel, FaultPlan, FaultStats, FaultyDisk};
use logdisk::cleaner::CleaningDisk;
use logdisk::{workload, LdConfig, LogicalDisk, MapEntry, Replayer, UNMAPPED};

use super::tables::ROW_ORDER;
use super::RunConfig;
use crate::manager::GraftManager;

/// Seeds for the bit-rot drills; every seed must reach a 100%
/// detection rate with zero silent-wrong-map outcomes.
pub const ROT_SEEDS: [u64; 3] = [7, 21, 99];

/// Bit-rot probability per persisted segment in the drills (3%).
pub const BITROT_PERMILLE: u16 = 30;

/// One technology's post-restore hand-off measurements.
#[derive(Debug, Clone)]
pub struct Table14Row {
    /// Technology hosting the Logical Disk graft.
    pub tech: Technology,
    /// Adopting the restored map into the graft's `map` region.
    pub adopt: Sample,
    /// `ld_lookup` spot checks performed against the restored map.
    pub verified_lookups: u64,
    /// Spot checks that disagreed with the restored map. Must be 0.
    pub lookup_mismatches: u64,
    /// Tail service cost on the restored state relative to a baseline
    /// that never time traveled, priced through the deterministic
    /// [`DiskModel`](kernsim::DiskModel). Gated at ≥ 0.95.
    pub post_over_base: f64,
}

/// One point of the restore-cost-vs-distance curve.
#[derive(Debug, Clone)]
pub struct RestorePoint {
    /// How far behind the durable head the target LSN sits.
    pub distance: u64,
    /// The restored LSN.
    pub lsn: u64,
    /// `restore_to_lsn` cost (audit + idempotent replay).
    pub restore: Sample,
    /// Mapped blocks in the restored map.
    pub mappings: u64,
}

/// Scrub throughput over the retained history.
#[derive(Debug, Clone)]
pub struct ScrubBench {
    /// Segments audited per pass.
    pub segments: u64,
    /// Mapping entries covered per pass.
    pub entries: u64,
    /// One full scrub pass.
    pub scrub: Sample,
    /// Million entries audited per second (from the mean pass).
    pub throughput_m: f64,
}

/// One seeded bit-rot drill.
#[derive(Debug, Clone)]
pub struct RotDrill {
    /// Drill seed (keys both the trace and the fault rng).
    pub seed: u64,
    /// Bit-rot events drawn by the fault plan.
    pub injected: u64,
    /// Distinct segments actually corrupted (first strike per segment).
    pub corrupted: u64,
    /// Corrupt segments the audit detected and quarantined.
    pub detected: u64,
    /// Redundant strikes on an already-corrupted segment — injected
    /// but undetectable *by design* (there is nothing left to rot).
    pub undetected_by_design: u64,
    /// Writes redone from the quarantined spans (those not already
    /// superseded by a newer surviving write) plus the open segment.
    pub redone: u64,
    /// Logical blocks that resolved to wrong or stale content after
    /// recovery — the silent-corruption count. Must be 0.
    pub silent_wrong_map: u64,
    /// Crash → scrub → rebuild → redo, end to end.
    pub recovery: Duration,
    /// Fault accounting for the drill's disk.
    pub faults: FaultStats,
}

impl RotDrill {
    /// Detected over corrupted (1.0 when nothing was corrupted).
    pub fn detection_rate(&self) -> f64 {
        if self.corrupted == 0 {
            1.0
        } else {
            self.detected as f64 / self.corrupted as f64
        }
    }
}

/// Table 14: restore curve, scrub throughput, bit-rot drills, and
/// per-technology post-restore rows.
#[derive(Debug, Clone)]
pub struct Table14 {
    /// Rows, in [`ROW_ORDER`] (no script row, as in Tables 6/9).
    pub rows: Vec<Table14Row>,
    /// Restore-to-LSN cost vs distance on the history disk.
    pub restore_curve: Vec<RestorePoint>,
    /// Scrub throughput on the history disk.
    pub scrub: ScrubBench,
    /// One drill per [`ROT_SEEDS`] entry.
    pub drills: Vec<RotDrill>,
    /// Writes in the history trace.
    pub writes: usize,
    /// Logical blocks on the history disk.
    pub blocks: usize,
    /// Retention window (LSNs behind the durable head kept restorable).
    pub retention_window: u64,
    /// History entries pruned by retention merging.
    pub pruned_entries: u64,
    /// History entries retained after merging.
    pub retained_entries: u64,
    /// Blocks where the midpoint restore diverged from the oracle's
    /// midpoint map. Must be 0 (`restore_to_lsn` exactness).
    pub restore_divergence: u64,
    /// The bit-rot plan shape the drills ran under (seed of the first).
    pub plan: FaultPlan,
    /// Timed repetitions per measurement.
    pub runs: usize,
}

impl Table14 {
    /// The row for a technology.
    pub fn row(&self, tech: Technology) -> Option<&Table14Row> {
        self.rows.iter().find(|r| r.tech == tech)
    }

    /// Worst-case detection rate across all drills (the 100% gate).
    pub fn detection_rate(&self) -> f64 {
        self.drills
            .iter()
            .map(RotDrill::detection_rate)
            .fold(1.0, f64::min)
    }

    /// Silent-wrong-map outcomes across all drills (must be 0).
    pub fn silent_total(&self) -> u64 {
        self.drills.iter().map(|d| d.silent_wrong_map).sum()
    }

    /// Lookup mismatches across all rows (must be 0).
    pub fn mismatch_total(&self) -> u64 {
        self.rows.iter().map(|r| r.lookup_mismatches).sum()
    }

    /// Worst post/base ratio across the rows (the ≥ 0.95 gate).
    pub fn min_post_over_base(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.post_over_base)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Builds the retention-merged history disk: a multi-million-block
/// skewed trace (at full scale) through the cleaner with a retention
/// window of half the trace.
fn history_disk(writes: usize, blocks: usize, window: u64) -> CleaningDisk {
    let config = LdConfig {
        blocks,
        segment_blocks: 16,
    };
    let mut disk = CleaningDisk::with_retention(config, 2, Some(window));
    for l in workload::trace(blocks, writes as u64, 42, 800, 200) {
        disk.write(l);
    }
    disk
}

fn restore_curve(disk: &mut CleaningDisk, runs: usize) -> Vec<RestorePoint> {
    let durable = disk.disk().durable_lsn();
    let floor = disk.disk().retention_floor();
    let span = durable - floor;
    let mut distances: Vec<u64> = [span / 64, span / 16, span / 4, span / 2, span]
        .into_iter()
        .filter(|&d| d > 0)
        .collect();
    distances.dedup();
    distances
        .into_iter()
        .map(|distance| {
            let lsn = durable - distance;
            let mut times = Vec::with_capacity(runs);
            let mut mappings = 0u64;
            for _ in 0..runs {
                let t0 = Instant::now();
                let map = disk
                    .disk_mut()
                    .restore_to_lsn(lsn)
                    .expect("curve targets sit inside the retained window");
                times.push(t0.elapsed());
                mappings = map.iter().filter(|&&p| p != UNMAPPED).count() as u64;
            }
            RestorePoint {
                distance,
                lsn,
                restore: Sample::from_runs(&times),
                mappings,
            }
        })
        .collect()
}

fn scrub_bench(disk: &CleaningDisk, runs: usize) -> ScrubBench {
    let mut times = Vec::with_capacity(runs);
    let mut segments = 0u64;
    let mut entries = 0u64;
    for _ in 0..runs {
        // Each pass on a fresh clone: scrubbing a healthy disk is
        // idempotent, but the clone keeps the stats honest per pass.
        let mut probe = disk.disk().clone();
        let t0 = Instant::now();
        let report = probe.scrub();
        times.push(t0.elapsed());
        assert!(report.clean(), "history disk must audit clean");
        segments = report.scanned;
        entries = report.entries;
    }
    let scrub = Sample::from_runs(&times);
    let mean_s = scrub.mean_ns / 1e9;
    let throughput_m = if mean_s > 0.0 {
        entries as f64 / mean_s / 1e6
    } else {
        0.0
    };
    ScrubBench {
        segments,
        entries,
        scrub,
        throughput_m,
    }
}

/// One seeded bit-rot drill: stream with latent rot, crash, audit,
/// quarantine, redo-tail replay, and the content-model verdict.
fn rot_drill(cfg: &RunConfig, seed: u64) -> RotDrill {
    let blocks = cfg.ld_blocks;
    let writes = (cfg.ld_writes * 2) as u64;
    let config = LdConfig {
        blocks,
        segment_blocks: 16,
    };
    let stream: Vec<u64> = workload::trace(blocks, writes, seed ^ 0xD0, 800, 200).collect();
    let plan = FaultPlan::quiet(seed).with_bitrot(BITROT_PERMILLE);
    let mut faulty = FaultyDisk::new(DiskModel::default(), plan);

    let mut oracle = LogicalDisk::new(config);
    let mut victim = LogicalDisk::new(config);
    // Content model: what (logical, write-index) each physical block
    // holds on the victim, and the newest write index per logical.
    // Silent corruption is defined against *content*: after recovery a
    // logical block must resolve to its newest content — bit-equality
    // of maps is the wrong oracle, because redo legitimately allocates
    // new physical blocks.
    let mut phys_content: Vec<Option<(u64, u64)>> = Vec::new();
    let mut latest: Vec<Option<u64>> = vec![None; blocks];
    let mut record = |victim: &LogicalDisk, l: u64, idx: u64, bump: bool| {
        let p = victim.read(l).expect("just wrote it") as usize;
        if p >= phys_content.len() {
            phys_content.resize(p + 1, None);
        }
        if bump {
            latest[l as usize] = Some(idx);
        }
        // Always stamp the write's own index: the oracle must stay
        // independent of the mechanism under test, so a redone block is
        // marked with the write actually redone — if redo ever installs
        // a stale copy, the verdict sees idx != latest and flags it.
        phys_content[p] = Some((l, idx));
    };

    let mut corrupted: HashSet<usize> = HashSet::new();
    for (i, &l) in stream.iter().enumerate() {
        oracle.write(l);
        let flushed = victim.write(l).is_some();
        record(&victim, l, i as u64, true);
        if flushed {
            // Price the segment write; under the quiet-plus-bitrot plan
            // it cannot fail, only silently rot.
            faulty.segment_write().expect("quiet plan cannot fail");
            if let Some(rot) = faulty.bitrot() {
                // Rot strikes anywhere in the persisted history, not
                // just the newest segment. Struck segments are deduped
                // by index — stable here, since segments are only ever
                // appended during the run — never by a field of the
                // record itself, which a prior summary strike may have
                // already flipped into a fresh-looking identity.
                let index = (rot.entropy % victim.segments().len() as u64) as usize;
                if corrupted.insert(index) {
                    victim.corrupt_segment(index, rot.summary, rot.entropy);
                } else {
                    // A second strike on an already-rotted segment has
                    // nothing intact left to corrupt: injected, but
                    // undetectable by design. Accounted, not applied.
                }
            }
        }
    }

    // Crash: the in-memory map is gone; recovery must come from the
    // (partly rotted) sealed records plus redo-tail replay.
    let t0 = Instant::now();
    let pending = victim.crash();
    let report = victim.scrub();
    victim.rebuild_map();
    // Per-slot LSN guard over the surviving history: a span write is
    // redone only when every surviving mapping for that block is older
    // than the write being redone. Without the guard, a block whose
    // corrupted-segment write was superseded by a newer write in a
    // later intact segment would be rolled back to the stale copy (and
    // overlapping spans from adjacent quarantines would redo twice).
    let mut guard = Replayer::new(blocks);
    for s in victim.segments() {
        guard.apply_segment(s);
    }
    let mut redone = 0u64;
    for &(start, end) in &report.redo_spans {
        for i in start..end {
            let l = stream[i as usize];
            let e = MapEntry {
                lsn: i,
                logical: l,
                physical: 0, // the guard only consults the LSN
            };
            if guard.apply(&e) {
                victim.write(l);
                record(&victim, l, i, false);
                redone += 1;
            }
        }
    }
    // Open-segment writes carry the newest LSNs of all, so they always
    // win; each is stamped with its true index in the stream.
    let first_pending = stream.len() - pending.len();
    for (k, l) in pending.into_iter().enumerate() {
        victim.write(l);
        record(&victim, l, (first_pending + k) as u64, false);
        redone += 1;
    }
    let recovery = t0.elapsed();

    // The verdict: every mapped logical block must resolve to its
    // newest content; every unmapped one must be unmapped on the
    // oracle too. Anything else is silent corruption.
    let mut silent_wrong_map = 0u64;
    for l in 0..blocks as u64 {
        let ok = match (oracle.read(l), victim.read(l)) {
            (None, None) => true,
            (Some(_), Some(p)) => {
                phys_content.get(p as usize).copied().flatten() == Some((l, latest[l as usize].unwrap()))
            }
            _ => false,
        };
        if !ok {
            silent_wrong_map += 1;
        }
    }

    let faults = faulty.stats();
    let detected = report.failures;
    let undetected_by_design = faults.bitrot - corrupted.len() as u64;
    RotDrill {
        seed,
        injected: faults.bitrot,
        corrupted: corrupted.len() as u64,
        detected,
        undetected_by_design,
        redone,
        silent_wrong_map,
        recovery,
        faults,
    }
}

/// One technology's post-restore hand-off: adopt the midpoint-restored
/// map into the graft, spot-check it, and race the tail service cost.
fn restore_row(
    cfg: &RunConfig,
    manager: &GraftManager,
    tech: Technology,
    restored: &[i64],
    tail_ratio: f64,
) -> Result<Table14Row, GraftError> {
    let blocks = restored.len();
    let mut engine = manager.load(&ld_graft::spec_sized(blocks), tech)?;
    ld_graft::init_map(engine.as_mut(), blocks)?;
    let region = engine.bind_region("map")?;

    let runs = if tech == Technology::UserLevel {
        cfg.runs.clamp(1, 2)
    } else {
        cfg.runs.clamp(1, 5)
    };
    let mut adopts = Vec::with_capacity(runs);
    for _ in 0..runs {
        let t0 = Instant::now();
        engine.restore_region(region, restored)?;
        adopts.push(t0.elapsed());
    }

    // Spot-check the adopted map through the graft's own lookup path.
    let probes = if tech == Technology::UserLevel { 8 } else { 64 };
    let stride = (blocks / probes).max(1);
    let mut verified_lookups = 0u64;
    let mut lookup_mismatches = 0u64;
    for l in (0..blocks).step_by(stride) {
        let got = engine.invoke("ld_lookup", &[l as i64])?;
        verified_lookups += 1;
        if got != restored[l] {
            lookup_mismatches += 1;
        }
    }

    Ok(Table14Row {
        tech,
        adopt: Sample::from_runs(&adopts),
        verified_lookups,
        lookup_mismatches,
        post_over_base: tail_ratio,
    })
}

/// Runs the Table 14 experiment.
pub fn table14(cfg: &RunConfig) -> Result<Table14, GraftError> {
    let _span = graft_telemetry::span!("table14_durable");
    let runs = cfg.runs.clamp(2, 5);

    // ---- History disk: the scaled trace with retention merging. ----
    let writes = cfg.ld_writes * 8;
    let blocks = cfg.ld_blocks * 2;
    let window = (writes / 2) as u64;
    let mut history = history_disk(writes, blocks, window);
    let restore_curve = restore_curve(&mut history, runs);
    let scrub = scrub_bench(&history, runs);
    let pruned_entries = history.disk().stats().pruned_entries;
    let retained_entries = history.disk().retained_entries();
    drop(history);

    // ---- Bit-rot drills. ----
    let drills: Vec<RotDrill> = ROT_SEEDS.iter().map(|&s| rot_drill(cfg, s)).collect();
    let plan = FaultPlan::quiet(ROT_SEEDS[0]).with_bitrot(BITROT_PERMILLE);

    // ---- Per-technology post-restore rows (Table 9 rig sizes). ----
    let row_blocks = cfg.ld_blocks;
    let config = LdConfig {
        blocks: row_blocks,
        segment_blocks: 16,
    };
    let stream: Vec<u64> = workload::trace(row_blocks, cfg.ld_writes as u64, 42, 800, 200).collect();
    let half = (stream.len() / 2 / 16).max(1) * 16;
    let mut full = LogicalDisk::new(config);
    for &l in &stream {
        full.write(l);
    }
    let restored = full
        .restore_to_lsn(half as u64)
        .expect("midpoint is retained");
    // Exactness against the oracle that only ever saw the prefix.
    let mut oracle_half = LogicalDisk::new(config);
    for &l in &stream[..half] {
        oracle_half.write(l);
    }
    let restore_divergence = restored
        .iter()
        .zip(oracle_half.map().iter())
        .filter(|(a, b)| a != b)
        .count() as u64;

    // Tail service race: the restored state vs the state that never
    // time traveled, both adopted through `with_map`, priced through
    // the deterministic DiskModel exactly as Table 9's hand-off gate.
    let tail = &stream[half..];
    let model = DiskModel::default();
    let service_cost = |map: &[i64]| -> Duration {
        let mut d = LogicalDisk::with_map(config, map);
        let mut flushes = 0u32;
        for &l in tail {
            if d.write(l).is_some() {
                flushes += 1;
            }
        }
        model.segment_write() * flushes
    };
    let post_cost = service_cost(&restored);
    let base_cost = service_cost(oracle_half.map());
    let tail_ratio = if post_cost.is_zero() {
        1.0
    } else {
        base_cost.as_secs_f64() / post_cost.as_secs_f64()
    };

    let manager = GraftManager::new();
    let mut rows = Vec::new();
    for tech in ROW_ORDER {
        if tech == Technology::Script {
            continue; // no Tcl Logical Disk, as in Table 6
        }
        rows.push(restore_row(cfg, &manager, tech, &restored, tail_ratio)?);
    }

    let t = Table14 {
        rows,
        restore_curve,
        scrub,
        drills,
        writes,
        blocks,
        retention_window: window,
        pruned_entries,
        retained_entries,
        restore_divergence,
        plan,
        runs,
    };
    if graft_telemetry::enabled() {
        graft_telemetry::counter!("ld.silent_wrong_map").add(t.silent_total());
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunConfig {
        RunConfig {
            runs: 2,
            evict_iters: 50,
            script_evict_iters: 5,
            md5_bytes: 128,
            script_md5_bytes: 128,
            ld_writes: 1_024,
            ld_blocks: 512,
            live: false,
            faults: None,
        }
    }

    #[test]
    fn every_drill_detects_every_corruption_with_no_silent_wrong_map() {
        let t = table14(&tiny()).unwrap();
        assert_eq!(t.drills.len(), ROT_SEEDS.len());
        let mut corrupted_somewhere = false;
        for d in &t.drills {
            assert_eq!(
                d.detected, d.corrupted,
                "seed {}: every corrupted segment must be detected",
                d.seed
            );
            assert_eq!(
                d.injected,
                d.corrupted + d.undetected_by_design,
                "seed {}: fault accounting must reconcile",
                d.seed
            );
            assert_eq!(d.faults.bitrot, d.injected, "seed {}", d.seed);
            assert_eq!(d.silent_wrong_map, 0, "seed {}: silent corruption", d.seed);
            corrupted_somewhere |= d.corrupted > 0;
        }
        assert!(corrupted_somewhere, "drills must actually inject rot");
        assert_eq!(t.detection_rate(), 1.0);
        assert_eq!(t.silent_total(), 0);
    }

    #[test]
    fn restore_rows_are_exact_and_cost_neutral() {
        let t = table14(&tiny()).unwrap();
        assert_eq!(t.rows.len(), ROW_ORDER.len() - 1);
        assert!(t.row(Technology::Script).is_none());
        assert_eq!(t.restore_divergence, 0, "midpoint restore must be exact");
        for row in &t.rows {
            assert!(row.verified_lookups > 0, "{}", row.tech);
            assert_eq!(row.lookup_mismatches, 0, "{}: adopted map lies", row.tech);
            assert!(row.adopt.best_ns() > 0.0, "{}", row.tech);
            assert!(
                row.post_over_base >= 0.95,
                "{}: post/base = {:.3}",
                row.tech,
                row.post_over_base
            );
        }
        assert_eq!(t.mismatch_total(), 0);
    }

    #[test]
    fn the_history_disk_is_merged_and_scrubbable() {
        let t = table14(&tiny()).unwrap();
        assert!(t.pruned_entries > 0, "retention merging must prune");
        assert!(t.retained_entries > 0);
        assert!(t.scrub.entries > 0);
        assert!(t.scrub.segments > 0);
        assert!(t.scrub.throughput_m > 0.0);
        assert!(!t.restore_curve.is_empty());
        for p in &t.restore_curve {
            assert!(p.restore.best_ns() > 0.0);
            assert!(p.mappings > 0);
        }
        // Distances are distinct and the curve covers the whole window.
        let span = t.restore_curve.last().unwrap().distance;
        assert!(span > 0);
    }

    #[test]
    fn guarded_redo_never_rolls_back_a_superseded_block() {
        // Block 1 is written in segment 0 (physical 0) and rewritten in
        // segment 1 (physical 4). Rotting segment 0 puts write 0 in the
        // redo span, but the per-slot LSN guard must refuse to roll
        // block 1 back over its newer surviving copy — exactly the
        // recovery sequence rot_drill runs.
        let config = LdConfig {
            blocks: 64,
            segment_blocks: 4,
        };
        let stream = [1u64, 2, 3, 4, 1, 5, 6, 7];
        let mut d = LogicalDisk::new(config);
        for &l in &stream {
            d.write(l);
        }
        d.corrupt_segment(0, false, 0xAB).unwrap();
        d.crash();
        let report = d.scrub();
        d.rebuild_map();
        assert_eq!(report.redo_spans, vec![(0, 4)]);
        let mut guard = Replayer::new(config.blocks);
        for s in d.segments() {
            guard.apply_segment(s);
        }
        let mut redone = 0;
        for &(start, end) in &report.redo_spans {
            for i in start..end {
                let l = stream[i as usize];
                let e = MapEntry {
                    lsn: i,
                    logical: l,
                    physical: 0,
                };
                if guard.apply(&e) {
                    d.write(l);
                    redone += 1;
                }
            }
        }
        // Writes 1..4 (blocks 2, 3, 4) are redone; write 0 (block 1)
        // is skipped: its surviving copy at LSN 4 is newer.
        assert_eq!(redone, 3);
        assert_eq!(d.read(1), Some(4), "newest copy must survive the redo");
        assert!(d.read(2).is_some());
        assert!(d.read(3).is_some());
        assert!(d.read(4).is_some());
    }

    #[test]
    fn drills_are_deterministic_in_their_seeds() {
        let cfg = tiny();
        let a = table14(&cfg).unwrap();
        let b = table14(&cfg).unwrap();
        for (x, y) in a.drills.iter().zip(&b.drills) {
            assert_eq!(x.injected, y.injected);
            assert_eq!(x.corrupted, y.corrupted);
            assert_eq!(x.detected, y.detected);
            assert_eq!(x.redone, y.redone);
            assert_eq!(x.faults, y.faults);
        }
        assert_eq!(a.restore_divergence, b.restore_divergence);
        assert_eq!(a.retained_entries, b.retained_entries);
    }
}
