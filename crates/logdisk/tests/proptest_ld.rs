//! Property tests for the Logical Disk facility, driven by a seeded RNG
//! (no network deps).

use std::collections::HashMap;

use graft_rng::{Rng, SmallRng};
use logdisk::{cleaner::CleaningDisk, LdConfig, LogicalDisk, UNMAPPED};

/// The map always reflects the most recent write of each block, and
/// physical addresses are handed out sequentially.
#[test]
fn map_matches_a_hashmap_model() {
    let mut rng = SmallRng::seed_from_u64(0x10D);
    for _case in 0..32 {
        let nwrites = rng.gen_range(0usize..600);
        let writes: Vec<u64> = (0..nwrites).map(|_| rng.gen_range(0u64..256)).collect();
        let config = LdConfig { blocks: 256, segment_blocks: 16 };
        let mut ld = LogicalDisk::new(config);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (seq, &w) in writes.iter().enumerate() {
            ld.write(w);
            model.insert(w, seq as u64);
        }
        for b in 0..256u64 {
            assert_eq!(ld.read(b), model.get(&b).copied());
        }
        assert_eq!(ld.physical_used(), writes.len() as u64);
        // Unwritten blocks stay unmapped in the raw map too.
        for (b, &p) in ld.map().iter().enumerate() {
            assert_eq!(p == UNMAPPED, !model.contains_key(&(b as u64)));
        }
    }
}

/// Segments flush exactly every `segment_blocks` writes.
#[test]
fn flush_cadence_is_exact() {
    let mut rng = SmallRng::seed_from_u64(0xF1);
    for _case in 0..32 {
        let nwrites = rng.gen_range(0usize..400);
        let config = LdConfig { blocks: 128, segment_blocks: 16 };
        let mut ld = LogicalDisk::new(config);
        let mut flushes = 0u64;
        for i in 0..nwrites {
            let f = ld.write(rng.gen_range(0u64..128));
            assert_eq!(f.is_some(), (i + 1) % 16 == 0);
            if f.is_some() {
                flushes += 1;
            }
        }
        assert_eq!(ld.stats().segments_flushed, flushes);
    }
}

/// With the cleaner, every written block stays readable no matter how
/// far the workload outruns the disk.
#[test]
fn cleaner_preserves_all_live_blocks() {
    let mut rng = SmallRng::seed_from_u64(0xC1EA);
    for _case in 0..24 {
        let nwrites = rng.gen_range(1usize..1500);
        let config = LdConfig { blocks: 64, segment_blocks: 8 };
        let mut disk = CleaningDisk::new(config, 2);
        let mut written = std::collections::HashSet::new();
        for _ in 0..nwrites {
            let w = rng.gen_range(0u64..64);
            disk.write(w);
            written.insert(w);
        }
        for &b in &written {
            assert!(disk.disk().read(b).is_some(), "block {} lost", b);
        }
    }
}
