//! Property tests for the Logical Disk facility, driven by a seeded RNG
//! (no network deps).

use std::collections::HashMap;

use graft_rng::{Rng, SmallRng};
use logdisk::{cleaner::CleaningDisk, workload, LdConfig, LogicalDisk, Replayer, UNMAPPED};

/// The map always reflects the most recent write of each block, and
/// physical addresses are handed out sequentially.
#[test]
fn map_matches_a_hashmap_model() {
    let mut rng = SmallRng::seed_from_u64(0x10D);
    for _case in 0..32 {
        let nwrites = rng.gen_range(0usize..600);
        let writes: Vec<u64> = (0..nwrites).map(|_| rng.gen_range(0u64..256)).collect();
        let config = LdConfig { blocks: 256, segment_blocks: 16 };
        let mut ld = LogicalDisk::new(config);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (seq, &w) in writes.iter().enumerate() {
            ld.write(w);
            model.insert(w, seq as u64);
        }
        for b in 0..256u64 {
            assert_eq!(ld.read(b), model.get(&b).copied());
        }
        assert_eq!(ld.physical_used(), writes.len() as u64);
        // Unwritten blocks stay unmapped in the raw map too.
        for (b, &p) in ld.map().iter().enumerate() {
            assert_eq!(p == UNMAPPED, !model.contains_key(&(b as u64)));
        }
    }
}

/// Segments flush exactly every `segment_blocks` writes.
#[test]
fn flush_cadence_is_exact() {
    let mut rng = SmallRng::seed_from_u64(0xF1);
    for _case in 0..32 {
        let nwrites = rng.gen_range(0usize..400);
        let config = LdConfig { blocks: 128, segment_blocks: 16 };
        let mut ld = LogicalDisk::new(config);
        let mut flushes = 0u64;
        for i in 0..nwrites {
            let f = ld.write(rng.gen_range(0u64..128));
            assert_eq!(f.is_some(), (i + 1) % 16 == 0);
            if f.is_some() {
                flushes += 1;
            }
        }
        assert_eq!(ld.stats().segments_flushed, flushes);
    }
}

/// Crash-at-every-point: a 10,000-write trace where the disk crashes
/// after *every single write*, rebuilds its map from the checksummed
/// sealed records (paying the full audit each time), redoes the lost
/// tail, and must be observationally equal to a hashmap model at every
/// point. This is the recovery invariant the paper's Logical Disk
/// leans on, tested exhaustively rather than at sampled points.
#[test]
fn rebuild_is_observationally_exact_at_every_crash_point() {
    let config = LdConfig {
        blocks: 1024,
        segment_blocks: 16,
    };
    let trace: Vec<u64> = workload::trace(config.blocks, 10_000, 0xC8A5, 800, 200).collect();
    let mut ld = LogicalDisk::new(config);
    let mut model: HashMap<u64, ()> = HashMap::new();
    for &l in &trace {
        ld.write(l);
        model.insert(l, ());
        // Crash here: in-memory map and open segment are gone.
        let pending = ld.crash();
        ld.rebuild_map();
        for p in pending {
            ld.write(p); // redo-tail replay of the lost writes
        }
        for b in 0..config.blocks as u64 {
            assert_eq!(
                ld.read(b).is_some(),
                model.contains_key(&b),
                "block {b} after crash at write #{}",
                ld.stats().crashes
            );
        }
    }
    assert_eq!(ld.stats().crashes, trace.len() as u64);
    assert_eq!(ld.stats().rebuilds, trace.len() as u64);
    assert_eq!(ld.stats().checksum_failures, 0);
}

/// `crash_with_unpersisted(n)` clamps to the sealed-segment count and,
/// for every n, rebuild + redo of the returned writes restores
/// observational equality with the model.
#[test]
fn unpersisted_crashes_redo_to_the_model_for_every_depth() {
    let mut rng = SmallRng::seed_from_u64(0xDEAD);
    for _case in 0..16 {
        let config = LdConfig {
            blocks: 256,
            segment_blocks: 16,
        };
        let nwrites = rng.gen_range(1usize..800);
        let writes: Vec<u64> = (0..nwrites).map(|_| rng.gen_range(0u64..256)).collect();
        // Lose up to everything — including n far beyond what exists.
        let depth = rng.gen_range(0usize..80);
        let mut ld = LogicalDisk::new(config);
        let mut model: HashMap<u64, ()> = HashMap::new();
        for &w in &writes {
            ld.write(w);
            model.insert(w, ());
        }
        let sealed = ld.segments().len();
        let lost = ld.crash_with_unpersisted(depth);
        assert!(
            lost.len() <= depth.min(sealed) * 16 + 16,
            "clamp: at most min(n, sealed) segments plus the open tail"
        );
        ld.rebuild_map();
        for l in lost {
            ld.write(l); // redo
        }
        for b in 0..256u64 {
            assert_eq!(ld.read(b).is_some(), model.contains_key(&b), "block {b}");
        }
    }
}

/// The replayer is idempotent: replaying any prefix twice — or
/// restarting the whole replay over a half-applied map, as a crash in
/// the middle of recovery would — converges to the same map.
#[test]
fn replay_is_idempotent_under_repeats_and_mid_replay_crashes() {
    let mut rng = SmallRng::seed_from_u64(0x1DE9);
    for _case in 0..16 {
        let config = LdConfig {
            blocks: 128,
            segment_blocks: 8,
        };
        let nwrites = rng.gen_range(8usize..600);
        let mut ld = LogicalDisk::new(config);
        for _ in 0..nwrites {
            ld.write(rng.gen_range(0u64..128));
        }
        let segments = ld.segments();

        // Ground truth: one clean pass.
        let mut clean = Replayer::new(config.blocks);
        for s in segments {
            clean.apply_segment(s);
        }

        // Replaying every prefix twice never moves the map backwards.
        let mut twice = Replayer::new(config.blocks);
        for s in segments {
            twice.apply_segment(s);
            let advanced_before = twice.advanced();
            twice.apply_segment(s);
            assert_eq!(twice.advanced(), advanced_before, "re-replay must no-op");
        }
        assert_eq!(twice.map(), clean.map());

        // Crash mid-replay: apply a random prefix of entries, then
        // restart the full replay over the same half-applied state.
        let cut = rng.gen_range(0usize..segments.len().max(1));
        let mut crashed = Replayer::new(config.blocks);
        for s in &segments[..cut] {
            crashed.apply_segment(s);
        }
        for s in segments {
            crashed.apply_segment(s);
        }
        assert_eq!(crashed.map(), clean.map(), "restarted replay diverged");
    }
}

/// Point-in-time restore is exact at every retained LSN, before and
/// after multi-version merges at random watermarks: the restored map
/// always equals a fresh disk that only ever saw the trace prefix.
#[test]
fn restore_is_exact_at_every_retained_lsn_across_random_merges() {
    let mut rng = SmallRng::seed_from_u64(0x9E57);
    for _case in 0..8 {
        let config = LdConfig {
            blocks: 128,
            segment_blocks: 8,
        };
        let nwrites = rng.gen_range(64usize..400);
        let stream: Vec<u64> = (0..nwrites).map(|_| rng.gen_range(0u64..128)).collect();
        let mut ld = LogicalDisk::new(config);
        for &l in &stream {
            ld.write(l);
        }
        // A couple of merges at random watermarks, compounding.
        for _ in 0..rng.gen_range(0usize..3) {
            let watermark = rng.gen_range(0u64..ld.durable_lsn() + 1);
            ld.merge_below_watermark(watermark);
        }
        for lsn in ld.retention_floor()..=ld.durable_lsn() {
            let restored = ld.restore_to_lsn(lsn).unwrap();
            let mut oracle = LogicalDisk::new(config);
            for &l in &stream[..lsn as usize] {
                oracle.write(l);
            }
            assert_eq!(restored.as_slice(), oracle.map(), "restore to LSN {lsn} diverged");
        }
    }
}

/// With the cleaner, every written block stays readable no matter how
/// far the workload outruns the disk.
#[test]
fn cleaner_preserves_all_live_blocks() {
    let mut rng = SmallRng::seed_from_u64(0xC1EA);
    for _case in 0..24 {
        let nwrites = rng.gen_range(1usize..1500);
        let config = LdConfig { blocks: 64, segment_blocks: 8 };
        let mut disk = CleaningDisk::new(config, 2);
        let mut written = std::collections::HashSet::new();
        for _ in 0..nwrites {
            let w = rng.gen_range(0u64..64);
            disk.write(w);
            written.insert(w);
        }
        for &b in &written {
            assert!(disk.disk().read(b).is_some(), "block {} lost", b);
        }
    }
}
