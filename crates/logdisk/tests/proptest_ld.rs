//! Property tests for the Logical Disk facility.

use logdisk::{cleaner::CleaningDisk, LdConfig, LogicalDisk, UNMAPPED};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// The map always reflects the most recent write of each block, and
    /// physical addresses are handed out sequentially.
    #[test]
    fn map_matches_a_hashmap_model(
        writes in prop::collection::vec(0u64..256, 0..600),
    ) {
        let config = LdConfig { blocks: 256, segment_blocks: 16 };
        let mut ld = LogicalDisk::new(config);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (seq, &w) in writes.iter().enumerate() {
            ld.write(w);
            model.insert(w, seq as u64);
        }
        for b in 0..256u64 {
            prop_assert_eq!(ld.read(b), model.get(&b).copied());
        }
        prop_assert_eq!(ld.physical_used(), writes.len() as u64);
        // Unwritten blocks stay unmapped in the raw map too.
        for (b, &p) in ld.map().iter().enumerate() {
            prop_assert_eq!(p == UNMAPPED, !model.contains_key(&(b as u64)));
        }
    }

    /// Segments flush exactly every `segment_blocks` writes.
    #[test]
    fn flush_cadence_is_exact(writes in prop::collection::vec(0u64..128, 0..400)) {
        let config = LdConfig { blocks: 128, segment_blocks: 16 };
        let mut ld = LogicalDisk::new(config);
        let mut flushes = 0u64;
        for (i, &w) in writes.iter().enumerate() {
            let f = ld.write(w);
            prop_assert_eq!(f.is_some(), (i + 1) % 16 == 0);
            if f.is_some() {
                flushes += 1;
            }
        }
        prop_assert_eq!(ld.stats().segments_flushed, flushes);
    }

    /// With the cleaner, every written block stays readable no matter
    /// how far the workload outruns the disk.
    #[test]
    fn cleaner_preserves_all_live_blocks(
        writes in prop::collection::vec(0u64..64, 1..1500),
    ) {
        let config = LdConfig { blocks: 64, segment_blocks: 8 };
        let mut disk = CleaningDisk::new(config, 2);
        let mut written = std::collections::HashSet::new();
        for &w in &writes {
            disk.write(w);
            written.insert(w);
        }
        for &b in &written {
            prop_assert!(disk.disk().read(b).is_some(), "block {} lost", b);
        }
    }
}
