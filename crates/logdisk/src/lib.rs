//! The Logical Disk facility (de Jonge et al., SOSP '93), the paper's
//! representative **black-box graft** workload (Sections 3.3 and 5.6).
//!
//! A Logical Disk sits between the filesystem and the physical disk: the
//! filesystem reads and writes *logical* blocks, and the LD maps them to
//! physical locations, batching incoming writes into physically
//! contiguous segments so that random write traffic becomes sequential.
//! The paper's simulation: a 1 GB disk of 4 KB blocks gathered into
//! 64 KB (16-block) segments, driven by 262,144 block writes skewed so
//! that 80% of the writes hit 20% of the blocks, with all mapping state
//! in main memory and no cleaner.
//!
//! This crate is the standalone facility: [`LogicalDisk`] does the
//! bookkeeping, [`workload`] generates the paper's skewed write stream,
//! and [`cleaner`] adds the segment cleaner the paper explicitly left
//! out (an extension; enabled nowhere in the Table 6 reproduction).
//! The graft versions of the same bookkeeping — Grail, Tickle, bytecode,
//! native — live in the `grafts` crate and are checked against this
//! implementation as an oracle.

pub mod cleaner;
pub mod workload;

/// Sentinel for "logical block never written".
pub const UNMAPPED: i64 = -1;

/// Paper defaults: 1 GB disk, 4 KB blocks, 16-block (64 KB) segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LdConfig {
    /// Total logical blocks (also the number of physical blocks).
    pub blocks: usize,
    /// Blocks per segment.
    pub segment_blocks: usize,
}

impl Default for LdConfig {
    fn default() -> Self {
        LdConfig {
            blocks: 262_144,
            segment_blocks: 16,
        }
    }
}

impl LdConfig {
    /// A small configuration for tests and quick runs.
    pub fn small() -> Self {
        LdConfig {
            blocks: 1024,
            segment_blocks: 16,
        }
    }

    /// Number of segments on the disk.
    pub fn segments(&self) -> usize {
        self.blocks / self.segment_blocks
    }
}

/// A completed segment handed to the disk: a physically contiguous run
/// of blocks to be written with one seek.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentFlush {
    /// First physical block of the segment.
    pub physical_start: u64,
    /// Logical blocks written into the segment, in order.
    pub logical: Vec<u64>,
}

/// Statistics accumulated by a [`LogicalDisk`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LdStats {
    /// Total block writes accepted.
    pub writes: u64,
    /// Writes that superseded a still-buffered copy in the open segment.
    pub rewrites_in_segment: u64,
    /// Segments flushed.
    pub segments_flushed: u64,
    /// Blocks whose previous physical copy became garbage.
    pub dead_blocks: u64,
}

/// The Logical Disk bookkeeping engine.
///
/// `write` is the hot path the paper times: one map update plus segment
/// batching per logical write. Reads translate through the map.
#[derive(Debug, Clone)]
pub struct LogicalDisk {
    config: LdConfig,
    /// logical → physical block, or [`UNMAPPED`].
    map: Vec<i64>,
    /// Logical blocks buffered in the currently filling segment.
    open_segment: Vec<u64>,
    /// Physical block cursor (wraps around the disk; reuse is the
    /// cleaner's concern, which the paper's run sidesteps by sizing the
    /// run to the number of blocks on the disk).
    next_physical: u64,
    stats: LdStats,
}

impl LogicalDisk {
    /// Creates an empty logical disk.
    pub fn new(config: LdConfig) -> Self {
        assert!(config.segment_blocks > 0, "segments must hold blocks");
        assert!(
            config.blocks.is_multiple_of(config.segment_blocks),
            "disk size must be a whole number of segments"
        );
        LogicalDisk {
            config,
            map: vec![UNMAPPED; config.blocks],
            open_segment: Vec::with_capacity(config.segment_blocks),
            next_physical: 0,
            stats: LdStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> LdConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> LdStats {
        self.stats
    }

    /// The logical→physical map (read-only view).
    pub fn map(&self) -> &[i64] {
        &self.map
    }

    /// Translates a logical block for a read; `None` if never written.
    ///
    /// Blocks still buffered in the open segment already have their
    /// final physical address, so translation is uniform.
    pub fn read(&self, logical: u64) -> Option<u64> {
        match self.map.get(logical as usize) {
            Some(&p) if p != UNMAPPED => Some(p as u64),
            _ => None,
        }
    }

    /// Accepts one logical block write; returns the flushed segment when
    /// this write fills it.
    ///
    /// # Panics
    ///
    /// Panics if `logical` is beyond the disk (the kernel validates
    /// block numbers before they reach the LD layer).
    pub fn write(&mut self, logical: u64) -> Option<SegmentFlush> {
        let slot = logical as usize;
        assert!(slot < self.config.blocks, "logical block out of range");
        self.stats.writes += 1;
        let old = self.map[slot];
        if old != UNMAPPED {
            self.stats.dead_blocks += 1;
            // If the previous copy is still in the open segment this is
            // a rewrite the batching absorbs for free.
            let seg_start = self.next_physical - self.open_segment.len() as u64;
            if (old as u64) >= seg_start {
                self.stats.rewrites_in_segment += 1;
            }
        }
        self.map[slot] = self.next_physical as i64;
        self.next_physical += 1;
        self.open_segment.push(logical);
        if self.open_segment.len() == self.config.segment_blocks {
            let logical_blocks = std::mem::take(&mut self.open_segment);
            self.open_segment = Vec::with_capacity(self.config.segment_blocks);
            self.stats.segments_flushed += 1;
            Some(SegmentFlush {
                physical_start: self.next_physical - self.config.segment_blocks as u64,
                logical: logical_blocks,
            })
        } else {
            None
        }
    }

    /// Blocks currently buffered and not yet flushed.
    pub fn pending(&self) -> &[u64] {
        &self.open_segment
    }

    /// Physical blocks consumed so far (monotone; exceeds the disk size
    /// if the workload outruns a missing cleaner).
    pub fn physical_used(&self) -> u64 {
        self.next_physical
    }
}

impl Drop for LogicalDisk {
    /// Flushes accumulated statistics to the global telemetry counters.
    ///
    /// Done at teardown, never per write: `write` is the hot path the
    /// Table 6 experiment times, so it must not touch an atomic. Each
    /// disk (including clones) contributes its totals exactly once.
    fn drop(&mut self) {
        if !graft_telemetry::enabled() {
            return;
        }
        let s = self.stats;
        graft_telemetry::counter!("ld.writes").add(s.writes);
        graft_telemetry::counter!("ld.rewrites_in_segment").add(s.rewrites_in_segment);
        graft_telemetry::counter!("ld.segments_flushed").add(s.segments_flushed);
        graft_telemetry::counter!("ld.dead_blocks").add(s.dead_blocks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ld() -> LogicalDisk {
        LogicalDisk::new(LdConfig {
            blocks: 64,
            segment_blocks: 4,
        })
    }

    #[test]
    fn writes_allocate_sequential_physical_blocks() {
        let mut d = ld();
        // Random-looking logical blocks...
        for logical in [40, 3, 17, 9] {
            let flush = d.write(logical);
            if let Some(f) = flush {
                // ...land physically contiguous.
                assert_eq!(f.physical_start, 0);
                assert_eq!(f.logical, vec![40, 3, 17, 9]);
            }
        }
        assert_eq!(d.read(17), Some(2));
        assert_eq!(d.read(9), Some(3));
    }

    #[test]
    fn unwritten_blocks_are_unmapped() {
        let d = ld();
        assert_eq!(d.read(5), None);
    }

    #[test]
    fn rewrite_updates_map_and_counts_garbage() {
        let mut d = ld();
        d.write(7);
        d.write(7);
        assert_eq!(d.read(7), Some(1));
        let s = d.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.dead_blocks, 1);
        assert_eq!(s.rewrites_in_segment, 1);
    }

    #[test]
    fn segments_flush_every_n_writes() {
        let mut d = ld();
        let mut flushes = 0;
        for i in 0..16 {
            if d.write(i % 8).is_some() {
                flushes += 1;
            }
        }
        assert_eq!(flushes, 4);
        assert_eq!(d.stats().segments_flushed, 4);
        assert!(d.pending().is_empty());
    }

    #[test]
    fn paper_configuration_shape() {
        let c = LdConfig::default();
        assert_eq!(c.blocks, 262_144); // 1 GB / 4 KB
        assert_eq!(c.segment_blocks, 16); // 64 KB segments
        assert_eq!(c.segments(), 16_384);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_block_panics() {
        ld().write(1 << 40);
    }

    #[test]
    fn full_paper_run_fits_exactly_without_a_cleaner() {
        // The paper runs exactly `blocks` iterations "because our
        // simulation does not include a cleaner".
        let config = LdConfig::small();
        let mut d = LogicalDisk::new(config);
        for logical in workload::skewed(config.blocks, config.blocks as u64, 42) {
            d.write(logical);
        }
        assert_eq!(d.physical_used() as usize, config.blocks);
        assert_eq!(d.stats().segments_flushed as usize, config.segments());
    }
}
