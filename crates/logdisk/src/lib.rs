//! The Logical Disk facility (de Jonge et al., SOSP '93), the paper's
//! representative **black-box graft** workload (Sections 3.3 and 5.6).
//!
//! A Logical Disk sits between the filesystem and the physical disk: the
//! filesystem reads and writes *logical* blocks, and the LD maps them to
//! physical locations, batching incoming writes into physically
//! contiguous segments so that random write traffic becomes sequential.
//! The paper's simulation: a 1 GB disk of 4 KB blocks gathered into
//! 64 KB (16-block) segments, driven by 262,144 block writes skewed so
//! that 80% of the writes hit 20% of the blocks, with all mapping state
//! in main memory and no cleaner.
//!
//! This crate is the standalone facility: [`LogicalDisk`] does the
//! bookkeeping, [`workload`] generates the paper's skewed write stream,
//! and [`cleaner`] adds the segment cleaner the paper explicitly left
//! out (an extension; enabled nowhere in the Table 6 reproduction).
//! The graft versions of the same bookkeeping — Grail, Tickle, bytecode,
//! native — live in the `grafts` crate and are checked against this
//! implementation as an oracle.

pub mod cleaner;
pub mod workload;

/// Sentinel for "logical block never written".
pub const UNMAPPED: i64 = -1;

/// Paper defaults: 1 GB disk, 4 KB blocks, 16-block (64 KB) segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LdConfig {
    /// Total logical blocks (also the number of physical blocks).
    pub blocks: usize,
    /// Blocks per segment.
    pub segment_blocks: usize,
}

impl Default for LdConfig {
    fn default() -> Self {
        LdConfig {
            blocks: 262_144,
            segment_blocks: 16,
        }
    }
}

impl LdConfig {
    /// A small configuration for tests and quick runs.
    pub fn small() -> Self {
        LdConfig {
            blocks: 1024,
            segment_blocks: 16,
        }
    }

    /// Number of segments on the disk.
    pub fn segments(&self) -> usize {
        self.blocks / self.segment_blocks
    }
}

/// A completed segment handed to the disk: a physically contiguous run
/// of blocks to be written with one seek.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentFlush {
    /// First physical block of the segment.
    pub physical_start: u64,
    /// Logical blocks written into the segment, in order.
    pub logical: Vec<u64>,
}

/// Statistics accumulated by a [`LogicalDisk`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LdStats {
    /// Total block writes accepted.
    pub writes: u64,
    /// Writes that superseded a still-buffered copy in the open segment.
    pub rewrites_in_segment: u64,
    /// Segments flushed.
    pub segments_flushed: u64,
    /// Blocks whose previous physical copy became garbage.
    pub dead_blocks: u64,
    /// Crashes simulated ([`LogicalDisk::crash`]).
    pub crashes: u64,
    /// Map rebuilds performed ([`LogicalDisk::rebuild_map`]).
    pub rebuilds: u64,
    /// Mapping entries replayed across all rebuilds.
    pub rebuilt_mappings: u64,
}

/// The Logical Disk bookkeeping engine.
///
/// `write` is the hot path the paper times: one map update plus segment
/// batching per logical write. Reads translate through the map.
#[derive(Debug, Clone)]
pub struct LogicalDisk {
    config: LdConfig,
    /// logical → physical block, or [`UNMAPPED`].
    map: Vec<i64>,
    /// Logical blocks buffered in the currently filling segment.
    open_segment: Vec<u64>,
    /// Physical block cursor (wraps around the disk; reuse is the
    /// cleaner's concern, which the paper's run sidesteps by sizing the
    /// run to the number of blocks on the disk).
    next_physical: u64,
    /// Durable per-segment summary blocks (LFS-style): one record per
    /// flushed segment, appended at flush time. These survive a
    /// [`crash`]; [`rebuild_map`] replays them to recover the map.
    ///
    /// [`crash`]: LogicalDisk::crash
    /// [`rebuild_map`]: LogicalDisk::rebuild_map
    summaries: Vec<SegmentFlush>,
    stats: LdStats,
}

impl LogicalDisk {
    /// Creates an empty logical disk.
    pub fn new(config: LdConfig) -> Self {
        assert!(config.segment_blocks > 0, "segments must hold blocks");
        assert!(
            config.blocks.is_multiple_of(config.segment_blocks),
            "disk size must be a whole number of segments"
        );
        LogicalDisk {
            config,
            map: vec![UNMAPPED; config.blocks],
            open_segment: Vec::with_capacity(config.segment_blocks),
            next_physical: 0,
            summaries: Vec::new(),
            stats: LdStats::default(),
        }
    }

    /// Creates a logical disk that adopts an existing logical→physical
    /// map — the degraded-mode path where the built-in policy inherits
    /// a map salvaged from a detached graft instead of starting empty.
    ///
    /// The physical cursor resumes at the next segment boundary past
    /// the highest mapped block, so new segments never overwrite the
    /// salvaged ones. No summaries are adopted: the salvaged map itself
    /// is the recovery baseline, and only segments flushed *after*
    /// adoption are replayable.
    ///
    /// # Panics
    ///
    /// Panics if `map` does not cover exactly `config.blocks` entries.
    pub fn with_map(config: LdConfig, map: &[i64]) -> Self {
        assert_eq!(map.len(), config.blocks, "salvaged map has wrong block count");
        let mut d = LogicalDisk::new(config);
        d.map.copy_from_slice(map);
        let high = map
            .iter()
            .copied()
            .filter(|&p| p != UNMAPPED)
            .map(|p| p as u64 + 1)
            .max()
            .unwrap_or(0);
        let sb = config.segment_blocks as u64;
        d.next_physical = high.div_ceil(sb) * sb;
        d
    }

    /// The configuration.
    pub fn config(&self) -> LdConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> LdStats {
        self.stats
    }

    /// The logical→physical map (read-only view).
    pub fn map(&self) -> &[i64] {
        &self.map
    }

    /// Translates a logical block for a read; `None` if never written.
    ///
    /// Blocks still buffered in the open segment already have their
    /// final physical address, so translation is uniform.
    pub fn read(&self, logical: u64) -> Option<u64> {
        match self.map.get(logical as usize) {
            Some(&p) if p != UNMAPPED => Some(p as u64),
            _ => None,
        }
    }

    /// Accepts one logical block write; returns the flushed segment when
    /// this write fills it.
    ///
    /// # Panics
    ///
    /// Panics if `logical` is beyond the disk (the kernel validates
    /// block numbers before they reach the LD layer).
    pub fn write(&mut self, logical: u64) -> Option<SegmentFlush> {
        let slot = logical as usize;
        assert!(slot < self.config.blocks, "logical block out of range");
        self.stats.writes += 1;
        let old = self.map[slot];
        if old != UNMAPPED {
            self.stats.dead_blocks += 1;
            // If the previous copy is still in the open segment this is
            // a rewrite the batching absorbs for free.
            let seg_start = self.next_physical - self.open_segment.len() as u64;
            if (old as u64) >= seg_start {
                self.stats.rewrites_in_segment += 1;
            }
        }
        self.map[slot] = self.next_physical as i64;
        self.next_physical += 1;
        self.open_segment.push(logical);
        if self.open_segment.len() == self.config.segment_blocks {
            let logical_blocks = std::mem::take(&mut self.open_segment);
            self.open_segment = Vec::with_capacity(self.config.segment_blocks);
            self.stats.segments_flushed += 1;
            let flush = SegmentFlush {
                physical_start: self.next_physical - self.config.segment_blocks as u64,
                logical: logical_blocks,
            };
            // The summary block rides out to disk with the segment (one
            // sequential write, no extra seek) and is what rebuild_map
            // replays after a crash.
            self.summaries.push(flush.clone());
            Some(flush)
        } else {
            None
        }
    }

    /// The durable per-segment summary blocks, oldest first.
    pub fn summaries(&self) -> &[SegmentFlush] {
        &self.summaries
    }

    /// Simulates a crash: all volatile state — the in-memory map, the
    /// physical cursor, and the open segment buffer — is lost. Returns
    /// the logical blocks that were buffered but never flushed, i.e.
    /// the writes a caller must redo after [`rebuild_map`]; everything
    /// else is recoverable from [`summaries`], which model the on-disk
    /// summary blocks and therefore survive.
    ///
    /// [`rebuild_map`]: LogicalDisk::rebuild_map
    /// [`summaries`]: LogicalDisk::summaries
    pub fn crash(&mut self) -> Vec<u64> {
        self.crash_with_unpersisted(0)
    }

    /// [`crash`], except the last `unpersisted` segments never reached
    /// the disk — the crash interrupted their segment writes, so their
    /// summary blocks are not durable either. Those summaries are
    /// discarded and their blocks are prepended (in original write
    /// order) to the redo list ahead of the open-segment pending
    /// writes. Redoing the list after [`rebuild_map`] refills exactly
    /// the physical slots the lost segments occupied, so the recovered
    /// disk converges on the no-crash map bit for bit.
    ///
    /// [`crash`]: LogicalDisk::crash
    /// [`rebuild_map`]: LogicalDisk::rebuild_map
    pub fn crash_with_unpersisted(&mut self, unpersisted: usize) -> Vec<u64> {
        self.stats.crashes += 1;
        self.map.fill(UNMAPPED);
        self.next_physical = 0;
        let keep = self.summaries.len().saturating_sub(unpersisted);
        let mut redo: Vec<u64> = self
            .summaries
            .drain(keep..)
            .flat_map(|s| s.logical)
            .collect();
        redo.append(&mut self.open_segment);
        redo
    }

    /// Rebuilds the logical→physical map by replaying the summary
    /// blocks in flush order — later segments win, exactly as the live
    /// map resolved rewrites. Restores the physical cursor to just past
    /// the last flushed segment. Returns the number of mapping entries
    /// replayed.
    ///
    /// Safe to call on a healthy disk too (it is idempotent over the
    /// flushed state); only writes still buffered at crash time are
    /// absent, and [`crash`] returned exactly those for redo.
    ///
    /// [`crash`]: LogicalDisk::crash
    pub fn rebuild_map(&mut self) -> u64 {
        self.map.fill(UNMAPPED);
        self.open_segment.clear();
        let mut replayed = 0u64;
        for s in &self.summaries {
            for (i, &logical) in s.logical.iter().enumerate() {
                self.map[logical as usize] = (s.physical_start + i as u64) as i64;
                replayed += 1;
            }
        }
        self.next_physical = self
            .summaries
            .last()
            .map(|s| s.physical_start + self.config.segment_blocks as u64)
            .unwrap_or(0);
        self.stats.rebuilds += 1;
        self.stats.rebuilt_mappings += replayed;
        replayed
    }

    /// Blocks currently buffered and not yet flushed.
    pub fn pending(&self) -> &[u64] {
        &self.open_segment
    }

    /// Physical blocks consumed so far (monotone; exceeds the disk size
    /// if the workload outruns a missing cleaner).
    pub fn physical_used(&self) -> u64 {
        self.next_physical
    }
}

impl Drop for LogicalDisk {
    /// Flushes accumulated statistics to the global telemetry counters.
    ///
    /// Done at teardown, never per write: `write` is the hot path the
    /// Table 6 experiment times, so it must not touch an atomic. Each
    /// disk (including clones) contributes its totals exactly once.
    fn drop(&mut self) {
        if !graft_telemetry::enabled() {
            return;
        }
        let s = self.stats;
        graft_telemetry::counter!("ld.writes").add(s.writes);
        graft_telemetry::counter!("ld.rewrites_in_segment").add(s.rewrites_in_segment);
        graft_telemetry::counter!("ld.segments_flushed").add(s.segments_flushed);
        graft_telemetry::counter!("ld.dead_blocks").add(s.dead_blocks);
        graft_telemetry::counter!("ld.crashes").add(s.crashes);
        graft_telemetry::counter!("ld.rebuilds").add(s.rebuilds);
        graft_telemetry::counter!("ld.rebuilt_mappings").add(s.rebuilt_mappings);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ld() -> LogicalDisk {
        LogicalDisk::new(LdConfig {
            blocks: 64,
            segment_blocks: 4,
        })
    }

    #[test]
    fn writes_allocate_sequential_physical_blocks() {
        let mut d = ld();
        // Random-looking logical blocks...
        for logical in [40, 3, 17, 9] {
            let flush = d.write(logical);
            if let Some(f) = flush {
                // ...land physically contiguous.
                assert_eq!(f.physical_start, 0);
                assert_eq!(f.logical, vec![40, 3, 17, 9]);
            }
        }
        assert_eq!(d.read(17), Some(2));
        assert_eq!(d.read(9), Some(3));
    }

    #[test]
    fn unwritten_blocks_are_unmapped() {
        let d = ld();
        assert_eq!(d.read(5), None);
    }

    #[test]
    fn rewrite_updates_map_and_counts_garbage() {
        let mut d = ld();
        d.write(7);
        d.write(7);
        assert_eq!(d.read(7), Some(1));
        let s = d.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.dead_blocks, 1);
        assert_eq!(s.rewrites_in_segment, 1);
    }

    #[test]
    fn segments_flush_every_n_writes() {
        let mut d = ld();
        let mut flushes = 0;
        for i in 0..16 {
            if d.write(i % 8).is_some() {
                flushes += 1;
            }
        }
        assert_eq!(flushes, 4);
        assert_eq!(d.stats().segments_flushed, 4);
        assert!(d.pending().is_empty());
    }

    #[test]
    fn paper_configuration_shape() {
        let c = LdConfig::default();
        assert_eq!(c.blocks, 262_144); // 1 GB / 4 KB
        assert_eq!(c.segment_blocks, 16); // 64 KB segments
        assert_eq!(c.segments(), 16_384);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_block_panics() {
        ld().write(1 << 40);
    }

    #[test]
    fn crash_rebuild_redo_is_observationally_equal_to_no_crash() {
        // Oracle: a twin disk that never crashes. Victim: same write
        // stream, crash mid-run, rebuild from summaries, redo the
        // pending writes crash() returned. The two must agree on every
        // logical read afterwards.
        let config = LdConfig {
            blocks: 256,
            segment_blocks: 8,
        };
        let stream: Vec<u64> = workload::skewed(config.blocks, 600, 7).collect();
        let mut oracle = LogicalDisk::new(config);
        let mut victim = LogicalDisk::new(config);
        for &logical in &stream[..371] {
            oracle.write(logical);
            victim.write(logical);
        }
        // Crash with a part-filled segment in flight (371 % 8 != 0).
        let pending = victim.crash();
        assert_eq!(pending.len(), 371 % 8);
        // Before rebuild the victim has lost everything.
        assert!(victim.map().iter().all(|&p| p == UNMAPPED));
        let replayed = victim.rebuild_map();
        assert_eq!(replayed, (371 / 8) * 8);
        for logical in pending {
            victim.write(logical);
        }
        // Remainder of the run lands identically on both disks.
        for &logical in &stream[371..] {
            oracle.write(logical);
            victim.write(logical);
        }
        for logical in 0..config.blocks as u64 {
            assert_eq!(victim.read(logical), oracle.read(logical), "block {logical}");
        }
        assert_eq!(victim.physical_used(), oracle.physical_used());
        let s = victim.stats();
        assert_eq!(s.crashes, 1);
        assert_eq!(s.rebuilds, 1);
        assert_eq!(s.rebuilt_mappings, replayed);
    }

    #[test]
    fn crash_with_unpersisted_redoes_the_torn_segment_bit_exact() {
        let config = LdConfig {
            blocks: 64,
            segment_blocks: 4,
        };
        let stream = [9u64, 5, 9, 1, 3, 9, 5, 2, 8, 7];
        let mut oracle = LogicalDisk::new(config);
        let mut victim = LogicalDisk::new(config);
        for &w in &stream {
            oracle.write(w);
            victim.write(w);
        }
        // The second segment's write was interrupted: its summary and
        // data are gone; the two open-segment writes are pending.
        let redo = victim.crash_with_unpersisted(1);
        assert_eq!(redo, vec![3, 9, 5, 2, 8, 7]);
        assert_eq!(victim.summaries().len(), 1);
        victim.rebuild_map();
        assert_eq!(victim.physical_used(), 4);
        for w in redo {
            victim.write(w);
        }
        for b in 0..64u64 {
            assert_eq!(victim.read(b), oracle.read(b), "block {b}");
        }
        assert_eq!(victim.physical_used(), oracle.physical_used());
    }

    #[test]
    fn rebuild_replays_later_segments_over_earlier_ones() {
        let mut d = ld(); // 64 blocks, 4-block segments
        for logical in [1, 2, 3, 4, 1, 2, 5, 6] {
            d.write(logical);
        }
        assert_eq!(d.summaries().len(), 2);
        assert_eq!(d.read(1), Some(4));
        d.crash();
        d.rebuild_map();
        // Block 1's second copy (physical 4) wins, not the first (0).
        assert_eq!(d.read(1), Some(4));
        assert_eq!(d.read(3), Some(2));
        assert_eq!(d.physical_used(), 8);
    }

    #[test]
    fn rebuild_on_a_healthy_disk_is_idempotent() {
        let mut d = ld();
        for logical in [9, 8, 7, 6] {
            d.write(logical);
        }
        let before: Vec<i64> = d.map().to_vec();
        d.rebuild_map();
        assert_eq!(d.map(), &before[..]);
        assert_eq!(d.physical_used(), 4);
    }

    #[test]
    fn with_map_adopts_salvaged_state_past_a_segment_boundary() {
        let config = LdConfig {
            blocks: 64,
            segment_blocks: 4,
        };
        // A salvaged map with highest physical block 5: the cursor must
        // resume at 8, the next segment boundary.
        let mut salvaged = vec![UNMAPPED; 64];
        salvaged[10] = 5;
        salvaged[11] = 2;
        let mut d = LogicalDisk::with_map(config, &salvaged);
        assert_eq!(d.read(10), Some(5));
        assert_eq!(d.read(11), Some(2));
        assert_eq!(d.read(12), None);
        assert_eq!(d.physical_used(), 8);
        // New writes land after the salvaged segments.
        d.write(20);
        assert_eq!(d.read(20), Some(8));
        // Rewriting a salvaged block counts its old copy dead.
        d.write(10);
        assert_eq!(d.read(10), Some(9));
        assert_eq!(d.stats().dead_blocks, 1);
    }

    #[test]
    #[should_panic(expected = "wrong block count")]
    fn with_map_rejects_mis_sized_maps() {
        LogicalDisk::with_map(LdConfig::small(), &[UNMAPPED; 3]);
    }

    #[test]
    fn full_paper_run_fits_exactly_without_a_cleaner() {
        // The paper runs exactly `blocks` iterations "because our
        // simulation does not include a cleaner".
        let config = LdConfig::small();
        let mut d = LogicalDisk::new(config);
        for logical in workload::skewed(config.blocks, config.blocks as u64, 42) {
            d.write(logical);
        }
        assert_eq!(d.physical_used() as usize, config.blocks);
        assert_eq!(d.stats().segments_flushed as usize, config.segments());
    }
}
