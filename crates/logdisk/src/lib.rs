//! The Logical Disk facility (de Jonge et al., SOSP '93), the paper's
//! representative **black-box graft** workload (Sections 3.3 and 5.6).
//!
//! A Logical Disk sits between the filesystem and the physical disk: the
//! filesystem reads and writes *logical* blocks, and the LD maps them to
//! physical locations, batching incoming writes into physically
//! contiguous segments so that random write traffic becomes sequential.
//! The paper's simulation: a 1 GB disk of 4 KB blocks gathered into
//! 64 KB (16-block) segments, driven by 262,144 block writes skewed so
//! that 80% of the writes hit 20% of the blocks, with all mapping state
//! in main memory and no cleaner.
//!
//! This crate is the standalone facility: [`LogicalDisk`] does the
//! bookkeeping, [`workload`] generates the paper's skewed write stream
//! (and larger multi-million-block traces), and [`cleaner`] adds the
//! segment cleaner the paper explicitly left out. Beyond the paper, the
//! disk is **durable against storage that lies**: every flushed segment
//! is sealed under a seeded 64-bit checksum ([`checksum`]), audited by
//! [`LogicalDisk::scrub`] and every rebuild/restore replay, and the
//! multi-version segment history supports exact point-in-time restore
//! ([`pitr`]) down to a retention watermark.
//! The graft versions of the same bookkeeping — Grail, Tickle, bytecode,
//! native — live in the `grafts` crate and are checked against this
//! implementation as an oracle.

pub mod checksum;
pub mod cleaner;
pub mod pitr;
pub mod workload;

pub use pitr::{MergeReport, Replayer, RestoreError};

/// Sentinel for "logical block never written".
pub const UNMAPPED: i64 = -1;

/// Paper defaults: 1 GB disk, 4 KB blocks, 16-block (64 KB) segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LdConfig {
    /// Total logical blocks (also the number of physical blocks).
    pub blocks: usize,
    /// Blocks per segment.
    pub segment_blocks: usize,
}

impl Default for LdConfig {
    fn default() -> Self {
        LdConfig {
            blocks: 262_144,
            segment_blocks: 16,
        }
    }
}

impl LdConfig {
    /// A small configuration for tests and quick runs.
    pub fn small() -> Self {
        LdConfig {
            blocks: 1024,
            segment_blocks: 16,
        }
    }

    /// Number of segments on the disk.
    pub fn segments(&self) -> usize {
        self.blocks / self.segment_blocks
    }
}

/// A completed segment handed to the disk: a physically contiguous run
/// of blocks to be written with one seek.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentFlush {
    /// First physical block of the segment.
    pub physical_start: u64,
    /// Logical blocks written into the segment, in order.
    pub logical: Vec<u64>,
}

/// One durable mapping record: the write with sequence number `lsn`
/// put logical block `logical` at physical block `physical`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapEntry {
    /// Write sequence number (0-based; the disk's log clock).
    pub lsn: u64,
    /// Logical block written.
    pub logical: u64,
    /// Physical block it landed on.
    pub physical: u64,
}

/// A sealed on-disk segment record: the mapping payload plus the
/// summary block, checksummed together at flush time.
///
/// Fresh segments hold `segment_blocks` consecutive-LSN entries laid
/// out contiguously from `physical_start`; segments produced by the
/// multi-version merge ([`LogicalDisk::merge_below_watermark`]) carry
/// survivors from many generations, so each entry records its own
/// physical address and LSN explicitly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedSegment {
    /// LSN of the earliest entry (summary field).
    pub base_lsn: u64,
    /// First physical block (summary field; lowest, for merged runs).
    pub physical_start: u64,
    /// True when produced by the cleaner's multi-version merge.
    pub merged: bool,
    /// Mapping payload, in LSN order.
    pub entries: Vec<MapEntry>,
    /// Seeded 64-bit digest over payload + summary fields.
    pub checksum: u64,
}

impl SealedSegment {
    /// One past the newest LSN recorded in this segment.
    pub fn end_lsn(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| e.lsn + 1)
            .max()
            .unwrap_or(self.base_lsn)
    }

    /// The digest over summary fields and payload (everything except
    /// the stored checksum itself).
    pub fn compute_checksum(&self, seed: u64) -> u64 {
        let summary = [
            self.base_lsn,
            self.physical_start,
            self.merged as u64,
            self.entries.len() as u64,
        ];
        let payload = self
            .entries
            .iter()
            .flat_map(|e| [e.lsn, e.logical, e.physical]);
        checksum::checksum_words(seed, summary.into_iter().chain(payload))
    }

    /// Stamps the checksum (done once, at seal time).
    pub fn seal(&mut self, seed: u64) {
        self.checksum = self.compute_checksum(seed);
    }

    /// Whether the stored checksum matches the contents.
    pub fn verify(&self, seed: u64) -> bool {
        self.checksum == self.compute_checksum(seed)
    }
}

/// Statistics accumulated by a [`LogicalDisk`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LdStats {
    /// Total block writes accepted.
    pub writes: u64,
    /// Writes that superseded a still-buffered copy in the open segment.
    pub rewrites_in_segment: u64,
    /// Segments flushed.
    pub segments_flushed: u64,
    /// Blocks whose previous physical copy became garbage.
    pub dead_blocks: u64,
    /// Crashes simulated ([`LogicalDisk::crash`]).
    pub crashes: u64,
    /// Map rebuilds performed ([`LogicalDisk::rebuild_map`]).
    pub rebuilds: u64,
    /// Mapping entries replayed across all rebuilds.
    pub rebuilt_mappings: u64,
    /// Explicit [`LogicalDisk::scrub`] passes.
    pub scrub_passes: u64,
    /// Segments audited by scrub passes.
    pub scrub_segments: u64,
    /// Checksum mismatches found by any audit (scrub, rebuild, restore).
    pub checksum_failures: u64,
    /// Segments quarantined after a failed audit.
    pub quarantined_segments: u64,
    /// Point-in-time restores performed ([`LogicalDisk::restore_to_lsn`]).
    pub restores: u64,
    /// Mapping entries materialized across all restores.
    pub restored_mappings: u64,
    /// Multi-version merge passes ([`LogicalDisk::merge_below_watermark`]).
    pub merge_passes: u64,
    /// Segments consumed by merges.
    pub merged_segments: u64,
    /// History entries pruned by merges (superseded below the watermark).
    pub pruned_entries: u64,
}

/// Result of one integrity audit over the retained segment history
/// (a [`scrub`] pass, or the implicit audit before every rebuild).
///
/// [`scrub`]: LogicalDisk::scrub
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Segments audited.
    pub scanned: u64,
    /// Mapping entries covered by the audit.
    pub entries: u64,
    /// Checksum mismatches — every one of these segments was
    /// quarantined (dropped from the durable history), never replayed.
    pub failures: u64,
    /// Half-open `[start, end)` LSN spans whose writes must be redone
    /// by the caller (redo-tail replay): one span per quarantined
    /// *fresh* segment, bracketed by the *trusted* neighbours' LSNs —
    /// the corrupt record's own fields are never believed.
    pub redo_spans: Vec<(u64, u64)>,
    /// Quarantined *merged* (post-retention) segments. Their payload is
    /// pre-floor history — by definition not redoable from the caller's
    /// own log — so the loss is surfaced as a count here instead of an
    /// empty redo span clamped to the retention floor. Restores at or
    /// above the floor still answer, with the lost mappings absent:
    /// reported, never silently wrong.
    pub lost_below_floor: u64,
}

impl ScrubReport {
    /// Whether the audit found the history fully intact.
    pub fn clean(&self) -> bool {
        self.failures == 0
    }
}

/// The Logical Disk bookkeeping engine.
///
/// `write` is the hot path the paper times: one map update plus segment
/// batching per logical write. Reads translate through the map.
#[derive(Debug, Clone)]
pub struct LogicalDisk {
    config: LdConfig,
    /// Seed for the per-segment checksum family.
    checksum_seed: u64,
    /// logical → physical block, or [`UNMAPPED`].
    map: Vec<i64>,
    /// Logical blocks buffered in the currently filling segment.
    open_segment: Vec<u64>,
    /// Physical block cursor (wraps around the disk; reuse is the
    /// cleaner's concern, which the paper's run sidesteps by sizing the
    /// run to the number of blocks on the disk).
    next_physical: u64,
    /// Durable sealed-segment records (LFS-style): one per flushed
    /// segment (or merged run), appended at flush time. These survive a
    /// [`crash`]; [`rebuild_map`] audits and replays them to recover
    /// the map.
    ///
    /// [`crash`]: LogicalDisk::crash
    /// [`rebuild_map`]: LogicalDisk::rebuild_map
    segments: Vec<SealedSegment>,
    /// One past the newest durably sealed LSN.
    durable_lsn: u64,
    /// Lowest LSN still restorable (raised by multi-version merges).
    retention_floor: u64,
    stats: LdStats,
}

impl LogicalDisk {
    /// Creates an empty logical disk.
    pub fn new(config: LdConfig) -> Self {
        assert!(config.segment_blocks > 0, "segments must hold blocks");
        assert!(
            config.blocks.is_multiple_of(config.segment_blocks),
            "disk size must be a whole number of segments"
        );
        LogicalDisk {
            config,
            checksum_seed: checksum::DEFAULT_SEED,
            map: vec![UNMAPPED; config.blocks],
            open_segment: Vec::with_capacity(config.segment_blocks),
            next_physical: 0,
            segments: Vec::new(),
            durable_lsn: 0,
            retention_floor: 0,
            stats: LdStats::default(),
        }
    }

    /// Re-keys the checksum family. Call before the first write: the
    /// seed stamps every segment sealed *after* it is set, so changing
    /// it mid-history would make older intact segments fail audits.
    pub fn with_checksum_seed(mut self, seed: u64) -> Self {
        assert!(
            self.segments.is_empty() && self.open_segment.is_empty(),
            "checksum seed must be set before the first write"
        );
        self.checksum_seed = seed;
        self
    }

    /// The active checksum seed.
    pub fn checksum_seed(&self) -> u64 {
        self.checksum_seed
    }

    /// Creates a logical disk that adopts an existing logical→physical
    /// map — the degraded-mode path where the built-in policy inherits
    /// a map salvaged from a detached graft instead of starting empty.
    ///
    /// The physical cursor resumes at the next segment boundary past
    /// the highest mapped block, so new segments never overwrite the
    /// salvaged ones. No segment records are adopted: the salvaged map
    /// itself is the recovery baseline, and only segments flushed
    /// *after* adoption are replayable.
    ///
    /// # Panics
    ///
    /// Panics if `map` does not cover exactly `config.blocks` entries.
    pub fn with_map(config: LdConfig, map: &[i64]) -> Self {
        assert_eq!(map.len(), config.blocks, "salvaged map has wrong block count");
        let mut d = LogicalDisk::new(config);
        d.map.copy_from_slice(map);
        let high = map
            .iter()
            .copied()
            .filter(|&p| p != UNMAPPED)
            .map(|p| p as u64 + 1)
            .max()
            .unwrap_or(0);
        let sb = config.segment_blocks as u64;
        d.next_physical = high.div_ceil(sb) * sb;
        d
    }

    /// The configuration.
    pub fn config(&self) -> LdConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> LdStats {
        self.stats
    }

    /// The logical→physical map (read-only view).
    pub fn map(&self) -> &[i64] {
        &self.map
    }

    /// Translates a logical block for a read; `None` if never written.
    ///
    /// Blocks still buffered in the open segment already have their
    /// final physical address, so translation is uniform.
    pub fn read(&self, logical: u64) -> Option<u64> {
        match self.map.get(logical as usize) {
            Some(&p) if p != UNMAPPED => Some(p as u64),
            _ => None,
        }
    }

    /// Accepts one logical block write; returns the flushed segment when
    /// this write fills it.
    ///
    /// # Panics
    ///
    /// Panics if `logical` is beyond the disk (the kernel validates
    /// block numbers before they reach the LD layer).
    pub fn write(&mut self, logical: u64) -> Option<SegmentFlush> {
        let slot = logical as usize;
        assert!(slot < self.config.blocks, "logical block out of range");
        let lsn = self.stats.writes;
        self.stats.writes += 1;
        let old = self.map[slot];
        if old != UNMAPPED {
            self.stats.dead_blocks += 1;
            // If the previous copy is still in the open segment this is
            // a rewrite the batching absorbs for free.
            let seg_start = self.next_physical - self.open_segment.len() as u64;
            if (old as u64) >= seg_start {
                self.stats.rewrites_in_segment += 1;
            }
        }
        self.map[slot] = self.next_physical as i64;
        self.next_physical += 1;
        self.open_segment.push(logical);
        if self.open_segment.len() == self.config.segment_blocks {
            let logical_blocks = std::mem::take(&mut self.open_segment);
            self.open_segment = Vec::with_capacity(self.config.segment_blocks);
            self.stats.segments_flushed += 1;
            let sb = self.config.segment_blocks as u64;
            let physical_start = self.next_physical - sb;
            let base_lsn = lsn + 1 - sb;
            // The sealed record rides out to disk with the segment (one
            // sequential write, no extra seek): the mapping payload plus
            // a summary block, checksummed together. It is what
            // rebuild_map audits and replays after a crash.
            let mut sealed = SealedSegment {
                base_lsn,
                physical_start,
                merged: false,
                entries: logical_blocks
                    .iter()
                    .enumerate()
                    .map(|(i, &l)| MapEntry {
                        lsn: base_lsn + i as u64,
                        logical: l,
                        physical: physical_start + i as u64,
                    })
                    .collect(),
                checksum: 0,
            };
            sealed.seal(self.checksum_seed);
            self.segments.push(sealed);
            self.durable_lsn = lsn + 1;
            Some(SegmentFlush {
                physical_start,
                logical: logical_blocks,
            })
        } else {
            None
        }
    }

    /// The durable sealed-segment records, in flush order.
    pub fn segments(&self) -> &[SealedSegment] {
        &self.segments
    }

    /// Simulates a crash: all volatile state — the in-memory map, the
    /// physical cursor, and the open segment buffer — is lost. Returns
    /// the logical blocks that were buffered but never flushed, i.e.
    /// the writes a caller must redo after [`rebuild_map`]; everything
    /// else is recoverable from [`segments`], which model the on-disk
    /// sealed records and therefore survive.
    ///
    /// [`rebuild_map`]: LogicalDisk::rebuild_map
    /// [`segments`]: LogicalDisk::segments
    pub fn crash(&mut self) -> Vec<u64> {
        self.crash_with_unpersisted(0)
    }

    /// [`crash`], except the last `unpersisted` segments never reached
    /// the disk — the crash interrupted their segment writes, so their
    /// sealed records are not durable either. Those records are
    /// discarded and their blocks are prepended (in original write
    /// order) to the redo list ahead of the open-segment pending
    /// writes. Redoing the list after [`rebuild_map`] refills exactly
    /// the physical slots the lost segments occupied, so the recovered
    /// disk converges on the no-crash map bit for bit.
    ///
    /// `unpersisted` is clamped to the number of sealed segments: a
    /// crash cannot lose more segments than were ever written, so
    /// asking for more simply loses them all (every flushed block comes
    /// back on the redo list).
    ///
    /// [`crash`]: LogicalDisk::crash
    /// [`rebuild_map`]: LogicalDisk::rebuild_map
    pub fn crash_with_unpersisted(&mut self, unpersisted: usize) -> Vec<u64> {
        self.stats.crashes += 1;
        self.map.fill(UNMAPPED);
        self.next_physical = 0;
        let unpersisted = unpersisted.min(self.segments.len());
        let keep = self.segments.len() - unpersisted;
        let mut redo: Vec<u64> = self
            .segments
            .drain(keep..)
            .flat_map(|s| s.entries.into_iter().map(|e| e.logical))
            .collect();
        redo.append(&mut self.open_segment);
        self.durable_lsn = self
            .segments
            .last()
            .map(SealedSegment::end_lsn)
            .unwrap_or(self.retention_floor);
        redo
    }

    /// Audits every retained segment, quarantining the ones whose
    /// checksum no longer matches — shared by [`scrub`], every
    /// [`rebuild_map`], and every restore. Redo spans are bracketed by
    /// trusted neighbours only: a corrupt record's own `base_lsn` may
    /// itself be the flipped bits, so the span runs from the previous
    /// intact segment's end to the next intact segment's base (or the
    /// retention floor / durable head at the edges).
    ///
    /// [`scrub`]: LogicalDisk::scrub
    /// [`rebuild_map`]: LogicalDisk::rebuild_map
    fn audit_quarantine(&mut self) -> ScrubReport {
        let seed = self.checksum_seed;
        let mut report = ScrubReport {
            scanned: self.segments.len() as u64,
            ..ScrubReport::default()
        };
        let intact: Vec<bool> = self.segments.iter().map(|s| s.verify(seed)).collect();
        for (i, seg) in self.segments.iter().enumerate() {
            report.entries += seg.entries.len() as u64;
            if intact[i] {
                continue;
            }
            report.failures += 1;
            if seg.merged {
                // A merged record keeps only the newest pre-floor entry
                // per block, so no LSN span in the caller's log covers
                // its loss — report it explicitly instead of an empty
                // span bracketed at the retention floor.
                report.lost_below_floor += 1;
                continue;
            }
            let start = self.segments[..i]
                .iter()
                .zip(&intact)
                .filter(|&(_, &ok)| ok)
                .map(|(s, _)| s.end_lsn())
                .next_back()
                .unwrap_or(self.retention_floor);
            let end = self.segments[i + 1..]
                .iter()
                .zip(&intact[i + 1..])
                .find(|&(_, &ok)| ok)
                .map(|(s, _)| s.base_lsn)
                .unwrap_or(self.durable_lsn);
            report.redo_spans.push((start, end.max(start)));
        }
        if report.failures > 0 {
            let mut keep = intact.iter().copied();
            self.segments.retain(|_| keep.next().unwrap_or(true));
            self.stats.checksum_failures += report.failures;
            self.stats.quarantined_segments += report.failures;
        }
        report
    }

    /// Audits the full retained history against the per-segment
    /// checksums. Corrupt segments are **quarantined** — dropped from
    /// the durable history so no rebuild or restore will ever replay
    /// them — and reported with the LSN spans whose writes the caller
    /// must redo (redo-tail replay from its own log). The live map is
    /// untouched: scrubbing detects latent rot; it does not lose state.
    pub fn scrub(&mut self) -> ScrubReport {
        let report = self.audit_quarantine();
        self.stats.scrub_passes += 1;
        self.stats.scrub_segments += report.scanned;
        report
    }

    /// Rebuilds the logical→physical map by replaying the sealed
    /// records in LSN order — later entries win, exactly as the live
    /// map resolved rewrites. Every segment is checksum-audited first;
    /// corrupt ones are quarantined (counted in
    /// [`LdStats::checksum_failures`]) and skipped, never replayed —
    /// a lying disk yields a smaller map plus an audit trail, not a
    /// silently wrong map. Restores the physical cursor to just past
    /// the highest replayed block. Returns the number of mapping
    /// entries replayed.
    ///
    /// Safe to call on a healthy disk too (it is idempotent over the
    /// flushed state); only writes still buffered at crash time are
    /// absent, and [`crash`] returned exactly those for redo.
    ///
    /// [`crash`]: LogicalDisk::crash
    pub fn rebuild_map(&mut self) -> u64 {
        self.audit_quarantine();
        self.open_segment.clear();
        let mut replayer = Replayer::new(self.config.blocks);
        let mut replayed = 0u64;
        for s in &self.segments {
            replayed += replayer.apply_segment(s);
        }
        self.map = replayer.into_map();
        let sb = self.config.segment_blocks as u64;
        let high = self
            .segments
            .iter()
            .flat_map(|s| s.entries.iter())
            .map(|e| e.physical + 1)
            .max()
            .unwrap_or(0);
        self.next_physical = high.div_ceil(sb) * sb;
        self.stats.rebuilds += 1;
        self.stats.rebuilt_mappings += replayed;
        replayed
    }

    /// Flips one stored bit in sealed segment `index` — in the mapping
    /// payload (an entry word) or, when `summary` is set, in the
    /// summary block (checksum / base LSN / physical start), the word
    /// and bit chosen from `entropy` — simulating storage bit-rot.
    /// Returns the segment's (pre-flip) base LSN as a stable identity,
    /// or `None` when the index is out of range. The corruption is
    /// silent by construction: nothing is counted until an audit
    /// detects it.
    pub fn corrupt_segment(&mut self, index: usize, summary: bool, entropy: u64) -> Option<u64> {
        let seg = self.segments.get_mut(index)?;
        let id = seg.base_lsn;
        let bit = 1u64 << ((entropy >> 8) % 64);
        if summary || seg.entries.is_empty() {
            match entropy % 3 {
                0 => seg.checksum ^= bit,
                1 => seg.base_lsn ^= bit,
                _ => seg.physical_start ^= bit,
            }
        } else {
            let slot = (entropy >> 2) as usize % seg.entries.len();
            let e = &mut seg.entries[slot];
            match entropy % 3 {
                0 => e.lsn ^= bit,
                1 => e.logical ^= bit,
                _ => e.physical ^= bit,
            }
        }
        Some(id)
    }

    /// Blocks currently buffered and not yet flushed.
    pub fn pending(&self) -> &[u64] {
        &self.open_segment
    }

    /// Physical blocks consumed so far (monotone; exceeds the disk size
    /// if the workload outruns a missing cleaner).
    pub fn physical_used(&self) -> u64 {
        self.next_physical
    }
}

impl Drop for LogicalDisk {
    /// Flushes accumulated statistics to the global telemetry counters.
    ///
    /// Done at teardown, never per write: `write` is the hot path the
    /// Table 6 experiment times, so it must not touch an atomic. Each
    /// disk (including clones) contributes its totals exactly once.
    fn drop(&mut self) {
        if !graft_telemetry::enabled() {
            return;
        }
        let s = self.stats;
        graft_telemetry::counter!("ld.writes").add(s.writes);
        graft_telemetry::counter!("ld.rewrites_in_segment").add(s.rewrites_in_segment);
        graft_telemetry::counter!("ld.segments_flushed").add(s.segments_flushed);
        graft_telemetry::counter!("ld.dead_blocks").add(s.dead_blocks);
        graft_telemetry::counter!("ld.crashes").add(s.crashes);
        graft_telemetry::counter!("ld.rebuilds").add(s.rebuilds);
        graft_telemetry::counter!("ld.rebuilt_mappings").add(s.rebuilt_mappings);
        graft_telemetry::counter!("ld.scrub.passes").add(s.scrub_passes);
        graft_telemetry::counter!("ld.scrub.segments").add(s.scrub_segments);
        graft_telemetry::counter!("ld.checksum_failures").add(s.checksum_failures);
        graft_telemetry::counter!("ld.quarantined").add(s.quarantined_segments);
        graft_telemetry::counter!("ld.restores").add(s.restores);
        graft_telemetry::counter!("ld.restored_mappings").add(s.restored_mappings);
        graft_telemetry::counter!("ld.merge.passes").add(s.merge_passes);
        graft_telemetry::counter!("ld.merge.merged_segments").add(s.merged_segments);
        graft_telemetry::counter!("ld.merge.pruned_entries").add(s.pruned_entries);
        graft_telemetry::counter!("ld.retained_segments").add(self.segments.len() as u64);
        graft_telemetry::counter!("ld.retained_entries")
            .add(self.segments.iter().map(|s| s.entries.len() as u64).sum());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ld() -> LogicalDisk {
        LogicalDisk::new(LdConfig {
            blocks: 64,
            segment_blocks: 4,
        })
    }

    #[test]
    fn writes_allocate_sequential_physical_blocks() {
        let mut d = ld();
        // Random-looking logical blocks...
        for logical in [40, 3, 17, 9] {
            let flush = d.write(logical);
            if let Some(f) = flush {
                // ...land physically contiguous.
                assert_eq!(f.physical_start, 0);
                assert_eq!(f.logical, vec![40, 3, 17, 9]);
            }
        }
        assert_eq!(d.read(17), Some(2));
        assert_eq!(d.read(9), Some(3));
    }

    #[test]
    fn unwritten_blocks_are_unmapped() {
        let d = ld();
        assert_eq!(d.read(5), None);
    }

    #[test]
    fn rewrite_updates_map_and_counts_garbage() {
        let mut d = ld();
        d.write(7);
        d.write(7);
        assert_eq!(d.read(7), Some(1));
        let s = d.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.dead_blocks, 1);
        assert_eq!(s.rewrites_in_segment, 1);
    }

    #[test]
    fn segments_flush_every_n_writes() {
        let mut d = ld();
        let mut flushes = 0;
        for i in 0..16 {
            if d.write(i % 8).is_some() {
                flushes += 1;
            }
        }
        assert_eq!(flushes, 4);
        assert_eq!(d.stats().segments_flushed, 4);
        assert!(d.pending().is_empty());
    }

    #[test]
    fn paper_configuration_shape() {
        let c = LdConfig::default();
        assert_eq!(c.blocks, 262_144); // 1 GB / 4 KB
        assert_eq!(c.segment_blocks, 16); // 64 KB segments
        assert_eq!(c.segments(), 16_384);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_block_panics() {
        ld().write(1 << 40);
    }

    #[test]
    fn sealed_segments_carry_lsns_and_verifying_checksums() {
        let mut d = ld();
        for logical in [9, 8, 7, 6, 5, 4, 3, 2] {
            d.write(logical);
        }
        let segs = d.segments();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].base_lsn, 0);
        assert_eq!(segs[1].base_lsn, 4);
        assert_eq!(segs[1].end_lsn(), 8);
        assert!(!segs[0].merged);
        for (i, e) in segs[1].entries.iter().enumerate() {
            assert_eq!(e.lsn, 4 + i as u64);
            assert_eq!(e.physical, 4 + i as u64);
        }
        let seed = d.checksum_seed();
        assert!(segs.iter().all(|s| s.verify(seed)));
        // A different seed family rejects them all.
        assert!(segs.iter().all(|s| !s.verify(seed ^ 1)));
    }

    #[test]
    fn crash_rebuild_redo_is_observationally_equal_to_no_crash() {
        // Oracle: a twin disk that never crashes. Victim: same write
        // stream, crash mid-run, rebuild from sealed records, redo the
        // pending writes crash() returned. The two must agree on every
        // logical read afterwards.
        let config = LdConfig {
            blocks: 256,
            segment_blocks: 8,
        };
        let stream: Vec<u64> = workload::skewed(config.blocks, 600, 7).collect();
        let mut oracle = LogicalDisk::new(config);
        let mut victim = LogicalDisk::new(config);
        for &logical in &stream[..371] {
            oracle.write(logical);
            victim.write(logical);
        }
        // Crash with a part-filled segment in flight (371 % 8 != 0).
        let pending = victim.crash();
        assert_eq!(pending.len(), 371 % 8);
        // Before rebuild the victim has lost everything.
        assert!(victim.map().iter().all(|&p| p == UNMAPPED));
        let replayed = victim.rebuild_map();
        assert_eq!(replayed, (371 / 8) * 8);
        for logical in pending {
            victim.write(logical);
        }
        // Remainder of the run lands identically on both disks.
        for &logical in &stream[371..] {
            oracle.write(logical);
            victim.write(logical);
        }
        for logical in 0..config.blocks as u64 {
            assert_eq!(victim.read(logical), oracle.read(logical), "block {logical}");
        }
        assert_eq!(victim.physical_used(), oracle.physical_used());
        let s = victim.stats();
        assert_eq!(s.crashes, 1);
        assert_eq!(s.rebuilds, 1);
        assert_eq!(s.rebuilt_mappings, replayed);
        assert_eq!(s.checksum_failures, 0);
    }

    #[test]
    fn crash_with_unpersisted_redoes_the_torn_segment_bit_exact() {
        let config = LdConfig {
            blocks: 64,
            segment_blocks: 4,
        };
        let stream = [9u64, 5, 9, 1, 3, 9, 5, 2, 8, 7];
        let mut oracle = LogicalDisk::new(config);
        let mut victim = LogicalDisk::new(config);
        for &w in &stream {
            oracle.write(w);
            victim.write(w);
        }
        // The second segment's write was interrupted: its sealed record
        // and data are gone; the two open-segment writes are pending.
        let redo = victim.crash_with_unpersisted(1);
        assert_eq!(redo, vec![3, 9, 5, 2, 8, 7]);
        assert_eq!(victim.segments().len(), 1);
        victim.rebuild_map();
        assert_eq!(victim.physical_used(), 4);
        for w in redo {
            victim.write(w);
        }
        for b in 0..64u64 {
            assert_eq!(victim.read(b), oracle.read(b), "block {b}");
        }
        assert_eq!(victim.physical_used(), oracle.physical_used());
    }

    #[test]
    fn crash_with_unpersisted_clamps_beyond_the_sealed_count() {
        let mut d = ld(); // 4-block segments
        for w in [1u64, 2, 3, 4, 5, 6] {
            d.write(w);
        }
        // One sealed segment + two pending writes; asking to lose a
        // million segments loses exactly the one that exists.
        let redo = d.crash_with_unpersisted(usize::MAX);
        assert_eq!(redo, vec![1, 2, 3, 4, 5, 6]);
        assert!(d.segments().is_empty());
        assert_eq!(d.rebuild_map(), 0);
        for w in redo {
            d.write(w);
        }
        assert_eq!(d.read(6), Some(5));
        assert_eq!(d.physical_used(), 6);
    }

    #[test]
    fn rebuild_replays_later_segments_over_earlier_ones() {
        let mut d = ld(); // 64 blocks, 4-block segments
        for logical in [1, 2, 3, 4, 1, 2, 5, 6] {
            d.write(logical);
        }
        assert_eq!(d.segments().len(), 2);
        assert_eq!(d.read(1), Some(4));
        d.crash();
        d.rebuild_map();
        // Block 1's second copy (physical 4) wins, not the first (0).
        assert_eq!(d.read(1), Some(4));
        assert_eq!(d.read(3), Some(2));
        assert_eq!(d.physical_used(), 8);
    }

    #[test]
    fn rebuild_on_a_healthy_disk_is_idempotent() {
        let mut d = ld();
        for logical in [9, 8, 7, 6] {
            d.write(logical);
        }
        let before: Vec<i64> = d.map().to_vec();
        d.rebuild_map();
        assert_eq!(d.map(), &before[..]);
        assert_eq!(d.physical_used(), 4);
    }

    #[test]
    fn scrub_is_clean_on_an_honest_disk() {
        let mut d = ld();
        for w in 0..32u64 {
            d.write(w % 16);
        }
        let r = d.scrub();
        assert!(r.clean());
        assert_eq!(r.scanned, 8);
        assert_eq!(r.entries, 32);
        assert!(r.redo_spans.is_empty());
        let s = d.stats();
        assert_eq!(s.scrub_passes, 1);
        assert_eq!(s.scrub_segments, 8);
        assert_eq!(s.checksum_failures, 0);
    }

    #[test]
    fn scrub_quarantines_payload_rot_with_a_trusted_redo_span() {
        let mut d = ld(); // 4-block segments
        for w in 0..16u64 {
            d.write(w % 8);
        }
        assert_eq!(d.segments().len(), 4);
        // Rot an entry word in segment 1 (LSNs 4..8).
        d.corrupt_segment(1, false, 0x3_1701).unwrap();
        let r = d.scrub();
        assert_eq!(r.failures, 1);
        assert_eq!(r.redo_spans, vec![(4, 8)]);
        assert_eq!(d.segments().len(), 3);
        let s = d.stats();
        assert_eq!(s.checksum_failures, 1);
        assert_eq!(s.quarantined_segments, 1);
        // A second scrub finds the remaining history intact.
        assert!(d.scrub().clean());
    }

    #[test]
    fn summary_rot_is_detected_and_never_trusted_for_spans() {
        let mut d = ld();
        for w in 0..16u64 {
            d.write(w % 8);
        }
        // Flip a bit in segment 2's base_lsn summary field: the span
        // must come from neighbours (4..12 would trust the rotted
        // field; 8..12 is the truth).
        d.corrupt_segment(2, true, 1 + (13 << 8)).unwrap();
        let r = d.scrub();
        assert_eq!(r.failures, 1);
        assert_eq!(r.redo_spans, vec![(8, 12)]);
    }

    #[test]
    fn rot_at_the_tail_redoes_to_the_durable_head() {
        let mut d = ld();
        for w in 0..16u64 {
            d.write(w % 8);
        }
        d.corrupt_segment(3, false, 0x99).unwrap();
        let r = d.scrub();
        assert_eq!(r.redo_spans, vec![(12, 16)]);
    }

    #[test]
    fn rebuild_audits_and_skips_rotted_segments() {
        let config = LdConfig {
            blocks: 64,
            segment_blocks: 4,
        };
        let stream: Vec<u64> = (0..24u64).map(|i| i % 12).collect();
        let mut oracle = LogicalDisk::new(config);
        let mut victim = LogicalDisk::new(config);
        for &w in &stream {
            oracle.write(w);
            victim.write(w);
        }
        victim.corrupt_segment(2, false, 0xBEEF).unwrap();
        victim.crash();
        let replayed = victim.rebuild_map();
        // The rotted segment (4 entries) was quarantined, not replayed.
        assert_eq!(replayed, 20);
        assert_eq!(victim.stats().checksum_failures, 1);
        // Redo-tail replay from the quarantined span converges with the
        // oracle's *content*: every block the span covered is rewritten
        // from the upper layer's log.
        for &w in &stream[8..12] {
            victim.write(w);
        }
        for b in 0..64u64 {
            assert_eq!(victim.read(b).is_some(), oracle.read(b).is_some(), "block {b}");
        }
    }

    #[test]
    fn corrupt_segment_out_of_range_is_a_noop() {
        let mut d = ld();
        for w in 0..8u64 {
            d.write(w);
        }
        assert_eq!(d.corrupt_segment(7, false, 1), None);
        assert!(d.scrub().clean());
    }

    #[test]
    fn with_map_adopts_salvaged_state_past_a_segment_boundary() {
        let config = LdConfig {
            blocks: 64,
            segment_blocks: 4,
        };
        // A salvaged map with highest physical block 5: the cursor must
        // resume at 8, the next segment boundary.
        let mut salvaged = vec![UNMAPPED; 64];
        salvaged[10] = 5;
        salvaged[11] = 2;
        let mut d = LogicalDisk::with_map(config, &salvaged);
        assert_eq!(d.read(10), Some(5));
        assert_eq!(d.read(11), Some(2));
        assert_eq!(d.read(12), None);
        assert_eq!(d.physical_used(), 8);
        // New writes land after the salvaged segments.
        d.write(20);
        assert_eq!(d.read(20), Some(8));
        // Rewriting a salvaged block counts its old copy dead.
        d.write(10);
        assert_eq!(d.read(10), Some(9));
        assert_eq!(d.stats().dead_blocks, 1);
    }

    #[test]
    #[should_panic(expected = "wrong block count")]
    fn with_map_rejects_mis_sized_maps() {
        LogicalDisk::with_map(LdConfig::small(), &[UNMAPPED; 3]);
    }

    #[test]
    fn full_paper_run_fits_exactly_without_a_cleaner() {
        // The paper runs exactly `blocks` iterations "because our
        // simulation does not include a cleaner".
        let config = LdConfig::small();
        let mut d = LogicalDisk::new(config);
        for logical in workload::skewed(config.blocks, config.blocks as u64, 42) {
            d.write(logical);
        }
        assert_eq!(d.physical_used() as usize, config.blocks);
        assert_eq!(d.stats().segments_flushed as usize, config.segments());
    }
}
