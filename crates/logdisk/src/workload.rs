//! The paper's skewed write workload: 80% of the requests target 20% of
//! the blocks.

use graft_rng::{Rng, SmallRng};

/// An iterator of logical block numbers with the paper's 80/20 skew.
///
/// Hot blocks are the first 20% of the block range; each request picks a
/// hot block with probability 0.8 and a cold one otherwise, uniformly
/// within its class.
pub struct SkewedWrites {
    rng: SmallRng,
    blocks: usize,
    hot: usize,
    remaining: u64,
}

/// Creates the paper's workload: `count` writes over `blocks` logical
/// blocks, deterministic in `seed`.
pub fn skewed(blocks: usize, count: u64, seed: u64) -> SkewedWrites {
    assert!(blocks >= 5, "need at least 5 blocks for an 80/20 split");
    SkewedWrites {
        rng: SmallRng::seed_from_u64(seed),
        blocks,
        hot: blocks / 5,
        remaining: count,
    }
}

impl Iterator for SkewedWrites {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let block = if self.rng.gen_range(0..100) < 80 {
            self.rng.gen_range(0..self.hot)
        } else {
            self.rng.gen_range(self.hot..self.blocks)
        };
        Some(block as u64)
    }
}

impl ExactSizeIterator for SkewedWrites {
    fn len(&self) -> usize {
        self.remaining as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_requested_count_in_range() {
        let blocks = 1000;
        let all: Vec<u64> = skewed(blocks, 5000, 1).collect();
        assert_eq!(all.len(), 5000);
        assert!(all.iter().all(|&b| (b as usize) < blocks));
    }

    #[test]
    fn skew_is_roughly_eighty_twenty() {
        let blocks = 1000;
        let hot = blocks / 5;
        let n = 100_000;
        let hot_hits = skewed(blocks, n, 7)
            .filter(|&b| (b as usize) < hot)
            .count() as f64;
        let frac = hot_hits / n as f64;
        assert!(
            (0.78..0.82).contains(&frac),
            "hot fraction {frac} outside tolerance"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let a: Vec<u64> = skewed(512, 100, 9).collect();
        let b: Vec<u64> = skewed(512, 100, 9).collect();
        let c: Vec<u64> = skewed(512, 100, 10).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn exact_size_is_reported() {
        let mut it = skewed(512, 10, 1);
        assert_eq!(it.len(), 10);
        it.next();
        assert_eq!(it.len(), 9);
    }
}
