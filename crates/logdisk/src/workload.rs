//! The paper's skewed write workload: 80% of the requests target 20% of
//! the blocks — plus a parameterized [`trace`] generator for the
//! multi-million-block durability runs.

use graft_rng::{Rng, SmallRng};

/// An iterator of logical block numbers with the paper's 80/20 skew.
///
/// Hot blocks are the first 20% of the block range; each request picks a
/// hot block with probability 0.8 and a cold one otherwise, uniformly
/// within its class.
pub struct SkewedWrites {
    rng: SmallRng,
    blocks: usize,
    hot: usize,
    remaining: u64,
}

/// Creates the paper's workload: `count` writes over `blocks` logical
/// blocks, deterministic in `seed`.
pub fn skewed(blocks: usize, count: u64, seed: u64) -> SkewedWrites {
    assert!(blocks >= 5, "need at least 5 blocks for an 80/20 split");
    SkewedWrites {
        rng: SmallRng::seed_from_u64(seed),
        blocks,
        hot: blocks / 5,
        remaining: count,
    }
}

impl Iterator for SkewedWrites {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let block = if self.rng.gen_range(0..100) < 80 {
            self.rng.gen_range(0..self.hot)
        } else {
            self.rng.gen_range(self.hot..self.blocks)
        };
        Some(block as u64)
    }
}

impl ExactSizeIterator for SkewedWrites {
    fn len(&self) -> usize {
        self.remaining as usize
    }
}

/// A parameterized skewed trace for large-scale runs: `hot_permille`‰
/// of the requests hit the first `hot_blocks_permille`‰ of the block
/// range.
///
/// [`skewed`] keeps the paper's exact 80/20 stream (Tables 6 and 9
/// depend on it byte for byte); this generator drives the
/// multi-million-block Table 14 durability traces, where the skew knob
/// controls how hard retention merging has to work (hotter streams
/// supersede more history).
pub struct Trace {
    rng: SmallRng,
    blocks: usize,
    hot: usize,
    hot_permille: u16,
    remaining: u64,
}

/// Creates a scaled trace: `count` writes over `blocks` blocks,
/// deterministic in `seed`, with `hot_permille`‰ of the writes landing
/// in the first `hot_blocks_permille`‰ of the range.
pub fn trace(
    blocks: usize,
    count: u64,
    seed: u64,
    hot_permille: u16,
    hot_blocks_permille: u16,
) -> Trace {
    assert!(blocks >= 2, "need at least 2 blocks for a hot/cold split");
    assert!(hot_permille <= 1000, "hot_permille is a per-mille");
    assert!(
        (1..1000).contains(&hot_blocks_permille),
        "hot region must be a nonempty strict subset"
    );
    let hot = (blocks * hot_blocks_permille as usize / 1000).clamp(1, blocks - 1);
    Trace {
        rng: SmallRng::seed_from_u64(seed ^ 0x71ACE_u64.rotate_left(13)),
        blocks,
        hot,
        hot_permille,
        remaining: count,
    }
}

impl Iterator for Trace {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let block = if self.rng.gen_range(0..1000) < self.hot_permille as usize {
            self.rng.gen_range(0..self.hot)
        } else {
            self.rng.gen_range(self.hot..self.blocks)
        };
        Some(block as u64)
    }
}

impl ExactSizeIterator for Trace {
    fn len(&self) -> usize {
        self.remaining as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_requested_count_in_range() {
        let blocks = 1000;
        let all: Vec<u64> = skewed(blocks, 5000, 1).collect();
        assert_eq!(all.len(), 5000);
        assert!(all.iter().all(|&b| (b as usize) < blocks));
    }

    #[test]
    fn skew_is_roughly_eighty_twenty() {
        let blocks = 1000;
        let hot = blocks / 5;
        let n = 100_000;
        let hot_hits = skewed(blocks, n, 7)
            .filter(|&b| (b as usize) < hot)
            .count() as f64;
        let frac = hot_hits / n as f64;
        assert!(
            (0.78..0.82).contains(&frac),
            "hot fraction {frac} outside tolerance"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let a: Vec<u64> = skewed(512, 100, 9).collect();
        let b: Vec<u64> = skewed(512, 100, 9).collect();
        let c: Vec<u64> = skewed(512, 100, 10).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn exact_size_is_reported() {
        let mut it = skewed(512, 10, 1);
        assert_eq!(it.len(), 10);
        it.next();
        assert_eq!(it.len(), 9);
    }

    #[test]
    fn trace_honors_its_skew_knobs() {
        let blocks = 10_000;
        // 95% of writes into the first 5% of blocks.
        let hot = blocks * 50 / 1000;
        let n = 100_000;
        let hot_hits = trace(blocks, n, 4, 950, 50)
            .filter(|&b| (b as usize) < hot)
            .count() as f64;
        let frac = hot_hits / n as f64;
        assert!(
            (0.93..0.97).contains(&frac),
            "hot fraction {frac} outside tolerance"
        );
    }

    #[test]
    fn trace_is_deterministic_and_bounded() {
        let a: Vec<u64> = trace(777, 500, 21, 800, 200).collect();
        let b: Vec<u64> = trace(777, 500, 21, 800, 200).collect();
        let c: Vec<u64> = trace(777, 500, 22, 800, 200).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 500);
        assert!(a.iter().all(|&x| (x as usize) < 777));
    }

    #[test]
    fn trace_with_paper_knobs_matches_the_paper_shape() {
        // 80/20 knobs reproduce the paper's shape (not its exact
        // stream — `skewed` owns that, byte for byte).
        let blocks = 1000;
        let n = 100_000;
        let hot_hits = trace(blocks, n, 7, 800, 200)
            .filter(|&b| (b as usize) < blocks / 5)
            .count() as f64;
        let frac = hot_hits / n as f64;
        assert!((0.78..0.82).contains(&frac));
    }
}
