//! A greedy segment cleaner — the component the paper's simulation
//! explicitly omits ("Because our simulation does not include a cleaner,
//! we run it for 262144 iterations"). Provided as an extension so the
//! Logical Disk can run indefinitely; the `ablation_ld_cleaner` bench
//! measures what it would have cost.

use crate::{LdConfig, LogicalDisk, SegmentFlush, UNMAPPED};

/// Statistics from cleaning activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CleanerStats {
    /// Cleaning passes run.
    pub passes: u64,
    /// Live blocks copied forward.
    pub live_copied: u64,
    /// Segments reclaimed.
    pub segments_reclaimed: u64,
    /// Retention merges driven by cleaning passes.
    pub retention_merges: u64,
    /// History entries pruned by those merges.
    pub retention_pruned: u64,
}

/// A Logical Disk with a greedy cleaner layered on top.
///
/// Physical space is tracked per segment; when fewer than
/// `reserve_segments` are free, the cleaner repeatedly picks the segment
/// with the fewest live blocks, rewrites its live blocks (through the
/// normal write path, so they re-batch), and reclaims it.
pub struct CleaningDisk {
    ld: LogicalDisk,
    config: LdConfig,
    /// Live-block count per physical segment.
    live: Vec<u32>,
    /// Free physical segments available for reuse.
    free_segments: usize,
    /// Cleaning threshold.
    reserve_segments: usize,
    /// When set, every cleaning pass also merges durable history older
    /// than `durable_lsn - window` (multi-version merge), bounding how
    /// much restore history the disk retains.
    retention_window: Option<u64>,
    stats: CleanerStats,
}

impl CleaningDisk {
    /// Wraps a fresh Logical Disk; `reserve_segments` is the low-water
    /// mark that triggers cleaning. Durable history is retained
    /// unboundedly (every LSN stays restorable).
    pub fn new(config: LdConfig, reserve_segments: usize) -> Self {
        CleaningDisk::with_retention(config, reserve_segments, None)
    }

    /// Like [`new`](CleaningDisk::new), but each cleaning pass also
    /// folds segment history older than `window` LSNs behind the
    /// durable head into a merged segment
    /// ([`LogicalDisk::merge_below_watermark`]), so point-in-time
    /// restore reaches back exactly `window` writes while physical
    /// retention stays bounded. `None` keeps everything.
    pub fn with_retention(
        config: LdConfig,
        reserve_segments: usize,
        retention_window: Option<u64>,
    ) -> Self {
        CleaningDisk {
            ld: LogicalDisk::new(config),
            config,
            live: vec![0; config.segments()],
            free_segments: config.segments(),
            reserve_segments,
            retention_window,
            stats: CleanerStats::default(),
        }
    }

    /// Accumulated cleaner statistics.
    pub fn stats(&self) -> CleanerStats {
        self.stats
    }

    /// The underlying Logical Disk.
    pub fn disk(&self) -> &LogicalDisk {
        &self.ld
    }

    /// Mutable access to the underlying disk for durability operations
    /// (scrub, restore, merge). These touch only the sealed history and
    /// its statistics, never the live map, so the cleaner's live-block
    /// accounting stays valid.
    pub fn disk_mut(&mut self) -> &mut LogicalDisk {
        &mut self.ld
    }

    fn segment_of(&self, physical: u64) -> usize {
        (physical as usize / self.config.segment_blocks) % self.config.segments()
    }

    /// Writes one logical block, cleaning first if space is low.
    pub fn write(&mut self, logical: u64) -> Vec<SegmentFlush> {
        let mut flushes = Vec::new();
        if self.free_segments <= self.reserve_segments {
            self.clean(&mut flushes);
        }
        let old = self.ld.read(logical);
        if let Some(f) = self.ld.write(logical) {
            self.note_flush(&f);
            flushes.push(f);
        }
        if let Some(old_phys) = old {
            let seg = self.segment_of(old_phys);
            self.live[seg] = self.live[seg].saturating_sub(1);
        }
        flushes
    }

    fn note_flush(&mut self, f: &SegmentFlush) {
        let seg = self.segment_of(f.physical_start);
        // Count only blocks whose mapping still points into this
        // segment (a block rewritten within the segment is live once).
        let mut live = 0u32;
        for &l in &f.logical {
            if let Some(p) = self.ld.read(l) {
                if self.segment_of(p) == seg {
                    live += 1;
                }
            }
        }
        // Rewrites within the segment can double-count; clamp.
        self.live[seg] = live.min(self.config.segment_blocks as u32);
        self.free_segments = self.free_segments.saturating_sub(1);
    }

    /// One greedy cleaning pass: reclaim the emptiest flushed segments
    /// until the reserve is met.
    fn clean(&mut self, flushes: &mut Vec<SegmentFlush>) {
        // Span-timed: a run artifact shows what fraction of wall-clock
        // the cleaner (which the paper's simulation omits) would cost.
        let _span = graft_telemetry::span!("ld_clean_pass");
        self.stats.passes += 1;
        // Reclaim up to a quarter of the disk per pass.
        let target = self.reserve_segments.max(self.config.segments() / 4);
        let mut order: Vec<usize> = (0..self.live.len()).collect();
        order.sort_by_key(|&s| self.live[s]);
        for seg in order {
            if self.free_segments >= target {
                break;
            }
            let victims = self.live_blocks_in(seg);
            for l in &victims {
                self.stats.live_copied += 1;
                if let Some(f) = self.ld.write(*l) {
                    self.note_flush(&f);
                    flushes.push(f.clone());
                }
            }
            self.live[seg] = 0;
            self.free_segments += 1;
            self.stats.segments_reclaimed += 1;
        }
        if let Some(window) = self.retention_window {
            let watermark = self.ld.durable_lsn().saturating_sub(window);
            if watermark > self.ld.retention_floor() {
                let report = self.ld.merge_below_watermark(watermark);
                self.stats.retention_merges += 1;
                self.stats.retention_pruned += report.pruned_entries;
            }
        }
    }

    fn live_blocks_in(&self, seg: usize) -> Vec<u64> {
        let lo = (seg * self.config.segment_blocks) as i64;
        let hi = lo + self.config.segment_blocks as i64;
        self.ld
            .map()
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p != UNMAPPED && p >= lo && p < hi)
            .map(|(l, _)| l as u64)
            .collect()
    }
}

impl Drop for CleaningDisk {
    /// Flushes cleaner statistics to the global telemetry counters at
    /// teardown (the write path itself stays atomic-free).
    fn drop(&mut self) {
        if !graft_telemetry::enabled() {
            return;
        }
        let s = self.stats;
        graft_telemetry::counter!("cleaner.passes").add(s.passes);
        graft_telemetry::counter!("cleaner.live_copied").add(s.live_copied);
        graft_telemetry::counter!("cleaner.segments_reclaimed").add(s.segments_reclaimed);
        graft_telemetry::counter!("cleaner.retention_merges").add(s.retention_merges);
        graft_telemetry::counter!("cleaner.retention_pruned").add(s.retention_pruned);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    #[test]
    fn cleaner_lets_the_disk_outlive_its_capacity() {
        let config = LdConfig {
            blocks: 256,
            segment_blocks: 16,
        };
        let mut d = CleaningDisk::new(config, 2);
        // Write 4x the disk's capacity — impossible without cleaning.
        for logical in workload::skewed(config.blocks, 4 * config.blocks as u64, 3) {
            d.write(logical);
        }
        let s = d.stats();
        assert!(s.passes > 0, "cleaner must have run");
        assert!(s.segments_reclaimed > 0);
    }

    #[test]
    fn reads_survive_cleaning() {
        let config = LdConfig {
            blocks: 128,
            segment_blocks: 8,
        };
        let mut d = CleaningDisk::new(config, 2);
        for round in 0..6u64 {
            for logical in 0..config.blocks as u64 {
                d.write(logical);
                let _ = round;
            }
        }
        // Every block was written; every block must still translate.
        for logical in 0..config.blocks as u64 {
            assert!(d.disk().read(logical).is_some(), "block {logical} lost");
        }
    }

    #[test]
    fn retention_window_bounds_history_without_changing_reads() {
        let config = LdConfig {
            blocks: 256,
            segment_blocks: 16,
        };
        let stream: Vec<u64> =
            workload::trace(config.blocks, 6 * config.blocks as u64, 13, 900, 100).collect();
        let mut bounded = CleaningDisk::with_retention(config, 2, Some(128));
        let mut unbounded = CleaningDisk::new(config, 2);
        for &l in &stream {
            bounded.write(l);
            unbounded.write(l);
        }
        assert!(bounded.stats().retention_merges > 0, "merges must run");
        assert!(bounded.stats().retention_pruned > 0);
        assert!(
            bounded.disk().retained_entries() < unbounded.disk().retained_entries(),
            "retention must shrink the durable history"
        );
        // Merging touches only the sealed history, never the live map.
        for l in 0..config.blocks as u64 {
            assert_eq!(bounded.disk().read(l), unbounded.disk().read(l));
        }
        // Restores inside the window still work and stay exact.
        let head = bounded.disk().durable_lsn();
        let floor = bounded.disk().retention_floor();
        assert!(head - floor >= 128 - config.segment_blocks as u64);
        let at_head = bounded.disk_mut().restore_to_lsn(head).unwrap();
        // Blocks with a write still pending in the open segment have
        // moved past the durable head; all others must match exactly.
        let pending: std::collections::HashSet<u64> =
            bounded.disk().pending().iter().copied().collect();
        for (l, &p) in at_head.iter().enumerate() {
            if !pending.contains(&(l as u64)) {
                assert_eq!(p, bounded.disk().map()[l], "block {l}");
            }
        }
    }
}
