//! A greedy segment cleaner — the component the paper's simulation
//! explicitly omits ("Because our simulation does not include a cleaner,
//! we run it for 262144 iterations"). Provided as an extension so the
//! Logical Disk can run indefinitely; the `ablation_ld_cleaner` bench
//! measures what it would have cost.

use crate::{LdConfig, LogicalDisk, SegmentFlush, UNMAPPED};

/// Statistics from cleaning activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CleanerStats {
    /// Cleaning passes run.
    pub passes: u64,
    /// Live blocks copied forward.
    pub live_copied: u64,
    /// Segments reclaimed.
    pub segments_reclaimed: u64,
}

/// A Logical Disk with a greedy cleaner layered on top.
///
/// Physical space is tracked per segment; when fewer than
/// `reserve_segments` are free, the cleaner repeatedly picks the segment
/// with the fewest live blocks, rewrites its live blocks (through the
/// normal write path, so they re-batch), and reclaims it.
pub struct CleaningDisk {
    ld: LogicalDisk,
    config: LdConfig,
    /// Live-block count per physical segment.
    live: Vec<u32>,
    /// Free physical segments available for reuse.
    free_segments: usize,
    /// Cleaning threshold.
    reserve_segments: usize,
    stats: CleanerStats,
}

impl CleaningDisk {
    /// Wraps a fresh Logical Disk; `reserve_segments` is the low-water
    /// mark that triggers cleaning.
    pub fn new(config: LdConfig, reserve_segments: usize) -> Self {
        CleaningDisk {
            ld: LogicalDisk::new(config),
            config,
            live: vec![0; config.segments()],
            free_segments: config.segments(),
            reserve_segments,
            stats: CleanerStats::default(),
        }
    }

    /// Accumulated cleaner statistics.
    pub fn stats(&self) -> CleanerStats {
        self.stats
    }

    /// The underlying Logical Disk.
    pub fn disk(&self) -> &LogicalDisk {
        &self.ld
    }

    fn segment_of(&self, physical: u64) -> usize {
        (physical as usize / self.config.segment_blocks) % self.config.segments()
    }

    /// Writes one logical block, cleaning first if space is low.
    pub fn write(&mut self, logical: u64) -> Vec<SegmentFlush> {
        let mut flushes = Vec::new();
        if self.free_segments <= self.reserve_segments {
            self.clean(&mut flushes);
        }
        let old = self.ld.read(logical);
        if let Some(f) = self.ld.write(logical) {
            self.note_flush(&f);
            flushes.push(f);
        }
        if let Some(old_phys) = old {
            let seg = self.segment_of(old_phys);
            self.live[seg] = self.live[seg].saturating_sub(1);
        }
        flushes
    }

    fn note_flush(&mut self, f: &SegmentFlush) {
        let seg = self.segment_of(f.physical_start);
        // Count only blocks whose mapping still points into this
        // segment (a block rewritten within the segment is live once).
        let mut live = 0u32;
        for &l in &f.logical {
            if let Some(p) = self.ld.read(l) {
                if self.segment_of(p) == seg {
                    live += 1;
                }
            }
        }
        // Rewrites within the segment can double-count; clamp.
        self.live[seg] = live.min(self.config.segment_blocks as u32);
        self.free_segments = self.free_segments.saturating_sub(1);
    }

    /// One greedy cleaning pass: reclaim the emptiest flushed segments
    /// until the reserve is met.
    fn clean(&mut self, flushes: &mut Vec<SegmentFlush>) {
        // Span-timed: a run artifact shows what fraction of wall-clock
        // the cleaner (which the paper's simulation omits) would cost.
        let _span = graft_telemetry::span!("ld_clean_pass");
        self.stats.passes += 1;
        // Reclaim up to a quarter of the disk per pass.
        let target = self.reserve_segments.max(self.config.segments() / 4);
        let mut order: Vec<usize> = (0..self.live.len()).collect();
        order.sort_by_key(|&s| self.live[s]);
        for seg in order {
            if self.free_segments >= target {
                break;
            }
            let victims = self.live_blocks_in(seg);
            for l in &victims {
                self.stats.live_copied += 1;
                if let Some(f) = self.ld.write(*l) {
                    self.note_flush(&f);
                    flushes.push(f.clone());
                }
            }
            self.live[seg] = 0;
            self.free_segments += 1;
            self.stats.segments_reclaimed += 1;
        }
    }

    fn live_blocks_in(&self, seg: usize) -> Vec<u64> {
        let lo = (seg * self.config.segment_blocks) as i64;
        let hi = lo + self.config.segment_blocks as i64;
        self.ld
            .map()
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p != UNMAPPED && p >= lo && p < hi)
            .map(|(l, _)| l as u64)
            .collect()
    }
}

impl Drop for CleaningDisk {
    /// Flushes cleaner statistics to the global telemetry counters at
    /// teardown (the write path itself stays atomic-free).
    fn drop(&mut self) {
        if !graft_telemetry::enabled() {
            return;
        }
        let s = self.stats;
        graft_telemetry::counter!("cleaner.passes").add(s.passes);
        graft_telemetry::counter!("cleaner.live_copied").add(s.live_copied);
        graft_telemetry::counter!("cleaner.segments_reclaimed").add(s.segments_reclaimed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    #[test]
    fn cleaner_lets_the_disk_outlive_its_capacity() {
        let config = LdConfig {
            blocks: 256,
            segment_blocks: 16,
        };
        let mut d = CleaningDisk::new(config, 2);
        // Write 4x the disk's capacity — impossible without cleaning.
        for logical in workload::skewed(config.blocks, 4 * config.blocks as u64, 3) {
            d.write(logical);
        }
        let s = d.stats();
        assert!(s.passes > 0, "cleaner must have run");
        assert!(s.segments_reclaimed > 0);
    }

    #[test]
    fn reads_survive_cleaning() {
        let config = LdConfig {
            blocks: 128,
            segment_blocks: 8,
        };
        let mut d = CleaningDisk::new(config, 2);
        for round in 0..6u64 {
            for logical in 0..config.blocks as u64 {
                d.write(logical);
                let _ = round;
            }
        }
        // Every block was written; every block must still translate.
        for logical in 0..config.blocks as u64 {
            assert!(d.disk().read(logical).is_some(), "block {logical} lost");
        }
    }
}
