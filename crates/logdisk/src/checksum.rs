//! Seedable 64-bit segment checksums.
//!
//! Every sealed segment carries a checksum over its mapping payload
//! (the `(lsn, logical, physical)` entry triples) *and* its summary
//! fields (`base_lsn`, `physical_start`, the merged flag), written at
//! flush time and audited by [`LogicalDisk::scrub`] and every
//! [`LogicalDisk::rebuild_map`] / [`LogicalDisk::restore_to_lsn`]
//! replay. The storage layer below us is allowed to lie — torn
//! writes, flipped bits — and the checksum is how a lie turns into a
//! quarantined segment instead of a silently wrong map.
//!
//! The function is a position-dependent splitmix64 fold: each word is
//! diffused through the splitmix64 finalizer together with its ordinal
//! before being folded into the accumulator, so swapped words, shifted
//! runs, and any single flipped bit all change the digest (a plain
//! XOR/ADD fold would miss reorderings and paired flips). The seed
//! keys the whole digest, so distinct disks can run distinct checksum
//! families and a test can prove detection is not an accident of one
//! constant.
//!
//! [`LogicalDisk::scrub`]: crate::LogicalDisk::scrub
//! [`LogicalDisk::rebuild_map`]: crate::LogicalDisk::rebuild_map
//! [`LogicalDisk::restore_to_lsn`]: crate::LogicalDisk::restore_to_lsn

/// Default checksum seed ("LOGDISK" on a phone keypad, roughly).
pub const DEFAULT_SEED: u64 = 0x10D6_D15C_5EA1_ED64;

/// The splitmix64 finalizer: a full-avalanche 64-bit diffusion.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A seeded checksum accumulator. Feed words, then [`finish`].
///
/// [`finish`]: Checksummer::finish
#[derive(Debug, Clone, Copy)]
pub struct Checksummer {
    acc: u64,
    ordinal: u64,
}

impl Checksummer {
    /// Starts a digest under `seed`.
    pub fn new(seed: u64) -> Self {
        Checksummer {
            acc: mix(seed ^ 0xC0DE_C0DE_C0DE_C0DE),
            ordinal: 0,
        }
    }

    /// Folds one word in, diffused with its position.
    #[inline]
    pub fn word(&mut self, w: u64) {
        self.ordinal += 1;
        self.acc = mix(self.acc ^ mix(w ^ self.ordinal.rotate_left(17)));
    }

    /// The digest over everything fed so far.
    pub fn finish(&self) -> u64 {
        mix(self.acc ^ self.ordinal)
    }
}

/// One-shot digest of a word slice under `seed`.
pub fn checksum_words(seed: u64, words: impl IntoIterator<Item = u64>) -> u64 {
    let mut c = Checksummer::new(seed);
    for w in words {
        c.word(w);
    }
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_keyed() {
        let a = checksum_words(1, [1, 2, 3]);
        let b = checksum_words(1, [1, 2, 3]);
        let c = checksum_words(2, [1, 2, 3]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn any_single_bit_flip_changes_the_digest() {
        let words = [0u64, 7, u64::MAX, 0x1234_5678_9ABC_DEF0];
        let clean = checksum_words(DEFAULT_SEED, words);
        for slot in 0..words.len() {
            for bit in 0..64 {
                let mut rotted = words;
                rotted[slot] ^= 1 << bit;
                assert_ne!(
                    checksum_words(DEFAULT_SEED, rotted),
                    clean,
                    "flip of bit {bit} in word {slot} went undetected"
                );
            }
        }
    }

    #[test]
    fn position_matters() {
        // A plain XOR fold would pass both of these.
        assert_ne!(
            checksum_words(0, [1, 2]),
            checksum_words(0, [2, 1]),
            "swap undetected"
        );
        assert_ne!(
            checksum_words(0, [5, 5]),
            checksum_words(0, [6, 6] /* paired flips */),
        );
        assert_ne!(checksum_words(0, []), checksum_words(0, [0]));
    }
}
