//! Point-in-time restore: multi-version segment history, idempotent
//! replay, and retention merging.
//!
//! The sealed-segment records ([`SealedSegment`]) already keep every
//! mapping generation — a rewrite appends a new `(lsn, logical,
//! physical)` entry instead of erasing the old one — so the durable
//! history is a full version chain down to the **retention floor**.
//! [`LogicalDisk::restore_to_lsn`] rebuilds the exact logical→physical
//! map as of *any* retained LSN by replaying entries below the target
//! through an idempotent [`Replayer`]; replaying a prefix twice (or
//! resuming after a mid-replay crash) is a no-op, because every slot is
//! guarded by the LSN that last advanced it.
//!
//! Unbounded history would explode physical use, so
//! [`LogicalDisk::merge_below_watermark`] folds the segments wholly
//! below a watermark into one *merged* segment keeping only the newest
//! entry per logical block — exactly the state any restore at or above
//! the watermark can still observe — and raises the retention floor.
//! The cleaner drives this from its normal passes
//! ([`CleaningDisk::with_retention`]), making retention pressure part
//! of the measured workload rather than a free lunch.
//!
//! [`CleaningDisk::with_retention`]: crate::cleaner::CleaningDisk::with_retention

use crate::{LogicalDisk, MapEntry, SealedSegment, UNMAPPED};

/// Why a [`LogicalDisk::restore_to_lsn`] request was refused.
///
/// Refusal is loud by design: a restore that cannot be exact returns an
/// error, never an approximate map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestoreError {
    /// The target LSN predates the retention floor (merged away).
    BelowRetention {
        /// Lowest restorable LSN.
        floor: u64,
    },
    /// The target LSN is past the durable head (those writes were never
    /// sealed, so no exact map for them exists on disk).
    BeyondDurable {
        /// One past the newest restorable LSN.
        durable: u64,
    },
    /// A retained segment failed its checksum audit; restoring through
    /// corrupt history would risk a silently wrong map, so the restore
    /// refuses. Scrub (quarantine + redo-tail replay) and retry.
    CorruptSegment {
        /// Index of the offending segment in [`LogicalDisk::segments`].
        index: usize,
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::BelowRetention { floor } => {
                write!(f, "target LSN below retention floor {floor}")
            }
            RestoreError::BeyondDurable { durable } => {
                write!(f, "target LSN beyond durable head {durable}")
            }
            RestoreError::CorruptSegment { index } => {
                write!(f, "segment {index} failed checksum audit")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

/// Result of one [`LogicalDisk::merge_below_watermark`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeReport {
    /// Segments folded into the merged record this pass.
    pub merged_segments: u64,
    /// History entries dropped (superseded below the watermark).
    pub pruned_entries: u64,
    /// Mapping entries retained across the whole history after the pass.
    pub retained_entries: u64,
}

/// An idempotent mapping replayer: entries can arrive in any order, any
/// number of times, and the newest LSN per logical block always wins.
///
/// Each slot remembers the LSN that last advanced it, so re-applying a
/// prefix — or resuming a replay that crashed halfway — changes
/// nothing. This is the engine under [`LogicalDisk::rebuild_map`] and
/// [`LogicalDisk::restore_to_lsn`].
#[derive(Debug, Clone)]
pub struct Replayer {
    map: Vec<i64>,
    /// Per-slot guard: `lsn + 1` of the entry that set it (0 = never).
    applied: Vec<u64>,
    advanced: u64,
}

impl Replayer {
    /// A fresh replayer over a disk of `blocks` logical blocks.
    pub fn new(blocks: usize) -> Self {
        Replayer {
            map: vec![UNMAPPED; blocks],
            applied: vec![0; blocks],
            advanced: 0,
        }
    }

    /// Applies one entry; returns whether it advanced the map (false
    /// when an equal-or-newer entry already holds the slot, or the
    /// logical block is out of range).
    #[inline]
    pub fn apply(&mut self, e: &MapEntry) -> bool {
        let Some(guard) = self.applied.get_mut(e.logical as usize) else {
            return false;
        };
        if e.lsn < *guard {
            return false;
        }
        *guard = e.lsn + 1;
        self.map[e.logical as usize] = e.physical as i64;
        self.advanced += 1;
        true
    }

    /// Applies every entry of a segment; returns how many advanced.
    pub fn apply_segment(&mut self, s: &SealedSegment) -> u64 {
        let mut n = 0;
        for e in &s.entries {
            n += self.apply(e) as u64;
        }
        n
    }

    /// Entries that have advanced the map so far.
    pub fn advanced(&self) -> u64 {
        self.advanced
    }

    /// The replayed map (read-only view).
    pub fn map(&self) -> &[i64] {
        &self.map
    }

    /// Consumes the replayer, yielding the replayed map.
    pub fn into_map(self) -> Vec<i64> {
        self.map
    }
}

impl LogicalDisk {
    /// One past the newest durably sealed LSN (the durable head).
    pub fn durable_lsn(&self) -> u64 {
        self.durable_lsn
    }

    /// The next LSN a write would receive (the log clock).
    pub fn head_lsn(&self) -> u64 {
        self.stats.writes
    }

    /// Lowest LSN still restorable. Starts at 0; raised by
    /// [`merge_below_watermark`](LogicalDisk::merge_below_watermark).
    pub fn retention_floor(&self) -> u64 {
        self.retention_floor
    }

    /// Mapping entries retained across the whole durable history.
    pub fn retained_entries(&self) -> u64 {
        self.segments.iter().map(|s| s.entries.len() as u64).sum()
    }

    /// Modelled bytes of the retained history: 24 bytes per entry
    /// (three u64 words) plus a 40-byte summary block per segment.
    pub fn retained_bytes(&self) -> u64 {
        self.retained_entries() * 24 + self.segments.len() as u64 * 40
    }

    /// Rebuilds the exact logical→physical map **as of LSN `lsn`** —
    /// the map an observer would have seen after the first `lsn` writes
    /// — from the retained multi-version history. `lsn` may point
    /// mid-segment: physical addresses are assigned at write time and
    /// only sealed later, so the prefix below `lsn` is exact.
    ///
    /// Every retained segment is checksum-audited first; a mismatch
    /// refuses the restore ([`RestoreError::CorruptSegment`]) rather
    /// than replaying through corrupt history, and every mismatching
    /// segment the audit found is counted in
    /// [`LdStats::checksum_failures`](crate::LdStats::checksum_failures)
    /// so corruption first noticed by a restore still reaches
    /// telemetry. (Each audit counts what it finds, so a scrub after a
    /// refused restore counts — and quarantines — the same rot again.)
    /// The live disk is not modified (only statistics move): the
    /// returned map can be adopted via [`LogicalDisk::with_map`] or
    /// handed to a graft.
    pub fn restore_to_lsn(&mut self, lsn: u64) -> Result<Vec<i64>, RestoreError> {
        if lsn < self.retention_floor {
            return Err(RestoreError::BelowRetention {
                floor: self.retention_floor,
            });
        }
        if lsn > self.durable_lsn {
            return Err(RestoreError::BeyondDurable {
                durable: self.durable_lsn,
            });
        }
        // Audit everything before believing anything: a rotted segment
        // cannot even be trusted about which LSNs it claims to hold.
        // A refusal is loud in telemetry too, but read-only: the
        // mismatches are counted, nothing is quarantined here.
        let seed = self.checksum_seed;
        let mut corrupt = self
            .segments
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.verify(seed))
            .map(|(i, _)| i);
        if let Some(index) = corrupt.next() {
            self.stats.checksum_failures += 1 + corrupt.count() as u64;
            return Err(RestoreError::CorruptSegment { index });
        }
        let mut replayer = Replayer::new(self.config.blocks);
        for s in &self.segments {
            if s.base_lsn >= lsn {
                continue; // wholly after the target
            }
            for e in s.entries.iter().filter(|e| e.lsn < lsn) {
                replayer.apply(e);
            }
        }
        self.stats.restores += 1;
        self.stats.restored_mappings += replayer.advanced();
        Ok(replayer.into_map())
    }

    /// Folds every segment wholly below `watermark` into one *merged*
    /// segment that keeps only the newest entry per logical block —
    /// precisely the state any restore at or above the watermark can
    /// still observe — then raises the retention floor to the watermark
    /// (clamped to the durable head). Restores in
    /// `[watermark, durable_lsn]` are bit-for-bit unchanged by the
    /// merge; restores below it now refuse with
    /// [`RestoreError::BelowRetention`].
    ///
    /// The merged segment is sealed under the same checksum family as
    /// fresh ones and participates in later merges, so repeated passes
    /// compound instead of stacking.
    pub fn merge_below_watermark(&mut self, watermark: u64) -> MergeReport {
        let watermark = watermark.min(self.durable_lsn);
        self.retention_floor = self.retention_floor.max(watermark);
        let (candidates, keep): (Vec<SealedSegment>, Vec<SealedSegment>) = self
            .segments
            .drain(..)
            .partition(|s| s.end_lsn() <= watermark);
        self.stats.merge_passes += 1;
        if candidates.is_empty() {
            self.segments = keep;
            return MergeReport {
                retained_entries: self.retained_entries(),
                ..MergeReport::default()
            };
        }
        // Newest entry per logical block among the candidates survives.
        let mut newest: std::collections::HashMap<u64, MapEntry> = std::collections::HashMap::new();
        let mut total = 0u64;
        for seg in &candidates {
            total += seg.entries.len() as u64;
            for &e in &seg.entries {
                let slot = newest.entry(e.logical).or_insert(e);
                if e.lsn > slot.lsn {
                    *slot = e;
                }
            }
        }
        let mut survivors: Vec<MapEntry> = newest.into_values().collect();
        survivors.sort_by_key(|e| e.lsn);
        let pruned = total - survivors.len() as u64;
        let mut merged = SealedSegment {
            base_lsn: survivors.first().map(|e| e.lsn).unwrap_or(watermark),
            physical_start: survivors.iter().map(|e| e.physical).min().unwrap_or(0),
            merged: true,
            entries: survivors,
            checksum: 0,
        };
        merged.seal(self.checksum_seed);
        self.segments = Vec::with_capacity(1 + keep.len());
        self.segments.push(merged);
        self.segments.extend(keep);
        self.stats.merged_segments += candidates.len() as u64;
        self.stats.pruned_entries += pruned;
        MergeReport {
            merged_segments: candidates.len() as u64,
            pruned_entries: pruned,
            retained_entries: self.retained_entries(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{workload, LdConfig};

    fn config() -> LdConfig {
        LdConfig {
            blocks: 128,
            segment_blocks: 8,
        }
    }

    /// The oracle map as of `lsn`: replay the stream prefix by hand.
    fn oracle_prefix(cfg: LdConfig, stream: &[u64], lsn: u64) -> Vec<i64> {
        let mut m = vec![UNMAPPED; cfg.blocks];
        for (i, &l) in stream.iter().take(lsn as usize).enumerate() {
            m[l as usize] = i as i64;
        }
        m
    }

    #[test]
    fn restore_is_exact_at_every_retained_lsn() {
        let cfg = config();
        let stream: Vec<u64> = workload::skewed(cfg.blocks, 200, 11).collect();
        let mut d = LogicalDisk::new(cfg);
        for &l in &stream {
            d.write(l);
        }
        let durable = d.durable_lsn();
        // 200 writes over 8-block segments: all 25 segments sealed.
        assert_eq!(durable, 200);
        for lsn in 0..=durable {
            let restored = d.restore_to_lsn(lsn).unwrap();
            assert_eq!(
                restored,
                oracle_prefix(cfg, &stream, lsn),
                "restore to LSN {lsn} diverged"
            );
        }
        let s = d.stats();
        assert_eq!(s.restores, durable + 1);
    }

    #[test]
    fn restore_refuses_beyond_the_durable_head() {
        let mut d = LogicalDisk::new(config());
        for l in 0..12u64 {
            d.write(l);
        }
        assert_eq!(d.durable_lsn(), 8);
        assert!(d.restore_to_lsn(8).is_ok());
        assert_eq!(
            d.restore_to_lsn(9),
            Err(RestoreError::BeyondDurable { durable: 8 })
        );
    }

    #[test]
    fn restore_refuses_corrupt_history_loudly() {
        let mut d = LogicalDisk::new(config());
        for l in 0..32u64 {
            d.write(l % 16);
        }
        d.corrupt_segment(1, false, 0xDEAD).unwrap();
        assert_eq!(
            d.restore_to_lsn(24),
            Err(RestoreError::CorruptSegment { index: 1 })
        );
        // The refusal reaches telemetry (read-only: counted, nothing
        // quarantined yet)...
        assert_eq!(d.stats().checksum_failures, 1);
        assert_eq!(d.stats().quarantined_segments, 0);
        // ...then scrub quarantines (its own audit counts the same rot
        // again); the remaining history restores again (the quarantined
        // span's mappings are absent — reported, not wrong).
        let r = d.scrub();
        assert_eq!(r.failures, 1);
        assert_eq!(d.stats().checksum_failures, 2);
        assert_eq!(d.stats().quarantined_segments, 1);
        assert!(d.restore_to_lsn(24).is_ok());
    }

    #[test]
    fn corrupt_merged_history_is_reported_as_lost_not_an_empty_span() {
        let cfg = config();
        let mut d = LogicalDisk::new(cfg);
        for l in workload::skewed(cfg.blocks, 400, 23) {
            d.write(l);
        }
        d.merge_below_watermark(200);
        assert!(d.segments()[0].merged);
        d.corrupt_segment(0, false, 0xF00D).unwrap();
        let r = d.scrub();
        assert_eq!(r.failures, 1);
        assert_eq!(r.lost_below_floor, 1);
        assert!(
            r.redo_spans.is_empty(),
            "pre-floor loss has no redoable span in the caller's log"
        );
        assert!(!r.clean());
        // The rest of the history still audits clean, and restores at
        // or above the floor still answer — with the merged mappings
        // absent: reported, never silently wrong.
        assert!(d.scrub().clean());
        assert!(d.restore_to_lsn(d.durable_lsn()).is_ok());
    }

    #[test]
    fn merge_preserves_every_restore_at_or_above_the_watermark() {
        let cfg = config();
        let stream: Vec<u64> = workload::skewed(cfg.blocks, 400, 23).collect();
        let mut d = LogicalDisk::new(cfg);
        for &l in &stream {
            d.write(l);
        }
        let durable = d.durable_lsn();
        let watermark = 200;
        let before: Vec<Vec<i64>> = (watermark..=durable)
            .map(|lsn| d.restore_to_lsn(lsn).unwrap())
            .collect();
        let entries_before = d.retained_entries();
        let report = d.merge_below_watermark(watermark);
        assert!(report.merged_segments > 0);
        assert!(report.pruned_entries > 0, "a skewed stream must supersede");
        assert_eq!(
            d.retained_entries(),
            entries_before - report.pruned_entries
        );
        assert_eq!(d.retention_floor(), watermark);
        for (i, lsn) in (watermark..=durable).enumerate() {
            assert_eq!(
                d.restore_to_lsn(lsn).unwrap(),
                before[i],
                "merge changed restore at LSN {lsn}"
            );
        }
        assert_eq!(
            d.restore_to_lsn(watermark - 1),
            Err(RestoreError::BelowRetention { floor: watermark })
        );
        // The merged record passes audits like any other.
        assert!(d.scrub().clean());
        assert!(d.segments()[0].merged);
    }

    #[test]
    fn merges_compound_instead_of_stacking() {
        let cfg = config();
        let mut d = LogicalDisk::new(cfg);
        for l in workload::skewed(cfg.blocks, 600, 5) {
            d.write(l);
        }
        d.merge_below_watermark(200);
        let after_first = d.segments().len();
        d.merge_below_watermark(400);
        // The first merged segment was itself folded into the second.
        assert_eq!(d.segments().iter().filter(|s| s.merged).count(), 1);
        assert!(d.segments().len() < after_first);
        assert_eq!(d.retention_floor(), 400);
    }

    #[test]
    fn rebuild_map_works_over_merged_history() {
        let cfg = config();
        let stream: Vec<u64> = workload::skewed(cfg.blocks, 320, 9).collect();
        let mut oracle = LogicalDisk::new(cfg);
        let mut victim = LogicalDisk::new(cfg);
        for &l in &stream {
            oracle.write(l);
            victim.write(l);
        }
        victim.merge_below_watermark(160);
        victim.crash();
        victim.rebuild_map();
        for b in 0..cfg.blocks as u64 {
            assert_eq!(victim.read(b), oracle.read(b), "block {b}");
        }
    }

    #[test]
    fn replayer_is_idempotent_over_prefixes() {
        let cfg = config();
        let mut d = LogicalDisk::new(cfg);
        for l in workload::skewed(cfg.blocks, 160, 3) {
            d.write(l);
        }
        let segs = d.segments();
        let mut once = Replayer::new(cfg.blocks);
        for s in segs {
            once.apply_segment(s);
        }
        // Replay a prefix twice, then the remainder: identical result.
        let mut twice = Replayer::new(cfg.blocks);
        for s in &segs[..10] {
            twice.apply_segment(s);
        }
        for s in segs {
            twice.apply_segment(s);
        }
        assert_eq!(once.map(), twice.map());
        assert_eq!(once.advanced(), twice.advanced());
    }

    #[test]
    fn replayer_ignores_out_of_range_entries() {
        let mut r = Replayer::new(4);
        assert!(!r.apply(&MapEntry {
            lsn: 0,
            logical: 99,
            physical: 0
        }));
        assert_eq!(r.advanced(), 0);
    }

    #[test]
    fn retained_bytes_track_entries_and_summaries() {
        let mut d = LogicalDisk::new(config());
        for l in 0..16u64 {
            d.write(l);
        }
        assert_eq!(d.retained_entries(), 16);
        assert_eq!(d.retained_bytes(), 16 * 24 + 2 * 40);
    }
}
