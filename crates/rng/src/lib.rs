//! A dependency-free deterministic random number generator.
//!
//! The reproduction must build with **no network and no crates.io
//! cache**, so it cannot depend on the `rand` crate. This crate provides
//! the small slice of `rand`'s API the workspace actually uses —
//! `SmallRng::seed_from_u64`, `gen_range`, `gen_bool`, and slice
//! shuffling — over a xoshiro256++ core seeded by SplitMix64 (the
//! reference initialization from Blackman & Vigna). Determinism in the
//! seed is part of the contract: workloads such as
//! `logdisk::workload::skewed` must replay identically across runs so
//! that run artifacts from different PRs are comparable.
//!
//! The trait names (`Rng`, `SeedableRng`, `SliceRandom`) deliberately
//! mirror `rand` so call sites read identically; this is a vendoring
//! shim, not a new design.

pub mod rngs {
    //! Mirror of `rand::rngs` naming.
    pub use crate::SmallRng;
}

pub mod seq {
    //! Mirror of `rand::seq` naming.
    pub use crate::SliceRandom;
}

/// A small, fast, deterministic RNG (xoshiro256++).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SmallRng {
    /// Seeds the generator from a single `u64` via SplitMix64, as
    /// `rand::SeedableRng::seed_from_u64` does.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // xoshiro must not start in the all-zero state; SplitMix64 of
        // any seed cannot produce four zeros, but keep the guard anyway.
        if s == [0; 4] {
            return SmallRng { s: [1, 2, 3, 4] };
        }
        SmallRng { s }
    }

    /// The next 64 random bits (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0
            .wrapping_add(s3)
            .rotate_left(23)
            .wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }

    /// A uniform `f64` in `[0, 1)` using the top 53 bits.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `u64` below `bound` (Lemire-style rejection to avoid
    /// modulo bias).
    #[inline]
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        loop {
            let x = self.next_u64();
            let hi = ((x as u128 * bound as u128) >> 64) as u64;
            let lo = x.wrapping_mul(bound);
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return hi;
            }
        }
    }
}

/// The slice of `rand::Rng` the workspace uses.
pub trait Rng {
    /// A uniform value in `range` (half-open).
    fn gen_range<T: RangeSample>(&mut self, range: std::ops::Range<T>) -> T;
    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
    /// A uniform `f64` in `[0, 1)`.
    fn gen(&mut self) -> f64;
}

impl Rng for SmallRng {
    #[inline]
    fn gen_range<T: RangeSample>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    #[inline]
    fn gen(&mut self) -> f64 {
        self.gen_f64()
    }
}

/// Mirror of `rand::SeedableRng` for call-site compatibility.
pub trait SeedableRng: Sized {
    /// Seeds from a single `u64`.
    fn from_seed_u64(seed: u64) -> Self;
}

impl SeedableRng for SmallRng {
    fn from_seed_u64(seed: u64) -> Self {
        SmallRng::seed_from_u64(seed)
    }
}

/// Types `gen_range` can produce.
pub trait RangeSample: Copy {
    /// A uniform sample in `[lo, hi)`.
    fn sample(rng: &mut SmallRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            #[inline]
            fn sample(rng: &mut SmallRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range");
                lo + rng.bounded_u64((hi - lo) as u64) as $t
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            #[inline]
            fn sample(rng: &mut SmallRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + rng.bounded_u64(span) as i128) as $t
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

/// Mirror of `rand::seq::SliceRandom` for the one method used.
pub trait SliceRandom {
    /// Item type.
    type Item;
    /// Fisher–Yates shuffle.
    fn shuffle(&mut self, rng: &mut SmallRng);
    /// A uniformly random element, `None` when empty.
    fn choose<'a>(&'a self, rng: &mut SmallRng) -> Option<&'a Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle(&mut self, rng: &mut SmallRng) {
        for i in (1..self.len()).rev() {
            let j = rng.bounded_u64((i + 1) as u64) as usize;
            self.swap(i, j);
        }
    }

    fn choose<'a>(&'a self, rng: &mut SmallRng) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.bounded_u64(self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(43);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_stays_in_range_for_all_widths() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: usize = r.gen_range(3..17);
            assert!((3..17).contains(&u));
            let i: i64 = r.gen_range(-5..5);
            assert!((-5..5).contains(&i));
            let w: u64 = r.gen_range(0..1);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn gen_range_covers_the_whole_range() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn uniformity_is_rough_but_unmistakable() {
        let mut r = SmallRng::seed_from_u64(5);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.gen_range(0..100u32) < 80).count();
        let frac = hits as f64 / n as f64;
        assert!((0.79..0.81).contains(&frac), "{frac}");
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(11);
        let mean: f64 = (0..10_000).map(|_| r.gen_f64()).sum::<f64>() / 10_000.0;
        assert!((0.48..0.52).contains(&mean), "{mean}");
    }

    #[test]
    fn shuffle_permutes_without_loss() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "overwhelmingly unlikely");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_returns_none_only_when_empty() {
        let mut r = SmallRng::seed_from_u64(9);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        assert!([1, 2, 3].choose(&mut r).is_some());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(13);
        let hits = (0..50_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 50_000.0;
        assert!((0.23..0.27).contains(&frac), "{frac}");
    }
}
