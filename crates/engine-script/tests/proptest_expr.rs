//! Property tests for the Tickle `expr` evaluator, driven by a seeded
//! RNG (no network deps).

use engine_script::expr;
use graft_rng::{Rng, SmallRng};

/// Integer literals round-trip through formatting and parsing.
#[test]
fn parse_int_round_trips() {
    let mut rng = SmallRng::seed_from_u64(0xE1);
    let mut cases: Vec<i64> = (0..200).map(|_| rng.next_u64() as i64).collect();
    // i64::MIN is excluded: the evaluator parses a literal and then
    // negates, so the one value with no positive counterpart is a
    // documented limitation of Tickle's `expr` (as of the seed).
    cases.extend([0, 1, -1, i64::MIN + 1, i64::MAX]);
    for v in cases {
        assert_eq!(expr::parse_int(&v.to_string()).unwrap(), v);
    }
}

/// Binary arithmetic over rendered literals matches Rust's wrapping
/// semantics.
#[test]
fn arithmetic_matches_rust() {
    let mut rng = SmallRng::seed_from_u64(0xA7);
    for _case in 0..100 {
        let a = rng.next_u64() as u32 as i32 as i64;
        let b = rng.next_u64() as u32 as i32 as i64;
        let cases: Vec<(String, i64)> = vec![
            (format!("({a}) + ({b})"), a.wrapping_add(b)),
            (format!("({a}) - ({b})"), a.wrapping_sub(b)),
            (format!("({a}) * ({b})"), a.wrapping_mul(b)),
            (format!("({a}) & ({b})"), a & b),
            (format!("({a}) | ({b})"), a | b),
            (format!("({a}) ^ ({b})"), a ^ b),
            (format!("({a}) < ({b})"), (a < b) as i64),
            (format!("({a}) >= ({b})"), (a >= b) as i64),
        ];
        for (text, want) in cases {
            assert_eq!(expr::eval(&text).unwrap(), want, "{}", text);
        }
    }
}

/// The evaluator never panics on arbitrary input — it either produces a
/// value or a clean error.
#[test]
fn eval_never_panics() {
    const ALPHABET: &[u8] = b" 0123456789abcdefghijklmnopqrstuvwxyz+*/%()<>&|^!~=-";
    let mut rng = SmallRng::seed_from_u64(0x5EED);
    for _case in 0..500 {
        let len = rng.gen_range(0usize..40);
        let s: String = (0..len)
            .map(|_| ALPHABET[rng.gen_range(0usize..ALPHABET.len())] as char)
            .collect();
        let _ = expr::eval(&s);
    }
}
