//! Property tests for the Tickle `expr` evaluator.

use engine_script::expr;
use proptest::prelude::*;

proptest! {
    /// Integer literals round-trip through formatting and parsing.
    #[test]
    fn parse_int_round_trips(v in any::<i64>()) {
        prop_assert_eq!(expr::parse_int(&v.to_string()).unwrap(), v);
    }

    /// Binary arithmetic over rendered literals matches Rust's wrapping
    /// semantics.
    #[test]
    fn arithmetic_matches_rust(a in any::<i32>(), b in any::<i32>()) {
        let (a, b) = (a as i64, b as i64);
        let cases: Vec<(String, i64)> = vec![
            (format!("({a}) + ({b})"), a.wrapping_add(b)),
            (format!("({a}) - ({b})"), a.wrapping_sub(b)),
            (format!("({a}) * ({b})"), a.wrapping_mul(b)),
            (format!("({a}) & ({b})"), a & b),
            (format!("({a}) | ({b})"), a | b),
            (format!("({a}) ^ ({b})"), a ^ b),
            (format!("({a}) < ({b})"), (a < b) as i64),
            (format!("({a}) >= ({b})"), (a >= b) as i64),
        ];
        for (text, want) in cases {
            prop_assert_eq!(expr::eval(&text).unwrap(), want, "{}", text);
        }
    }

    /// The evaluator never panics on arbitrary input — it either
    /// produces a value or a clean error.
    #[test]
    fn eval_never_panics(s in "[ 0-9a-z+*/%()<>&|^!~=-]{0,40}") {
        let _ = expr::eval(&s);
    }
}
