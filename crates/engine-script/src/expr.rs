//! The `expr` arithmetic evaluator.
//!
//! Operands and results are strings until the moment of use, exactly as
//! in Tcl 7.x: every evaluation re-tokenizes the expression text and
//! re-parses numbers out of strings.

/// Evaluates an expression string (after variable substitution) to an
/// integer.
pub fn eval(text: &str) -> Result<i64, String> {
    let mut p = Parser {
        src: text.as_bytes(),
        pos: 0,
    };
    let v = p.or_expr()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(format!(
            "trailing characters in expression at offset {}: `{text}`",
            p.pos
        ));
    }
    Ok(v)
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.src.get(self.pos), Some(c) if c.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(tok.as_bytes()) {
            // Avoid matching `<` as the prefix of `<<` or `<=`.
            let next = self.src.get(self.pos + tok.len());
            let ambiguous = matches!(
                (tok, next),
                ("<", Some(b'<' | b'=')) | (">", Some(b'>' | b'=')) |
                ("&", Some(b'&')) | ("|", Some(b'|')) | ("=", Some(b'=')) |
                ("!", Some(b'='))
            );
            if !ambiguous {
                self.pos += tok.len();
                return true;
            }
        }
        false
    }

    fn or_expr(&mut self) -> Result<i64, String> {
        let mut v = self.and_expr()?;
        while self.eat("||") {
            let r = self.and_expr()?;
            v = ((v != 0) || (r != 0)) as i64;
        }
        Ok(v)
    }

    fn and_expr(&mut self) -> Result<i64, String> {
        let mut v = self.bitor()?;
        while self.eat("&&") {
            let r = self.bitor()?;
            v = ((v != 0) && (r != 0)) as i64;
        }
        Ok(v)
    }

    fn bitor(&mut self) -> Result<i64, String> {
        let mut v = self.bitxor()?;
        while self.eat("|") {
            v |= self.bitxor()?;
        }
        Ok(v)
    }

    fn bitxor(&mut self) -> Result<i64, String> {
        let mut v = self.bitand()?;
        while self.eat("^") {
            v ^= self.bitand()?;
        }
        Ok(v)
    }

    fn bitand(&mut self) -> Result<i64, String> {
        let mut v = self.equality()?;
        while self.eat("&") {
            v &= self.equality()?;
        }
        Ok(v)
    }

    fn equality(&mut self) -> Result<i64, String> {
        let mut v = self.relational()?;
        loop {
            if self.eat("==") {
                let r = self.relational()?;
                v = (v == r) as i64;
            } else if self.eat("!=") {
                let r = self.relational()?;
                v = (v != r) as i64;
            } else {
                return Ok(v);
            }
        }
    }

    fn relational(&mut self) -> Result<i64, String> {
        let mut v = self.shift()?;
        loop {
            if self.eat("<=") {
                let r = self.shift()?;
                v = (v <= r) as i64;
            } else if self.eat(">=") {
                let r = self.shift()?;
                v = (v >= r) as i64;
            } else if self.eat("<") {
                let r = self.shift()?;
                v = (v < r) as i64;
            } else if self.eat(">") {
                let r = self.shift()?;
                v = (v > r) as i64;
            } else {
                return Ok(v);
            }
        }
    }

    fn shift(&mut self) -> Result<i64, String> {
        let mut v = self.additive()?;
        loop {
            if self.eat("<<") {
                let r = self.additive()?;
                v = v.wrapping_shl(r as u32 & 63);
            } else if self.eat(">>") {
                let r = self.additive()?;
                v = ((v as u64) >> (r as u32 & 63)) as i64;
            } else {
                return Ok(v);
            }
        }
    }

    fn additive(&mut self) -> Result<i64, String> {
        let mut v = self.multiplicative()?;
        loop {
            if self.eat("+") {
                v = v.wrapping_add(self.multiplicative()?);
            } else if self.eat("-") {
                v = v.wrapping_sub(self.multiplicative()?);
            } else {
                return Ok(v);
            }
        }
    }

    fn multiplicative(&mut self) -> Result<i64, String> {
        let mut v = self.unary()?;
        loop {
            if self.eat("*") {
                v = v.wrapping_mul(self.unary()?);
            } else if self.eat("/") {
                let r = self.unary()?;
                if r == 0 {
                    return Err("division by zero".into());
                }
                v = v.wrapping_div(r);
            } else if self.eat("%") {
                let r = self.unary()?;
                if r == 0 {
                    return Err("division by zero".into());
                }
                v = v.wrapping_rem(r);
            } else {
                return Ok(v);
            }
        }
    }

    fn unary(&mut self) -> Result<i64, String> {
        self.skip_ws();
        if self.eat("-") {
            return Ok(self.unary()?.wrapping_neg());
        }
        if self.eat("!") {
            return Ok((self.unary()? == 0) as i64);
        }
        if self.eat("~") {
            return Ok(!self.unary()?);
        }
        if self.eat("+") {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<i64, String> {
        self.skip_ws();
        if self.eat("(") {
            let v = self.or_expr()?;
            self.skip_ws();
            if !self.eat(")") {
                return Err("expected `)`".into());
            }
            return Ok(v);
        }
        let start = self.pos;
        let hex = self.src[self.pos..].starts_with(b"0x") || self.src[self.pos..].starts_with(b"0X");
        if hex {
            self.pos += 2;
        }
        while matches!(self.src.get(self.pos), Some(c) if c.is_ascii_hexdigit()) {
            if !hex && !self.src[self.pos].is_ascii_digit() {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start || (hex && self.pos == start + 2) {
            return Err(format!(
                "expected a number at offset {start} in expression"
            ));
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ASCII digits");
        parse_int(text)
    }
}

/// Parses a Tickle integer string (decimal or hex, optional sign).
pub fn parse_int(text: &str) -> Result<i64, String> {
    let t = text.trim();
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let value = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).map(|v| v as i64)
    } else {
        t.parse::<i64>()
    }
    .map_err(|_| format!("expected integer but got `{text}`"))?;
    Ok(if neg { value.wrapping_neg() } else { value })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_matches_c() {
        assert_eq!(eval("1 + 2 * 3").unwrap(), 7);
        assert_eq!(eval("(1 + 2) * 3").unwrap(), 9);
        assert_eq!(eval("10 - 4 - 3").unwrap(), 3);
        assert_eq!(eval("1 << 4 | 1").unwrap(), 17);
        assert_eq!(eval("7 & 3 == 3").unwrap(), 1 & 7); // == binds tighter than &
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(eval("3 < 4 && 4 <= 4").unwrap(), 1);
        assert_eq!(eval("3 > 4 || 0").unwrap(), 0);
        assert_eq!(eval("!0 + !5").unwrap(), 1);
        assert_eq!(eval("1 != 2").unwrap(), 1);
    }

    #[test]
    fn hex_and_masking() {
        assert_eq!(eval("0xFF & 0x0F").unwrap(), 0x0F);
        assert_eq!(eval("(0xFFFFFFFF + 1) & 0xFFFFFFFF").unwrap(), 0);
        assert_eq!(eval("~0").unwrap(), -1);
    }

    #[test]
    fn shifts_are_logical_right() {
        assert_eq!(eval("-1 >> 60").unwrap(), 15);
        assert_eq!(eval("1 << 3").unwrap(), 8);
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert!(eval("1 / 0").is_err());
        assert!(eval("1 % 0").is_err());
    }

    #[test]
    fn junk_is_rejected() {
        assert!(eval("1 +").is_err());
        assert!(eval("abc").is_err());
        assert!(eval("1 2").is_err());
        assert!(eval("(1").is_err());
    }

    #[test]
    fn parse_int_handles_signs_and_hex() {
        assert_eq!(parse_int(" -12 ").unwrap(), -12);
        assert_eq!(parse_int("0x10").unwrap(), 16);
        assert_eq!(parse_int("-0x10").unwrap(), -16);
        assert!(parse_int("ten").is_err());
    }
}
