//! **Tickle** — the source-interpreted script engine (the paper's Tcl).
//!
//! Tickle is a faithful small Tcl 7.x: scripts are strings, commands are
//! split and substituted at every evaluation, every value is a string,
//! and arithmetic re-parses its operands from text each time. The paper
//! includes Tcl because source-interpreted scripting languages had been
//! proposed as kernel-extension vehicles (mChoices, §2); its four-orders-
//! of-magnitude slowdown against compiled code (§5.4, §5.5) is the
//! headline negative result, and this engine reproduces the mechanism
//! that causes it.
//!
//! A graft is a script that defines one `proc` per entry point at load
//! time. Kernel data arrives through the same shared regions as every
//! other technology, accessed with the `rload`/`rstore` commands.

pub mod expr;
pub mod interp;
pub mod words;

use graft_api::{
    EntryId, ExtensionEngine, GraftError, RegionId, RegionSpec, RegionStore, Technology,
};

use interp::{Flow, Frame, Interp};

/// A graft loaded under the script (Tcl-analogue) technology.
pub struct ScriptEngine {
    interp: Interp,
    fuel_limit: Option<u64>,
    last_fuel_used: u64,
}

impl ScriptEngine {
    /// Loads a Tickle graft: runs the top-level script once, which
    /// defines its `proc`s and initializes its global variables.
    pub fn load(source: &str, regions: &[RegionSpec]) -> Result<Self, GraftError> {
        let store = RegionStore::new(regions)?;
        let mut interp = Interp::new(store);
        let mut top = Frame::global();
        interp.eval_script(source, &mut top, 0)?;
        Ok(ScriptEngine {
            interp,
            fuel_limit: None,
            last_fuel_used: 0,
        })
    }

    /// Evaluates an arbitrary script against the engine state (useful
    /// for exploration and tests; the kernel uses [`invoke`]).
    ///
    /// [`invoke`]: ExtensionEngine::invoke
    pub fn eval(&mut self, script: &str) -> Result<String, GraftError> {
        let mut top = Frame::global();
        match self.interp.eval_script(script, &mut top, 0)? {
            Flow::Normal(v) | Flow::Return(v) => Ok(v),
            _ => Err(GraftError::Trap(graft_api::Trap::TypeError(
                "control flow escaped top level".into(),
            ))),
        }
    }
}

impl ExtensionEngine for ScriptEngine {
    fn technology(&self) -> Technology {
        Technology::Script
    }

    fn bind_entry(&mut self, entry: &str) -> Result<EntryId, GraftError> {
        match self.interp.procs.slot(entry) {
            Some(slot) => Ok(EntryId(slot as u32)),
            None => Err(graft_api::engine::no_such_entry(entry)),
        }
    }

    fn bind_region(&self, name: &str) -> Result<RegionId, GraftError> {
        self.interp.regions.id(name)
    }

    fn invoke_id(&mut self, entry: EntryId, args: &[i64]) -> Result<i64, GraftError> {
        let fuel = self.fuel_limit.unwrap_or(u64::MAX);
        self.interp.fuel = fuel;
        // The i64 → string argument marshal is the technology itself:
        // Tcl's calling convention *is* strings. The engine boundary no
        // longer looks the proc up by name, but what happens inside is
        // direct source interpretation, unchanged.
        let argv: Vec<String> = args.iter().map(|a| a.to_string()).collect();
        let result = self.interp.call_proc_slot(entry.index(), &argv, 0);
        self.last_fuel_used = fuel - self.interp.fuel;
        match result? {
            Flow::Normal(v) | Flow::Return(v) => {
                if v.is_empty() {
                    Ok(0)
                } else {
                    expr::parse_int(&v).map_err(|e| {
                        let name = self.interp.procs.name_of(entry.index());
                        GraftError::Trap(graft_api::Trap::TypeError(format!(
                            "entry `{name}` returned non-integer: {e}"
                        )))
                    })
                }
            }
            _ => Ok(0),
        }
    }

    fn invoke_id_traced(
        &mut self,
        entry: EntryId,
        args: &[i64],
        trace: graft_telemetry::TraceId,
    ) -> Result<i64, GraftError> {
        // Hosts route through this seam only in recording mode, so the
        // extra clock read never taxes the untraced fast path.
        let _ = trace;
        let started = std::time::Instant::now();
        let out = self.invoke_id(entry, args);
        graft_telemetry::histogram!("script.invoke_ns").record_duration(started.elapsed());
        out
    }

    fn load_region_id(
        &mut self,
        id: RegionId,
        offset: usize,
        data: &[i64],
    ) -> Result<(), GraftError> {
        self.interp.regions.load_id(id, offset, data)
    }

    fn read_region_id(&self, id: RegionId, index: usize) -> Result<i64, GraftError> {
        self.interp.regions.read_id(id, index)
    }

    fn write_region_id(
        &mut self,
        id: RegionId,
        index: usize,
        value: i64,
    ) -> Result<(), GraftError> {
        self.interp.regions.write_id(id, index, value)
    }

    fn read_region_slice_id(
        &self,
        id: RegionId,
        offset: usize,
        out: &mut [i64],
    ) -> Result<(), GraftError> {
        self.interp.regions.read_slice_id(id, offset, out)
    }

    fn region_len(&self, id: RegionId) -> Result<usize, GraftError> {
        self.interp.regions.len_id(id)
    }

    fn set_fuel(&mut self, fuel: Option<u64>) {
        self.fuel_limit = fuel;
    }

    fn fuel_used(&self) -> Option<u64> {
        self.fuel_limit.map(|_| self.last_fuel_used)
    }

    fn fork_for_shard(&self, _shard: usize) -> Result<Box<dyn ExtensionEngine>, GraftError> {
        // The interpreter is a deep value: proc table, globals, and
        // regions all clone, which both replays the top-level `proc`
        // definitions (slot-stable, so parent-issued `EntryId`s remain
        // valid in the replica) and snapshots install-time state.
        Ok(Box::new(ScriptEngine {
            interp: self.interp.clone(),
            fuel_limit: None,
            last_fuel_used: 0,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_api::Trap;

    fn engine(src: &str, regions: &[RegionSpec]) -> ScriptEngine {
        ScriptEngine::load(src, regions).unwrap()
    }

    #[test]
    fn invoke_calls_a_proc_with_integer_args() {
        let src = "proc add {a b} { return [expr $a + $b] }";
        let mut e = engine(src, &[]);
        assert_eq!(e.invoke("add", &[40, 2]).unwrap(), 42);
    }

    #[test]
    fn regions_are_shared_with_the_kernel() {
        let src = r#"
proc sum {n} {
    set s 0
    for {set i 0} {$i < $n} {incr i} {
        set s [expr $s + [rload buf $i]]
    }
    return $s
}
"#;
        let mut e = engine(src, &[RegionSpec::data("buf", 8)]);
        e.load_region("buf", 0, &[10, 20, 30]).unwrap();
        assert_eq!(e.invoke("sum", &[3]).unwrap(), 60);
    }

    #[test]
    fn entry_arity_is_checked() {
        let src = "proc f {a} { return $a }";
        let mut e = engine(src, &[]);
        assert!(matches!(
            e.invoke("f", &[1, 2]),
            Err(GraftError::BadArity { .. })
        ));
    }

    #[test]
    fn missing_entry_is_a_trap() {
        let mut e = engine("proc f {} { return 0 }", &[]);
        let err = e.invoke("g", &[]).unwrap_err();
        assert!(matches!(err.as_trap(), Some(Trap::NoSuchFunction(_))));
    }

    #[test]
    fn fuel_meters_commands() {
        let src = "proc spin {} { while {1} { } }";
        let mut e = engine(src, &[]);
        e.set_fuel(Some(200));
        let err = e.invoke("spin", &[]).unwrap_err();
        assert_eq!(err.as_trap(), Some(&Trap::FuelExhausted));
        assert_eq!(e.fuel_used(), Some(200));
    }

    #[test]
    fn load_time_global_state_is_visible_to_procs() {
        let src = r#"
set scale 3
proc mul {x} { global scale; return [expr $x * $scale] }
"#;
        let mut e = engine(src, &[]);
        assert_eq!(e.invoke("mul", &[7]).unwrap(), 21);
    }

    #[test]
    fn non_integer_return_is_a_type_error() {
        let src = "proc f {} { return banana }";
        let mut e = engine(src, &[]);
        let err = e.invoke("f", &[]).unwrap_err();
        assert!(matches!(err.as_trap(), Some(Trap::TypeError(_))));
    }

    #[test]
    fn void_return_maps_to_zero() {
        let src = "proc f {} { set x 1; return }";
        let mut e = engine(src, &[]);
        assert_eq!(e.invoke("f", &[]).unwrap(), 0);
    }

    #[test]
    fn bind_then_invoke_matches_string_invoke() {
        let src = "proc add {a b} { return [expr $a + $b] }";
        let mut e = engine(src, &[RegionSpec::data("buf", 4)]);
        let id = e.bind_entry("add").unwrap();
        assert_eq!(e.bind_entry("add").unwrap(), id);
        assert_eq!(e.invoke_id(id, &[40, 2]).unwrap(), 42);
        assert_eq!(e.invoke("add", &[40, 2]).unwrap(), 42);
        assert!(e.bind_entry("missing").is_err());

        let buf = e.bind_region("buf").unwrap();
        e.load_region_id(buf, 0, &[3, 4]).unwrap();
        assert_eq!(e.read_region_id(buf, 1).unwrap(), 4);
        assert!(e.bind_region("nope").is_err());
    }

    #[test]
    fn stale_handles_trap_deterministically() {
        let mut e = engine("proc f {} { return 0 }", &[RegionSpec::data("buf", 2)]);
        let err = e.invoke_id(graft_api::EntryId(12), &[]).unwrap_err();
        assert!(matches!(
            err.as_trap(),
            Some(Trap::BadHandle { kind: "entry", id: 12 })
        ));
        let err = e.read_region_id(graft_api::RegionId(8), 0).unwrap_err();
        assert!(matches!(
            err.as_trap(),
            Some(Trap::BadHandle { kind: "region", id: 8 })
        ));
    }

    #[test]
    fn bound_slot_survives_proc_redefinition() {
        // Tcl semantics: `proc` redefinition replaces the body but a
        // pre-bound handle keeps working and sees the new definition.
        let src = "proc f {} { return 1 }";
        let mut e = engine(src, &[]);
        let id = e.bind_entry("f").unwrap();
        assert_eq!(e.invoke_id(id, &[]).unwrap(), 1);
        e.eval("proc f {} { return 2 }").unwrap();
        assert_eq!(e.bind_entry("f").unwrap(), id, "slot is stable");
        assert_eq!(e.invoke_id(id, &[]).unwrap(), 2);
    }

    #[test]
    fn agrees_with_compiled_engine_on_a_shared_algorithm() {
        // Sum of squares mod 2^32, written in both Grail and Tickle.
        let tickle = r#"
proc sumsq {n} {
    set s 0
    for {set i 1} {$i <= $n} {incr i} {
        set s [expr ($s + $i * $i) & 0xFFFFFFFF]
    }
    return $s
}
"#;
        let grail = r#"
fn sumsq(n: int) -> int {
    let s = 0;
    let i = 1;
    while i <= n {
        s = (s + i * i) & 0xFFFFFFFF;
        i = i + 1;
    }
    return s;
}
"#;
        let mut script = engine(tickle, &[]);
        let mut native =
            engine_native::load_grail(grail, &[], engine_native::SafetyMode::Unchecked).unwrap();
        assert_eq!(
            script.invoke("sumsq", &[100]).unwrap(),
            native.invoke("sumsq", &[100]).unwrap()
        );
    }
}
