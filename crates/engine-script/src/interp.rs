//! The Tickle interpreter core.
//!
//! Everything is a string: variables, arguments, results. A loop body is
//! re-split into commands and re-substituted on every iteration; every
//! arithmetic operand is re-parsed from its string form at use. This is
//! not an inefficiency to fix — it is the direct-source-interpretation
//! technology (awk/sh/Tcl) whose cost the paper measures four orders of
//! magnitude above compiled code.

use std::collections::{HashMap, HashSet};

use graft_api::{GraftError, RegionId, RegionStore, Trap};

use crate::expr;
use crate::words::{split_commands, split_words, Word};

/// Maximum proc-call depth.
pub const MAX_DEPTH: usize = 64;

/// A user-defined procedure.
#[derive(Debug, Clone)]
pub struct ProcDef {
    /// Parameter names.
    pub params: Vec<String>,
    /// Unparsed body text (re-parsed on every call).
    pub body: String,
}

/// Defined procedures, stored in stable slots.
///
/// `proc` redefinition overwrites a slot in place, so a slot bound at
/// load time ([`crate::ScriptEngine`]'s `bind_entry`) stays valid for
/// the life of the interpreter and always dispatches to the *latest*
/// definition — the Tcl semantics.
#[derive(Debug, Clone, Default)]
pub struct ProcTable {
    names: Vec<String>,
    defs: Vec<ProcDef>,
    by_name: HashMap<String, usize>,
}

impl ProcTable {
    /// The slot of a defined proc, if any.
    pub fn slot(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// The definition in `slot`, if the slot exists.
    pub fn get_slot(&self, slot: usize) -> Option<&ProcDef> {
        self.defs.get(slot)
    }

    /// The name that owns `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` was not issued by this table.
    pub fn name_of(&self, slot: usize) -> &str {
        &self.names[slot]
    }

    /// Defines (or redefines, keeping the slot) a proc.
    pub fn define(&mut self, name: &str, def: ProcDef) {
        match self.by_name.get(name) {
            Some(&slot) => self.defs[slot] = def,
            None => {
                let slot = self.defs.len();
                self.names.push(name.to_string());
                self.defs.push(def);
                self.by_name.insert(name.to_string(), slot);
            }
        }
    }
}

/// Control flow out of a command or script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Flow {
    /// Normal completion with a result string.
    Normal(String),
    /// `return` was invoked.
    Return(String),
    /// `break` was invoked.
    Break,
    /// `continue` was invoked.
    Continue,
}

/// One variable scope.
#[derive(Debug, Default)]
pub struct Frame {
    vars: HashMap<String, String>,
    linked: HashSet<String>,
    /// The top-level frame reads and writes globals directly.
    is_global: bool,
}

impl Frame {
    /// The top-level scope.
    pub fn global() -> Self {
        Frame {
            is_global: true,
            ..Frame::default()
        }
    }
}

/// The interpreter state owned by the script engine.
#[derive(Debug, Clone)]
pub struct Interp {
    /// Defined procedures (slot-stable; see [`ProcTable`]).
    pub procs: ProcTable,
    /// Global variables.
    pub globals: HashMap<String, String>,
    /// Kernel-shared regions.
    pub regions: RegionStore,
    /// Remaining execution budget (commands).
    pub fuel: u64,
}

fn script_err(msg: impl Into<String>) -> GraftError {
    GraftError::Trap(Trap::TypeError(msg.into()))
}

impl Interp {
    /// Creates an interpreter over the given regions.
    pub fn new(regions: RegionStore) -> Self {
        Interp {
            procs: ProcTable::default(),
            globals: HashMap::new(),
            regions,
            fuel: u64::MAX,
        }
    }

    /// Evaluates a script: splits into commands (every time) and runs
    /// them until a non-normal flow escapes.
    pub fn eval_script(&mut self, script: &str, frame: &mut Frame, depth: usize) -> Result<Flow, GraftError> {
        let mut result = String::new();
        for command in split_commands(script).map_err(script_err)? {
            match self.eval_command(&command, frame, depth)? {
                Flow::Normal(v) => result = v,
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal(result))
    }

    /// Burns one unit of execution budget (one command or loop-condition
    /// evaluation).
    fn burn(&mut self) -> Result<(), GraftError> {
        self.fuel = self.fuel.wrapping_sub(1);
        if self.fuel == 0 {
            Err(Trap::FuelExhausted.into())
        } else {
            Ok(())
        }
    }

    /// Evaluates one command.
    pub fn eval_command(
        &mut self,
        command: &str,
        frame: &mut Frame,
        depth: usize,
    ) -> Result<Flow, GraftError> {
        self.burn()?;
        let raw_words = split_words(command).map_err(script_err)?;
        if raw_words.is_empty() {
            return Ok(Flow::Normal(String::new()));
        }
        // Expand substitutions word by word; braced words stay literal.
        let mut words: Vec<String> = Vec::with_capacity(raw_words.len());
        for w in &raw_words {
            match w {
                Word::Literal(s) => words.push(s.clone()),
                Word::Subst(s) => words.push(self.substitute(s, frame, depth)?),
            }
        }
        let name = words[0].as_str();
        let args = &words[1..];
        match name {
            "set" => self.cmd_set(args, frame),
            "expr" => {
                let joined = args.join(" ");
                let substituted = self.substitute(&joined, frame, depth)?;
                let v = expr::eval(&substituted).map_err(|e| self.expr_trap(e))?;
                Ok(Flow::Normal(v.to_string()))
            }
            "if" => self.cmd_if(args, frame, depth),
            "while" => self.cmd_while(args, frame, depth),
            "for" => self.cmd_for(args, frame, depth),
            "incr" => self.cmd_incr(args, frame),
            "proc" => self.cmd_proc(args),
            "return" => Ok(Flow::Return(args.first().cloned().unwrap_or_default())),
            "break" => Ok(Flow::Break),
            "continue" => Ok(Flow::Continue),
            "global" => {
                for a in args {
                    frame.linked.insert(a.clone());
                }
                Ok(Flow::Normal(String::new()))
            }
            "rload" => {
                let (region, idx) = self.region_arg2(args)?;
                let v = self.region_read(region, idx)?;
                Ok(Flow::Normal(v.to_string()))
            }
            "rstore" => {
                if args.len() != 3 {
                    return Err(script_err("usage: rstore region index value"));
                }
                let (region, idx) = self.region_arg2(&args[..2])?;
                let value = expr::parse_int(&args[2]).map_err(script_err)?;
                self.region_write(region, idx, value)?;
                Ok(Flow::Normal(String::new()))
            }
            "abort" => {
                let code = args
                    .first()
                    .map(|a| expr::parse_int(a))
                    .transpose()
                    .map_err(script_err)?
                    .unwrap_or(0);
                Err(Trap::Abort(code).into())
            }
            "list" => Ok(Flow::Normal(make_list(args))),
            "llength" => {
                let [l] = args else {
                    return Err(script_err("usage: llength list"));
                };
                Ok(Flow::Normal(split_list(l)?.len().to_string()))
            }
            "lindex" => {
                let [l, i] = args else {
                    return Err(script_err("usage: lindex list index"));
                };
                let items = split_list(l)?;
                let i = expr::parse_int(i).map_err(script_err)?;
                let item = usize::try_from(i)
                    .ok()
                    .and_then(|i| items.get(i))
                    .cloned()
                    .unwrap_or_default();
                Ok(Flow::Normal(item))
            }
            "lappend" => {
                let [name, rest @ ..] = args else {
                    return Err(script_err("usage: lappend name value..."));
                };
                let mut items = match self.read_var(name, frame) {
                    Some(current) => split_list(&current)?,
                    None => Vec::new(),
                };
                items.extend(rest.iter().cloned());
                let value = make_list(&items);
                self.write_var(name, value.clone(), frame);
                Ok(Flow::Normal(value))
            }
            "foreach" => self.cmd_foreach(args, frame, depth),
            _ => self.call_proc(name, args, depth),
        }
    }

    /// `foreach var list body` — one iteration per list element.
    fn cmd_foreach(
        &mut self,
        args: &[String],
        frame: &mut Frame,
        depth: usize,
    ) -> Result<Flow, GraftError> {
        let [var, list, body] = args else {
            return Err(script_err("usage: foreach var list body"));
        };
        for item in split_list(list)? {
            self.burn()?;
            self.write_var(var, item, frame);
            match self.eval_script(body, frame, depth)? {
                Flow::Normal(_) | Flow::Continue => {}
                Flow::Break => break,
                ret @ Flow::Return(_) => return Ok(ret),
            }
        }
        Ok(Flow::Normal(String::new()))
    }

    fn expr_trap(&self, msg: String) -> GraftError {
        if msg.contains("division by zero") {
            Trap::DivByZero.into()
        } else {
            script_err(msg)
        }
    }

    fn cmd_set(&mut self, args: &[String], frame: &mut Frame) -> Result<Flow, GraftError> {
        match args {
            [name] => {
                let v = self
                    .read_var(name, frame)
                    .ok_or_else(|| script_err(format!("no such variable `{name}`")))?;
                Ok(Flow::Normal(v))
            }
            [name, value] => {
                self.write_var(name, value.clone(), frame);
                Ok(Flow::Normal(value.clone()))
            }
            _ => Err(script_err("usage: set name ?value?")),
        }
    }

    fn cmd_if(
        &mut self,
        args: &[String],
        frame: &mut Frame,
        depth: usize,
    ) -> Result<Flow, GraftError> {
        let mut at = 0usize;
        loop {
            if at >= args.len() {
                return Err(script_err("malformed `if`"));
            }
            let cond = &args[at];
            let body = args
                .get(at + 1)
                .ok_or_else(|| script_err("`if` missing body"))?;
            let substituted = self.substitute(cond, frame, depth)?;
            let truthy = expr::eval(&substituted).map_err(|e| self.expr_trap(e))? != 0;
            if truthy {
                return self.eval_script(body, frame, depth);
            }
            match args.get(at + 2).map(String::as_str) {
                None => return Ok(Flow::Normal(String::new())),
                Some("elseif") => at += 3,
                Some("else") => {
                    let body = args
                        .get(at + 3)
                        .ok_or_else(|| script_err("`else` missing body"))?;
                    return self.eval_script(body, frame, depth);
                }
                Some(other) => {
                    return Err(script_err(format!(
                        "expected `elseif` or `else`, got `{other}`"
                    )))
                }
            }
        }
    }

    fn cmd_while(
        &mut self,
        args: &[String],
        frame: &mut Frame,
        depth: usize,
    ) -> Result<Flow, GraftError> {
        let [cond, body] = args else {
            return Err(script_err("usage: while cond body"));
        };
        loop {
            self.burn()?;
            let substituted = self.substitute(cond, frame, depth)?;
            if expr::eval(&substituted).map_err(|e| self.expr_trap(e))? == 0 {
                return Ok(Flow::Normal(String::new()));
            }
            match self.eval_script(body, frame, depth)? {
                Flow::Normal(_) | Flow::Continue => {}
                Flow::Break => return Ok(Flow::Normal(String::new())),
                ret @ Flow::Return(_) => return Ok(ret),
            }
        }
    }

    fn cmd_for(
        &mut self,
        args: &[String],
        frame: &mut Frame,
        depth: usize,
    ) -> Result<Flow, GraftError> {
        let [init, cond, step, body] = args else {
            return Err(script_err("usage: for init cond step body"));
        };
        self.eval_script(init, frame, depth)?;
        loop {
            self.burn()?;
            let substituted = self.substitute(cond, frame, depth)?;
            if expr::eval(&substituted).map_err(|e| self.expr_trap(e))? == 0 {
                return Ok(Flow::Normal(String::new()));
            }
            match self.eval_script(body, frame, depth)? {
                Flow::Normal(_) | Flow::Continue => {}
                Flow::Break => return Ok(Flow::Normal(String::new())),
                ret @ Flow::Return(_) => return Ok(ret),
            }
            self.eval_script(step, frame, depth)?;
        }
    }

    fn cmd_incr(&mut self, args: &[String], frame: &mut Frame) -> Result<Flow, GraftError> {
        let (name, by) = match args {
            [name] => (name, 1),
            [name, amount] => (name, expr::parse_int(amount).map_err(script_err)?),
            _ => return Err(script_err("usage: incr name ?amount?")),
        };
        let current = self
            .read_var(name, frame)
            .ok_or_else(|| script_err(format!("no such variable `{name}`")))?;
        let v = expr::parse_int(&current)
            .map_err(script_err)?
            .wrapping_add(by);
        self.write_var(name, v.to_string(), frame);
        Ok(Flow::Normal(v.to_string()))
    }

    fn cmd_proc(&mut self, args: &[String]) -> Result<Flow, GraftError> {
        let [name, params, body] = args else {
            return Err(script_err("usage: proc name params body"));
        };
        let params: Vec<String> = split_words(params)
            .map_err(script_err)?
            .into_iter()
            .map(|w| w.text().to_string())
            .collect();
        self.procs.define(
            name,
            ProcDef {
                params,
                body: body.clone(),
            },
        );
        Ok(Flow::Normal(String::new()))
    }

    /// Invokes a user-defined procedure with already-expanded arguments.
    pub fn call_proc(
        &mut self,
        name: &str,
        args: &[String],
        depth: usize,
    ) -> Result<Flow, GraftError> {
        let Some(slot) = self.procs.slot(name) else {
            return Err(Trap::NoSuchFunction(name.to_string()).into());
        };
        self.call_proc_slot(slot, args, depth)
    }

    /// Invokes the procedure in a pre-bound slot — the engine-boundary
    /// fast path: no name lookup, deterministic trap on a stale slot.
    pub fn call_proc_slot(
        &mut self,
        slot: usize,
        args: &[String],
        depth: usize,
    ) -> Result<Flow, GraftError> {
        if depth >= MAX_DEPTH {
            return Err(Trap::StackOverflow.into());
        }
        let Some(def) = self.procs.get_slot(slot) else {
            return Err(GraftError::bad_handle("entry", slot as u32));
        };
        if def.params.len() != args.len() {
            return Err(GraftError::BadArity {
                entry: self.procs.name_of(slot).to_string(),
                expected: def.params.len(),
                got: args.len(),
            });
        }
        let def = def.clone();
        let mut frame = Frame::default();
        for (p, a) in def.params.iter().zip(args) {
            frame.vars.insert(p.clone(), a.clone());
        }
        match self.eval_script(&def.body, &mut frame, depth + 1)? {
            Flow::Return(v) | Flow::Normal(v) => Ok(Flow::Normal(v)),
            Flow::Break | Flow::Continue => {
                Err(script_err("`break`/`continue` escaped a procedure"))
            }
        }
    }

    fn read_var(&self, name: &str, frame: &Frame) -> Option<String> {
        if frame.is_global || frame.linked.contains(split_array_base(name)) {
            self.globals.get(name).cloned()
        } else {
            frame.vars.get(name).cloned()
        }
    }

    fn write_var(&mut self, name: &str, value: String, frame: &mut Frame) {
        if frame.is_global || frame.linked.contains(split_array_base(name)) {
            self.globals.insert(name.to_string(), value);
        } else {
            frame.vars.insert(name.to_string(), value);
        }
    }

    /// Performs `$name`, `$name(index)`, and `[command]` substitution.
    pub fn substitute(
        &mut self,
        text: &str,
        frame: &mut Frame,
        depth: usize,
    ) -> Result<String, GraftError> {
        let mut out = String::with_capacity(text.len());
        let bytes = text.as_bytes();
        let mut i = 0usize;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' if i + 1 < bytes.len() => {
                    out.push(match bytes[i + 1] {
                        b'n' => '\n',
                        b't' => '\t',
                        other => other as char,
                    });
                    i += 2;
                }
                b'$' => {
                    let start = i + 1;
                    let mut end = start;
                    while end < bytes.len()
                        && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_')
                    {
                        end += 1;
                    }
                    if end == start {
                        out.push('$');
                        i += 1;
                        continue;
                    }
                    let mut name = text[start..end].to_string();
                    i = end;
                    // Array element: $name(indextext) with nested substitution.
                    if bytes.get(i) == Some(&b'(') {
                        let mut d = 1usize;
                        let mut j = i + 1;
                        while j < bytes.len() && d > 0 {
                            match bytes[j] {
                                b'(' => d += 1,
                                b')' => d -= 1,
                                _ => {}
                            }
                            j += 1;
                        }
                        if d != 0 {
                            return Err(script_err("unbalanced `(` in variable reference"));
                        }
                        let index_text = &text[i + 1..j - 1];
                        let index = self.substitute(index_text, frame, depth)?;
                        name = format!("{name}({index})");
                        i = j;
                    }
                    let v = self
                        .read_var(&name, frame)
                        .ok_or_else(|| script_err(format!("no such variable `{name}`")))?;
                    out.push_str(&v);
                }
                b'[' => {
                    let mut d = 1usize;
                    let mut j = i + 1;
                    while j < bytes.len() && d > 0 {
                        match bytes[j] {
                            b'[' => d += 1,
                            b']' => d -= 1,
                            _ => {}
                        }
                        j += 1;
                    }
                    if d != 0 {
                        return Err(script_err("unbalanced `[` in substitution"));
                    }
                    let inner = &text[i + 1..j - 1];
                    match self.eval_script(inner, frame, depth)? {
                        Flow::Normal(v) => out.push_str(&v),
                        _ => return Err(script_err("control flow escaped `[...]`")),
                    }
                    i = j;
                }
                c => {
                    out.push(c as char);
                    i += 1;
                }
            }
        }
        Ok(out)
    }

    fn region_arg2(&mut self, args: &[String]) -> Result<(RegionId, i64), GraftError> {
        if args.len() < 2 {
            return Err(script_err("usage: rload region index"));
        }
        let region = self.regions.id(&args[0])?;
        let idx = expr::parse_int(&args[1]).map_err(script_err)?;
        Ok((region, idx))
    }

    fn region_read(&self, id: RegionId, idx: i64) -> Result<i64, GraftError> {
        let region = self.regions.region(id);
        let spec = region.spec();
        if spec.linked && idx == 0 {
            return Err(Trap::NilDeref {
                region: spec.name.clone(),
            }
            .into());
        }
        let words = region.words();
        if (idx as u64) >= words.len() as u64 {
            return Err(Trap::OutOfBounds {
                region: spec.name.clone(),
                index: idx,
                len: words.len(),
            }
            .into());
        }
        Ok(words[idx as usize])
    }

    fn region_write(&mut self, id: RegionId, idx: i64, value: i64) -> Result<(), GraftError> {
        let region = self.regions.region_mut(id);
        let (linked, name, len, writable) = {
            let spec = region.spec();
            (spec.linked, spec.name.clone(), region.len(), spec.writable)
        };
        if !writable {
            return Err(Trap::SfiViolation(format!("region `{name}` is read-only")).into());
        }
        if linked && idx == 0 {
            return Err(Trap::NilDeref { region: name }.into());
        }
        if (idx as u64) >= len as u64 {
            return Err(Trap::OutOfBounds {
                region: name,
                index: idx,
                len,
            }
            .into());
        }
        region.words_mut()[idx as usize] = value;
        Ok(())
    }
}

/// Renders items as a Tcl list: space-joined, brace-quoting any item
/// containing whitespace or braces.
fn make_list(items: &[String]) -> String {
    let quoted: Vec<String> = items
        .iter()
        .map(|i| {
            if i.is_empty() || i.chars().any(|c| c.is_whitespace() || c == '{' || c == '}') {
                format!("{{{i}}}")
            } else {
                i.clone()
            }
        })
        .collect();
    quoted.join(" ")
}

/// Splits a Tcl list into its elements (the word splitter, without
/// substitution — a list is just a string, as in Tcl).
fn split_list(list: &str) -> Result<Vec<String>, GraftError> {
    Ok(crate::words::split_words(list)
        .map_err(script_err)?
        .into_iter()
        .map(|w| w.text().to_string())
        .collect())
}

/// Strips an array index from a variable name for `global` link lookup
/// (`map(3)` links through `map`).
fn split_array_base(name: &str) -> &str {
    match name.find('(') {
        Some(i) => &name[..i],
        None => name,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_api::RegionSpec;

    fn interp() -> Interp {
        let regions = RegionStore::new(&[
            RegionSpec::data("buf", 8),
            RegionSpec::linked("queue", 8),
        ])
        .unwrap();
        Interp::new(regions)
    }

    fn eval(i: &mut Interp, script: &str) -> String {
        let mut frame = Frame::global();
        match i.eval_script(script, &mut frame, 0).unwrap() {
            Flow::Normal(v) | Flow::Return(v) => v,
            other => panic!("unexpected flow {other:?}"),
        }
    }

    #[test]
    fn set_and_substitute() {
        let mut i = interp();
        assert_eq!(eval(&mut i, "set a 5\nset b $a\nexpr $a + $b"), "10");
    }

    #[test]
    fn array_variables() {
        let mut i = interp();
        let out = eval(&mut i, "set i 3\nset map($i) 99\nexpr $map(3) + 1");
        assert_eq!(out, "100");
    }

    #[test]
    fn while_loop_reparses_body() {
        let mut i = interp();
        let out = eval(
            &mut i,
            "set s 0\nset i 0\nwhile {$i < 5} { set s [expr $s + $i]; incr i }\nset s",
        );
        assert_eq!(out, "10");
    }

    #[test]
    fn for_loop_and_break_continue() {
        let mut i = interp();
        let out = eval(
            &mut i,
            r#"
set s 0
for {set i 0} {$i < 10} {incr i} {
    if {$i == 3} { continue }
    if {$i == 6} { break }
    set s [expr $s + $i]
}
set s
"#,
        );
        assert_eq!(out, "12"); // 0+1+2+4+5
    }

    #[test]
    fn if_elseif_else_chain() {
        let mut i = interp();
        let s = "proc judge {x} { if {$x > 0} { return pos } elseif {$x < 0} { return neg } else { return zero } }";
        eval(&mut i, s);
        assert_eq!(eval(&mut i, "judge 5"), "pos");
        assert_eq!(eval(&mut i, "judge -5"), "neg");
        assert_eq!(eval(&mut i, "judge 0"), "zero");
    }

    #[test]
    fn procs_have_local_scope_unless_global() {
        let mut i = interp();
        eval(&mut i, "set g 100\nproc bump {} { global g; set g [expr $g + 1]; return $g }\nproc shadow {} { set g 5; return $g }");
        assert_eq!(eval(&mut i, "bump"), "101");
        assert_eq!(eval(&mut i, "shadow"), "5");
        assert_eq!(eval(&mut i, "set g"), "101");
    }

    #[test]
    fn bracket_substitution_runs_commands() {
        let mut i = interp();
        eval(&mut i, "proc double {x} { return [expr $x * 2] }");
        assert_eq!(eval(&mut i, "expr [double 21] + 0"), "42");
    }

    #[test]
    fn region_commands_check_bounds_and_nil() {
        let mut i = interp();
        eval(&mut i, "rstore buf 3 77");
        assert_eq!(eval(&mut i, "rload buf 3"), "77");
        let mut frame = Frame::global();
        let err = i
            .eval_script("rload buf 99", &mut frame, 0)
            .unwrap_err();
        assert!(matches!(err.as_trap(), Some(Trap::OutOfBounds { .. })));
        let err = i.eval_script("rload queue 0", &mut frame, 0).unwrap_err();
        assert!(matches!(err.as_trap(), Some(Trap::NilDeref { .. })));
    }

    #[test]
    fn unknown_variable_and_command_error() {
        let mut i = interp();
        let mut frame = Frame::global();
        assert!(i.eval_script("expr $nope", &mut frame, 0).is_err());
        let err = i.eval_script("warp 9", &mut frame, 0).unwrap_err();
        assert!(matches!(err.as_trap(), Some(Trap::NoSuchFunction(_))));
    }

    #[test]
    fn runaway_recursion_overflows() {
        let mut i = interp();
        eval(&mut i, "proc loop {} { return [loop] }");
        let mut frame = Frame::global();
        let err = i.eval_script("loop", &mut frame, 0).unwrap_err();
        assert_eq!(err.as_trap(), Some(&Trap::StackOverflow));
    }

    #[test]
    fn fuel_exhaustion_preempts() {
        let mut i = interp();
        i.fuel = 500;
        let mut frame = Frame::global();
        let err = i
            .eval_script("set i 0\nwhile {1} { incr i }", &mut frame, 0)
            .unwrap_err();
        assert_eq!(err.as_trap(), Some(&Trap::FuelExhausted));
    }

    #[test]
    fn escaped_dollar_is_literal() {
        let mut i = interp();
        assert_eq!(eval(&mut i, r"set a \$x"), "$x");
    }

    #[test]
    fn list_commands_build_and_index() {
        let mut i = interp();
        assert_eq!(eval(&mut i, "set l [list a b {c d}]"), "a b {c d}");
        assert_eq!(eval(&mut i, "llength $l"), "3");
        assert_eq!(eval(&mut i, "lindex $l 2"), "c d");
        assert_eq!(eval(&mut i, "lindex $l 9"), "");
    }

    #[test]
    fn lappend_grows_a_variable() {
        let mut i = interp();
        eval(&mut i, "lappend acc 1\nlappend acc 2 3");
        assert_eq!(eval(&mut i, "set acc"), "1 2 3");
        assert_eq!(eval(&mut i, "llength $acc"), "3");
    }

    #[test]
    fn foreach_iterates_with_break_and_continue() {
        let mut i = interp();
        let out = eval(
            &mut i,
            r#"
set s 0
foreach x {1 2 3 4 5 6} {
    if {$x == 3} { continue }
    if {$x == 5} { break }
    set s [expr $s + $x]
}
set s
"#,
        );
        assert_eq!(out, "7"); // 1 + 2 + 4
    }

    #[test]
    fn foreach_burns_fuel() {
        let mut i = interp();
        i.fuel = 50;
        let mut frame = Frame::global();
        let big: String = (0..100).map(|n| format!("{n} ")).collect();
        let err = i
            .eval_script(&format!("foreach x {{{big}}} {{ }}"), &mut frame, 0)
            .unwrap_err();
        assert_eq!(err.as_trap(), Some(&Trap::FuelExhausted));
    }
}
