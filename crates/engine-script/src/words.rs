//! Command splitting and word parsing for Tickle.
//!
//! Like Tcl 7.x, a script is *text*: it is split into commands at
//! newlines and semicolons, each command is split into words, and each
//! word may be brace-quoted (`{...}`, no substitution), double-quoted
//! (`"..."`, substitution), or bare (substitution). This splitting
//! happens on **every evaluation** — loop bodies are re-parsed on every
//! iteration — which is the fundamental cost of the source-interpreted
//! technology the paper measures.

/// A word together with its quoting kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Word {
    /// Bare or double-quoted: substitution applies.
    Subst(String),
    /// Brace-quoted: taken literally.
    Literal(String),
}

impl Word {
    /// The raw text of the word.
    pub fn text(&self) -> &str {
        match self {
            Word::Subst(s) | Word::Literal(s) => s,
        }
    }
}

/// Splits a script into commands, respecting brace/bracket/quote nesting
/// and skipping `#` comment lines and blank commands.
pub fn split_commands(script: &str) -> Result<Vec<String>, String> {
    let mut commands = Vec::new();
    let mut current = String::new();
    let mut depth_brace = 0usize;
    let mut depth_bracket = 0usize;
    let mut in_quote = false;
    let mut chars = script.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\\' => {
                current.push(c);
                if let Some(next) = chars.next() {
                    current.push(next);
                }
            }
            '{' if !in_quote => {
                depth_brace += 1;
                current.push(c);
            }
            '}' if !in_quote => {
                depth_brace = depth_brace
                    .checked_sub(1)
                    .ok_or_else(|| "unbalanced `}`".to_string())?;
                current.push(c);
            }
            '[' if !in_quote && depth_brace == 0 => {
                depth_bracket += 1;
                current.push(c);
            }
            ']' if !in_quote && depth_brace == 0 => {
                depth_bracket = depth_bracket.saturating_sub(1);
                current.push(c);
            }
            '"' if depth_brace == 0 => {
                in_quote = !in_quote;
                current.push(c);
            }
            '\n' | ';' if depth_brace == 0 && depth_bracket == 0 && !in_quote => {
                push_command(&mut commands, &mut current);
            }
            _ => current.push(c),
        }
    }
    if depth_brace > 0 {
        return Err("unbalanced `{`".into());
    }
    if in_quote {
        return Err("unterminated `\"`".into());
    }
    push_command(&mut commands, &mut current);
    Ok(commands)
}

fn push_command(commands: &mut Vec<String>, current: &mut String) {
    let trimmed = current.trim();
    if !trimmed.is_empty() && !trimmed.starts_with('#') {
        commands.push(trimmed.to_string());
    }
    current.clear();
}

/// Splits one command into words.
pub fn split_words(command: &str) -> Result<Vec<Word>, String> {
    let mut words = Vec::new();
    let mut chars = command.chars().peekable();
    loop {
        // Skip inter-word whitespace.
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        let Some(&c) = chars.peek() else { break };
        if c == '{' {
            chars.next();
            let mut depth = 1usize;
            let mut text = String::new();
            for c in chars.by_ref() {
                match c {
                    '{' => {
                        depth += 1;
                        text.push(c);
                    }
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                        text.push(c);
                    }
                    _ => text.push(c),
                }
            }
            if depth != 0 {
                return Err("unterminated brace in word".into());
            }
            words.push(Word::Literal(text));
        } else if c == '"' {
            chars.next();
            let mut text = String::new();
            let mut closed = false;
            while let Some(c) = chars.next() {
                match c {
                    '"' => {
                        closed = true;
                        break;
                    }
                    '\\' => {
                        // Keep the escape pair; backslash substitution
                        // happens in the substitution pass, as in Tcl.
                        text.push(c);
                        if let Some(n) = chars.next() {
                            text.push(n);
                        }
                    }
                    _ => text.push(c),
                }
            }
            if !closed {
                return Err("unterminated quote in word".into());
            }
            words.push(Word::Subst(text));
        } else {
            let mut text = String::new();
            let mut bracket = 0usize;
            while let Some(&c) = chars.peek() {
                if c.is_whitespace() && bracket == 0 {
                    break;
                }
                chars.next();
                match c {
                    '[' => {
                        bracket += 1;
                        text.push(c);
                    }
                    ']' => {
                        bracket = bracket.saturating_sub(1);
                        text.push(c);
                    }
                    '\\' => {
                        text.push(c);
                        if let Some(n) = chars.next() {
                            text.push(n);
                        }
                    }
                    _ => text.push(c),
                }
            }
            words.push(Word::Subst(text));
        }
    }
    Ok(words)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_newlines_and_semicolons() {
        let cmds = split_commands("set a 1; set b 2\nset c 3").unwrap();
        assert_eq!(cmds, vec!["set a 1", "set b 2", "set c 3"]);
    }

    #[test]
    fn braces_protect_separators() {
        let cmds = split_commands("while {$i < 3} {\n incr i; set x 1\n}").unwrap();
        assert_eq!(cmds.len(), 1);
    }

    #[test]
    fn comments_and_blanks_are_dropped() {
        let cmds = split_commands("# header\n\nset a 1\n   \n# tail").unwrap();
        assert_eq!(cmds, vec!["set a 1"]);
    }

    #[test]
    fn words_carry_quoting_kind() {
        let words = split_words(r#"set msg {hello world} "a b" bare"#).unwrap();
        assert_eq!(
            words,
            vec![
                Word::Subst("set".into()),
                Word::Subst("msg".into()),
                Word::Literal("hello world".into()),
                Word::Subst("a b".into()),
                Word::Subst("bare".into()),
            ]
        );
    }

    #[test]
    fn nested_braces_stay_intact() {
        let words = split_words("if {$x} { set y {a {b} c} }").unwrap();
        assert_eq!(words[2].text(), " set y {a {b} c} ");
    }

    #[test]
    fn bracket_words_hold_together() {
        let words = split_words("set a [expr 1 + 2]").unwrap();
        assert_eq!(words[2].text(), "[expr 1 + 2]");
    }

    #[test]
    fn unbalanced_input_is_an_error() {
        assert!(split_commands("set a {oops").is_err());
        assert!(split_words(r#"set a "oops"#).is_err());
        assert!(split_commands("}").is_err());
    }
}
