//! A minimal, dependency-free JSON value, serializer, and parser.
//!
//! The run artifact (`--json`) must be readable by standard tooling and
//! by `graftstat`, but the build must not depend on crates.io (`serde`
//! is unavailable offline), so this module hand-rolls the subset of
//! JSON the artifact needs: objects, arrays, strings, bools, null, and
//! IEEE doubles (with integers emitted losslessly when they fit).
//!
//! Always available regardless of the `telemetry` feature — artifacts
//! are still written when instrumentation is compiled out; their
//! `metrics` section is simply empty.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Objects use [`BTreeMap`] so serialization is
/// deterministic (key-sorted) — artifact diffs must be stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; integers round-trip exactly up to 2⁵³.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key-sorted).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Obj(BTreeMap::new())
    }

    /// Inserts into an object; panics on non-objects (builder misuse is
    /// a programming error, not a data error).
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        match self {
            Json::Obj(map) => {
                map.insert(key.to_string(), value.into());
            }
            _ => panic!("Json::set on non-object"),
        }
        self
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Member lookup through a dotted path: `get_path("host.os")`.
    pub fn get_path(&self, path: &str) -> Option<&Json> {
        path.split('.').try_fold(self, |node, key| node.get(key))
    }

    /// The numeric value, if a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value truncated to u64, if a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string value, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool value, if a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Compact serialization.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization (2-space indent) — what `--json` writes.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..(w * depth) {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the conventional encoding.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(n as f64)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

/// A parse failure, with byte offset for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        at: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.at,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.at += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.at..self.at + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.at += 4;
                            // Surrogate pairs are not produced by our
                            // serializer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.at - 1;
                    let mut end = self.at;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.at = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let mut doc = Json::object();
        doc.set("name", "table2")
            .set("runs", 5u64)
            .set("ratio", 1.75)
            .set("live", false)
            .set("tags", vec![Json::from("a"), Json::from("b")]);
        let mut inner = Json::object();
        inner.set("mean_ns", 123.5);
        doc.set("sample", inner);

        for text in [doc.to_string_compact(), doc.to_string_pretty()] {
            let back = parse(&text).unwrap();
            assert_eq!(back, doc, "{text}");
        }
    }

    #[test]
    fn serialization_is_deterministic_and_key_sorted() {
        let mut a = Json::object();
        a.set("zeta", 1u64).set("alpha", 2u64);
        assert_eq!(a.to_string_compact(), r#"{"alpha":2,"zeta":1}"#);
    }

    #[test]
    fn integers_are_emitted_without_decimal_point() {
        assert_eq!(Json::from(1_000_000u64).to_string_compact(), "1000000");
        assert_eq!(Json::from(-3i64).to_string_compact(), "-3");
        assert_eq!(Json::from(0.5).to_string_compact(), "0.5");
    }

    #[test]
    fn nan_and_infinity_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let tricky = "line\nquote\"backslash\\tab\tunicode µs €";
        let text = Json::from(tricky).to_string_compact();
        assert_eq!(parse(&text).unwrap().as_str().unwrap(), tricky);
    }

    #[test]
    fn parser_rejects_garbage_with_offsets() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "truthy", "1 2"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        let err = parse("[1, @]").unwrap_err();
        assert!(err.offset >= 4, "{err}");
    }

    #[test]
    fn get_path_walks_objects() {
        let doc = parse(r#"{"host":{"os":"linux","cores":8}}"#).unwrap();
        assert_eq!(doc.get_path("host.os").unwrap().as_str(), Some("linux"));
        assert_eq!(doc.get_path("host.cores").unwrap().as_u64(), Some(8));
        assert!(doc.get_path("host.missing").is_none());
    }

    #[test]
    fn parses_scientific_notation_and_negatives() {
        assert_eq!(parse("-2.5e3").unwrap().as_f64(), Some(-2500.0));
        assert_eq!(parse("1e-3").unwrap().as_f64(), Some(0.001));
    }
}
