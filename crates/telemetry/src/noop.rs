//! The no-op implementation, compiled when the `telemetry` feature is
//! off. Every type is a ZST and every method an empty `#[inline]` body,
//! so the optimizer erases instrumentation entirely — the acceptance
//! criterion's "no observer effect" configuration.

use crate::MetricsSnapshot;

/// No-op: recording cannot be enabled without the `telemetry` feature.
pub fn set_enabled(_on: bool) {}

/// Always `false` without the `telemetry` feature.
#[inline(always)]
pub fn enabled() -> bool {
    false
}

/// No-op: tracing cannot be armed without the `telemetry` feature.
pub fn set_tracing(_on: bool) {}

/// Always `false` without the `telemetry` feature — every trace-record
/// arm in the hosts compiles to dead code the optimizer erases.
#[inline(always)]
pub fn tracing() -> bool {
    false
}

/// Always `false` without the `telemetry` feature.
#[inline(always)]
pub fn tracing_configured() -> bool {
    false
}

/// Always 0 without the `telemetry` feature.
#[inline(always)]
pub fn since_epoch_ns(_at: std::time::Instant) -> u64 {
    0
}

/// Always 0 without the `telemetry` feature.
#[inline(always)]
pub fn now_ns() -> u64 {
    0
}

/// No-op flight recorder: records nothing, retains nothing.
#[derive(Debug, Default)]
pub struct TraceBuffer;

impl TraceBuffer {
    /// No-op.
    pub fn new(_capacity: usize) -> Self {
        TraceBuffer
    }

    /// No-op.
    #[inline(always)]
    pub fn record(&mut self, _event: crate::TraceEvent) {}

    /// Always empty.
    pub fn events(&self) -> Vec<crate::TraceEvent> {
        Vec::new()
    }

    /// Always empty.
    pub fn tail(&self, _n: usize) -> Vec<crate::TraceEvent> {
        Vec::new()
    }

    /// Always 0.
    pub fn len(&self) -> usize {
        0
    }

    /// Always `true`.
    pub fn is_empty(&self) -> bool {
        true
    }

    /// Always 0.
    pub fn dropped(&self) -> u64 {
        0
    }

    /// No-op.
    pub fn flush(&mut self) {}
}

/// No-op counter.
pub struct Counter;

impl Counter {
    /// No-op.
    #[inline(always)]
    pub fn add(&self, _n: u64) {}

    /// No-op.
    #[inline(always)]
    pub fn incr(&self) {}

    /// Always 0.
    #[inline(always)]
    pub fn value(&self) -> u64 {
        0
    }
}

/// No-op histogram.
pub struct Histogram;

impl Histogram {
    /// No-op.
    #[inline(always)]
    pub fn record(&self, _value: u64) {}

    /// No-op.
    #[inline(always)]
    pub fn record_duration(&self, _d: std::time::Duration) {}

    /// No-op.
    #[inline(always)]
    pub fn record_n(&self, _value: u64, _n: u64) {}
}

/// No-op counter cell.
pub struct LazyCounter;

impl LazyCounter {
    /// No-op.
    pub const fn new(_name: &'static str) -> Self {
        LazyCounter
    }

    /// The shared no-op counter.
    #[inline(always)]
    pub fn get(&self) -> &'static Counter {
        &Counter
    }
}

/// No-op histogram cell.
pub struct LazyHistogram;

impl LazyHistogram {
    /// No-op.
    pub const fn new(_name: &'static str) -> Self {
        LazyHistogram
    }

    /// The shared no-op histogram.
    #[inline(always)]
    pub fn get(&self) -> &'static Histogram {
        &Histogram
    }
}

/// No-op span guard.
pub struct SpanGuard;

impl SpanGuard {
    /// No-op.
    #[inline(always)]
    pub fn enter(_name: &'static str, _hist: &'static Histogram) -> Self {
        SpanGuard
    }
}

/// No-op counter macro.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __GRAFT_COUNTER: $crate::LazyCounter = $crate::LazyCounter::new($name);
        __GRAFT_COUNTER.get()
    }};
}

/// No-op histogram macro.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __GRAFT_HISTOGRAM: $crate::LazyHistogram = $crate::LazyHistogram::new($name);
        __GRAFT_HISTOGRAM.get()
    }};
}

/// No-op span macro.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name, $crate::histogram!(concat!("span.", $name)))
    };
}

/// Always the empty snapshot without the `telemetry` feature.
pub fn snapshot() -> MetricsSnapshot {
    MetricsSnapshot::default()
}
