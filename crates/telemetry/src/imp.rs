//! The real implementation, compiled only with the `telemetry` feature.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::{HistogramSnapshot, MetricsSnapshot, SpanEvent};

/// Shards per counter. Eight 64-byte lines absorb contention from the
/// upcall server thread without bloating the (few dozen) counters.
const SHARDS: usize = 8;

/// Capacity of the span event ring.
const RING_CAPACITY: usize = 1024;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns recording on or off at runtime (`--no-telemetry`). Counters
/// keep their accumulated values; they simply stop moving.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether recording is currently enabled.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A 64-byte-aligned atomic so neighbouring shards never share a line.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

impl PaddedU64 {
    const fn new() -> Self {
        PaddedU64(AtomicU64::new(0))
    }
}

/// A sharded, monotonically increasing counter.
pub struct Counter {
    name: &'static str,
    shards: [PaddedU64; SHARDS],
}

thread_local! {
    static SHARD_HINT: std::cell::Cell<usize> =
        const { std::cell::Cell::new(usize::MAX) };
}

fn shard_index() -> usize {
    SHARD_HINT.with(|hint| {
        let cached = hint.get();
        if cached != usize::MAX {
            return cached;
        }
        // Derive a stable per-thread shard from this thread's TLS slot
        // address — different threads get different TLS blocks.
        let idx = (hint as *const _ as usize >> 6) % SHARDS;
        hint.set(idx);
        idx
    })
}

impl Counter {
    const fn new(name: &'static str) -> Self {
        Counter {
            name,
            shards: [
                PaddedU64::new(),
                PaddedU64::new(),
                PaddedU64::new(),
                PaddedU64::new(),
                PaddedU64::new(),
                PaddedU64::new(),
                PaddedU64::new(),
                PaddedU64::new(),
            ],
        }
    }

    /// Metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n`. One relaxed fetch-add on this thread's shard; a no-op
    /// when recording is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !enabled() || n == 0 {
            return;
        }
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total across shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// Number of log₂ buckets: covers 1 ns .. 2⁶³ ns.
pub const HIST_BUCKETS: usize = 64;

/// A log₂-bucketed histogram (values in nanoseconds by convention).
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Histogram {
    const fn new(name: &'static str) -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [ZERO; HIST_BUCKETS],
        }
    }

    /// Metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one value. Three relaxed atomics; no-op when disabled.
    #[inline]
    pub fn record(&self, value: u64) {
        if !enabled() {
            return;
        }
        let bucket = 63 - (value | 1).leading_zeros() as usize;
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] as nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records `n` occurrences of `value` with three relaxed atomics
    /// regardless of `n` — for hosts that accumulate per-value counts
    /// locally and flush once at teardown.
    #[inline]
    pub fn record_n(&self, value: u64, n: u64) {
        if !enabled() || n == 0 {
            return;
        }
        let bucket = 63 - (value | 1).leading_zeros() as usize;
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(value.saturating_mul(n), Ordering::Relaxed);
        self.buckets[bucket].fetch_add(n, Ordering::Relaxed);
    }

    /// Freezes this histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i as u32, n))
            })
            .collect();
        HistogramSnapshot {
            name: self.name.to_string(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

struct Registry {
    counters: Mutex<Vec<&'static Counter>>,
    histograms: Mutex<Vec<&'static Histogram>>,
    ring: Mutex<SpanRing>,
    epoch: Instant,
}

struct SpanRing {
    events: Vec<SpanEvent>,
    next: usize,
    wrapped: bool,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(Vec::new()),
        histograms: Mutex::new(Vec::new()),
        ring: Mutex::new(SpanRing {
            events: Vec::with_capacity(RING_CAPACITY),
            next: 0,
            wrapped: false,
        }),
        epoch: Instant::now(),
    })
}

/// Lazily-registered counter cell; use via [`counter!`].
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<&'static Counter>,
}

impl LazyCounter {
    /// Creates an unregistered cell (registration happens on first use).
    pub const fn new(name: &'static str) -> Self {
        LazyCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The underlying counter, registering it on first access.
    #[inline]
    pub fn get(&self) -> &'static Counter {
        self.cell.get_or_init(|| {
            let c: &'static Counter = Box::leak(Box::new(Counter::new(self.name)));
            registry().counters.lock().unwrap().push(c);
            c
        })
    }
}

/// Lazily-registered histogram cell; use via [`histogram!`].
pub struct LazyHistogram {
    name: &'static str,
    cell: OnceLock<&'static Histogram>,
}

impl LazyHistogram {
    /// Creates an unregistered cell (registration happens on first use).
    pub const fn new(name: &'static str) -> Self {
        LazyHistogram {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The underlying histogram, registering it on first access.
    #[inline]
    pub fn get(&self) -> &'static Histogram {
        self.cell.get_or_init(|| {
            let h: &'static Histogram = Box::leak(Box::new(Histogram::new(self.name)));
            registry().histograms.lock().unwrap().push(h);
            h
        })
    }
}

/// A static sharded counter, registered on first use:
/// `counter!("vm.dispatch").add(n)`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __GRAFT_COUNTER: $crate::LazyCounter = $crate::LazyCounter::new($name);
        __GRAFT_COUNTER.get()
    }};
}

/// A static log₂ histogram, registered on first use:
/// `histogram!("upcall.wait_ns").record(ns)`.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __GRAFT_HISTOGRAM: $crate::LazyHistogram = $crate::LazyHistogram::new($name);
        __GRAFT_HISTOGRAM.get()
    }};
}

/// An RAII span: `let _g = span!("evict");` times the enclosing scope
/// into histogram `span.<name>` and the bounded event ring.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name, $crate::histogram!(concat!("span.", $name)))
    };
}

/// Live RAII guard produced by [`span!`].
pub struct SpanGuard {
    name: &'static str,
    hist: &'static Histogram,
    start: Option<Instant>,
}

impl SpanGuard {
    /// Begins a span (records nothing if telemetry is off right now).
    #[inline]
    pub fn enter(name: &'static str, hist: &'static Histogram) -> Self {
        SpanGuard {
            name,
            hist,
            start: enabled().then(Instant::now),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let duration = start.elapsed();
        self.hist.record_duration(duration);
        let reg = registry();
        let start_ns = start
            .saturating_duration_since(reg.epoch)
            .as_nanos()
            .min(u64::MAX as u128) as u64;
        let event = SpanEvent {
            name: self.name,
            start_ns,
            duration_ns: duration.as_nanos().min(u64::MAX as u128) as u64,
        };
        let mut ring = reg.ring.lock().unwrap();
        if ring.events.len() < RING_CAPACITY {
            ring.events.push(event);
        } else {
            let at = ring.next;
            ring.events[at] = event;
            ring.wrapped = true;
        }
        ring.next = (ring.next + 1) % RING_CAPACITY;
    }
}

/// Freezes every registered metric into a [`MetricsSnapshot`].
///
/// The `counter!`/`histogram!` macros register one cell *per call
/// site*, so the same logical metric recorded from several places
/// appears several times in the registry; the snapshot merges entries
/// that share a name.
pub fn snapshot() -> MetricsSnapshot {
    use std::collections::BTreeMap;
    let reg = registry();
    let mut by_name: BTreeMap<String, u64> = BTreeMap::new();
    for c in reg.counters.lock().unwrap().iter() {
        *by_name.entry(c.name.to_string()).or_insert(0) += c.value();
    }
    let counters: Vec<(String, u64)> = by_name.into_iter().collect();
    let mut hist_by_name: BTreeMap<String, HistogramSnapshot> = BTreeMap::new();
    for h in reg.histograms.lock().unwrap().iter() {
        let snap = h.snapshot();
        match hist_by_name.entry(snap.name.clone()) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(snap);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let merged = e.get_mut();
                merged.count += snap.count;
                merged.sum += snap.sum;
                let mut buckets: BTreeMap<u32, u64> =
                    merged.buckets.iter().copied().collect();
                for (b, n) in snap.buckets {
                    *buckets.entry(b).or_insert(0) += n;
                }
                merged.buckets = buckets.into_iter().collect();
            }
        }
    }
    let histograms: Vec<HistogramSnapshot> = hist_by_name.into_values().collect();
    let ring = reg.ring.lock().unwrap();
    let spans = if ring.wrapped {
        let mut v = Vec::with_capacity(ring.events.len());
        v.extend_from_slice(&ring.events[ring.next..]);
        v.extend_from_slice(&ring.events[..ring.next]);
        v
    } else {
        ring.events.clone()
    };
    MetricsSnapshot {
        counters,
        histograms,
        spans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests share global state: distinct metric names avoid
    // cross-talk in the registry, and a lock serializes the tests that
    // flip the global `ENABLED` toggle (the harness runs tests on
    // several threads).
    static TOGGLE: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        TOGGLE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        let _s = serial();
        set_enabled(true);
        counter!("test.alpha").add(3);
        counter!("test.alpha").incr();
        let snap = snapshot();
        assert_eq!(snap.counter("test.alpha"), 4);
        assert_eq!(snap.counter("test.never"), 0);
    }

    #[test]
    fn runtime_toggle_stops_recording() {
        let _s = serial();
        set_enabled(true);
        counter!("test.toggle").add(5);
        set_enabled(false);
        counter!("test.toggle").add(100);
        set_enabled(true);
        assert_eq!(snapshot().counter("test.toggle"), 5);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let _s = serial();
        set_enabled(true);
        let h = histogram!("test.hist");
        h.record(1); // bucket 0
        h.record(1024); // bucket 10
        h.record(1500); // bucket 10
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 1 + 1024 + 1500);
        assert_eq!(s.buckets, vec![(0, 1), (10, 2)]);
        assert!(s.mean() > 800.0);
        assert!(s.quantile(0.99) >= 1024.0);
    }

    #[test]
    fn spans_feed_histogram_and_ring() {
        let _s = serial();
        set_enabled(true);
        {
            let _g = span!("test_scope");
            std::hint::black_box(42);
        }
        let snap = snapshot();
        let h = snap.histogram("span.test_scope").expect("span histogram");
        assert!(h.count >= 1);
        assert!(snap.spans.iter().any(|e| e.name == "test_scope"));
    }

    #[test]
    fn ring_is_bounded() {
        let _s = serial();
        set_enabled(true);
        for _ in 0..(RING_CAPACITY + 50) {
            let _g = span!("test_ring_flood");
        }
        assert!(snapshot().spans.len() <= RING_CAPACITY);
    }

    #[test]
    fn sharded_counts_survive_threads() {
        let _s = serial();
        set_enabled(true);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..1000 {
                        counter!("test.mt").incr();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(snapshot().counter("test.mt"), 4000);
    }
}
