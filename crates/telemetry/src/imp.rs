//! The real implementation, compiled only with the `telemetry` feature.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::{
    hist_bucket_index, HistogramSnapshot, MetricsSnapshot, SpanEvent, TraceEvent, HIST_BUCKETS,
    TRACE_BUFFER_CAPACITY, TRACE_RING_CAPACITY,
};

/// Shards per counter. Eight 64-byte lines absorb contention from the
/// upcall server thread without bloating the (few dozen) counters.
const SHARDS: usize = 8;

/// Capacity of the span event ring.
const RING_CAPACITY: usize = 1024;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns recording on or off at runtime (`--no-telemetry`). Counters
/// keep their accumulated values; they simply stop moving.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether recording is currently enabled.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The flight recorder's own toggle, off by default: counters and
/// histograms are cheap enough to run always-on, but per-dispatch trace
/// events are not, so recording mode is opted into (`--trace`,
/// `graftstat timeline`, Table 12's recording column).
static TRACING: AtomicBool = AtomicBool::new(false);

/// Arms or disarms per-dispatch trace recording. Recording still
/// requires telemetry itself to be enabled — `--no-telemetry` wins.
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// Whether dispatch tracing is live right now (armed *and* telemetry
/// enabled). The gated-mode cost of the flight recorder is exactly this
/// pair of relaxed loads per dispatch.
#[inline(always)]
pub fn tracing() -> bool {
    TRACING.load(Ordering::Relaxed) && enabled()
}

/// The raw armed state of the tracing toggle, ignoring `enabled` —
/// for callers that save and restore recording modes.
pub fn tracing_configured() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Nanoseconds from the telemetry epoch to `at` (0 if `at` predates
/// it). Hosts stamp trace events from the `Instant` they already took
/// for duration accounting, so tracing adds no extra clock read.
pub fn since_epoch_ns(at: Instant) -> u64 {
    at.saturating_duration_since(registry().epoch)
        .as_nanos()
        .min(u64::MAX as u128) as u64
}

/// Nanoseconds since the telemetry epoch, now.
pub fn now_ns() -> u64 {
    since_epoch_ns(Instant::now())
}

/// A 64-byte-aligned atomic so neighbouring shards never share a line.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

impl PaddedU64 {
    const fn new() -> Self {
        PaddedU64(AtomicU64::new(0))
    }
}

/// A sharded, monotonically increasing counter.
pub struct Counter {
    name: &'static str,
    shards: [PaddedU64; SHARDS],
}

thread_local! {
    static SHARD_HINT: std::cell::Cell<usize> =
        const { std::cell::Cell::new(usize::MAX) };
}

fn shard_index() -> usize {
    SHARD_HINT.with(|hint| {
        let cached = hint.get();
        if cached != usize::MAX {
            return cached;
        }
        // Derive a stable per-thread shard from this thread's TLS slot
        // address — different threads get different TLS blocks.
        let idx = (hint as *const _ as usize >> 6) % SHARDS;
        hint.set(idx);
        idx
    })
}

impl Counter {
    const fn new(name: &'static str) -> Self {
        Counter {
            name,
            shards: [
                PaddedU64::new(),
                PaddedU64::new(),
                PaddedU64::new(),
                PaddedU64::new(),
                PaddedU64::new(),
                PaddedU64::new(),
                PaddedU64::new(),
                PaddedU64::new(),
            ],
        }
    }

    /// Metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n`. One relaxed fetch-add on this thread's shard; a no-op
    /// when recording is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !enabled() || n == 0 {
            return;
        }
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total across shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A log-linear histogram (values in nanoseconds by convention): each
/// power-of-two octave is split into [`crate::HIST_SUBS`] linear
/// sub-buckets, bounding every bucket's relative width — the p999
/// accuracy guarantee. See [`hist_bucket_index`].
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Histogram {
    const fn new(name: &'static str) -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [ZERO; HIST_BUCKETS],
        }
    }

    /// Metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one value. Three relaxed atomics; no-op when disabled.
    #[inline]
    pub fn record(&self, value: u64) {
        if !enabled() {
            return;
        }
        let bucket = hist_bucket_index(value);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] as nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records `n` occurrences of `value` with three relaxed atomics
    /// regardless of `n` — for hosts that accumulate per-value counts
    /// locally and flush once at teardown.
    #[inline]
    pub fn record_n(&self, value: u64, n: u64) {
        if !enabled() || n == 0 {
            return;
        }
        let bucket = hist_bucket_index(value);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(value.saturating_mul(n), Ordering::Relaxed);
        self.buckets[bucket].fetch_add(n, Ordering::Relaxed);
    }

    /// Freezes this histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i as u32, n))
            })
            .collect();
        HistogramSnapshot {
            name: self.name.to_string(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

struct Registry {
    counters: Mutex<Vec<&'static Counter>>,
    histograms: Mutex<Vec<&'static Histogram>>,
    ring: Mutex<SpanRing>,
    traces: Mutex<TraceRing>,
    epoch: Instant,
}

struct SpanRing {
    events: Vec<SpanEvent>,
    next: usize,
    wrapped: bool,
}

/// The global ring flushed [`TraceBuffer`]s merge into; drained (oldest
/// first) by [`snapshot`]. Overwrites of unread events are counted by
/// the caller into `telemetry.trace.dropped`.
struct TraceRing {
    events: Vec<TraceEvent>,
    next: usize,
    wrapped: bool,
}

impl TraceRing {
    /// Appends one event; returns 1 if an unread event was overwritten.
    fn push(&mut self, event: TraceEvent) -> u64 {
        if self.events.len() < TRACE_RING_CAPACITY {
            self.events.push(event);
            self.next = (self.next + 1) % TRACE_RING_CAPACITY;
            0
        } else {
            let at = self.next;
            self.events[at] = event;
            self.next = (self.next + 1) % TRACE_RING_CAPACITY;
            self.wrapped = true;
            1
        }
    }
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(Vec::new()),
        histograms: Mutex::new(Vec::new()),
        ring: Mutex::new(SpanRing {
            events: Vec::with_capacity(RING_CAPACITY),
            next: 0,
            wrapped: false,
        }),
        traces: Mutex::new(TraceRing {
            events: Vec::new(),
            next: 0,
            wrapped: false,
        }),
        epoch: Instant::now(),
    })
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

/// A thread-confined flight-recorder ring of fixed-size
/// [`TraceEvent`]s.
///
/// Lock-free by construction: one buffer belongs to one host (and a
/// host to one thread), so [`record`] is a plain indexed store — no
/// atomics, no locks, nothing shared. [`flush`] publishes events
/// recorded since the previous flush into the bounded global ring
/// (off the hot path, under its mutex) and accounts every overwritten
/// unpublished event to `telemetry.trace.dropped`, so overflow is
/// never silent.
///
/// [`record`]: TraceBuffer::record
/// [`flush`]: TraceBuffer::flush
#[derive(Debug)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
    next: usize,
    capacity: usize,
    /// Events ever recorded.
    total: u64,
    /// Events overwritten before any flush published them.
    dropped: u64,
    /// Events (by ordinal) already published to the global ring.
    published: u64,
    /// Portion of `dropped` already pushed to the dropped counter.
    dropped_flushed: u64,
}

impl TraceBuffer {
    /// A recorder ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            events: Vec::new(),
            next: 0,
            capacity: capacity.max(1),
            total: 0,
            dropped: 0,
            published: 0,
            dropped_flushed: 0,
        }
    }

    /// Records one event. Callers gate on [`tracing`]; the buffer
    /// itself never blocks and never touches shared state.
    #[inline]
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            // Overwriting the oldest retained event; if no flush ever
            // published it, it is gone for good — count it.
            let oldest = self.total - self.events.len() as u64;
            if oldest >= self.published {
                self.dropped += 1;
            }
            let at = self.next;
            self.events[at] = event;
        }
        self.next = (self.next + 1) % self.capacity;
        self.total += 1;
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        if self.events.len() < self.capacity {
            self.events.clone()
        } else {
            let mut v = Vec::with_capacity(self.events.len());
            v.extend_from_slice(&self.events[self.next..]);
            v.extend_from_slice(&self.events[..self.next]);
            v
        }
    }

    /// The last `n` retained events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<TraceEvent> {
        let all = self.events();
        let skip = all.len().saturating_sub(n);
        all[skip..].to_vec()
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events lost to ring overflow so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Publishes events recorded since the last flush into the global
    /// trace ring, and any new drops into `telemetry.trace.dropped`.
    /// Idempotent between recordings; events stay retained for
    /// postmortem tails. No-op when telemetry is disabled.
    pub fn flush(&mut self) {
        if !enabled() {
            return;
        }
        let mut newly_dropped = self.dropped - self.dropped_flushed;
        let first_retained = self.total - self.events.len() as u64;
        let from = self.published.max(first_retained);
        if from < self.total {
            let all = self.events();
            let skip = (from - first_retained) as usize;
            let mut ring = registry().traces.lock().unwrap();
            for event in &all[skip..] {
                newly_dropped += ring.push(*event);
            }
        }
        self.published = self.total;
        self.dropped_flushed = self.dropped;
        crate::counter!("telemetry.trace.dropped").add(newly_dropped);
    }
}

impl Default for TraceBuffer {
    fn default() -> Self {
        TraceBuffer::new(TRACE_BUFFER_CAPACITY)
    }
}

/// Lazily-registered counter cell; use via [`counter!`].
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<&'static Counter>,
}

impl LazyCounter {
    /// Creates an unregistered cell (registration happens on first use).
    pub const fn new(name: &'static str) -> Self {
        LazyCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The underlying counter, registering it on first access.
    #[inline]
    pub fn get(&self) -> &'static Counter {
        self.cell.get_or_init(|| {
            let c: &'static Counter = Box::leak(Box::new(Counter::new(self.name)));
            registry().counters.lock().unwrap().push(c);
            c
        })
    }
}

/// Lazily-registered histogram cell; use via [`histogram!`].
pub struct LazyHistogram {
    name: &'static str,
    cell: OnceLock<&'static Histogram>,
}

impl LazyHistogram {
    /// Creates an unregistered cell (registration happens on first use).
    pub const fn new(name: &'static str) -> Self {
        LazyHistogram {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The underlying histogram, registering it on first access.
    #[inline]
    pub fn get(&self) -> &'static Histogram {
        self.cell.get_or_init(|| {
            let h: &'static Histogram = Box::leak(Box::new(Histogram::new(self.name)));
            registry().histograms.lock().unwrap().push(h);
            h
        })
    }
}

/// A static sharded counter, registered on first use:
/// `counter!("vm.dispatch").add(n)`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __GRAFT_COUNTER: $crate::LazyCounter = $crate::LazyCounter::new($name);
        __GRAFT_COUNTER.get()
    }};
}

/// A static log₂ histogram, registered on first use:
/// `histogram!("upcall.wait_ns").record(ns)`.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __GRAFT_HISTOGRAM: $crate::LazyHistogram = $crate::LazyHistogram::new($name);
        __GRAFT_HISTOGRAM.get()
    }};
}

/// An RAII span: `let _g = span!("evict");` times the enclosing scope
/// into histogram `span.<name>` and the bounded event ring.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name, $crate::histogram!(concat!("span.", $name)))
    };
}

/// Live RAII guard produced by [`span!`].
pub struct SpanGuard {
    name: &'static str,
    hist: &'static Histogram,
    start: Option<Instant>,
}

impl SpanGuard {
    /// Begins a span (records nothing if telemetry is off right now).
    #[inline]
    pub fn enter(name: &'static str, hist: &'static Histogram) -> Self {
        SpanGuard {
            name,
            hist,
            start: enabled().then(Instant::now),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let duration = start.elapsed();
        self.hist.record_duration(duration);
        let reg = registry();
        let start_ns = start
            .saturating_duration_since(reg.epoch)
            .as_nanos()
            .min(u64::MAX as u128) as u64;
        let event = SpanEvent {
            name: self.name,
            start_ns,
            duration_ns: duration.as_nanos().min(u64::MAX as u128) as u64,
        };
        let mut ring = reg.ring.lock().unwrap();
        if ring.events.len() < RING_CAPACITY {
            ring.events.push(event);
        } else {
            // Drop-oldest: the ring keeps the most recent RING_CAPACITY
            // spans. The overwritten span is lost from the snapshot, so
            // the truncation is accounted rather than silent.
            let at = ring.next;
            ring.events[at] = event;
            ring.wrapped = true;
            crate::counter!("telemetry.spans.dropped").incr();
        }
        ring.next = (ring.next + 1) % RING_CAPACITY;
    }
}

/// Freezes every registered metric into a [`MetricsSnapshot`].
///
/// The `counter!`/`histogram!` macros register one cell *per call
/// site*, so the same logical metric recorded from several places
/// appears several times in the registry; the snapshot merges entries
/// that share a name.
pub fn snapshot() -> MetricsSnapshot {
    use std::collections::BTreeMap;
    let reg = registry();
    let mut by_name: BTreeMap<String, u64> = BTreeMap::new();
    for c in reg.counters.lock().unwrap().iter() {
        *by_name.entry(c.name.to_string()).or_insert(0) += c.value();
    }
    let counters: Vec<(String, u64)> = by_name.into_iter().collect();
    let mut hist_by_name: BTreeMap<String, HistogramSnapshot> = BTreeMap::new();
    for h in reg.histograms.lock().unwrap().iter() {
        let snap = h.snapshot();
        match hist_by_name.entry(snap.name.clone()) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(snap);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let merged = e.get_mut();
                merged.count += snap.count;
                merged.sum += snap.sum;
                let mut buckets: BTreeMap<u32, u64> =
                    merged.buckets.iter().copied().collect();
                for (b, n) in snap.buckets {
                    *buckets.entry(b).or_insert(0) += n;
                }
                merged.buckets = buckets.into_iter().collect();
            }
        }
    }
    let histograms: Vec<HistogramSnapshot> = hist_by_name.into_values().collect();
    let ring = reg.ring.lock().unwrap();
    let spans = if ring.wrapped {
        let mut v = Vec::with_capacity(ring.events.len());
        v.extend_from_slice(&ring.events[ring.next..]);
        v.extend_from_slice(&ring.events[..ring.next]);
        v
    } else {
        ring.events.clone()
    };
    drop(ring);
    let traces_ring = reg.traces.lock().unwrap();
    let traces = if traces_ring.wrapped {
        let mut v = Vec::with_capacity(traces_ring.events.len());
        v.extend_from_slice(&traces_ring.events[traces_ring.next..]);
        v.extend_from_slice(&traces_ring.events[..traces_ring.next]);
        v
    } else {
        traces_ring.events.clone()
    };
    MetricsSnapshot {
        counters,
        histograms,
        spans,
        traces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests share global state: distinct metric names avoid
    // cross-talk in the registry, and a lock serializes the tests that
    // flip the global `ENABLED` toggle (the harness runs tests on
    // several threads).
    static TOGGLE: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        TOGGLE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        let _s = serial();
        set_enabled(true);
        counter!("test.alpha").add(3);
        counter!("test.alpha").incr();
        let snap = snapshot();
        assert_eq!(snap.counter("test.alpha"), 4);
        assert_eq!(snap.counter("test.never"), 0);
    }

    #[test]
    fn runtime_toggle_stops_recording() {
        let _s = serial();
        set_enabled(true);
        counter!("test.toggle").add(5);
        set_enabled(false);
        counter!("test.toggle").add(100);
        set_enabled(true);
        assert_eq!(snapshot().counter("test.toggle"), 5);
    }

    #[test]
    fn histogram_buckets_are_log_linear() {
        let _s = serial();
        set_enabled(true);
        let h = histogram!("test.hist");
        h.record(1);
        h.record(1024);
        h.record(1500);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 1 + 1024 + 1500);
        // Small values are exact; 1024 and 1500 share an octave but not
        // a sub-bucket — the resolution the old log₂ scheme lacked.
        assert_eq!(
            s.buckets,
            vec![
                (hist_bucket_index(1) as u32, 1),
                (hist_bucket_index(1024) as u32, 1),
                (hist_bucket_index(1500) as u32, 1),
            ]
        );
        assert_ne!(hist_bucket_index(1024), hist_bucket_index(1500));
        assert!(s.mean() > 800.0);
        assert!(s.quantile(0.99) >= 1024.0);
    }

    #[test]
    fn bucket_geometry_round_trips() {
        for v in [0u64, 1, 5, 31, 32, 33, 63, 64, 127, 1024, 1500, 9999, u64::MAX / 3] {
            let i = hist_bucket_index(v) as u32;
            let lo = crate::hist_bucket_lower(i);
            let w = crate::hist_bucket_width(i);
            assert!(lo <= v && v < lo.saturating_add(w), "v={v} i={i} lo={lo} w={w}");
            assert!((i as usize) < HIST_BUCKETS);
            // Bounded relative error: width/lower ≤ 1/HIST_SUBS above
            // the exact range.
            if v >= crate::HIST_SUBS as u64 {
                assert!(w * (crate::HIST_SUBS as u64) <= lo * 2, "v={v}");
            }
        }
    }

    #[test]
    fn p999_is_within_bounded_relative_error() {
        let _s = serial();
        set_enabled(true);
        let h = histogram!("test.p999");
        // Known synthetic distribution: 1..=100_000 uniform. True
        // p999 = 99_900, p99 = 99_000, p50 = 50_000.
        for v in 1..=100_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        for (q, truth) in [(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0), (0.999, 99_900.0)]
        {
            let got = s.quantile(q);
            let rel = (got - truth).abs() / truth;
            assert!(rel <= 0.05, "q={q}: got {got}, want {truth} (rel {rel:.4})");
        }
    }

    fn ev(ts: u64, trace: u64, seq: u32) -> TraceEvent {
        TraceEvent {
            ts_ns: ts,
            trace: crate::TraceId(trace),
            seq,
            graft: 1,
            shard: 0,
            point: 0,
            tech: 0,
            verdict: crate::TRACE_VERDICT_CONTINUE,
            value: 0,
            duration_ns: 10,
            fuel: 0,
        }
    }

    #[test]
    fn trace_buffer_is_bounded_and_counts_drops() {
        let mut buf = TraceBuffer::new(4);
        for i in 0..10u64 {
            buf.record(ev(i, 1, i as u32));
        }
        assert_eq!(buf.len(), 4);
        // 6 events were overwritten before any flush saw them.
        assert_eq!(buf.dropped(), 6);
        let tail: Vec<u64> = buf.events().iter().map(|e| e.ts_ns).collect();
        assert_eq!(tail, vec![6, 7, 8, 9], "oldest-first, most recent retained");
        assert_eq!(buf.tail(2).len(), 2);
        assert_eq!(buf.tail(2)[1].ts_ns, 9);
    }

    #[test]
    fn trace_flush_publishes_once_and_accounts_drops() {
        let _s = serial();
        set_enabled(true);
        let before = snapshot().counter("telemetry.trace.dropped");
        let mut buf = TraceBuffer::new(4);
        for i in 0..6u64 {
            buf.record(ev(i, 2, i as u32));
        }
        buf.flush();
        let snap = snapshot();
        assert_eq!(snap.counter("telemetry.trace.dropped"), before + 2);
        let mine: Vec<u64> = snap
            .traces
            .iter()
            .filter(|e| e.trace == crate::TraceId(2))
            .map(|e| e.ts_ns)
            .collect();
        assert_eq!(mine, vec![2, 3, 4, 5]);
        // A second flush with nothing new publishes nothing twice.
        buf.flush();
        let again = snapshot()
            .traces
            .iter()
            .filter(|e| e.trace == crate::TraceId(2))
            .count();
        assert_eq!(again, 4);
    }

    #[test]
    fn tracing_toggle_requires_enabled() {
        let _s = serial();
        set_enabled(true);
        assert!(!tracing(), "tracing is off by default");
        set_tracing(true);
        assert!(tracing());
        set_enabled(false);
        assert!(!tracing(), "--no-telemetry wins over an armed recorder");
        assert!(tracing_configured());
        set_enabled(true);
        set_tracing(false);
        assert!(!tracing());
    }

    #[test]
    fn merge_timelines_is_causally_ordered() {
        let shard_a = vec![ev(5, 7, 0), ev(9, 7, 1)];
        let shard_b = vec![ev(6, 8, 0), ev(7, 8, 1)];
        let merged = crate::merge_timelines([shard_a, shard_b]);
        let ts: Vec<u64> = merged.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![5, 6, 7, 9]);
        // Per-TraceId happens-before: seq strictly increases.
        for id in [7u64, 8] {
            let seqs: Vec<u32> = merged
                .iter()
                .filter(|e| e.trace == crate::TraceId(id))
                .map(|e| e.seq)
                .collect();
            let mut sorted = seqs.clone();
            sorted.sort_unstable();
            assert_eq!(seqs, sorted);
        }
    }

    #[test]
    fn spans_feed_histogram_and_ring() {
        let _s = serial();
        set_enabled(true);
        {
            let _g = span!("test_scope");
            std::hint::black_box(42);
        }
        let snap = snapshot();
        let h = snap.histogram("span.test_scope").expect("span histogram");
        assert!(h.count >= 1);
        assert!(snap.spans.iter().any(|e| e.name == "test_scope"));
    }

    #[test]
    fn ring_is_bounded() {
        let _s = serial();
        set_enabled(true);
        for _ in 0..(RING_CAPACITY + 50) {
            let _g = span!("test_ring_flood");
        }
        assert!(snapshot().spans.len() <= RING_CAPACITY);
    }

    #[test]
    fn sharded_counts_survive_threads() {
        let _s = serial();
        set_enabled(true);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..1000 {
                        counter!("test.mt").incr();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(snapshot().counter("test.mt"), 4000);
    }
}
