//! Observability for the graft stack: near-zero-cost counters,
//! log-scaled latency histograms, RAII span timing, and the
//! machine-readable run-artifact encoding.
//!
//! # Design
//!
//! The paper's argument is quantitative, so the instrumentation must not
//! disturb the numbers it reports. Three layers keep it honest:
//!
//! 1. **Compile-time:** everything is behind the `telemetry` cargo
//!    feature. With the feature off, [`counter!`], [`histogram!`], and
//!    [`span!`] expand to no-ops and the whole crate is a handful of
//!    empty inline functions — the dispatch loops compile exactly as
//!    they would without this crate.
//! 2. **Runtime:** a global toggle ([`set_enabled`]) gates every record
//!    on one relaxed atomic load, so `--no-telemetry` runs pay a
//!    predictable, branch-predicted test and nothing else.
//! 3. **Hot-path discipline:** per-iteration work (bytecode dispatch,
//!    SFI masked accesses) is accumulated in plain locals by the engines
//!    and *flushed* to the sharded counters once per invocation, never
//!    per instruction.
//!
//! Counters are sharded across cache-line-padded atomics to keep
//! cross-thread increments (the upcall server) from bouncing a single
//! line. Histograms use log₂ buckets over nanoseconds — 1 ns to ~584
//! years in 64 buckets. Spans time a scope via RAII and feed both a
//! histogram (`span.<name>`) and a bounded in-memory event ring for
//! post-mortem inspection.
//!
//! [`snapshot`] freezes everything into a [`MetricsSnapshot`] that the
//! run-artifact writer embeds in its JSON output; [`json`] is the
//! hand-rolled (dependency-free) JSON used for that artifact.

pub mod json;

#[cfg(feature = "telemetry")]
mod imp;

#[cfg(feature = "telemetry")]
pub use imp::*;

#[cfg(not(feature = "telemetry"))]
mod noop;

#[cfg(not(feature = "telemetry"))]
pub use noop::*;

/// A frozen view of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values (ns for latency histograms).
    pub sum: u64,
    /// Non-empty log₂ buckets as `(bucket_index, count)`; a value `v`
    /// lands in bucket `64 - (v|1).leading_zeros() - 1` (i.e. ⌊log₂ v⌋).
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean recorded value, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in 0..=1) from the bucket midpoints.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(bucket, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                // Midpoint of [2^b, 2^(b+1)).
                return 1.5 * (1u64 << bucket) as f64;
            }
        }
        1.5 * (1u64 << self.buckets.last().map(|b| b.0).unwrap_or(0)) as f64
    }
}

/// One recorded span event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name.
    pub name: &'static str,
    /// Start, nanoseconds since process start (monotonic).
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub duration_ns: u64,
}

/// A frozen view of every metric: what the run artifact embeds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every registered counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Every registered histogram, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
    /// The most recent span events, oldest first.
    pub spans: Vec<SpanEvent>,
}

impl MetricsSnapshot {
    /// The value of a counter, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// The snapshot of a histogram, `None` when absent.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Number of distinct metrics (counters + histograms) carrying data.
    pub fn distinct_nonzero(&self) -> usize {
        self.counters.iter().filter(|&&(_, v)| v > 0).count()
            + self.histograms.iter().filter(|h| h.count > 0).count()
    }
}
