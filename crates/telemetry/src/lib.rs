//! Observability for the graft stack: near-zero-cost counters,
//! log-scaled latency histograms, RAII span timing, and the
//! machine-readable run-artifact encoding.
//!
//! # Design
//!
//! The paper's argument is quantitative, so the instrumentation must not
//! disturb the numbers it reports. Three layers keep it honest:
//!
//! 1. **Compile-time:** everything is behind the `telemetry` cargo
//!    feature. With the feature off, [`counter!`], [`histogram!`], and
//!    [`span!`] expand to no-ops and the whole crate is a handful of
//!    empty inline functions — the dispatch loops compile exactly as
//!    they would without this crate.
//! 2. **Runtime:** a global toggle ([`set_enabled`]) gates every record
//!    on one relaxed atomic load, so `--no-telemetry` runs pay a
//!    predictable, branch-predicted test and nothing else.
//! 3. **Hot-path discipline:** per-iteration work (bytecode dispatch,
//!    SFI masked accesses) is accumulated in plain locals by the engines
//!    and *flushed* to the sharded counters once per invocation, never
//!    per instruction.
//!
//! Counters are sharded across cache-line-padded atomics to keep
//! cross-thread increments (the upcall server) from bouncing a single
//! line. Histograms use bounded-error log-linear buckets over
//! nanoseconds — each power-of-two octave is subdivided into
//! [`HIST_SUBS`] linear sub-buckets, so every quantile (p50 through
//! p999) is reported within ~3% relative error while the whole range
//! 1 ns .. 2⁶³ ns still fits in [`HIST_BUCKETS`] slots. Spans time a
//! scope via RAII and feed both a histogram (`span.<name>`) and a
//! bounded in-memory event ring for post-mortem inspection.
//!
//! The *flight recorder* ([`TraceBuffer`], [`TraceEvent`], [`TraceId`])
//! extends the same discipline to individual dispatches: hosts keep a
//! thread-confined ring of fixed-size trace events (no atomics, no
//! locks on the record path) and flush them to a bounded global ring
//! off the hot path. Overflow is never silent — every overwritten
//! unflushed event counts into `telemetry.trace.dropped`.
//!
//! [`snapshot`] freezes everything into a [`MetricsSnapshot`] that the
//! run-artifact writer embeds in its JSON output; [`json`] is the
//! hand-rolled (dependency-free) JSON used for that artifact.

pub mod json;

#[cfg(feature = "telemetry")]
mod imp;

#[cfg(feature = "telemetry")]
pub use imp::*;

#[cfg(not(feature = "telemetry"))]
mod noop;

#[cfg(not(feature = "telemetry"))]
pub use noop::*;

// ---------------------------------------------------------------------
// Log-linear bucket scheme
// ---------------------------------------------------------------------

/// Linear sub-buckets per power-of-two octave, as a shift.
pub const HIST_SUB_BITS: u32 = 5;

/// Linear sub-buckets per octave (32): bounds every bucket's relative
/// width at `1/32` ≈ 3.1%, so any quantile read from bucket edges is
/// within that of the true value — the p999 accuracy bound.
pub const HIST_SUBS: usize = 1 << HIST_SUB_BITS;

/// Total log-linear buckets: values below [`HIST_SUBS`] get one exact
/// bucket each; every octave `2^k .. 2^(k+1)` above that gets
/// [`HIST_SUBS`] linear sub-buckets, covering 1 ns .. 2⁶³ ns.
pub const HIST_BUCKETS: usize = (64 - HIST_SUB_BITS as usize + 1) * HIST_SUBS;

/// The bucket a value lands in. Values below [`HIST_SUBS`] are exact;
/// larger values index `(octave, linear sub-position)`.
#[inline]
pub fn hist_bucket_index(value: u64) -> usize {
    let msb = 63 - (value | 1).leading_zeros();
    if msb < HIST_SUB_BITS {
        return value as usize;
    }
    let sub = ((value >> (msb - HIST_SUB_BITS)) as usize) & (HIST_SUBS - 1);
    ((msb - HIST_SUB_BITS + 1) as usize) * HIST_SUBS + sub
}

/// Inclusive lower bound of a bucket.
#[inline]
pub fn hist_bucket_lower(index: u32) -> u64 {
    let index = (index as usize).min(HIST_BUCKETS - 1);
    if index < HIST_SUBS {
        return index as u64;
    }
    let msb = (index / HIST_SUBS) as u32 + HIST_SUB_BITS - 1;
    let sub = (index % HIST_SUBS) as u64;
    (1u64 << msb) + (sub << (msb - HIST_SUB_BITS))
}

/// Width of a bucket (1 for the exact low range).
#[inline]
pub fn hist_bucket_width(index: u32) -> u64 {
    let index = (index as usize).min(HIST_BUCKETS - 1);
    if index < HIST_SUBS {
        return 1;
    }
    let msb = (index / HIST_SUBS) as u32 + HIST_SUB_BITS - 1;
    1u64 << (msb - HIST_SUB_BITS)
}

/// A frozen view of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values (ns for latency histograms).
    pub sum: u64,
    /// Non-empty log-linear buckets as `(bucket_index, count)`; see
    /// [`hist_bucket_index`] / [`hist_bucket_lower`].
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean recorded value, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in 0..=1), interpolated inside the
    /// bucket holding the rank. Bounded error: a bucket's relative
    /// width is at most `1/HIST_SUBS` (~3.1%), and values below
    /// [`HIST_SUBS`] are exact.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(bucket, n) in &self.buckets {
            if seen + n >= rank {
                let lower = hist_bucket_lower(bucket) as f64;
                let width = hist_bucket_width(bucket) as f64;
                let into = (rank - seen) as f64 / n as f64;
                return lower + width * into;
            }
            seen += n;
        }
        let last = self.buckets.last().map(|b| b.0).unwrap_or(0);
        (hist_bucket_lower(last) + hist_bucket_width(last)) as f64
    }

    /// Median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile — the tail Table 11's per-tenant SLO needs.
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }
}

// ---------------------------------------------------------------------
// Flight-recorder trace types (shared by imp and noop)
// ---------------------------------------------------------------------

/// Default capacity of a per-thread [`TraceBuffer`] ring.
pub const TRACE_BUFFER_CAPACITY: usize = 1024;

/// Capacity of the global trace ring flushed buffers merge into.
pub const TRACE_RING_CAPACITY: usize = 4096;

/// `TraceEvent::shard` sentinel: recorded by the scalar (unsharded)
/// host.
pub const TRACE_SHARD_SCALAR: u32 = u32::MAX;

/// `TraceEvent::shard` sentinel: recorded by an upcall server thread on
/// the far side of the wire.
pub const TRACE_SHARD_UPCALL: u32 = u32::MAX - 1;

/// `TraceEvent::verdict`: the graft declined (chain continues).
pub const TRACE_VERDICT_CONTINUE: u8 = 0;
/// `TraceEvent::verdict`: the graft decided; `value` is the decision.
pub const TRACE_VERDICT_OVERRIDE: u8 = 1;
/// `TraceEvent::verdict`: the invocation trapped; `value` is the
/// trap-kind index.
pub const TRACE_VERDICT_TRAP: u8 = 2;
/// `TraceEvent::verdict`: the kernel-side marshal failed before the
/// graft ran.
pub const TRACE_VERDICT_MARSHAL_FAIL: u8 = 3;
/// `TraceEvent::verdict`: server-side handling of a propagated trace
/// context (the upcall wire's half of a dispatch).
pub const TRACE_VERDICT_SERVER: u8 = 4;

/// Causal identity of one kernel dispatch.
///
/// Minted once per dispatch by the host that runs the chain walk and
/// threaded through every invocation it causes — including across the
/// upcall wire. The zero value ([`TraceId::NONE`]) means "untraced".
/// Layout: the high 16 bits carry `source + 1` (a shard index, or 0
/// for the scalar host), the low 48 bits a per-source sequence number,
/// so ids are unique across shards without any shared atomic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The untraced sentinel.
    pub const NONE: TraceId = TraceId(0);

    /// Mints the `seq`-th id of `source` (never equal to [`NONE`]).
    ///
    /// [`NONE`]: TraceId::NONE
    #[inline]
    pub fn mint(source: u16, seq: u64) -> TraceId {
        TraceId(((source as u64 + 1) << 48) | (seq & ((1u64 << 48) - 1)))
    }

    /// Whether this is the untraced sentinel.
    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// The source (shard) that minted this id.
    pub fn source(self) -> u16 {
        ((self.0 >> 48) as u16).wrapping_sub(1)
    }

    /// The per-source sequence number.
    pub fn seq(self) -> u64 {
        self.0 & ((1u64 << 48) - 1)
    }
}

/// One fixed-size flight-recorder record: a single graft invocation
/// (or server-side handling) attributed to a dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic timestamp, ns since the telemetry epoch.
    pub ts_ns: u64,
    /// The dispatch this invocation belongs to.
    pub trace: TraceId,
    /// Position within the dispatch (chain index); server-side events
    /// continue the numbering past the kernel's.
    pub seq: u32,
    /// Graft id (`GraftId.0`), 0 when unknown (server side).
    pub graft: u64,
    /// Worker shard index, or a `TRACE_SHARD_*` sentinel.
    pub shard: u32,
    /// Attach point (`AttachPoint as usize`), `u8::MAX` when unknown.
    pub point: u8,
    /// Technology index in `Technology::ALL` order.
    pub tech: u8,
    /// One of the `TRACE_VERDICT_*` codes.
    pub verdict: u8,
    /// Override value, trap-kind index, or 0 — see `verdict`.
    pub value: i64,
    /// Invocation duration in ns.
    pub duration_ns: u64,
    /// Fuel consumed, 0 when the engine does not meter.
    pub fuel: u64,
}

impl TraceEvent {
    /// The causal sort key: timestamp, then dispatch, then position —
    /// per-`TraceId` happens-before is preserved under any stable merge
    /// because `seq` increases within a dispatch and timestamps are
    /// process-monotonic.
    #[inline]
    pub fn key(&self) -> (u64, u64, u32) {
        (self.ts_ns, self.trace.0, self.seq)
    }

    /// The host-independent view of an event: what the dispatch *did*
    /// (graft-relative identity is carried by the caller). Timestamps,
    /// trace ids, shard placement, and durations all differ between a
    /// scalar and a sharded run of the same program; point, technology,
    /// verdict, and decision value must not.
    #[inline]
    pub fn semantics(&self) -> (u8, u8, u8, i64) {
        (self.point, self.tech, self.verdict, self.value)
    }
}

/// Merges per-thread (per-shard) trace buffers into one causally
/// ordered timeline: sorted by [`TraceEvent::key`], so events of one
/// dispatch stay in invocation order and cross-thread events interleave
/// by monotonic time.
pub fn merge_timelines<I>(parts: I) -> Vec<TraceEvent>
where
    I: IntoIterator<Item = Vec<TraceEvent>>,
{
    let mut all: Vec<TraceEvent> = parts.into_iter().flatten().collect();
    all.sort_by_key(TraceEvent::key);
    all
}

/// One recorded span event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name.
    pub name: &'static str,
    /// Start, nanoseconds since process start (monotonic).
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub duration_ns: u64,
}

/// A frozen view of every metric: what the run artifact embeds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every registered counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Every registered histogram, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
    /// The most recent span events, oldest first.
    pub spans: Vec<SpanEvent>,
    /// The most recent flushed trace events, oldest first.
    pub traces: Vec<TraceEvent>,
}

impl MetricsSnapshot {
    /// The value of a counter, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// The snapshot of a histogram, `None` when absent.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Number of distinct metrics (counters + histograms) carrying data.
    pub fn distinct_nonzero(&self) -> usize {
        self.counters.iter().filter(|&&(_, v)| v > 0).count()
            + self.histograms.iter().filter(|h| h.count > 0).count()
    }
}
