//! Hand-declared libc prototypes for the live host measurements.
//!
//! The offline build cannot depend on the `libc` crate, but every Rust
//! program on `*-linux-gnu` already links glibc, so the handful of
//! syscall wrappers the measurements need — `fork`/`pipe`/`kill` for
//! the signal experiment, `mmap` for the page-fault experiment — can be
//! declared directly. Only the x86-64 glibc ABI is covered; on other
//! targets the live measurements report "unavailable" and the harness
//! falls back to the 1996-style model numbers (the documented
//! `--offline` path).

#![allow(non_camel_case_types)]

/// C `int`.
pub type c_int = i32;
/// `pid_t` on Linux.
pub type pid_t = i32;

#[cfg(all(target_os = "linux", target_arch = "x86_64", target_env = "gnu"))]
mod linux_gnu {
    use super::{c_int, pid_t};

    /// glibc's `struct sigaction` on x86-64: handler pointer, 1024-bit
    /// signal mask, flags, restorer. `#[repr(C)]` inserts the same
    /// 4-byte pad after `sa_flags` that the C layout has.
    #[repr(C)]
    pub struct sigaction {
        pub sa_handler: usize,
        pub sa_mask: [u64; 16],
        pub sa_flags: c_int,
        pub sa_restorer: usize,
    }

    /// `SIG_IGN`.
    pub const SIG_IGN: usize = 1;
    /// `SIGPIPE` (x86-64 Linux).
    pub const SIGPIPE: c_int = 13;
    /// `EAGAIN` (x86-64 Linux).
    pub const EAGAIN: c_int = 11;
    /// `EINTR`.
    pub const EINTR: c_int = 4;
    /// `PROT_READ`.
    pub const PROT_READ: c_int = 1;
    /// `PROT_WRITE`.
    pub const PROT_WRITE: c_int = 2;
    /// `MAP_PRIVATE`.
    pub const MAP_PRIVATE: c_int = 0x02;
    /// `MAP_ANONYMOUS`.
    pub const MAP_ANONYMOUS: c_int = 0x20;
    /// `MAP_FAILED`.
    pub const MAP_FAILED: *mut u8 = usize::MAX as *mut u8;
    /// `_SC_PAGESIZE`.
    pub const _SC_PAGESIZE: c_int = 30;
    /// `F_GETFL`.
    pub const F_GETFL: c_int = 3;
    /// `F_SETFL`.
    pub const F_SETFL: c_int = 4;
    /// `O_NONBLOCK` (x86-64 Linux).
    pub const O_NONBLOCK: c_int = 0o4000;
    /// `POLLIN`.
    pub const POLLIN: i16 = 0x001;
    /// `POLLOUT`.
    pub const POLLOUT: i16 = 0x004;
    /// `POLLERR`.
    pub const POLLERR: i16 = 0x008;
    /// `POLLHUP`.
    pub const POLLHUP: i16 = 0x010;

    /// `struct pollfd` — identical layout on every Linux ABI.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct pollfd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        pub fn poll(fds: *mut pollfd, nfds: u64, timeout: c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        pub fn __errno_location() -> *mut c_int;
        pub fn fork() -> pid_t;
        pub fn pipe(fds: *mut c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
        pub fn kill(pid: pid_t, sig: c_int) -> c_int;
        pub fn waitpid(pid: pid_t, status: *mut c_int, options: c_int) -> pid_t;
        pub fn _exit(status: c_int) -> !;
        pub fn sigaction(
            signum: c_int,
            act: *const sigaction,
            oldact: *mut sigaction,
        ) -> c_int;
        /// glibc reserves the low RT signals for NPTL; this returns the
        /// first one applications may use (what the `SIGRTMIN` macro
        /// expands to).
        #[link_name = "__libc_current_sigrtmin"]
        pub fn sigrtmin() -> c_int;
        pub fn mmap(
            addr: *mut u8,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut u8;
        pub fn munmap(addr: *mut u8, length: usize) -> c_int;
        pub fn sysconf(name: c_int) -> i64;
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64", target_env = "gnu"))]
pub use linux_gnu::*;

/// Whether the live-measurement FFI is available on this target.
pub const AVAILABLE: bool =
    cfg!(all(target_os = "linux", target_arch = "x86_64", target_env = "gnu"));

#[cfg(all(
    test,
    target_os = "linux",
    target_arch = "x86_64",
    target_env = "gnu"
))]
mod tests {
    use super::*;

    #[test]
    fn sigaction_layout_matches_glibc() {
        // glibc's struct sigaction is 152 bytes on x86-64.
        assert_eq!(std::mem::size_of::<sigaction>(), 152);
        assert_eq!(std::mem::align_of::<sigaction>(), 8);
    }

    #[test]
    fn sysconf_pagesize_works() {
        let ps = unsafe { sysconf(_SC_PAGESIZE) };
        assert!(ps >= 4096, "{ps}");
    }

    #[test]
    fn sigrtmin_is_in_posix_range() {
        let m = unsafe { sigrtmin() };
        assert!((32..=64).contains(&m), "{m}");
    }
}
