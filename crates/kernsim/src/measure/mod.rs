//! lmbench-style live measurements on the host.
//!
//! The paper grounds its break-even arithmetic in three measured
//! quantities: signal-delivery time (Table 1, the upcall-cost proxy),
//! page-fault time (Table 3, via lmbench `lat_pagefault`), and disk
//! write bandwidth (Table 4, via lmbench `lmdd`). This module
//! re-implements those measurements for the host the reproduction runs
//! on; the experiment harness prints them next to the paper's 1996
//! numbers.

pub mod diskbw;
pub mod pagefault;
pub mod signals;
pub mod sys;

pub use diskbw::write_bandwidth;
pub use pagefault::soft_fault_latency;
pub use signals::{signal_times, SignalTimes};
