//! Signal-delivery time, the paper's §5.3 experiment.
//!
//! The paper: fork a child that registers handlers for a group of
//! twenty signals and suspends itself; the parent posts the twenty
//! signals and waits until the child reports having handled them; the
//! same is repeated with the signals ignored; the difference divided by
//! twenty is the per-signal handling time.
//!
//! This module re-creates that scheme with two fidelity notes. First,
//! the twenty distinct signals are POSIX real-time signals
//! (`SIGRTMIN..SIGRTMIN+20`) so none coalesce. Second, the
//! suspend/notify dance uses a pipe rendezvous rather than
//! `SIGTSTP`/`SIGCHLD` job control, which behaves identically for
//! timing purposes and is reliable inside containers.
//!
//! The raw syscalls come from the hand-declared prototypes in
//! [`super::sys`]; on targets that module does not cover, the measurement
//! reports unavailable and the harness uses the `--offline` model path.

use crate::stats::Sample;

/// Number of distinct signals in the group, as in the paper.
pub const GROUP: usize = 20;

/// The two raw measurements plus the derived per-signal time.
#[derive(Debug, Clone, Copy)]
pub struct SignalTimes {
    /// Time to post + handle the group (per group).
    pub handled: Sample,
    /// Time to post the ignored group (per group).
    pub ignored: Sample,
    /// Derived per-signal handling time in microseconds.
    pub per_signal_us: f64,
}

/// Runs the paper's signal experiment: `runs` timed repetitions of
/// `iters` group deliveries each.
pub fn signal_times(runs: usize, iters: usize) -> Result<SignalTimes, String> {
    let handled = imp::grouped_delivery(runs, iters, true)?;
    let ignored = imp::grouped_delivery(runs, iters, false)?;
    let per_signal_us =
        (handled.mean_us() - ignored.mean_us()).max(0.0) / GROUP as f64;
    Ok(SignalTimes {
        handled,
        ignored,
        per_signal_us,
    })
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64", target_env = "gnu")))]
mod imp {
    use crate::stats::Sample;

    pub fn grouped_delivery(
        _runs: usize,
        _iters: usize,
        _handle: bool,
    ) -> Result<Sample, String> {
        Err("live signal measurement unavailable on this target (run --offline)".into())
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64", target_env = "gnu"))]
mod imp {
    use std::io::{Read, Write};
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Instant;

    use super::super::sys;
    use super::GROUP;
    use crate::stats::Sample;

    static HANDLED: AtomicU32 = AtomicU32::new(0);

    /// Signal handler: counts deliveries. Only async-signal-safe work.
    extern "C" fn count_handler(_sig: sys::c_int) {
        HANDLED.fetch_add(1, Ordering::SeqCst);
    }

    fn rt_signal(i: usize) -> sys::c_int {
        // SAFETY: pure query of glibc's reserved-RT-signal floor.
        unsafe { sys::sigrtmin() + i as sys::c_int }
    }

    pub fn grouped_delivery(
        runs: usize,
        iters: usize,
        handle: bool,
    ) -> Result<Sample, String> {
        // Parent-to-child and child-to-parent rendezvous pipes.
        let mut to_child = [0 as sys::c_int; 2];
        let mut to_parent = [0 as sys::c_int; 2];
        // SAFETY: `pipe` writes two fds into the provided array.
        if unsafe { sys::pipe(to_child.as_mut_ptr()) } != 0
            || unsafe { sys::pipe(to_parent.as_mut_ptr()) } != 0
        {
            return Err("pipe() failed".into());
        }
        // SAFETY: fork() has no memory-safety preconditions; the child
        // only calls async-signal-safe functions
        // (read/write/sigaction/_exit).
        let pid = unsafe { sys::fork() };
        if pid < 0 {
            return Err("fork() failed".into());
        }
        if pid == 0 {
            // ---- Child ----
            child_loop(to_child[0], to_parent[1], handle);
            // SAFETY: terminating the child without running
            // parent-inherited destructors is exactly what `_exit` is
            // for post-fork.
            unsafe { sys::_exit(0) };
        }
        // ---- Parent ----
        // SAFETY: closing the child's ends in the parent.
        unsafe {
            sys::close(to_child[0]);
            sys::close(to_parent[1]);
        }
        let mut child_says = ReadFd(to_parent[0]);
        let mut tell_child = WriteFd(to_child[1]);

        // Wait for the child to report "armed".
        child_says.read_byte()?;

        let mut samples = Vec::with_capacity(runs);
        for _ in 0..runs {
            let start = Instant::now();
            for _ in 0..iters {
                for i in 0..GROUP {
                    // SAFETY: posting a signal to our own child.
                    let rc = unsafe { sys::kill(pid, rt_signal(i)) };
                    if rc != 0 {
                        return Err("kill() failed".into());
                    }
                }
                if handle {
                    // Tell the child a group is complete; it replies
                    // once it has handled all twenty.
                    tell_child.write_byte(b'g')?;
                    child_says.read_byte()?;
                }
            }
            samples.push(start.elapsed() / iters as u32);
        }
        // Shut the child down and reap it.
        tell_child.write_byte(b'q')?;
        // SAFETY: waiting on our own child pid.
        unsafe {
            let mut status = 0;
            sys::waitpid(pid, &mut status, 0);
            sys::close(to_child[1]);
            sys::close(to_parent[0]);
        }
        Ok(Sample::from_runs(&samples))
    }

    /// Child body: arm handlers (or ignores), signal readiness, then
    /// serve group-acknowledgement requests until told to quit.
    fn child_loop(from_parent: sys::c_int, to_parent: sys::c_int, handle: bool) {
        for i in 0..GROUP {
            // SAFETY: installing a handler (or SIG_IGN) for a valid RT
            // signal with a zeroed mask; the handler is
            // async-signal-safe.
            unsafe {
                let mut sa: sys::sigaction = std::mem::zeroed();
                // sa_mask is already empty (zeroed).
                sa.sa_handler = if handle {
                    count_handler as extern "C" fn(sys::c_int) as *const () as usize
                } else {
                    sys::SIG_IGN
                };
                sys::sigaction(rt_signal(i), &sa, std::ptr::null_mut());
            }
        }
        let mut rd = ReadFd(from_parent);
        let mut wr = WriteFd(to_parent);
        let _ = wr.write_byte(b'R');
        loop {
            let Ok(cmd) = rd.read_byte() else { return };
            if cmd == b'q' {
                return;
            }
            // Wait until all twenty queued RT signals have been handled.
            while HANDLED.load(Ordering::SeqCst) < GROUP as u32 {
                std::hint::spin_loop();
            }
            HANDLED.store(0, Ordering::SeqCst);
            if wr.write_byte(b'd').is_err() {
                return;
            }
        }
    }

    struct ReadFd(sys::c_int);
    struct WriteFd(sys::c_int);

    impl ReadFd {
        fn read_byte(&mut self) -> Result<u8, String> {
            let mut b = [0u8; 1];
            self.read_exact(&mut b).map_err(|e| e.to_string())?;
            Ok(b[0])
        }
    }

    impl Read for ReadFd {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            // SAFETY: reading into a valid buffer through an open fd.
            let n = unsafe { sys::read(self.0, buf.as_mut_ptr(), buf.len()) };
            if n < 0 {
                Err(std::io::Error::last_os_error())
            } else {
                Ok(n as usize)
            }
        }
    }

    impl WriteFd {
        fn write_byte(&mut self, b: u8) -> Result<(), String> {
            self.write_all(&[b]).map_err(|e| e.to_string())
        }
    }

    impl Write for WriteFd {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            // SAFETY: writing from a valid buffer through an open fd.
            let n = unsafe { sys::write(self.0, buf.as_ptr(), buf.len()) };
            if n < 0 {
                Err(std::io::Error::last_os_error())
            } else {
                Ok(n as usize)
            }
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
}

#[cfg(all(
    test,
    target_os = "linux",
    target_arch = "x86_64",
    target_env = "gnu"
))]
mod tests {
    use super::*;

    #[test]
    fn signal_experiment_produces_positive_times() {
        let t = signal_times(3, 50).expect("signal experiment runs");
        assert!(t.handled.mean_ns > 0.0);
        assert!(t.ignored.mean_ns > 0.0);
        assert!(
            t.handled.mean_ns >= t.ignored.mean_ns * 0.5,
            "handled runs should not be wildly cheaper than ignored"
        );
        // Plausibility: modern Linux handles a signal in 0.5–100 µs.
        assert!(t.per_signal_us < 1_000.0, "got {}µs", t.per_signal_us);
    }
}
