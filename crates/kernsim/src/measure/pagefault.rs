//! Page-fault latency, the Table 3 measurement.
//!
//! lmbench's `lat_pagefault` maps a file and times faulting its pages
//! in random order. In a container we cannot force pages out to a raw
//! disk, so what this measures on a modern host is the *soft* (minor)
//! fault path: kernel entry, page-table fill, return. The hard-fault
//! time the paper reports (25.1 ms on Alpha — dominated by the disk
//! read and its read-ahead) is reconstructed by the Table 3 harness as
//! `soft fault + DiskModel::page_fault(...)`, and both variants feed
//! the break-even columns of Table 2.
//!
//! `mmap` comes from the hand-declared prototypes in [`super::sys`]; on
//! targets that module does not cover, the measurement reports
//! unavailable and the harness uses the `--offline` model defaults.

use std::time::Instant;

use graft_rng::{SliceRandom, SmallRng};

use super::sys;
use crate::stats::Sample;

/// Host page size in bytes.
pub fn page_size() -> usize {
    #[cfg(all(target_os = "linux", target_arch = "x86_64", target_env = "gnu"))]
    {
        // SAFETY: sysconf with a valid name has no preconditions.
        let sz = unsafe { sys::sysconf(sys::_SC_PAGESIZE) };
        if sz > 0 {
            return sz as usize;
        }
    }
    4096
}

/// Measures minor-fault latency: maps `pages` anonymous pages, touches
/// them in random order (every touch is a fault), repeats `runs` times
/// with a fresh mapping, and reports the per-fault time.
#[cfg(all(target_os = "linux", target_arch = "x86_64", target_env = "gnu"))]
pub fn soft_fault_latency(runs: usize, pages: usize) -> Result<Sample, String> {
    assert!(runs > 0 && pages > 0);
    let psz = page_size();
    let len = pages * psz;
    let mut order: Vec<usize> = (0..pages).collect();
    let mut rng = SmallRng::seed_from_u64(0x9E3779B9);
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        order.shuffle(&mut rng);
        // SAFETY: anonymous private mapping of a computed length; the
        // result is checked against MAP_FAILED before use.
        let base = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ | sys::PROT_WRITE,
                sys::MAP_PRIVATE | sys::MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        if base == sys::MAP_FAILED {
            return Err("mmap failed".into());
        }
        let start = Instant::now();
        let mut sink = 0u8;
        for &p in &order {
            // SAFETY: p * psz < len, so the read is inside the mapping;
            // volatile so the fault-triggering load is not elided.
            sink ^= unsafe { std::ptr::read_volatile(base.add(p * psz)) };
        }
        let elapsed = start.elapsed();
        std::hint::black_box(sink);
        // SAFETY: unmapping the exact region mapped above.
        unsafe { sys::munmap(base, len) };
        samples.push(elapsed / pages as u32);
    }
    Ok(Sample::from_runs(&samples))
}

/// Fallback for targets without the hand-declared FFI: always `Err`, so
/// the harness reports "(unavailable)" and uses model defaults.
#[cfg(not(all(target_os = "linux", target_arch = "x86_64", target_env = "gnu")))]
pub fn soft_fault_latency(_runs: usize, _pages: usize) -> Result<Sample, String> {
    let _ = sys::AVAILABLE;
    Err("live page-fault measurement unavailable on this target (run --offline)".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_is_sane() {
        let p = page_size();
        assert!(p >= 4096 && p.is_power_of_two());
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64", target_env = "gnu"))]
    #[test]
    fn soft_faults_cost_time_but_not_much() {
        let s = soft_fault_latency(3, 512).expect("measurement runs");
        // A minor fault is far below 1 ms and above pure cache-hit cost.
        assert!(s.mean_ns > 10.0, "implausibly fast: {}ns", s.mean_ns);
        assert!(
            s.mean_ns < 1_000_000.0,
            "implausibly slow: {}ns",
            s.mean_ns
        );
    }
}
