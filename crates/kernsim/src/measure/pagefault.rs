//! Page-fault latency, the Table 3 measurement.
//!
//! lmbench's `lat_pagefault` maps a file and times faulting its pages
//! in random order. In a container we cannot force pages out to a raw
//! disk, so what this measures on a modern host is the *soft* (minor)
//! fault path: kernel entry, page-table fill, return. The hard-fault
//! time the paper reports (25.1 ms on Alpha — dominated by the disk
//! read and its read-ahead) is reconstructed by the Table 3 harness as
//! `soft fault + DiskModel::page_fault(...)`, and both variants feed
//! the break-even columns of Table 2.

use std::time::Instant;

use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::stats::Sample;

/// Host page size in bytes.
pub fn page_size() -> usize {
    // SAFETY: sysconf with a valid name has no preconditions.
    let sz = unsafe { libc::sysconf(libc::_SC_PAGESIZE) };
    if sz <= 0 {
        4096
    } else {
        sz as usize
    }
}

/// Measures minor-fault latency: maps `pages` anonymous pages, touches
/// them in random order (every touch is a fault), repeats `runs` times
/// with a fresh mapping, and reports the per-fault time.
pub fn soft_fault_latency(runs: usize, pages: usize) -> Result<Sample, String> {
    assert!(runs > 0 && pages > 0);
    let psz = page_size();
    let len = pages * psz;
    let mut order: Vec<usize> = (0..pages).collect();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(0x9E3779B9);
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        order.shuffle(&mut rng);
        // SAFETY: anonymous private mapping of a computed length; the
        // result is checked against MAP_FAILED before use.
        let base = unsafe {
            libc::mmap(
                std::ptr::null_mut(),
                len,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_PRIVATE | libc::MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        if base == libc::MAP_FAILED {
            return Err("mmap failed".into());
        }
        let base = base as *mut u8;
        let start = Instant::now();
        let mut sink = 0u8;
        for &p in &order {
            // SAFETY: p * psz < len, so the read is inside the mapping;
            // volatile so the fault-triggering load is not elided.
            sink ^= unsafe { std::ptr::read_volatile(base.add(p * psz)) };
        }
        let elapsed = start.elapsed();
        std::hint::black_box(sink);
        // SAFETY: unmapping the exact region mapped above.
        unsafe { libc::munmap(base.cast(), len) };
        samples.push(elapsed / pages as u32);
    }
    Ok(Sample::from_runs(&samples))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_is_sane() {
        let p = page_size();
        assert!(p >= 4096 && p.is_power_of_two());
    }

    #[test]
    fn soft_faults_cost_time_but_not_much() {
        let s = soft_fault_latency(3, 512).expect("measurement runs");
        // A minor fault is far below 1 ms and above pure cache-hit cost.
        assert!(s.mean_ns > 10.0, "implausibly fast: {}ns", s.mean_ns);
        assert!(
            s.mean_ns < 1_000_000.0,
            "implausibly slow: {}ns",
            s.mean_ns
        );
    }
}
