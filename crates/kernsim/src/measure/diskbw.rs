//! Disk write bandwidth, the Table 4 measurement.
//!
//! lmbench's `lmdd` writes a large file and reports bytes per second.
//! We do the same with `fsync` so buffered writes actually reach
//! storage. The resulting bandwidth calibrates [`crate::DiskModel`] for
//! the MD5/disk ratio (Table 5) and the 1 MB access time (Table 4's
//! derived column). On a container with an overlay filesystem this is
//! the backing device's effective bandwidth, which is the honest analogue.

use std::fs::OpenOptions;
use std::io::Write;
use std::time::Instant;

use crate::stats::Sample;

/// Result of a bandwidth measurement.
#[derive(Debug, Clone, Copy)]
pub struct Bandwidth {
    /// Bytes per second.
    pub bytes_per_sec: f64,
    /// The per-run sample (time to write the whole buffer).
    pub sample: Sample,
}

impl Bandwidth {
    /// KB/s, the paper's Table 4 unit.
    pub fn kb_per_sec(&self) -> f64 {
        self.bytes_per_sec / 1024.0
    }

    /// Derived time to access 1 MB, Table 4's second column.
    pub fn megabyte_access(&self) -> std::time::Duration {
        std::time::Duration::from_secs_f64((1 << 20) as f64 / self.bytes_per_sec)
    }
}

/// Measures sequential write bandwidth: `runs` timed writes of
/// `total_bytes` each (in 64 KB chunks, then `fsync`), to a scratch file
/// in the system temp directory.
pub fn write_bandwidth(runs: usize, total_bytes: usize) -> Result<Bandwidth, String> {
    assert!(runs > 0 && total_bytes >= 1 << 16);
    let path = std::env::temp_dir().join(format!(
        "graftbench-lmdd-{}.tmp",
        std::process::id()
    ));
    let chunk = vec![0xA5u8; 1 << 16];
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| format!("open scratch file: {e}"))?;
        let start = Instant::now();
        let mut written = 0usize;
        while written < total_bytes {
            let n = chunk.len().min(total_bytes - written);
            f.write_all(&chunk[..n])
                .map_err(|e| format!("write: {e}"))?;
            written += n;
        }
        f.sync_all().map_err(|e| format!("fsync: {e}"))?;
        samples.push(start.elapsed());
    }
    let _ = std::fs::remove_file(&path);
    let sample = Sample::from_runs(&samples);
    let secs = sample.mean_ns / 1e9;
    Ok(Bandwidth {
        bytes_per_sec: total_bytes as f64 / secs,
        sample,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_is_positive_and_scratch_is_removed() {
        let bw = write_bandwidth(2, 1 << 20).expect("measurement runs");
        assert!(bw.bytes_per_sec > 0.0);
        assert!(bw.kb_per_sec() > 0.0);
        assert!(bw.megabyte_access().as_nanos() > 0);
        let leftover: Vec<_> = std::fs::read_dir(std::env::temp_dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                e.file_name()
                    .to_string_lossy()
                    .starts_with("graftbench-lmdd")
            })
            .collect();
        assert!(leftover.is_empty(), "scratch file must be cleaned up");
    }
}
