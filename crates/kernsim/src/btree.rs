//! The TPC-B database page model behind the VM page-eviction benchmark.
//!
//! Section 3.1 of the paper: a 1,000,000-record database in a four-level
//! B-tree, 50% full — one root page, four second-level pages, 391
//! third-level pages, and about 50,000 fourth-level (data) pages; each
//! third-level page points to up to 128 leaves. During a non-keyed
//! depth-first traversal the server reaching a third-level page knows
//! exactly which 128 leaves it will touch next, and that set *is* the
//! hot list the eviction graft consults.

use graft_rng::{Rng, SmallRng};

/// The paper's B-tree page-structure model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtreeModel {
    /// Number of level-3 (internal) pages.
    pub l3_pages: usize,
    /// Leaves per level-3 page.
    pub fanout: usize,
}

impl Default for BtreeModel {
    fn default() -> Self {
        BtreeModel {
            l3_pages: 391,
            fanout: 128,
        }
    }
}

/// Page-id layout: internal pages first, then leaves.
impl BtreeModel {
    /// Total leaf (data) pages — about 50,000 for the paper's tree.
    pub fn leaf_pages(&self) -> usize {
        self.l3_pages * self.fanout
    }

    /// Total pages in the model (root + L2 + L3 + leaves).
    pub fn total_pages(&self) -> usize {
        1 + 4 + self.l3_pages + self.leaf_pages()
    }

    /// First leaf page id.
    pub fn first_leaf(&self) -> u64 {
        (1 + 4 + self.l3_pages) as u64
    }

    /// The leaf page ids referenced by level-3 page `l3` — the hot list
    /// the application builds when its traversal reaches that page.
    ///
    /// # Panics
    ///
    /// Panics if `l3` is out of range.
    pub fn hot_list(&self, l3: usize) -> Vec<u64> {
        assert!(l3 < self.l3_pages, "no such level-3 page");
        let base = self.first_leaf() + (l3 * self.fanout) as u64;
        (0..self.fanout as u64).map(|i| base + i).collect()
    }

    /// An iterator over the leaves the full depth-first traversal
    /// touches, grouped by level-3 page.
    pub fn traversal(&self) -> impl Iterator<Item = (usize, Vec<u64>)> + '_ {
        (0..self.l3_pages).map(|l3| (l3, self.hot_list(l3)))
    }

    /// A stream of random leaf faults (the scattered data-page accesses
    /// of the TPC-B workload), deterministic in `seed`.
    pub fn random_leaf_faults(&self, count: usize, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let first = self.first_leaf();
        let leaves = self.leaf_pages() as u64;
        (0..count).map(|_| first + rng.gen_range(0..leaves)).collect()
    }

    /// The probability that a random resident page is on a hot list of
    /// the given length — the paper's 1-in-781 save rate (64 / 50,000).
    pub fn hot_probability(&self, hot_len: usize) -> f64 {
        hot_len as f64 / self.leaf_pages() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry() {
        let m = BtreeModel::default();
        assert_eq!(m.leaf_pages(), 50_048); // "approximately 50,000"
        assert_eq!(m.total_pages(), 1 + 4 + 391 + 50_048);
    }

    #[test]
    fn hot_lists_partition_the_leaves() {
        let m = BtreeModel {
            l3_pages: 4,
            fanout: 8,
        };
        let mut seen = std::collections::HashSet::new();
        for (_, hot) in m.traversal() {
            assert_eq!(hot.len(), 8);
            for p in hot {
                assert!(p >= m.first_leaf());
                assert!(seen.insert(p), "leaf {p} appears twice");
            }
        }
        assert_eq!(seen.len(), m.leaf_pages());
    }

    #[test]
    fn break_even_probability_matches_paper() {
        let m = BtreeModel::default();
        let p = m.hot_probability(64);
        // The paper says "roughly 64/50,000, or once every 781 times".
        let every = 1.0 / p;
        assert!((750.0..820.0).contains(&every), "1 in {every}");
    }

    #[test]
    fn fault_stream_is_leaves_only_and_deterministic() {
        let m = BtreeModel::default();
        let a = m.random_leaf_faults(100, 5);
        let b = m.random_leaf_faults(100, 5);
        assert_eq!(a, b);
        assert!(a.iter().all(|&p| p >= m.first_leaf()));
        assert!(a
            .iter()
            .all(|&p| p < m.first_leaf() + m.leaf_pages() as u64));
    }

    #[test]
    #[should_panic(expected = "no such level-3 page")]
    fn hot_list_bounds() {
        BtreeModel::default().hot_list(391);
    }
}
