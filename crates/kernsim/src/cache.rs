//! A buffer cache with pluggable eviction and read-ahead policies.
//!
//! Two of the paper's graft points live here: buffer-cache eviction is
//! the second Prioritization example (§3.1, citing Cao et al.), and
//! file-system read-ahead is a named Black Box example (§3.3: "if the
//! application knows ahead of time the order in which blocks of a file
//! will be read, the kernel can use this information to make read-ahead
//! decisions").

use crate::vm::{EvictionPolicy, LruPolicy, LruQueue, PageId};

/// Chooses how many (and which) blocks to prefetch after a miss.
pub trait ReadAhead {
    /// Blocks to prefetch after a miss on `block`.
    fn prefetch(&mut self, block: PageId) -> Vec<PageId>;
}

/// Boxed strategies forward, so a [`BufferCache`] can host a strategy
/// chosen at run time (the graft-host attach point installs through
/// this seam).
impl<T: ReadAhead + ?Sized> ReadAhead for Box<T> {
    fn prefetch(&mut self, block: PageId) -> Vec<PageId> {
        (**self).prefetch(block)
    }
}

/// The kernel heuristic: fetch the next `n` sequential blocks.
#[derive(Debug, Clone, Copy)]
pub struct SequentialReadAhead {
    /// Number of blocks to prefetch.
    pub n: usize,
}

impl ReadAhead for SequentialReadAhead {
    fn prefetch(&mut self, block: PageId) -> Vec<PageId> {
        (1..=self.n as u64).map(|i| block + i).collect()
    }
}

/// No prefetching.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoReadAhead;

impl ReadAhead for NoReadAhead {
    fn prefetch(&mut self, _block: PageId) -> Vec<PageId> {
        Vec::new()
    }
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses that hit.
    pub hits: u64,
    /// Demand accesses that missed.
    pub misses: u64,
    /// Blocks brought in by read-ahead.
    pub prefetched: u64,
    /// Prefetched blocks that were later hit before eviction.
    pub prefetch_hits: u64,
    /// Evictions.
    pub evictions: u64,
}

/// A block cache of fixed capacity with pluggable policies.
pub struct BufferCache<E: EvictionPolicy = LruPolicy, R: ReadAhead = NoReadAhead> {
    capacity: usize,
    queue: LruQueue,
    eviction: E,
    read_ahead: R,
    prefetched: std::collections::HashSet<PageId>,
    stats: CacheStats,
}

impl<E: EvictionPolicy, R: ReadAhead> BufferCache<E, R> {
    /// A cache of `capacity` blocks.
    pub fn new(capacity: usize, eviction: E, read_ahead: R) -> Self {
        assert!(capacity > 0);
        BufferCache {
            capacity,
            queue: LruQueue::new(),
            eviction,
            read_ahead,
            prefetched: std::collections::HashSet::new(),
            stats: CacheStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The resident queue.
    pub fn queue(&self) -> &LruQueue {
        &self.queue
    }

    /// Demand access to `block`; returns `true` on hit.
    pub fn access(&mut self, block: PageId) -> bool {
        if self.queue.contains(block) {
            self.stats.hits += 1;
            if self.prefetched.remove(&block) {
                self.stats.prefetch_hits += 1;
            }
            self.queue.touch(block);
            return true;
        }
        self.stats.misses += 1;
        self.insert(block, false);
        for pre in self.read_ahead.prefetch(block) {
            if !self.queue.contains(pre) {
                self.stats.prefetched += 1;
                self.insert(pre, true);
            }
        }
        false
    }

    /// Flushes accumulated statistics into the global telemetry
    /// counters. Called from `Drop`, so `access` — the measured path —
    /// never touches an atomic; each cache contributes its totals
    /// exactly once, when it is torn down.
    fn publish_telemetry(&self) {
        if !graft_telemetry::enabled() {
            return;
        }
        let s = self.stats;
        graft_telemetry::counter!("cache.hits").add(s.hits);
        graft_telemetry::counter!("cache.misses").add(s.misses);
        graft_telemetry::counter!("cache.prefetched").add(s.prefetched);
        graft_telemetry::counter!("cache.prefetch_hits").add(s.prefetch_hits);
        graft_telemetry::counter!("cache.evictions").add(s.evictions);
    }

    fn insert(&mut self, block: PageId, is_prefetch: bool) {
        while self.queue.len() >= self.capacity {
            let victim = self
                .eviction
                .select_victim(&self.queue)
                .filter(|v| self.queue.contains(*v))
                .or_else(|| self.queue.head())
                .expect("cache is non-empty");
            self.queue.remove(victim);
            self.prefetched.remove(&victim);
            self.stats.evictions += 1;
        }
        self.queue.insert(block);
        if is_prefetch {
            self.prefetched.insert(block);
        }
    }
}

impl<E: EvictionPolicy, R: ReadAhead> Drop for BufferCache<E, R> {
    fn drop(&mut self) {
        self.publish_telemetry();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses_are_counted() {
        let mut c = BufferCache::new(4, LruPolicy, NoReadAhead);
        assert!(!c.access(1));
        assert!(c.access(1));
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn sequential_read_ahead_turns_misses_into_hits() {
        let mut plain = BufferCache::new(16, LruPolicy, NoReadAhead);
        let mut ahead = BufferCache::new(16, LruPolicy, SequentialReadAhead { n: 4 });
        for b in 0..32u64 {
            plain.access(b);
            ahead.access(b);
        }
        assert_eq!(plain.stats().misses, 32);
        assert!(
            ahead.stats().misses <= 8,
            "read-ahead should absorb sequential misses: {:?}",
            ahead.stats()
        );
        assert!(ahead.stats().prefetch_hits > 0);
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = BufferCache::new(3, LruPolicy, SequentialReadAhead { n: 8 });
        for b in 0..10u64 {
            c.access(b * 100);
        }
        assert!(c.queue().len() <= 3);
    }

    #[test]
    fn random_access_makes_read_ahead_useless() {
        // The paper's point: heuristics cannot cope with arbitrary
        // behavior. Strided access defeats sequential prefetch.
        let mut ahead = BufferCache::new(16, LruPolicy, SequentialReadAhead { n: 2 });
        for i in 0..64u64 {
            ahead.access(i * 1000);
        }
        assert_eq!(ahead.stats().prefetch_hits, 0);
        assert!(ahead.stats().prefetched > 0, "it paid for prefetches");
    }
}
