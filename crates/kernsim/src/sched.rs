//! A process scheduler with a pluggable candidate-selection hook.
//!
//! The third Prioritization example from §3.1: "at each scheduling point
//! the kernel has a list of candidates, and chooses one to run. No
//! scheduling algorithm is appropriate for all application mixes." The
//! paper sketches two application demands this substrate reproduces:
//! round-robin fairness for interactive mixes, and gang-style
//! client/server scheduling where the server runs only when a request
//! is outstanding, but then ahead of any client.

use std::collections::VecDeque;

/// A process identifier.
pub type Pid = u32;

/// A runnable process as the scheduler sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// Process id.
    pub pid: Pid,
    /// Static priority (higher runs first under the priority policy).
    pub priority: i32,
    /// Virtual runtime consumed so far.
    pub vruntime: u64,
    /// Application tag readable by policies (e.g. 1 = server).
    pub tag: i64,
}

/// Chooses which candidate runs next.
pub trait SchedPolicy {
    /// Picks an index into `candidates` (non-empty).
    fn pick(&mut self, candidates: &[Candidate]) -> usize;
}

/// Boxed policies forward, so a [`Scheduler`] can host a policy chosen
/// at run time (the graft-host attach point installs through this
/// seam).
impl<T: SchedPolicy + ?Sized> SchedPolicy for Box<T> {
    fn pick(&mut self, candidates: &[Candidate]) -> usize {
        (**self).pick(candidates)
    }
}

/// Round-robin: always the longest-waiting candidate (index 0 of the
/// queue order).
#[derive(Debug, Default, Clone, Copy)]
pub struct RoundRobin;

impl SchedPolicy for RoundRobin {
    fn pick(&mut self, _candidates: &[Candidate]) -> usize {
        0
    }
}

/// Static priority with FIFO tie-breaking.
#[derive(Debug, Default, Clone, Copy)]
pub struct PriorityPolicy;

impl SchedPolicy for PriorityPolicy {
    fn pick(&mut self, candidates: &[Candidate]) -> usize {
        let mut best = 0;
        for (i, c) in candidates.iter().enumerate() {
            if c.priority > candidates[best].priority {
                best = i;
            }
        }
        best
    }
}

/// The paper's client/server policy: a process tagged as the server
/// (tag = 1) runs ahead of any client, but only while a request is
/// outstanding (tracked by [`ClientServerPolicy::pending_requests`]).
#[derive(Debug, Default, Clone, Copy)]
pub struct ClientServerPolicy {
    /// Outstanding client requests.
    pub pending_requests: u32,
}

impl SchedPolicy for ClientServerPolicy {
    fn pick(&mut self, candidates: &[Candidate]) -> usize {
        if self.pending_requests > 0 {
            if let Some(i) = candidates.iter().position(|c| c.tag == 1) {
                return i;
            }
        }
        // Otherwise: fair among clients (skip an idle server).
        candidates
            .iter()
            .position(|c| c.tag != 1)
            .unwrap_or(0)
    }
}

/// Scheduling statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Dispatch decisions made.
    pub dispatches: u64,
}

/// A run queue driven by a [`SchedPolicy`].
pub struct Scheduler<P: SchedPolicy> {
    queue: VecDeque<Candidate>,
    policy: P,
    stats: SchedStats,
}

impl<P: SchedPolicy> Scheduler<P> {
    /// An empty scheduler.
    pub fn new(policy: P) -> Self {
        Scheduler {
            queue: VecDeque::new(),
            policy,
            stats: SchedStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// Mutable policy access (so an application can feed it state, e.g.
    /// outstanding requests).
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// Makes a process runnable.
    pub fn enqueue(&mut self, candidate: Candidate) {
        self.queue.push_back(candidate);
    }

    /// Number of runnable processes.
    pub fn runnable(&self) -> usize {
        self.queue.len()
    }

    /// Dispatches the next process; it is removed from the queue and
    /// returned with its virtual runtime charged `quantum`.
    pub fn dispatch(&mut self, quantum: u64) -> Option<Candidate> {
        if self.queue.is_empty() {
            return None;
        }
        let snapshot: Vec<Candidate> = self.queue.iter().cloned().collect();
        let mut picked = self.policy.pick(&snapshot);
        if picked >= self.queue.len() {
            // A buggy policy cannot crash the kernel: fall back to FIFO,
            // the same containment stance the engines take for traps.
            picked = 0;
        }
        self.stats.dispatches += 1;
        let mut c = self.queue.remove(picked).expect("index validated");
        c.vruntime += quantum;
        Some(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(pid: Pid, priority: i32, tag: i64) -> Candidate {
        Candidate {
            pid,
            priority,
            vruntime: 0,
            tag,
        }
    }

    #[test]
    fn round_robin_cycles_fifo() {
        let mut s = Scheduler::new(RoundRobin);
        for pid in [1, 2, 3] {
            s.enqueue(cand(pid, 0, 0));
        }
        let order: Vec<Pid> = (0..3).map(|_| s.dispatch(1).unwrap().pid).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert!(s.dispatch(1).is_none());
    }

    #[test]
    fn priority_policy_prefers_higher() {
        let mut s = Scheduler::new(PriorityPolicy);
        s.enqueue(cand(1, 1, 0));
        s.enqueue(cand(2, 9, 0));
        s.enqueue(cand(3, 5, 0));
        assert_eq!(s.dispatch(1).unwrap().pid, 2);
        assert_eq!(s.dispatch(1).unwrap().pid, 3);
    }

    #[test]
    fn client_server_policy_matches_paper_description() {
        let mut s = Scheduler::new(ClientServerPolicy::default());
        s.enqueue(cand(10, 0, 1)); // server
        s.enqueue(cand(20, 0, 0)); // client
        // No outstanding request: the idle server must not be scheduled.
        assert_eq!(s.dispatch(1).unwrap().pid, 20);
        s.enqueue(cand(20, 0, 0));
        // A request arrives: the server runs ahead of any client.
        s.policy_mut().pending_requests = 1;
        assert_eq!(s.dispatch(1).unwrap().pid, 10);
    }

    #[test]
    fn gang_client_server_trace_runs_server_only_under_load_then_first() {
        // The paper's gang policy over a whole request lifecycle: three
        // clients and one server. While no request is outstanding the
        // server is never dispatched, even from the queue head; the
        // moment one is, the server runs ahead of every client — from
        // any queue position — until the request count drains to zero.
        let mut s = Scheduler::new(ClientServerPolicy::default());
        s.enqueue(cand(10, 0, 1)); // server, deliberately at the head
        for pid in [20, 21, 22] {
            s.enqueue(cand(pid, 0, 0)); // clients
        }

        // Phase 1 — idle server: clients run round-robin past it.
        let mut client_order = Vec::new();
        for _ in 0..3 {
            let c = s.dispatch(1).unwrap();
            assert_ne!(c.tag, 1, "idle server was scheduled");
            client_order.push(c.pid);
            s.enqueue(c); // client keeps running, re-joins the queue
        }
        assert_eq!(client_order, vec![20, 21, 22], "clients lost FIFO order");

        // Phase 2 — client 20 issues two requests: the server runs
        // ahead of all clients until both are answered, even though
        // clients are ahead of it in queue order after re-enqueueing.
        s.policy_mut().pending_requests = 2;
        for _ in 0..2 {
            let c = s.dispatch(1).unwrap();
            assert_eq!(c.pid, 10, "server did not run ahead of clients");
            s.policy_mut().pending_requests -= 1;
            s.enqueue(c);
        }

        // Phase 3 — requests drained: the server goes back to waiting
        // and the clients resume their fair rotation.
        assert_eq!(s.policy_mut().pending_requests, 0);
        for _ in 0..4 {
            let c = s.dispatch(1).unwrap();
            assert_ne!(c.tag, 1, "server ran with no request outstanding");
            s.enqueue(c);
        }
        assert_eq!(s.stats().dispatches, 9);
    }

    #[test]
    fn client_server_policy_with_only_the_server_runnable() {
        // Degenerate mix: if the server is the only runnable process the
        // policy still returns a valid index (the scheduler must make
        // progress), request outstanding or not.
        let mut p = ClientServerPolicy::default();
        let only_server = [cand(10, 0, 1)];
        assert_eq!(p.pick(&only_server), 0);
        p.pending_requests = 1;
        assert_eq!(p.pick(&only_server), 0);
    }

    #[test]
    fn buggy_policy_is_contained() {
        struct WildPolicy;
        impl SchedPolicy for WildPolicy {
            fn pick(&mut self, _c: &[Candidate]) -> usize {
                999_999
            }
        }
        let mut s = Scheduler::new(WildPolicy);
        s.enqueue(cand(1, 0, 0));
        assert_eq!(s.dispatch(1).unwrap().pid, 1);
    }

    #[test]
    fn vruntime_is_charged() {
        let mut s = Scheduler::new(RoundRobin);
        s.enqueue(cand(1, 0, 0));
        assert_eq!(s.dispatch(42).unwrap().vruntime, 42);
    }
}
