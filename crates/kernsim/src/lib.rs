//! The simulated kernel substrate.
//!
//! The paper grafts extensions into real 1996 kernels and measures them
//! against kernel-side costs: page-fault time (Table 3), disk bandwidth
//! (Table 4), and signal/upcall delivery (Table 1, Figure 1). This crate
//! rebuilds that substrate:
//!
//! * [`disk`] — a parametric disk model (seek + rotation + transfer)
//!   with 1996-class defaults, plus hooks for measured host bandwidth;
//! * [`vm`] — the VM paging machinery the Prioritization graft plugs
//!   into: an intrusive LRU queue of resident pages and a pager that
//!   consults an eviction policy on every fault;
//! * [`btree`] — the TPC-B database page model (1 M records, four-level
//!   B-tree: 1 root, 4 L2, 391 L3, ~50 k leaf pages) that generates the
//!   paper's hot lists and fault streams;
//! * [`cache`] — a buffer cache with pluggable eviction and read-ahead
//!   policies (the other Prioritization/BlackBox graft points the paper
//!   names);
//! * [`sched`] — a process scheduler with a pluggable candidate-selection
//!   hook (the third Prioritization example, §3.1);
//! * [`upcall`] — the user-level-server transport: any
//!   [`ExtensionEngine`] can be pushed behind a real cross-thread upcall
//!   boundary, and the round-trip can be measured or synthesized for
//!   the Figure 1 sweep;
//! * [`measure`] — lmbench-style live measurements on the host: signal
//!   delivery time (the paper's §5.3 experiment, via `fork` + 20
//!   signals), soft page-fault latency (`lat_pagefault`), and disk
//!   write bandwidth (`lmdd`).
//!
//! [`ExtensionEngine`]: graft_api::ExtensionEngine

pub mod btree;
pub mod cache;
pub mod disk;
pub mod measure;
pub mod netpipe;
pub mod sched;
pub mod stats;
pub mod upcall;
pub mod vm;

pub use disk::{Bitrot, DiskFault, DiskModel, FaultPlan, FaultStats, FaultyDisk};
pub use stats::Sample;
pub use upcall::UpcallEngine;
