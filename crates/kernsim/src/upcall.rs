//! The user-level server transport (hardware-protection technology).
//!
//! Section 4.1 of the paper: the simplest way to protect the kernel
//! from an extension is to leave the extension outside the kernel's
//! address space and reach it by *upcall*. The cost is one protection-
//! domain crossing per invocation, which the paper bounds with signal
//! delivery time (Table 1) and with a real upcall mechanism (37.2 µs on
//! BSD/OS), and then treats as a parameter in Figure 1.
//!
//! [`UpcallEngine`] wraps any [`ExtensionEngine`] and moves it to a
//! dedicated server thread; every kernel-side call becomes a
//! rendezvous-channel round trip, a faithful stand-in for the
//! domain-crossing cost on a machine we cannot equip with a 1996
//! microkernel. A configurable synthetic latency can be added per
//! invocation for sweeps.
//!
//! # Two-phase wire protocol
//!
//! The transport speaks the bind/invoke ABI natively: names cross the
//! boundary only during `bind_entry`/`bind_region` (cached client-side,
//! so each name crosses once); every steady-state request carries
//! pre-bound ids. Request payload buffers (`Vec<i64>`) are *round-
//! tripped* — the server hands each buffer back in its reply and the
//! client pools it for the next request — so the steady state allocates
//! nothing on either side of the boundary. [`invoke_batch`] ships many
//! calls in one rendezvous, amortizing the domain-crossing cost exactly
//! the way the paper's Logical-Disk graft amortizes disk writes.
//!
//! [`invoke_batch`]: ExtensionEngine::invoke_batch

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use graft_api::{EntryId, ExtensionEngine, GraftError, RegionId, Technology};
use graft_telemetry::{counter, histogram, TraceId};

/// Most buffers the client keeps pooled; beyond this they are dropped.
const BUF_POOL_CAP: usize = 4;

enum Request {
    Ping,
    /// Load-time name resolution (the only requests carrying strings).
    BindEntry(String),
    BindRegion(String),
    /// Steady-state, id-based operations. Each `Vec` is a pooled buffer
    /// the server must hand back in its reply.
    InvokeId {
        entry: EntryId,
        args: Vec<i64>,
        /// Causal trace context; [`TraceId::NONE`] when untraced, so the
        /// wire format never grows for the common case.
        trace: TraceId,
    },
    InvokeBatch {
        entry: EntryId,
        calls: usize,
        args: Vec<i64>,
        results: Vec<i64>,
        trace: TraceId,
    },
    LoadRegionId {
        id: RegionId,
        offset: usize,
        data: Vec<i64>,
    },
    ReadRegionId {
        id: RegionId,
        index: usize,
    },
    WriteRegionId {
        id: RegionId,
        index: usize,
        value: i64,
    },
    ReadSliceId {
        id: RegionId,
        offset: usize,
        buf: Vec<i64>,
    },
    RegionLen(RegionId),
    /// State salvage: the whole region crosses in one rendezvous. The
    /// `buf` is a pooled buffer the server fills (snapshot) or drains
    /// (restore) and must hand back in its reply.
    SnapshotRegion {
        id: RegionId,
        buf: Vec<i64>,
    },
    RestoreRegion {
        id: RegionId,
        words: Vec<i64>,
    },
    SetFuel(Option<u64>),
    FuelUsed,
    /// Fork the server's inner engine for worker shard `n`; the replica
    /// crosses back over the reply channel (engines are `Send`).
    Fork(usize),
    Shutdown,
}

enum Reply {
    Unit(Result<(), GraftError>),
    Int(Result<i64, GraftError>),
    /// Result plus the round-tripped request buffer.
    IntBuf(Result<i64, GraftError>, Vec<i64>),
    UnitBuf(Result<(), GraftError>, Vec<i64>),
    /// `read_region_slice_id`: the buffer comes back filled on success.
    SliceBuf(Result<(), GraftError>, Vec<i64>),
    Batch {
        result: Result<(), GraftError>,
        args: Vec<i64>,
        results: Vec<i64>,
    },
    Entry(Result<EntryId, GraftError>),
    Region(Result<RegionId, GraftError>),
    Len(Result<usize, GraftError>),
    Fuel(Option<u64>),
    Forked(Result<Box<dyn ExtensionEngine>, GraftError>),
}

/// An extension hosted in a user-level server, reached by upcall.
pub struct UpcallEngine {
    tx: SyncSender<Request>,
    rx: Receiver<Reply>,
    server: Option<std::thread::JoinHandle<()>>,
    synthetic_latency: Duration,
    inner_technology: Technology,
    /// Requests posted but not yet answered (the transport's queue
    /// depth; 0 or 1 for a rendezvous channel, recorded for telemetry).
    in_flight: Arc<AtomicUsize>,
    /// Client-side bind caches: each name crosses the boundary once.
    /// `RefCell` because reads (`bind_region`, `read_region`) arrive
    /// through `&self`; the engine is `Send` but not `Sync`, matching
    /// the trait contract.
    entry_cache: RefCell<HashMap<String, EntryId>>,
    region_cache: RefCell<HashMap<String, RegionId>>,
    /// Pooled request buffers, round-tripped through the server.
    buf_pool: RefCell<Vec<Vec<i64>>>,
}

impl UpcallEngine {
    /// Moves `engine` behind the upcall boundary.
    pub fn new(engine: Box<dyn ExtensionEngine>) -> Self {
        // Rendezvous channels: a zero-capacity `sync_channel` blocks the
        // sender until the server thread arrives, which is the faithful
        // stand-in for a synchronous protection-domain crossing.
        let (req_tx, req_rx) = sync_channel::<Request>(0);
        let (rep_tx, rep_rx) = sync_channel::<Reply>(0);
        let inner_technology = engine.technology();
        let server = std::thread::Builder::new()
            .name("graft-upcall-server".into())
            .spawn(move || serve(engine, req_rx, rep_tx))
            .expect("spawn upcall server");
        UpcallEngine {
            tx: req_tx,
            rx: rep_rx,
            server: Some(server),
            synthetic_latency: Duration::ZERO,
            inner_technology,
            in_flight: Arc::new(AtomicUsize::new(0)),
            entry_cache: RefCell::new(HashMap::new()),
            region_cache: RefCell::new(HashMap::new()),
            buf_pool: RefCell::new(Vec::new()),
        }
    }

    /// Adds a synthetic per-invocation latency (busy-waited, so it
    /// behaves like CPU-consuming trap handling rather than a sleep).
    pub fn with_synthetic_latency(mut self, latency: Duration) -> Self {
        self.synthetic_latency = latency;
        self
    }

    /// The technology of the engine hosted inside the server.
    pub fn inner_technology(&self) -> Technology {
        self.inner_technology
    }

    /// Takes a pooled request buffer (empty, capacity retained) or a
    /// fresh one when the pool is dry.
    fn take_buf(&self) -> Vec<i64> {
        match self.buf_pool.borrow_mut().pop() {
            Some(buf) => {
                if graft_telemetry::enabled() {
                    counter!("upcall.allocs_saved").incr();
                }
                buf
            }
            None => Vec::new(),
        }
    }

    /// Returns a round-tripped buffer to the pool.
    fn give_buf(&self, mut buf: Vec<i64>) {
        buf.clear();
        let mut pool = self.buf_pool.borrow_mut();
        if pool.len() < BUF_POOL_CAP {
            pool.push(buf);
        }
    }

    fn rpc(&self, req: Request) -> Reply {
        if !self.synthetic_latency.is_zero() {
            let start = Instant::now();
            while start.elapsed() < self.synthetic_latency {
                std::hint::spin_loop();
            }
        }
        if !graft_telemetry::enabled() {
            self.tx.send(req).expect("upcall server alive");
            return self.rx.recv().expect("upcall server replies");
        }
        counter!("upcall.roundtrips").incr();
        histogram!("upcall.queue_depth")
            .record(self.in_flight.fetch_add(1, Ordering::Relaxed) as u64);
        let start = Instant::now();
        self.tx.send(req).expect("upcall server alive");
        let reply = self.rx.recv().expect("upcall server replies");
        histogram!("upcall.wait_ns").record_duration(start.elapsed());
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        reply
    }

    /// Measures the bare transport round trip (no engine work): the
    /// in-text "upcall time" measurement of §5.3.
    pub fn measure_roundtrip(&self, iterations: usize) -> crate::stats::Sample {
        assert!(iterations > 0);
        crate::stats::measure_per_iter(10, iterations, || {
            let _ = self.rpc(Request::Ping);
        })
    }

    /// Measures the *per-call* cost of the batched invoke path: each
    /// timed round trip carries `batch` calls of the pre-bound `entry`
    /// (arity 0). Reported per call, directly comparable with
    /// [`Self::measure_roundtrip`].
    pub fn measure_batched(
        &mut self,
        entry: EntryId,
        batch: usize,
        roundtrips: usize,
    ) -> crate::stats::Sample {
        assert!(batch > 0 && roundtrips > 0);
        let mut out = Vec::with_capacity(batch);
        crate::stats::measure_per_iter(10, roundtrips, || {
            out.clear();
            let _ = self.invoke_batch(entry, batch, &[], &mut out);
        })
        .per(batch)
    }
}

impl Drop for UpcallEngine {
    fn drop(&mut self) {
        let _ = self.tx.send(Request::Shutdown);
        if let Some(h) = self.server.take() {
            let _ = h.join();
        }
    }
}

fn serve(mut engine: Box<dyn ExtensionEngine>, rx: Receiver<Request>, tx: SyncSender<Reply>) {
    // The server's half of the flight recorder: when a request carries a
    // live trace context and recording is armed, the server logs its own
    // event for the dispatch under `TRACE_SHARD_UPCALL`, so a merged
    // timeline shows both sides of every domain crossing. Flushed to the
    // global ring when half-full and at shutdown.
    let mut recorder =
        graft_telemetry::TraceBuffer::new(graft_telemetry::TRACE_BUFFER_CAPACITY);
    let mut server_seq: u32 = 0;
    let tech = engine.technology() as u8;
    let record_server_event =
        |recorder: &mut graft_telemetry::TraceBuffer,
         server_seq: &mut u32,
         trace: TraceId,
         started: Instant,
         value: i64,
         fuel: u64| {
            recorder.record(graft_telemetry::TraceEvent {
                ts_ns: graft_telemetry::since_epoch_ns(started),
                trace,
                seq: *server_seq,
                graft: 0,
                shard: graft_telemetry::TRACE_SHARD_UPCALL,
                point: u8::MAX,
                tech,
                verdict: graft_telemetry::TRACE_VERDICT_SERVER,
                value,
                duration_ns: started.elapsed().as_nanos() as u64,
                fuel,
            });
            *server_seq = server_seq.wrapping_add(1);
            if recorder.len() >= graft_telemetry::TRACE_BUFFER_CAPACITY / 2 {
                recorder.flush();
            }
        };
    while let Ok(req) = rx.recv() {
        let reply = match req {
            Request::Ping => Reply::Unit(Ok(())),
            Request::BindEntry(name) => Reply::Entry(engine.bind_entry(&name)),
            Request::BindRegion(name) => Reply::Region(engine.bind_region(&name)),
            Request::InvokeId { entry, args, trace } => {
                let r = if !trace.is_none() && graft_telemetry::tracing() {
                    let started = Instant::now();
                    let r = engine.invoke_id(entry, &args);
                    let fuel = engine.fuel_used().unwrap_or(0);
                    record_server_event(&mut recorder, &mut server_seq, trace, started, 0, fuel);
                    r
                } else {
                    engine.invoke_id(entry, &args)
                };
                Reply::IntBuf(r, args)
            }
            Request::InvokeBatch {
                entry,
                calls,
                args,
                mut results,
                trace,
            } => {
                let result = if !trace.is_none() && graft_telemetry::tracing() {
                    let started = Instant::now();
                    let result = engine.invoke_batch(entry, calls, &args, &mut results);
                    let fuel = engine.fuel_used().unwrap_or(0);
                    record_server_event(
                        &mut recorder,
                        &mut server_seq,
                        trace,
                        started,
                        calls as i64,
                        fuel,
                    );
                    result
                } else {
                    engine.invoke_batch(entry, calls, &args, &mut results)
                };
                Reply::Batch {
                    result,
                    args,
                    results,
                }
            }
            Request::LoadRegionId { id, offset, data } => {
                let r = engine.load_region_id(id, offset, &data);
                Reply::UnitBuf(r, data)
            }
            Request::ReadRegionId { id, index } => Reply::Int(engine.read_region_id(id, index)),
            Request::WriteRegionId { id, index, value } => {
                Reply::Unit(engine.write_region_id(id, index, value))
            }
            Request::ReadSliceId {
                id,
                offset,
                mut buf,
            } => {
                let r = engine.read_region_slice_id(id, offset, &mut buf);
                Reply::SliceBuf(r, buf)
            }
            Request::RegionLen(id) => Reply::Len(engine.region_len(id)),
            Request::SnapshotRegion { id, mut buf } => {
                // Fill the round-tripped buffer in place so the salvage
                // path allocates nothing on the server side either.
                let r = match engine.region_len(id) {
                    Ok(len) => {
                        buf.resize(len, 0);
                        engine.read_region_slice_id(id, 0, &mut buf)
                    }
                    Err(e) => Err(e),
                };
                Reply::SliceBuf(r, buf)
            }
            Request::RestoreRegion { id, words } => {
                let r = engine.restore_region(id, &words);
                Reply::UnitBuf(r, words)
            }
            Request::SetFuel(f) => {
                engine.set_fuel(f);
                Reply::Unit(Ok(()))
            }
            Request::FuelUsed => Reply::Fuel(engine.fuel_used()),
            Request::Fork(shard) => Reply::Forked(engine.fork_for_shard(shard)),
            Request::Shutdown => {
                recorder.flush();
                break;
            }
        };
        if tx.send(reply).is_err() {
            break;
        }
    }
}

fn transport_err() -> GraftError {
    GraftError::UpcallFailed("unexpected reply type".into())
}

impl ExtensionEngine for UpcallEngine {
    fn technology(&self) -> Technology {
        Technology::UserLevel
    }

    fn bind_entry(&mut self, entry: &str) -> Result<EntryId, GraftError> {
        if let Some(&id) = self.entry_cache.borrow().get(entry) {
            if graft_telemetry::enabled() {
                counter!("upcall.bind_cache_hits").incr();
            }
            return Ok(id);
        }
        if graft_telemetry::enabled() {
            counter!("upcall.bind_cache_misses").incr();
        }
        match self.rpc(Request::BindEntry(entry.to_string())) {
            Reply::Entry(Ok(id)) => {
                self.entry_cache
                    .borrow_mut()
                    .insert(entry.to_string(), id);
                Ok(id)
            }
            Reply::Entry(Err(e)) => Err(e),
            _ => Err(transport_err()),
        }
    }

    fn bind_region(&self, name: &str) -> Result<RegionId, GraftError> {
        if let Some(&id) = self.region_cache.borrow().get(name) {
            if graft_telemetry::enabled() {
                counter!("upcall.bind_cache_hits").incr();
            }
            return Ok(id);
        }
        if graft_telemetry::enabled() {
            counter!("upcall.bind_cache_misses").incr();
        }
        match self.rpc(Request::BindRegion(name.to_string())) {
            Reply::Region(Ok(id)) => {
                self.region_cache
                    .borrow_mut()
                    .insert(name.to_string(), id);
                Ok(id)
            }
            Reply::Region(Err(e)) => Err(e),
            _ => Err(transport_err()),
        }
    }

    fn invoke_id(&mut self, entry: EntryId, args: &[i64]) -> Result<i64, GraftError> {
        self.invoke_id_traced(entry, args, TraceId::NONE)
    }

    fn invoke_id_traced(
        &mut self,
        entry: EntryId,
        args: &[i64],
        trace: TraceId,
    ) -> Result<i64, GraftError> {
        let mut buf = self.take_buf();
        buf.extend_from_slice(args);
        match self.rpc(Request::InvokeId {
            entry,
            args: buf,
            trace,
        }) {
            Reply::IntBuf(r, buf) => {
                self.give_buf(buf);
                r
            }
            _ => Err(transport_err()),
        }
    }

    fn invoke_batch(
        &mut self,
        entry: EntryId,
        calls: usize,
        args_flat: &[i64],
        out: &mut Vec<i64>,
    ) -> Result<(), GraftError> {
        self.invoke_batch_traced(entry, calls, args_flat, out, TraceId::NONE)
    }

    fn invoke_batch_traced(
        &mut self,
        entry: EntryId,
        calls: usize,
        args_flat: &[i64],
        out: &mut Vec<i64>,
        trace: TraceId,
    ) -> Result<(), GraftError> {
        // Validate the shape before crossing the boundary so malformed
        // batches fail identically to the in-process engines.
        graft_api::engine::batch_arity(calls, args_flat.len())?;
        let mut args = self.take_buf();
        args.extend_from_slice(args_flat);
        let results = self.take_buf();
        if graft_telemetry::enabled() {
            counter!("upcall.batches").incr();
            counter!("upcall.batch_calls").add(calls as u64);
            histogram!("upcall.batch_size").record(calls as u64);
        }
        match self.rpc(Request::InvokeBatch {
            entry,
            calls,
            args,
            results,
            trace,
        }) {
            Reply::Batch {
                result,
                args,
                results,
            } => {
                // Even on a mid-batch trap the completed prefix comes
                // back, matching the in-process `invoke_batch` contract.
                out.extend_from_slice(&results);
                self.give_buf(args);
                self.give_buf(results);
                result
            }
            _ => Err(transport_err()),
        }
    }

    fn load_region_id(
        &mut self,
        id: RegionId,
        offset: usize,
        data: &[i64],
    ) -> Result<(), GraftError> {
        let mut buf = self.take_buf();
        buf.extend_from_slice(data);
        match self.rpc(Request::LoadRegionId {
            id,
            offset,
            data: buf,
        }) {
            Reply::UnitBuf(r, buf) => {
                self.give_buf(buf);
                r
            }
            _ => Err(transport_err()),
        }
    }

    fn read_region_id(&self, id: RegionId, index: usize) -> Result<i64, GraftError> {
        match self.rpc(Request::ReadRegionId { id, index }) {
            Reply::Int(r) => r,
            _ => Err(transport_err()),
        }
    }

    fn write_region_id(
        &mut self,
        id: RegionId,
        index: usize,
        value: i64,
    ) -> Result<(), GraftError> {
        match self.rpc(Request::WriteRegionId { id, index, value }) {
            Reply::Unit(r) => r,
            _ => Err(transport_err()),
        }
    }

    fn read_region_slice_id(
        &self,
        id: RegionId,
        offset: usize,
        out: &mut [i64],
    ) -> Result<(), GraftError> {
        let mut buf = self.take_buf();
        buf.resize(out.len(), 0);
        match self.rpc(Request::ReadSliceId { id, offset, buf }) {
            Reply::SliceBuf(r, buf) => {
                if r.is_ok() {
                    out.copy_from_slice(&buf);
                }
                self.give_buf(buf);
                r
            }
            _ => Err(transport_err()),
        }
    }

    fn region_len(&self, id: RegionId) -> Result<usize, GraftError> {
        match self.rpc(Request::RegionLen(id)) {
            Reply::Len(r) => r,
            _ => Err(transport_err()),
        }
    }

    fn snapshot_region(&self, id: RegionId) -> Result<Vec<i64>, GraftError> {
        // Override the provided default (`region_len` + slice read would
        // cost two round trips): the whole region ships over the wire in
        // one rendezvous, sized by the server.
        let buf = self.take_buf();
        match self.rpc(Request::SnapshotRegion { id, buf }) {
            Reply::SliceBuf(Ok(()), buf) => Ok(buf),
            Reply::SliceBuf(Err(e), buf) => {
                self.give_buf(buf);
                Err(e)
            }
            _ => Err(transport_err()),
        }
    }

    fn restore_region(&mut self, id: RegionId, words: &[i64]) -> Result<(), GraftError> {
        // One round trip; the server-side default performs the exact-
        // length check before any write, so a partial restore is
        // rejected without touching region state.
        let mut buf = self.take_buf();
        buf.extend_from_slice(words);
        match self.rpc(Request::RestoreRegion { id, words: buf }) {
            Reply::UnitBuf(r, buf) => {
                self.give_buf(buf);
                r
            }
            _ => Err(transport_err()),
        }
    }

    fn set_fuel(&mut self, fuel: Option<u64>) {
        let _ = self.rpc(Request::SetFuel(fuel));
    }

    fn fuel_used(&self) -> Option<u64> {
        match self.rpc(Request::FuelUsed) {
            Reply::Fuel(f) => f,
            _ => None,
        }
    }

    fn fuel_metered(&self) -> bool {
        // The default would cost a wire round trip per batching
        // decision; answer conservatively without crossing the boundary.
        // (The upcall engine already amortizes its per-call cost through
        // its own `invoke_batch` RPC, so it gains nothing from fusing.)
        true
    }

    fn fork_for_shard(&self, shard: usize) -> Result<Box<dyn ExtensionEngine>, GraftError> {
        // Ask the server to fork its inner engine; the replica crosses
        // back over the reply channel and is re-hosted behind a *fresh*
        // server thread, so each shard owns a private protection-domain
        // boundary (no cross-shard serialization through one server).
        let inner = match self.rpc(Request::Fork(shard)) {
            Reply::Forked(r) => r?,
            _ => return Err(transport_err()),
        };
        let engine = UpcallEngine::new(inner).with_synthetic_latency(self.synthetic_latency);
        // The replica preserves handle meaning, so the warmed-up bind
        // caches carry over — names still cross each boundary only once
        // per graft, not once per shard fork.
        engine
            .entry_cache
            .borrow_mut()
            .clone_from(&self.entry_cache.borrow());
        engine
            .region_cache
            .borrow_mut()
            .clone_from(&self.region_cache.borrow());
        Ok(Box::new(engine))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine_native::{load_grail, SafetyMode};
    use graft_api::{RegionSpec, Trap};

    fn upcalled() -> UpcallEngine {
        let src = "fn add(a: int, b: int) -> int { buf[0] = a + b; return a + b; }\n\
                   fn spin(n: int) -> int { let i = 0; while i < n { i = i + 1; } return i; }";
        let inner = load_grail(
            src,
            &[RegionSpec::data("buf", 4)],
            SafetyMode::Safe { nil_checks: true },
        )
        .unwrap();
        UpcallEngine::new(Box::new(inner))
    }

    #[test]
    fn invoke_round_trips_through_the_server() {
        let mut e = upcalled();
        assert_eq!(e.technology(), Technology::UserLevel);
        assert_eq!(e.inner_technology(), Technology::SafeCompiled);
        assert_eq!(e.invoke("add", &[40, 2]).unwrap(), 42);
        assert_eq!(e.read_region("buf", 0).unwrap(), 42);
    }

    #[test]
    fn region_marshalling_crosses_the_boundary() {
        let mut e = upcalled();
        e.load_region("buf", 0, &[7, 8]).unwrap();
        e.write_region("buf", 2, 9).unwrap();
        let mut out = [0i64; 3];
        e.read_region_slice("buf", 0, &mut out).unwrap();
        assert_eq!(out, [7, 8, 9]);
    }

    #[test]
    fn errors_propagate_back_to_the_kernel() {
        let mut e = upcalled();
        assert!(e.invoke("nope", &[]).is_err());
        assert!(e.read_region("none", 0).is_err());
    }

    #[test]
    fn fuel_control_crosses_the_boundary() {
        let mut e = upcalled();
        e.set_fuel(Some(1_000_000));
        e.invoke("spin", &[500]).unwrap();
        assert!(e.fuel_used().unwrap() > 0);
    }

    #[test]
    fn roundtrip_measurement_is_positive() {
        let e = upcalled();
        let sample = e.measure_roundtrip(100);
        assert!(sample.mean_ns > 0.0);
    }

    #[test]
    fn synthetic_latency_slows_invocations() {
        let e = upcalled().with_synthetic_latency(Duration::from_micros(200));
        let slow = e.measure_roundtrip(20);
        drop(e);
        let fast = upcalled().measure_roundtrip(20);
        assert!(
            slow.mean_ns > fast.mean_ns + 150_000.0,
            "synthetic latency must dominate: slow={} fast={}",
            slow.mean_ns,
            fast.mean_ns
        );
    }

    #[test]
    fn bind_then_invoke_matches_string_invoke_across_the_boundary() {
        let mut e = upcalled();
        let id = e.bind_entry("add").unwrap();
        assert_eq!(e.bind_entry("add").unwrap(), id, "cached bind is stable");
        assert_eq!(e.invoke_id(id, &[20, 22]).unwrap(), 42);
        assert_eq!(e.invoke("add", &[20, 22]).unwrap(), 42);
        assert!(e.bind_entry("missing").is_err());

        let buf = e.bind_region("buf").unwrap();
        assert_eq!(e.bind_region("buf").unwrap(), buf);
        e.load_region_id(buf, 1, &[5, 6]).unwrap();
        assert_eq!(e.read_region_id(buf, 2).unwrap(), 6);
        e.write_region_id(buf, 3, 7).unwrap();
        let mut out = [0i64; 3];
        e.read_region_slice_id(buf, 1, &mut out).unwrap();
        assert_eq!(out, [5, 6, 7]);
        assert!(e.bind_region("nope").is_err());
    }

    #[test]
    fn snapshot_and_restore_ship_the_region_over_the_wire() {
        let mut e = upcalled();
        let buf = e.bind_region("buf").unwrap();
        e.load_region_id(buf, 0, &[11, -22, i64::MAX, 44]).unwrap();
        assert_eq!(e.region_len(buf).unwrap(), 4);
        let snap = e.snapshot_region(buf).unwrap();
        assert_eq!(snap, [11, -22, i64::MAX, 44]);
        e.load_region_id(buf, 0, &[0, 0, 0, 0]).unwrap();
        e.restore_region(buf, &snap).unwrap();
        assert_eq!(e.snapshot_region(buf).unwrap(), snap);
        // Partial restores are rejected before any write.
        assert!(e.restore_region(buf, &[1, 2]).is_err());
        assert_eq!(e.snapshot_region(buf).unwrap(), snap);
        // Stale handles fail cleanly on both paths.
        assert!(e.snapshot_region(RegionId(7)).is_err());
        assert!(e.region_len(RegionId(7)).is_err());
    }

    #[test]
    fn stale_handles_trap_across_the_boundary() {
        let mut e = upcalled();
        let err = e.invoke_id(EntryId(44), &[]).unwrap_err();
        assert!(matches!(
            err.as_trap(),
            Some(Trap::BadHandle { kind: "entry", id: 44 })
        ));
        let err = e.read_region_id(RegionId(33), 0).unwrap_err();
        assert!(matches!(
            err.as_trap(),
            Some(Trap::BadHandle { kind: "region", id: 33 })
        ));
    }

    #[test]
    fn batched_invoke_runs_many_calls_per_round_trip() {
        let mut e = upcalled();
        let id = e.bind_entry("add").unwrap();
        let mut out = Vec::new();
        e.invoke_batch(id, 3, &[1, 2, 10, 20, 100, 200], &mut out)
            .unwrap();
        assert_eq!(out, [3, 30, 300]);
        // A malformed shape fails on the client side without crossing.
        let mut out2 = Vec::new();
        assert!(e.invoke_batch(id, 2, &[1, 2, 3], &mut out2).is_err());
        assert!(out2.is_empty());
    }

    #[test]
    fn batched_invoke_returns_the_completed_prefix_on_trap() {
        let src = "fn inv(d: int) -> int { return 100 / d; }";
        let inner = load_grail(src, &[], SafetyMode::Safe { nil_checks: true }).unwrap();
        let mut e = UpcallEngine::new(Box::new(inner));
        let id = e.bind_entry("inv").unwrap();
        let mut out = Vec::new();
        let err = e.invoke_batch(id, 4, &[1, 2, 0, 4], &mut out).unwrap_err();
        assert_eq!(err.as_trap(), Some(&Trap::DivByZero));
        assert_eq!(out, [100, 50], "prefix before the faulting call");
    }

    #[test]
    fn fork_rehosts_a_replica_behind_its_own_server() {
        let mut parent = upcalled();
        let add = parent.bind_entry("add").unwrap();
        parent.load_region("buf", 1, &[7]).unwrap();

        let mut child = parent.fork_for_shard(2).unwrap();
        assert_eq!(child.technology(), Technology::UserLevel);
        // Parent-issued handles keep their meaning in the replica.
        assert_eq!(child.invoke_id(add, &[40, 2]).unwrap(), 42);
        // Install-time marshalled state propagated across the fork...
        assert_eq!(child.read_region("buf", 1).unwrap(), 7);
        // ...and post-fork writes are shard-local (the `add` above wrote
        // buf[0]=42 in the child only).
        assert_eq!(parent.read_region("buf", 0).unwrap(), 0);
        // Both boundaries stay live and independent.
        assert_eq!(parent.invoke("add", &[1, 2]).unwrap(), 3);
        assert_eq!(child.invoke("add", &[2, 3]).unwrap(), 5);
    }

    #[test]
    fn batched_measurement_is_cheaper_per_call_than_single() {
        let mut e = upcalled();
        let id = e.bind_entry("spin").unwrap();
        let single = e.measure_roundtrip(400);
        let batched = e.measure_batched_noop(id, 64, 400);
        assert!(
            batched.min_ns < single.min_ns,
            "batching must amortize the round trip: batched={} single={}",
            batched.min_ns,
            single.min_ns
        );
    }

    impl UpcallEngine {
        /// Test helper: batched measurement against `spin(0)`-style
        /// 1-arg entry with constant argument 0.
        fn measure_batched_noop(
            &mut self,
            entry: EntryId,
            batch: usize,
            roundtrips: usize,
        ) -> crate::stats::Sample {
            let args = vec![0i64; batch];
            let mut out = Vec::with_capacity(batch);
            crate::stats::measure_per_iter(10, roundtrips, || {
                out.clear();
                let _ = self.invoke_batch(entry, batch, &args, &mut out);
            })
            .per(batch)
        }
    }
}
