//! The user-level server transport (hardware-protection technology).
//!
//! Section 4.1 of the paper: the simplest way to protect the kernel
//! from an extension is to leave the extension outside the kernel's
//! address space and reach it by *upcall*. The cost is one protection-
//! domain crossing per invocation, which the paper bounds with signal
//! delivery time (Table 1) and with a real upcall mechanism (37.2 µs on
//! BSD/OS), and then treats as a parameter in Figure 1.
//!
//! [`UpcallEngine`] wraps any [`ExtensionEngine`] and moves it to a
//! dedicated server thread; every kernel-side call becomes a
//! rendezvous-channel round trip, a faithful stand-in for the
//! domain-crossing cost on a machine we cannot equip with a 1996
//! microkernel. A configurable synthetic latency can be added per
//! invocation for sweeps.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use graft_api::{ExtensionEngine, GraftError, Technology};
use graft_telemetry::{counter, histogram};

enum Request {
    Ping,
    Invoke { entry: String, args: Vec<i64> },
    LoadRegion { name: String, offset: usize, data: Vec<i64> },
    ReadRegion { name: String, index: usize },
    WriteRegion { name: String, index: usize, value: i64 },
    ReadSlice { name: String, offset: usize, len: usize },
    SetFuel(Option<u64>),
    FuelUsed,
    Shutdown,
}

enum Reply {
    Unit(Result<(), GraftError>),
    Int(Result<i64, GraftError>),
    Slice(Result<Vec<i64>, GraftError>),
    Fuel(Option<u64>),
}

/// An extension hosted in a user-level server, reached by upcall.
pub struct UpcallEngine {
    tx: SyncSender<Request>,
    rx: Receiver<Reply>,
    server: Option<std::thread::JoinHandle<()>>,
    synthetic_latency: Duration,
    inner_technology: Technology,
    /// Requests posted but not yet answered (the transport's queue
    /// depth; 0 or 1 for a rendezvous channel, recorded for telemetry).
    in_flight: Arc<AtomicUsize>,
}

impl UpcallEngine {
    /// Moves `engine` behind the upcall boundary.
    pub fn new(engine: Box<dyn ExtensionEngine>) -> Self {
        // Rendezvous channels: a zero-capacity `sync_channel` blocks the
        // sender until the server thread arrives, which is the faithful
        // stand-in for a synchronous protection-domain crossing.
        let (req_tx, req_rx) = sync_channel::<Request>(0);
        let (rep_tx, rep_rx) = sync_channel::<Reply>(0);
        let inner_technology = engine.technology();
        let server = std::thread::Builder::new()
            .name("graft-upcall-server".into())
            .spawn(move || serve(engine, req_rx, rep_tx))
            .expect("spawn upcall server");
        UpcallEngine {
            tx: req_tx,
            rx: rep_rx,
            server: Some(server),
            synthetic_latency: Duration::ZERO,
            inner_technology,
            in_flight: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Adds a synthetic per-invocation latency (busy-waited, so it
    /// behaves like CPU-consuming trap handling rather than a sleep).
    pub fn with_synthetic_latency(mut self, latency: Duration) -> Self {
        self.synthetic_latency = latency;
        self
    }

    /// The technology of the engine hosted inside the server.
    pub fn inner_technology(&self) -> Technology {
        self.inner_technology
    }

    fn rpc(&self, req: Request) -> Reply {
        if !self.synthetic_latency.is_zero() {
            let start = Instant::now();
            while start.elapsed() < self.synthetic_latency {
                std::hint::spin_loop();
            }
        }
        if !graft_telemetry::enabled() {
            self.tx.send(req).expect("upcall server alive");
            return self.rx.recv().expect("upcall server replies");
        }
        counter!("upcall.roundtrips").incr();
        histogram!("upcall.queue_depth")
            .record(self.in_flight.fetch_add(1, Ordering::Relaxed) as u64);
        let start = Instant::now();
        self.tx.send(req).expect("upcall server alive");
        let reply = self.rx.recv().expect("upcall server replies");
        histogram!("upcall.wait_ns").record_duration(start.elapsed());
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        reply
    }

    /// Measures the bare transport round trip (no engine work): the
    /// in-text "upcall time" measurement of §5.3.
    pub fn measure_roundtrip(&self, iterations: usize) -> crate::stats::Sample {
        assert!(iterations > 0);
        crate::stats::measure_per_iter(10, iterations, || {
            let _ = self.rpc(Request::Ping);
        })
    }
}

impl Drop for UpcallEngine {
    fn drop(&mut self) {
        let _ = self.tx.send(Request::Shutdown);
        if let Some(h) = self.server.take() {
            let _ = h.join();
        }
    }
}

fn serve(
    mut engine: Box<dyn ExtensionEngine>,
    rx: Receiver<Request>,
    tx: SyncSender<Reply>,
) {
    while let Ok(req) = rx.recv() {
        let reply = match req {
            Request::Ping => Reply::Unit(Ok(())),
            Request::Invoke { entry, args } => Reply::Int(engine.invoke(&entry, &args)),
            Request::LoadRegion { name, offset, data } => {
                Reply::Unit(engine.load_region(&name, offset, &data))
            }
            Request::ReadRegion { name, index } => Reply::Int(engine.read_region(&name, index)),
            Request::WriteRegion { name, index, value } => {
                Reply::Unit(engine.write_region(&name, index, value))
            }
            Request::ReadSlice { name, offset, len } => {
                let mut out = vec![0i64; len];
                Reply::Slice(
                    engine
                        .read_region_slice(&name, offset, &mut out)
                        .map(|()| out),
                )
            }
            Request::SetFuel(f) => {
                engine.set_fuel(f);
                Reply::Unit(Ok(()))
            }
            Request::FuelUsed => Reply::Fuel(engine.fuel_used()),
            Request::Shutdown => break,
        };
        if tx.send(reply).is_err() {
            break;
        }
    }
}

fn transport_err() -> GraftError {
    GraftError::UpcallFailed("unexpected reply type".into())
}

impl ExtensionEngine for UpcallEngine {
    fn technology(&self) -> Technology {
        Technology::UserLevel
    }

    fn invoke(&mut self, entry: &str, args: &[i64]) -> Result<i64, GraftError> {
        match self.rpc(Request::Invoke {
            entry: entry.to_string(),
            args: args.to_vec(),
        }) {
            Reply::Int(r) => r,
            _ => Err(transport_err()),
        }
    }

    fn load_region(&mut self, name: &str, offset: usize, data: &[i64]) -> Result<(), GraftError> {
        match self.rpc(Request::LoadRegion {
            name: name.to_string(),
            offset,
            data: data.to_vec(),
        }) {
            Reply::Unit(r) => r,
            _ => Err(transport_err()),
        }
    }

    fn read_region(&self, name: &str, index: usize) -> Result<i64, GraftError> {
        match self.rpc(Request::ReadRegion {
            name: name.to_string(),
            index,
        }) {
            Reply::Int(r) => r,
            _ => Err(transport_err()),
        }
    }

    fn write_region(&mut self, name: &str, index: usize, value: i64) -> Result<(), GraftError> {
        match self.rpc(Request::WriteRegion {
            name: name.to_string(),
            index,
            value,
        }) {
            Reply::Unit(r) => r,
            _ => Err(transport_err()),
        }
    }

    fn read_region_slice(
        &self,
        name: &str,
        offset: usize,
        out: &mut [i64],
    ) -> Result<(), GraftError> {
        match self.rpc(Request::ReadSlice {
            name: name.to_string(),
            offset,
            len: out.len(),
        }) {
            Reply::Slice(Ok(data)) => {
                out.copy_from_slice(&data);
                Ok(())
            }
            Reply::Slice(Err(e)) => Err(e),
            _ => Err(transport_err()),
        }
    }

    fn set_fuel(&mut self, fuel: Option<u64>) {
        let _ = self.rpc(Request::SetFuel(fuel));
    }

    fn fuel_used(&self) -> Option<u64> {
        match self.rpc(Request::FuelUsed) {
            Reply::Fuel(f) => f,
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine_native::{load_grail, SafetyMode};
    use graft_api::RegionSpec;

    fn upcalled() -> UpcallEngine {
        let src = "fn add(a: int, b: int) -> int { buf[0] = a + b; return a + b; }\n\
                   fn spin(n: int) -> int { let i = 0; while i < n { i = i + 1; } return i; }";
        let inner = load_grail(
            src,
            &[RegionSpec::data("buf", 4)],
            SafetyMode::Safe { nil_checks: true },
        )
        .unwrap();
        UpcallEngine::new(Box::new(inner))
    }

    #[test]
    fn invoke_round_trips_through_the_server() {
        let mut e = upcalled();
        assert_eq!(e.technology(), Technology::UserLevel);
        assert_eq!(e.inner_technology(), Technology::SafeCompiled);
        assert_eq!(e.invoke("add", &[40, 2]).unwrap(), 42);
        assert_eq!(e.read_region("buf", 0).unwrap(), 42);
    }

    #[test]
    fn region_marshalling_crosses_the_boundary() {
        let mut e = upcalled();
        e.load_region("buf", 0, &[7, 8]).unwrap();
        e.write_region("buf", 2, 9).unwrap();
        let mut out = [0i64; 3];
        e.read_region_slice("buf", 0, &mut out).unwrap();
        assert_eq!(out, [7, 8, 9]);
    }

    #[test]
    fn errors_propagate_back_to_the_kernel() {
        let mut e = upcalled();
        assert!(e.invoke("nope", &[]).is_err());
        assert!(e.read_region("none", 0).is_err());
    }

    #[test]
    fn fuel_control_crosses_the_boundary() {
        let mut e = upcalled();
        e.set_fuel(Some(1_000_000));
        e.invoke("spin", &[500]).unwrap();
        assert!(e.fuel_used().unwrap() > 0);
    }

    #[test]
    fn roundtrip_measurement_is_positive() {
        let e = upcalled();
        let sample = e.measure_roundtrip(100);
        assert!(sample.mean_ns > 0.0);
    }

    #[test]
    fn synthetic_latency_slows_invocations() {
        let e = upcalled().with_synthetic_latency(Duration::from_micros(200));
        let slow = e.measure_roundtrip(20);
        drop(e);
        let fast = upcalled().measure_roundtrip(20);
        assert!(
            slow.mean_ns > fast.mean_ns + 150_000.0,
            "synthetic latency must dominate: slow={} fast={}",
            slow.mean_ns,
            fast.mean_ns
        );
    }
}
