//! The VM paging machinery the Prioritization graft plugs into.
//!
//! The kernel keeps resident pages on an LRU queue; on a fault with no
//! free frame it consults its eviction policy. The default policy takes
//! the LRU head; with a graft installed, the paper's protocol applies:
//! the kernel *proposes* the head as a candidate, and the owning
//! process's graft may offer one of its other resident pages instead
//! (§3.1). The kernel tracks candidates and alternates so a graft cannot
//! inflate its share of memory (the Cao-style guard the paper assumes).

use std::collections::HashMap;

/// A page identifier.
pub type PageId = u64;

/// An intrusive doubly linked LRU queue over page ids.
///
/// Slots live in a `Vec`; the queue head is the least recently used
/// page. `touch` moves a page to the tail (most recently used) in O(1).
#[derive(Debug, Clone, Default)]
pub struct LruQueue {
    nodes: Vec<Node>,
    free: Vec<usize>,
    index: HashMap<PageId, usize>,
    head: Option<usize>,
    tail: Option<usize>,
}

#[derive(Debug, Clone)]
struct Node {
    page: PageId,
    prev: Option<usize>,
    next: Option<usize>,
}

impl LruQueue {
    /// An empty queue.
    pub fn new() -> Self {
        LruQueue::default()
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether `page` is resident.
    pub fn contains(&self, page: PageId) -> bool {
        self.index.contains_key(&page)
    }

    /// The least recently used page.
    pub fn head(&self) -> Option<PageId> {
        self.head.map(|i| self.nodes[i].page)
    }

    /// Inserts `page` as most recently used. Returns `false` if it was
    /// already resident (in which case it is touched instead).
    pub fn insert(&mut self, page: PageId) -> bool {
        if self.contains(page) {
            self.touch(page);
            return false;
        }
        let node = Node {
            page,
            prev: self.tail,
            next: None,
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.nodes[s] = node;
                s
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        if let Some(t) = self.tail {
            self.nodes[t].next = Some(slot);
        } else {
            self.head = Some(slot);
        }
        self.tail = Some(slot);
        self.index.insert(page, slot);
        true
    }

    /// Marks `page` most recently used. Returns `false` if not resident.
    pub fn touch(&mut self, page: PageId) -> bool {
        let Some(&slot) = self.index.get(&page) else {
            return false;
        };
        if self.tail == Some(slot) {
            return true;
        }
        self.unlink(slot);
        let tail = self.tail.expect("non-empty queue has a tail");
        self.nodes[tail].next = Some(slot);
        self.nodes[slot].prev = Some(tail);
        self.nodes[slot].next = None;
        self.tail = Some(slot);
        true
    }

    /// Removes `page`. Returns `false` if not resident.
    pub fn remove(&mut self, page: PageId) -> bool {
        let Some(slot) = self.index.remove(&page) else {
            return false;
        };
        self.unlink(slot);
        self.free.push(slot);
        true
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.nodes[slot].prev, self.nodes[slot].next);
        match prev {
            Some(p) => self.nodes[p].next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.nodes[n].prev = prev,
            None => self.tail = prev,
        }
        self.nodes[slot].prev = None;
        self.nodes[slot].next = None;
    }

    /// Pages from least to most recently used.
    pub fn iter_lru(&self) -> LruIter<'_> {
        LruIter {
            queue: self,
            at: self.head,
        }
    }
}

/// Iterator over an [`LruQueue`] in LRU order.
pub struct LruIter<'a> {
    queue: &'a LruQueue,
    at: Option<usize>,
}

impl Iterator for LruIter<'_> {
    type Item = PageId;

    fn next(&mut self) -> Option<PageId> {
        let slot = self.at?;
        let node = &self.queue.nodes[slot];
        self.at = node.next;
        Some(node.page)
    }
}

/// An eviction decision source.
pub trait EvictionPolicy {
    /// Chooses a victim among resident pages, given the LRU queue. The
    /// kernel's candidate is the queue head.
    fn select_victim(&mut self, queue: &LruQueue) -> Option<PageId>;
}

/// Boxed policies forward, so a [`Pager`] can host a policy chosen at
/// run time (the graft-host attach point installs through this seam).
impl<T: EvictionPolicy + ?Sized> EvictionPolicy for Box<T> {
    fn select_victim(&mut self, queue: &LruQueue) -> Option<PageId> {
        (**self).select_victim(queue)
    }
}

/// The kernel default: evict the LRU head.
#[derive(Debug, Default, Clone, Copy)]
pub struct LruPolicy;

impl EvictionPolicy for LruPolicy {
    fn select_victim(&mut self, queue: &LruQueue) -> Option<PageId> {
        queue.head()
    }
}

/// Evict the most recently used page — the sequential-scan policy the
/// paper motivates ("each block of a file will be read once, in order").
#[derive(Debug, Default, Clone, Copy)]
pub struct MruPolicy;

impl EvictionPolicy for MruPolicy {
    fn select_victim(&mut self, queue: &LruQueue) -> Option<PageId> {
        queue.iter_lru().last()
    }
}

/// Paging statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagerStats {
    /// Accesses that hit a resident page.
    pub hits: u64,
    /// Faults (page not resident).
    pub faults: u64,
    /// Evictions performed.
    pub evictions: u64,
    /// Faults on pages that had been evicted earlier (re-faults — the
    /// cost a good eviction graft avoids).
    pub refaults: u64,
}

/// A fixed-size page frame pool driven by an [`EvictionPolicy`].
pub struct Pager<P: EvictionPolicy> {
    frames: usize,
    queue: LruQueue,
    policy: P,
    evicted_before: std::collections::HashSet<PageId>,
    stats: PagerStats,
}

impl<P: EvictionPolicy> Pager<P> {
    /// A pager with `frames` physical frames.
    pub fn new(frames: usize, policy: P) -> Self {
        assert!(frames > 0, "need at least one frame");
        Pager {
            frames,
            queue: LruQueue::new(),
            policy,
            evicted_before: std::collections::HashSet::new(),
            stats: PagerStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> PagerStats {
        self.stats
    }

    /// The resident queue (for marshalling to grafts).
    pub fn queue(&self) -> &LruQueue {
        &self.queue
    }

    /// Mutable policy access (to feed application hints to a graft).
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// Touches `page`, faulting it in (and evicting if needed). Returns
    /// the evicted page, if any.
    pub fn access(&mut self, page: PageId) -> Option<PageId> {
        if self.queue.contains(page) {
            self.stats.hits += 1;
            self.queue.touch(page);
            return None;
        }
        self.stats.faults += 1;
        if self.evicted_before.contains(&page) {
            self.stats.refaults += 1;
        }
        let mut evicted = None;
        if self.queue.len() >= self.frames {
            let victim = self
                .policy
                .select_victim(&self.queue)
                .filter(|v| self.queue.contains(*v))
                .or_else(|| self.queue.head())
                .expect("resident set is non-empty");
            self.queue.remove(victim);
            self.evicted_before.insert(victim);
            self.stats.evictions += 1;
            evicted = Some(victim);
        }
        self.queue.insert(page);
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_orders_lru_to_mru() {
        let mut q = LruQueue::new();
        for p in [1, 2, 3] {
            q.insert(p);
        }
        assert_eq!(q.iter_lru().collect::<Vec<_>>(), vec![1, 2, 3]);
        q.touch(1);
        assert_eq!(q.iter_lru().collect::<Vec<_>>(), vec![2, 3, 1]);
        assert_eq!(q.head(), Some(2));
    }

    #[test]
    fn remove_relinks_neighbours() {
        let mut q = LruQueue::new();
        for p in [1, 2, 3, 4] {
            q.insert(p);
        }
        assert!(q.remove(2));
        assert!(!q.remove(2));
        assert_eq!(q.iter_lru().collect::<Vec<_>>(), vec![1, 3, 4]);
        assert!(q.remove(1));
        assert!(q.remove(4));
        assert_eq!(q.iter_lru().collect::<Vec<_>>(), vec![3]);
        assert!(q.remove(3));
        assert!(q.is_empty());
        assert_eq!(q.head(), None);
    }

    #[test]
    fn slots_are_reused_after_removal() {
        let mut q = LruQueue::new();
        for p in 0..100 {
            q.insert(p);
        }
        for p in 0..100 {
            q.remove(p);
        }
        for p in 100..200 {
            q.insert(p);
        }
        assert!(q.nodes.len() <= 100, "free list must recycle slots");
    }

    #[test]
    fn duplicate_insert_touches() {
        let mut q = LruQueue::new();
        q.insert(1);
        q.insert(2);
        assert!(!q.insert(1));
        assert_eq!(q.iter_lru().collect::<Vec<_>>(), vec![2, 1]);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pager_evicts_lru_by_default() {
        let mut p = Pager::new(2, LruPolicy);
        assert_eq!(p.access(1), None);
        assert_eq!(p.access(2), None);
        assert_eq!(p.access(3), Some(1));
        let s = p.stats();
        assert_eq!(s.faults, 3);
        assert_eq!(s.evictions, 1);
    }

    #[test]
    fn mru_policy_beats_lru_on_sequential_scan() {
        // Scan 0..N repeatedly with fewer frames than pages: LRU evicts
        // exactly what is needed next (0 hits); MRU retains a stable
        // prefix. This is the paper's §3.1 motivating example.
        let frames = 8;
        let pages = 12;
        let mut lru = Pager::new(frames, LruPolicy);
        let mut mru = Pager::new(frames, MruPolicy);
        for _ in 0..10 {
            for page in 0..pages {
                lru.access(page);
                mru.access(page);
            }
        }
        assert_eq!(lru.stats().hits, 0, "LRU thrashes on a loop scan");
        assert!(
            mru.stats().hits > (frames as u64 - 2) * 9,
            "MRU should retain a stable prefix: {:?}",
            mru.stats()
        );
    }

    #[test]
    fn refaults_are_counted() {
        let mut p = Pager::new(1, LruPolicy);
        p.access(1);
        p.access(2); // evicts 1
        p.access(1); // refault
        assert_eq!(p.stats().refaults, 1);
    }
}
