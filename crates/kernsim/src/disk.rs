//! A parametric disk model, plus a deterministic fault-injecting
//! wrapper.
//!
//! The paper converts graft compute times into verdicts by comparing
//! them with disk costs: Table 4's write bandwidth turns into "can MD5
//! keep up with the disk?", and Table 6's per-block overhead is judged
//! against "1% of a typical disk seek time". This model provides those
//! costs, either with 1996-class defaults or calibrated from the live
//! bandwidth measurement in [`crate::measure::diskbw`].
//!
//! [`FaultyDisk`] wraps the model for the Table 9/14 recovery and
//! durability experiments: seeded transient I/O errors with bounded
//! retry, torn segment writes, latent bit-rot in persisted segments,
//! and a crash point after a fixed number of charged I/Os. Fault costs
//! are charged *outside* the model's `disk.model_*` counters so that a
//! chaos run does not skew the Table 4/6 cost attribution; they get
//! their own `disk.retries` / `disk.torn_writes` / `disk.faults.*`
//! counters instead. Bit-rot in particular costs nothing at write time
//! (the flip is silent and latent); the price is paid later, by
//! whatever audit detects it.

use graft_rng::{Rng, SmallRng};
use std::time::Duration;

/// Disk geometry and timing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Average seek time.
    pub avg_seek: Duration,
    /// Average rotational delay (half a revolution).
    pub avg_rotation: Duration,
    /// Sequential transfer bandwidth, bytes per second.
    pub bandwidth: f64,
    /// Block size in bytes.
    pub block_size: usize,
    /// Blocks per segment (for Logical Disk batching).
    pub segment_blocks: usize,
}

impl Default for DiskModel {
    /// A mid-90s SCSI disk, in the range of the paper's Table 4
    /// machines (1.7–4.4 MB/s write bandwidth).
    fn default() -> Self {
        DiskModel {
            avg_seek: Duration::from_micros(9_000),
            avg_rotation: Duration::from_micros(4_200), // 7200 RPM / 2
            bandwidth: 3.0 * 1024.0 * 1024.0,
            block_size: 4096,
            segment_blocks: 16,
        }
    }
}

impl DiskModel {
    /// A model calibrated to a measured bandwidth (from the Table 4
    /// live measurement) keeping default mechanical latencies.
    pub fn with_bandwidth(bytes_per_sec: f64) -> Self {
        DiskModel {
            bandwidth: bytes_per_sec,
            ..DiskModel::default()
        }
    }

    /// Pure transfer time for `bytes` at full bandwidth.
    pub fn transfer(&self, bytes: usize) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.bandwidth)
    }

    /// Time for one random-access I/O of `blocks` contiguous blocks:
    /// seek + rotation + transfer.
    ///
    /// Model accounting: every random I/O the cost model charges is
    /// counted, so a run artifact records how much simulated disk work
    /// each experiment's verdicts rest on.
    pub fn random_io(&self, blocks: usize) -> Duration {
        graft_telemetry::counter!("disk.model_ios").incr();
        graft_telemetry::counter!("disk.model_blocks").add(blocks as u64);
        self.avg_seek + self.avg_rotation + self.transfer(blocks * self.block_size)
    }

    /// Time to write one full segment sequentially (one seek, then
    /// streaming) — the Logical Disk's batched write.
    pub fn segment_write(&self) -> Duration {
        graft_telemetry::counter!("disk.model_segment_writes").incr();
        self.random_io(self.segment_blocks)
    }

    /// Time to write `n` scattered blocks individually (no batching) —
    /// the Logical Disk's counterfactual.
    pub fn scattered_writes(&self, n: usize) -> Duration {
        let one = self.random_io(1);
        one * n as u32
    }

    /// Per-block time saved by batching `segment_blocks` scattered
    /// writes into one segment write. A Logical Disk graft breaks even
    /// when its per-write bookkeeping is below this (§5.6).
    pub fn batching_saving_per_block(&self) -> Duration {
        let scattered = self.scattered_writes(self.segment_blocks);
        let batched = self.segment_write();
        (scattered - batched) / self.segment_blocks as u32
    }

    /// Time to access 1 MB at streaming bandwidth — Table 4's derived
    /// column, the denominator of Table 5's MD5/disk ratio.
    pub fn megabyte_access(&self) -> Duration {
        self.transfer(1 << 20)
    }

    /// Hard page-fault time: fixed kernel overhead plus one random I/O
    /// of `read_ahead` pages of `page_size` bytes (Table 3's model; the
    /// paper's Alpha and HP-UX rows bring in 16 and 4 pages per fault).
    pub fn page_fault(&self, soft_overhead: Duration, page_size: usize, read_ahead: usize) -> Duration {
        graft_telemetry::counter!("disk.model_page_faults").incr();
        let blocks = (page_size * read_ahead).div_ceil(self.block_size);
        soft_overhead + self.random_io(blocks.max(1))
    }
}

/// A deterministic fault-injection plan.
///
/// All-integer (and `Eq`) so it can sit inside an experiment
/// `RunConfig` and be serialized into run artifacts bit-stably.
/// Probabilities are expressed in permille (‰, parts per thousand).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the injection RNG: the same plan replays the same
    /// faults at the same I/Os, every run.
    pub seed: u64,
    /// Probability (‰) that any single I/O attempt fails transiently
    /// and must be retried.
    pub io_error_permille: u16,
    /// Probability (‰) that a segment write is torn and must be
    /// rewritten after the summary-block checksum rejects it.
    pub torn_permille: u16,
    /// Probability (‰) that a persisted segment silently rots — one
    /// stored bit flips in its mapping payload or summary block
    /// (chosen by the rng). Drawn once per segment via
    /// [`FaultyDisk::bitrot`]; free at write time, latent until an
    /// audit catches it.
    pub bitrot_permille: u16,
    /// Hard-crash the disk after this many charged I/Os; every
    /// operation fails with [`DiskFault::Crashed`] until
    /// [`FaultyDisk::recover`].
    pub crash_after_ios: Option<u64>,
    /// Retries allowed per I/O before it is abandoned with
    /// [`DiskFault::RetriesExhausted`].
    pub max_retries: u32,
}

impl FaultPlan {
    /// The standard chaos mix used by the Table 9 experiment: 2% of
    /// I/O attempts fail transiently, 1% of segment writes tear, four
    /// retries per I/O, no crash point.
    pub fn chaos(seed: u64) -> Self {
        FaultPlan {
            seed,
            io_error_permille: 20,
            torn_permille: 10,
            bitrot_permille: 0,
            crash_after_ios: None,
            max_retries: 4,
        }
    }

    /// A plan that injects nothing but still routes through the fault
    /// layer — the control arm of a fault experiment.
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            io_error_permille: 0,
            torn_permille: 0,
            bitrot_permille: 0,
            crash_after_ios: None,
            max_retries: 4,
        }
    }

    /// Returns the plan with a crash armed after `n` charged I/Os.
    pub fn with_crash_after(self, n: u64) -> Self {
        FaultPlan {
            crash_after_ios: Some(n),
            ..self
        }
    }

    /// Returns the plan with latent bit-rot armed at `permille`‰ per
    /// persisted segment.
    pub fn with_bitrot(self, permille: u16) -> Self {
        FaultPlan {
            bitrot_permille: permille,
            ..self
        }
    }
}

/// A latent bit-rot event drawn for one just-persisted segment: which
/// stored region rots and the entropy that picks the exact word and
/// bit. The flip itself is the storage layer's business (the logdisk's
/// `corrupt_segment` applies it); the disk only decides — seeded, so
/// the same plan rots the same segments every run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bitrot {
    /// Rot the summary block (`true`) or the mapping payload.
    pub summary: bool,
    /// Entropy for choosing the word and bit to flip.
    pub entropy: u64,
}

/// Terminal failure surfaced by [`FaultyDisk`]. Transient errors are
/// retried internally and never escape; these two do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// The armed crash point fired (or already had): the disk answers
    /// nothing until [`FaultyDisk::recover`].
    Crashed,
    /// A single I/O kept failing past [`FaultPlan::max_retries`].
    RetriesExhausted {
        /// Attempts made, including the first.
        attempts: u32,
    },
}

impl std::fmt::Display for DiskFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskFault::Crashed => write!(f, "disk crashed at armed crash point"),
            DiskFault::RetriesExhausted { attempts } => {
                write!(f, "I/O failed after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for DiskFault {}

/// Counters accumulated by a [`FaultyDisk`], flushed to telemetry once
/// at drop (never per-op: the fault layer sits on measured paths).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// I/Os charged (first attempts; retries are not new I/Os).
    pub ios: u64,
    /// Transient errors injected (each forces a retry or exhaustion).
    pub injected: u64,
    /// Retries performed after transient errors.
    pub retries: u64,
    /// Segment writes torn and rewritten.
    pub torn_writes: u64,
    /// I/Os abandoned after exhausting the retry budget.
    pub exhausted: u64,
    /// Crash-point firings.
    pub crashes: u64,
    /// Latent bit-rot events drawn ([`FaultyDisk::bitrot`]). Unlike
    /// every other class these are *silent*: nothing downstream knows
    /// until an audit detects the flip, so drills assert
    /// `bitrot == detected + undetected-by-design` explicitly.
    pub bitrot: u64,
}

/// A [`DiskModel`] behind a deterministic fault injector.
///
/// The first attempt of every operation is charged through the model
/// (so `disk.model_ios` etc. still count exactly the useful work);
/// retry and rewrite penalties are computed from the model's raw
/// latencies *without* touching its counters, and accounted under
/// `disk.retries` / `disk.torn_writes` instead.
#[derive(Debug, Clone)]
pub struct FaultyDisk {
    model: DiskModel,
    plan: FaultPlan,
    rng: SmallRng,
    /// I/Os charged since construction or the last [`recover`].
    ///
    /// [`recover`]: FaultyDisk::recover
    ios: u64,
    crashed: bool,
    stats: FaultStats,
}

impl FaultyDisk {
    /// Wraps `model` under `plan`, seeding the injection RNG from the
    /// plan.
    pub fn new(model: DiskModel, plan: FaultPlan) -> Self {
        FaultyDisk {
            model,
            plan,
            rng: SmallRng::seed_from_u64(plan.seed ^ 0xD15C_FA17),
            ios: 0,
            crashed: false,
            stats: FaultStats::default(),
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &DiskModel {
        &self.model
    }

    /// The active plan.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Accumulated fault statistics.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Whether the armed crash point has fired and not been recovered.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Clears the crash state and disarms the crash point; the I/O
    /// counter restarts so a fresh `with_crash_after` plan could be
    /// applied by rebuilding the wrapper.
    pub fn recover(&mut self) {
        self.crashed = false;
        self.plan.crash_after_ios = None;
        self.ios = 0;
    }

    /// Charges one I/O against the crash budget.
    fn charge(&mut self) -> Result<(), DiskFault> {
        if self.crashed {
            return Err(DiskFault::Crashed);
        }
        if let Some(n) = self.plan.crash_after_ios {
            if self.ios >= n {
                self.crashed = true;
                self.stats.crashes += 1;
                return Err(DiskFault::Crashed);
            }
        }
        self.ios += 1;
        self.stats.ios += 1;
        Ok(())
    }

    /// Runs the transient-error retry loop on top of a base cost.
    /// Each retry adds one seek + rotation, scaled linearly as crude
    /// backoff, charged outside the model's counters.
    fn retry_loop(&mut self, base: Duration) -> Result<Duration, DiskFault> {
        let p = f64::from(self.plan.io_error_permille) / 1000.0;
        if p <= 0.0 {
            return Ok(base);
        }
        let mut total = base;
        let mut attempts = 1u32;
        while self.rng.gen_bool(p) {
            self.stats.injected += 1;
            if attempts > self.plan.max_retries {
                self.stats.exhausted += 1;
                return Err(DiskFault::RetriesExhausted { attempts });
            }
            self.stats.retries += 1;
            total += (self.model.avg_seek + self.model.avg_rotation) * attempts;
            attempts += 1;
        }
        Ok(total)
    }

    /// Fault-injected [`DiskModel::random_io`].
    pub fn random_io(&mut self, blocks: usize) -> Result<Duration, DiskFault> {
        self.charge()?;
        let base = self.model.random_io(blocks);
        self.retry_loop(base)
    }

    /// Fault-injected [`DiskModel::segment_write`]: transient errors
    /// retry as for `random_io`; a torn write is detected by the
    /// summary-block checksum and the whole segment is rewritten
    /// (one more seek + rotation + full transfer, off the model's
    /// books).
    pub fn segment_write(&mut self) -> Result<Duration, DiskFault> {
        self.charge()?;
        let base = self.model.segment_write();
        let mut total = self.retry_loop(base)?;
        let torn = f64::from(self.plan.torn_permille) / 1000.0;
        if torn > 0.0 && self.rng.gen_bool(torn) {
            self.stats.torn_writes += 1;
            total += self.model.avg_seek
                + self.model.avg_rotation
                + self.model.transfer(self.model.segment_blocks * self.model.block_size);
        }
        Ok(total)
    }

    /// Draws the bit-rot verdict for one just-persisted segment:
    /// `Some` means one stored bit of that segment silently flips
    /// (summary block with probability 1/4, mapping payload otherwise).
    /// Costs nothing and is charged nowhere — rot is latent by
    /// definition; only [`FaultStats::bitrot`] records that the event
    /// was drawn, so a drill can reconcile injected against detected.
    pub fn bitrot(&mut self) -> Option<Bitrot> {
        let p = f64::from(self.plan.bitrot_permille) / 1000.0;
        if p <= 0.0 || !self.rng.gen_bool(p) {
            return None;
        }
        self.stats.bitrot += 1;
        Some(Bitrot {
            summary: self.rng.gen_range(0..4u32) == 0,
            entropy: self.rng.next_u64(),
        })
    }
}

impl Drop for FaultyDisk {
    /// Flushes fault accounting once at teardown — distinct counters
    /// from the model's `disk.model_*` family so chaos runs do not
    /// skew Table 4/6 attribution.
    fn drop(&mut self) {
        if !graft_telemetry::enabled() {
            return;
        }
        let s = self.stats;
        graft_telemetry::counter!("disk.faulty_ios").add(s.ios);
        graft_telemetry::counter!("disk.retries").add(s.retries);
        graft_telemetry::counter!("disk.torn_writes").add(s.torn_writes);
        graft_telemetry::counter!("disk.faults.injected").add(s.injected);
        graft_telemetry::counter!("disk.faults.exhausted").add(s.exhausted);
        graft_telemetry::counter!("disk.faults.crashes").add(s.crashes);
        graft_telemetry::counter!("disk.faults.bitrot").add(s.bitrot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_scales_linearly() {
        let d = DiskModel::default();
        let one = d.transfer(1 << 20);
        let two = d.transfer(2 << 20);
        assert!((two.as_secs_f64() / one.as_secs_f64() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn default_megabyte_access_matches_paper_band() {
        // The paper's Table 4: 235–604 ms per MB. Our default 3 MB/s
        // disk gives ~333 ms.
        let ms = DiskModel::default().megabyte_access().as_millis();
        assert!((200..700).contains(&ms), "got {ms}ms");
    }

    #[test]
    fn batching_saves_most_of_the_seek() {
        let d = DiskModel::default();
        let saving = d.batching_saving_per_block();
        // Per scattered block we pay ~13.2ms mechanical; batched we
        // amortize one seek over 16 blocks, so the saving approaches
        // 15/16 of the mechanical cost.
        assert!(saving > Duration::from_millis(10), "got {saving:?}");
        assert!(saving < d.random_io(1));
    }

    #[test]
    fn page_fault_grows_with_read_ahead() {
        let d = DiskModel::default();
        let soft = Duration::from_micros(3);
        let one = d.page_fault(soft, 4096, 1);
        let sixteen = d.page_fault(soft, 4096, 16);
        assert!(sixteen > one);
        // Read-ahead only adds transfer, not extra seeks.
        assert!(sixteen < one * 16);
    }

    #[test]
    fn calibration_changes_only_bandwidth() {
        let d = DiskModel::with_bandwidth(10.0 * 1024.0 * 1024.0);
        assert_eq!(d.avg_seek, DiskModel::default().avg_seek);
        assert!(d.megabyte_access() < DiskModel::default().megabyte_access());
    }

    #[test]
    fn fault_injection_is_deterministic_in_the_seed() {
        let plan = FaultPlan::chaos(77);
        let run = |mut d: FaultyDisk| {
            let mut log = Vec::new();
            for i in 0..400 {
                if i % 5 == 0 {
                    log.push(d.segment_write());
                } else {
                    log.push(d.random_io(1));
                }
            }
            (log, d.stats())
        };
        let (a, sa) = run(FaultyDisk::new(DiskModel::default(), plan));
        let (b, sb) = run(FaultyDisk::new(DiskModel::default(), plan));
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        // The chaos preset actually injects something over 400 I/Os.
        assert!(sa.injected > 0, "chaos injected nothing: {sa:?}");
        // A different seed reshuffles the faults.
        let (c, _) = run(FaultyDisk::new(DiskModel::default(), FaultPlan::chaos(78)));
        assert_ne!(a, c);
    }

    #[test]
    fn quiet_plan_matches_the_bare_model() {
        let model = DiskModel::default();
        let mut d = FaultyDisk::new(model, FaultPlan::quiet(1));
        assert_eq!(d.random_io(4).unwrap(), model.random_io(4));
        assert_eq!(d.segment_write().unwrap(), model.segment_write());
        let s = d.stats();
        assert_eq!(s.ios, 2);
        assert_eq!(
            (s.injected, s.retries, s.torn_writes, s.exhausted, s.crashes),
            (0, 0, 0, 0, 0)
        );
    }

    #[test]
    fn retries_cost_extra_but_stay_off_the_model_books() {
        // Force a high error rate so retries certainly occur, then
        // check every successful I/O costs at least the clean price and
        // the retry accounting matches the injected count minus
        // exhaustions (an exhausted I/O burned its retries too).
        let plan = FaultPlan {
            seed: 9,
            io_error_permille: 400,
            torn_permille: 0,
            bitrot_permille: 0,
            crash_after_ios: None,
            max_retries: 3,
        };
        let model = DiskModel::default();
        let clean = model.random_io(1);
        let mut d = FaultyDisk::new(model, plan);
        let mut ok = 0u64;
        let mut failed = 0u64;
        for _ in 0..500 {
            match d.random_io(1) {
                Ok(t) => {
                    ok += 1;
                    assert!(t >= clean);
                }
                Err(DiskFault::RetriesExhausted { attempts }) => {
                    failed += 1;
                    assert!(attempts > plan.max_retries);
                }
                Err(DiskFault::Crashed) => unreachable!("no crash armed"),
            }
        }
        let s = d.stats();
        assert_eq!(ok + failed, 500);
        assert_eq!(s.ios, 500, "retries must not be charged as new I/Os");
        assert_eq!(s.exhausted, failed);
        assert!(s.retries > 0);
        assert!(s.injected >= s.retries);
    }

    #[test]
    fn crash_point_fires_once_and_recovers() {
        let plan = FaultPlan::quiet(3).with_crash_after(5);
        let mut d = FaultyDisk::new(DiskModel::default(), plan);
        for _ in 0..5 {
            d.random_io(1).unwrap();
        }
        assert_eq!(d.random_io(1), Err(DiskFault::Crashed));
        assert!(d.crashed());
        // Everything fails until recovery, including segment writes.
        assert_eq!(d.segment_write(), Err(DiskFault::Crashed));
        assert_eq!(d.stats().crashes, 1, "crash counted once, not per op");
        d.recover();
        assert!(!d.crashed());
        d.random_io(1).unwrap();
        assert_eq!(d.stats().ios, 6);
    }

    #[test]
    fn torn_segment_writes_pay_a_rewrite() {
        let plan = FaultPlan {
            seed: 5,
            io_error_permille: 0,
            torn_permille: 1000, // every segment write tears
            bitrot_permille: 0,
            crash_after_ios: None,
            max_retries: 0,
        };
        let model = DiskModel::default();
        let clean = model.segment_write();
        let mut d = FaultyDisk::new(model, plan);
        let t = d.segment_write().unwrap();
        assert!(t > clean * 2 - Duration::from_micros(1), "got {t:?}");
        assert_eq!(d.stats().torn_writes, 1);
    }

    #[test]
    fn bitrot_is_deterministic_and_counted_but_free() {
        let plan = FaultPlan::quiet(31).with_bitrot(250);
        let draw = |plan: FaultPlan| {
            let mut d = FaultyDisk::new(DiskModel::default(), plan);
            let mut events = Vec::new();
            for _ in 0..200 {
                // Segment write price is unchanged by armed bit-rot
                // (rot is latent, never a write-time cost)...
                assert_eq!(d.segment_write().unwrap(), d.model().segment_write());
                events.push(d.bitrot());
            }
            (events, d.stats())
        };
        let (a, sa) = draw(plan);
        let (b, sb) = draw(plan);
        assert_eq!(a, b, "same plan must rot the same segments");
        assert_eq!(sa, sb);
        // ...but every drawn event is accounted.
        let drawn = a.iter().flatten().count() as u64;
        assert!(drawn > 0, "250‰ over 200 segments drew nothing");
        assert_eq!(sa.bitrot, drawn);
        // Both targets occur over a long enough run.
        assert!(a.iter().flatten().any(|r| r.summary));
        assert!(a.iter().flatten().any(|r| !r.summary));
        // A different seed rots differently.
        let (c, _) = draw(FaultPlan::quiet(32).with_bitrot(250));
        assert_ne!(a, c);
    }

    #[test]
    fn quiet_and_chaos_plans_draw_no_bitrot() {
        for plan in [FaultPlan::quiet(4), FaultPlan::chaos(4)] {
            assert_eq!(plan.bitrot_permille, 0);
            let mut d = FaultyDisk::new(DiskModel::default(), plan);
            for _ in 0..100 {
                assert_eq!(d.bitrot(), None);
            }
            assert_eq!(d.stats().bitrot, 0);
        }
    }

    #[test]
    fn fault_stats_classes_reconcile_under_a_mixed_plan() {
        // Every injected fault lands in exactly one downstream bucket:
        // transient errors become retries or exhaustions; torn writes
        // and bit-rot draws are their own classes. The totals must
        // reconcile exactly — no fault may vanish from the books.
        let plan = FaultPlan {
            seed: 17,
            io_error_permille: 100,
            torn_permille: 50,
            bitrot_permille: 80,
            crash_after_ios: None,
            max_retries: 2,
        };
        let mut d = FaultyDisk::new(DiskModel::default(), plan);
        let mut exhausted_seen = 0u64;
        for _ in 0..600 {
            if let Err(DiskFault::RetriesExhausted { .. }) = d.segment_write() {
                exhausted_seen += 1;
            }
            let _ = d.bitrot();
        }
        let s = d.stats();
        assert_eq!(s.ios, 600);
        assert_eq!(s.exhausted, exhausted_seen);
        // Transient injections split exactly into retries performed and
        // the final straw of each exhausted I/O.
        assert_eq!(s.injected, s.retries + s.exhausted);
        assert!(s.torn_writes > 0);
        assert!(s.bitrot > 0);
    }
}
