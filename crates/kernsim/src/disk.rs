//! A parametric disk model.
//!
//! The paper converts graft compute times into verdicts by comparing
//! them with disk costs: Table 4's write bandwidth turns into "can MD5
//! keep up with the disk?", and Table 6's per-block overhead is judged
//! against "1% of a typical disk seek time". This model provides those
//! costs, either with 1996-class defaults or calibrated from the live
//! bandwidth measurement in [`crate::measure::diskbw`].

use std::time::Duration;

/// Disk geometry and timing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Average seek time.
    pub avg_seek: Duration,
    /// Average rotational delay (half a revolution).
    pub avg_rotation: Duration,
    /// Sequential transfer bandwidth, bytes per second.
    pub bandwidth: f64,
    /// Block size in bytes.
    pub block_size: usize,
    /// Blocks per segment (for Logical Disk batching).
    pub segment_blocks: usize,
}

impl Default for DiskModel {
    /// A mid-90s SCSI disk, in the range of the paper's Table 4
    /// machines (1.7–4.4 MB/s write bandwidth).
    fn default() -> Self {
        DiskModel {
            avg_seek: Duration::from_micros(9_000),
            avg_rotation: Duration::from_micros(4_200), // 7200 RPM / 2
            bandwidth: 3.0 * 1024.0 * 1024.0,
            block_size: 4096,
            segment_blocks: 16,
        }
    }
}

impl DiskModel {
    /// A model calibrated to a measured bandwidth (from the Table 4
    /// live measurement) keeping default mechanical latencies.
    pub fn with_bandwidth(bytes_per_sec: f64) -> Self {
        DiskModel {
            bandwidth: bytes_per_sec,
            ..DiskModel::default()
        }
    }

    /// Pure transfer time for `bytes` at full bandwidth.
    pub fn transfer(&self, bytes: usize) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.bandwidth)
    }

    /// Time for one random-access I/O of `blocks` contiguous blocks:
    /// seek + rotation + transfer.
    ///
    /// Model accounting: every random I/O the cost model charges is
    /// counted, so a run artifact records how much simulated disk work
    /// each experiment's verdicts rest on.
    pub fn random_io(&self, blocks: usize) -> Duration {
        graft_telemetry::counter!("disk.model_ios").incr();
        graft_telemetry::counter!("disk.model_blocks").add(blocks as u64);
        self.avg_seek + self.avg_rotation + self.transfer(blocks * self.block_size)
    }

    /// Time to write one full segment sequentially (one seek, then
    /// streaming) — the Logical Disk's batched write.
    pub fn segment_write(&self) -> Duration {
        graft_telemetry::counter!("disk.model_segment_writes").incr();
        self.random_io(self.segment_blocks)
    }

    /// Time to write `n` scattered blocks individually (no batching) —
    /// the Logical Disk's counterfactual.
    pub fn scattered_writes(&self, n: usize) -> Duration {
        let one = self.random_io(1);
        one * n as u32
    }

    /// Per-block time saved by batching `segment_blocks` scattered
    /// writes into one segment write. A Logical Disk graft breaks even
    /// when its per-write bookkeeping is below this (§5.6).
    pub fn batching_saving_per_block(&self) -> Duration {
        let scattered = self.scattered_writes(self.segment_blocks);
        let batched = self.segment_write();
        (scattered - batched) / self.segment_blocks as u32
    }

    /// Time to access 1 MB at streaming bandwidth — Table 4's derived
    /// column, the denominator of Table 5's MD5/disk ratio.
    pub fn megabyte_access(&self) -> Duration {
        self.transfer(1 << 20)
    }

    /// Hard page-fault time: fixed kernel overhead plus one random I/O
    /// of `read_ahead` pages of `page_size` bytes (Table 3's model; the
    /// paper's Alpha and HP-UX rows bring in 16 and 4 pages per fault).
    pub fn page_fault(&self, soft_overhead: Duration, page_size: usize, read_ahead: usize) -> Duration {
        graft_telemetry::counter!("disk.model_page_faults").incr();
        let blocks = (page_size * read_ahead).div_ceil(self.block_size);
        soft_overhead + self.random_io(blocks.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_scales_linearly() {
        let d = DiskModel::default();
        let one = d.transfer(1 << 20);
        let two = d.transfer(2 << 20);
        assert!((two.as_secs_f64() / one.as_secs_f64() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn default_megabyte_access_matches_paper_band() {
        // The paper's Table 4: 235–604 ms per MB. Our default 3 MB/s
        // disk gives ~333 ms.
        let ms = DiskModel::default().megabyte_access().as_millis();
        assert!((200..700).contains(&ms), "got {ms}ms");
    }

    #[test]
    fn batching_saves_most_of_the_seek() {
        let d = DiskModel::default();
        let saving = d.batching_saving_per_block();
        // Per scattered block we pay ~13.2ms mechanical; batched we
        // amortize one seek over 16 blocks, so the saving approaches
        // 15/16 of the mechanical cost.
        assert!(saving > Duration::from_millis(10), "got {saving:?}");
        assert!(saving < d.random_io(1));
    }

    #[test]
    fn page_fault_grows_with_read_ahead() {
        let d = DiskModel::default();
        let soft = Duration::from_micros(3);
        let one = d.page_fault(soft, 4096, 1);
        let sixteen = d.page_fault(soft, 4096, 16);
        assert!(sixteen > one);
        // Read-ahead only adds transfer, not extra seeks.
        assert!(sixteen < one * 16);
    }

    #[test]
    fn calibration_changes_only_bandwidth() {
        let d = DiskModel::with_bandwidth(10.0 * 1024.0 * 1024.0);
        assert_eq!(d.avg_seek, DiskModel::default().avg_seek);
        assert!(d.megabyte_access() < DiskModel::default().megabyte_access());
    }
}
