//! Non-blocking pipe transport for the graft-server readiness loop.
//!
//! The offline workspace cannot depend on `mio` or `tokio`, but glibc's
//! `pipe`/`fcntl`/`poll` are already linked (declared in
//! [`measure::sys`](crate::measure::sys)). This module wraps them in a
//! safe, dependency-free transport the server's pipe front-end builds
//! its readiness loop on: [`PipeEnd::pair`] makes one duplex
//! connection out of two pipes (each end owns the read side of one and
//! the write side of the other), and [`poll_readable`] is the
//! `poll(2)` multiplexer that tells the loop which connections have
//! bytes waiting. Read sides are `O_NONBLOCK`; writes stay blocking by
//! default so a client thread can push frames without a loop of its
//! own. A *server* loop that must never stall on a slow reader flips
//! its write sides with [`PipeEnd::set_write_nonblocking`] and uses
//! [`PipeEnd::try_write`] plus a pending-bytes buffer instead — and
//! calls [`ignore_sigpipe`] first, because under connection churn a
//! write can race the peer closing its read side and the default
//! `SIGPIPE` disposition would kill the process.
//!
//! On targets without the FFI shims (`sys::AVAILABLE == false`) every
//! constructor returns `None` and callers fall back to the in-process
//! `VirtualTransport`, exactly like the live measurements fall back to
//! the 1996 model numbers.

/// Whether the pipe transport is available on this target.
pub const AVAILABLE: bool = crate::measure::sys::AVAILABLE;

#[cfg(all(target_os = "linux", target_arch = "x86_64", target_env = "gnu"))]
mod imp {
    use crate::measure::sys;

    /// One end of a duplex pipe connection: a non-blocking read fd and
    /// a blocking write fd, both closed on drop. `Send` (it is plain
    /// fds), so a test can hand the peer end to a client thread.
    #[derive(Debug)]
    pub struct PipeEnd {
        read_fd: sys::c_int,
        write_fd: sys::c_int,
    }

    fn set_nonblocking(fd: sys::c_int) -> bool {
        // SAFETY: fd is a descriptor we own; F_GETFL/F_SETFL take an
        // int argument per the fcntl(2) contract.
        unsafe {
            let flags = sys::fcntl(fd, sys::F_GETFL, 0);
            flags >= 0 && sys::fcntl(fd, sys::F_SETFL, flags | sys::O_NONBLOCK) >= 0
        }
    }

    impl PipeEnd {
        /// Builds a connected pair: bytes written on one end arrive at
        /// the other end's reader, in both directions.
        pub fn pair() -> Option<(PipeEnd, PipeEnd)> {
            let mut a = [0 as sys::c_int; 2];
            let mut b = [0 as sys::c_int; 2];
            // SAFETY: both arrays are valid 2-int buffers.
            unsafe {
                if sys::pipe(a.as_mut_ptr()) != 0 {
                    return None;
                }
                if sys::pipe(b.as_mut_ptr()) != 0 {
                    sys::close(a[0]);
                    sys::close(a[1]);
                    return None;
                }
            }
            let left = PipeEnd {
                read_fd: a[0],
                write_fd: b[1],
            };
            let right = PipeEnd {
                read_fd: b[0],
                write_fd: a[1],
            };
            if !set_nonblocking(left.read_fd) || !set_nonblocking(right.read_fd) {
                return None; // drops close all four fds
            }
            Some((left, right))
        }

        /// The raw read descriptor (for [`poll_readable`]).
        pub fn read_fd(&self) -> i32 {
            self.read_fd
        }

        /// Non-blocking read. `Some(0)` means EOF (peer closed its
        /// write side); `None` means no bytes are ready right now.
        pub fn read(&self, buf: &mut [u8]) -> Option<usize> {
            // SAFETY: buf is a valid writable buffer of its own length
            // and read_fd is owned by self.
            let n = unsafe { sys::read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n < 0 {
                None // EAGAIN on an empty non-blocking pipe
            } else {
                Some(n as usize)
            }
        }

        /// Blocking write of the whole buffer; `false` if the peer's
        /// read side is gone.
        pub fn write_all(&self, mut buf: &[u8]) -> bool {
            while !buf.is_empty() {
                // SAFETY: buf points at buf.len() readable bytes and
                // write_fd is owned by self.
                let n = unsafe { sys::write(self.write_fd, buf.as_ptr(), buf.len()) };
                if n <= 0 {
                    return false;
                }
                buf = &buf[n as usize..];
            }
            true
        }

        /// Flips the write side to `O_NONBLOCK` for use with
        /// [`try_write`](Self::try_write). Returns `false` on failure.
        pub fn set_write_nonblocking(&self) -> bool {
            set_nonblocking(self.write_fd)
        }

        /// Non-blocking write attempt. `Some(n)` is the bytes accepted
        /// (`0` = the pipe is full right now, try again later); `None`
        /// means the peer's read side is gone (`EPIPE`) or the fd is
        /// otherwise dead. Requires
        /// [`set_write_nonblocking`](Self::set_write_nonblocking) —
        /// and [`ignore_sigpipe`] if the peer may churn away.
        pub fn try_write(&self, buf: &[u8]) -> Option<usize> {
            if buf.is_empty() {
                return Some(0);
            }
            // SAFETY: buf points at buf.len() readable bytes and
            // write_fd is owned by self.
            let n = unsafe { sys::write(self.write_fd, buf.as_ptr(), buf.len()) };
            if n >= 0 {
                return Some(n as usize);
            }
            // SAFETY: __errno_location returns this thread's errno slot.
            let errno = unsafe { *sys::__errno_location() };
            if errno == sys::EAGAIN || errno == sys::EINTR {
                Some(0)
            } else {
                None
            }
        }

        /// Closes the write side early, signalling EOF to the peer
        /// while keeping this end's reader pollable.
        pub fn close_write(&mut self) {
            if self.write_fd >= 0 {
                // SAFETY: write_fd is owned by self and not yet closed.
                unsafe { sys::close(self.write_fd) };
                self.write_fd = -1;
            }
        }
    }

    /// Sets `SIGPIPE` to `SIG_IGN` for the whole process (idempotent).
    /// Server loops writing into churning connections must call this
    /// once: with the signal ignored a write to a dead reader fails
    /// with `EPIPE` — which [`PipeEnd::try_write`] maps to `None` —
    /// instead of killing the process.
    pub fn ignore_sigpipe() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            // SAFETY: a zeroed sigaction with sa_handler = SIG_IGN is a
            // valid argument; ignoring SIGPIPE is process-wide and safe.
            unsafe {
                let mut sa: sys::sigaction = std::mem::zeroed();
                sa.sa_handler = sys::SIG_IGN;
                sys::sigaction(sys::SIGPIPE, &sa, std::ptr::null_mut());
            }
        });
    }

    impl Drop for PipeEnd {
        fn drop(&mut self) {
            // SAFETY: any fd still >= 0 is owned by self and open.
            unsafe {
                if self.read_fd >= 0 {
                    sys::close(self.read_fd);
                }
                if self.write_fd >= 0 {
                    sys::close(self.write_fd);
                }
            }
        }
    }

    /// `poll(2)` over a set of read descriptors. Sets `ready[i]` for
    /// every fd with data (or EOF) waiting; returns how many are
    /// ready. `timeout_ms < 0` blocks until something is.
    pub fn poll_readable(fds: &[i32], ready: &mut [bool], timeout_ms: i32) -> usize {
        assert_eq!(fds.len(), ready.len());
        ready.iter_mut().for_each(|r| *r = false);
        if fds.is_empty() {
            return 0;
        }
        let mut pfds: Vec<sys::pollfd> = fds
            .iter()
            .map(|&fd| sys::pollfd {
                fd,
                events: sys::POLLIN,
                revents: 0,
            })
            .collect();
        // SAFETY: pfds is a valid array of pfds.len() pollfd structs.
        let n = unsafe { sys::poll(pfds.as_mut_ptr(), pfds.len() as u64, timeout_ms) };
        if n <= 0 {
            return 0;
        }
        let mut count = 0;
        for (pfd, r) in pfds.iter().zip(ready.iter_mut()) {
            if pfd.revents & (sys::POLLIN | sys::POLLHUP | sys::POLLERR) != 0 {
                *r = true;
                count += 1;
            }
        }
        count
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64", target_env = "gnu")))]
mod imp {
    /// Stub on targets without the FFI shims: never constructs.
    #[derive(Debug)]
    pub struct PipeEnd {}

    impl PipeEnd {
        /// Always `None` here; callers fall back to `VirtualTransport`.
        pub fn pair() -> Option<(PipeEnd, PipeEnd)> {
            None
        }
        pub fn read_fd(&self) -> i32 {
            -1
        }
        pub fn read(&self, _buf: &mut [u8]) -> Option<usize> {
            None
        }
        pub fn write_all(&self, _buf: &[u8]) -> bool {
            false
        }
        pub fn set_write_nonblocking(&self) -> bool {
            false
        }
        pub fn try_write(&self, _buf: &[u8]) -> Option<usize> {
            None
        }
        pub fn close_write(&mut self) {}
    }

    /// Stub: no signals to ignore without the FFI shims.
    pub fn ignore_sigpipe() {}

    /// Stub poller: nothing is ever ready.
    pub fn poll_readable(_fds: &[i32], ready: &mut [bool], _timeout_ms: i32) -> usize {
        ready.iter_mut().for_each(|r| *r = false);
        0
    }
}

pub use imp::{ignore_sigpipe, poll_readable, PipeEnd};

#[cfg(all(
    test,
    target_os = "linux",
    target_arch = "x86_64",
    target_env = "gnu"
))]
mod tests {
    use super::*;

    #[test]
    fn duplex_round_trip_and_poll() {
        let (server, client) = PipeEnd::pair().expect("pipes available on linux-gnu");
        let mut ready = [false];
        // Nothing written yet: not readable, and the non-blocking read
        // reports "no bytes" rather than blocking.
        assert_eq!(poll_readable(&[server.read_fd()], &mut ready, 0), 0);
        let mut buf = [0u8; 16];
        assert_eq!(server.read(&mut buf), None);

        assert!(client.write_all(b"request"));
        assert_eq!(poll_readable(&[server.read_fd()], &mut ready, 1000), 1);
        assert!(ready[0]);
        assert_eq!(server.read(&mut buf), Some(7));
        assert_eq!(&buf[..7], b"request");

        // And the other direction.
        assert!(server.write_all(b"reply"));
        assert_eq!(client.read(&mut buf), Some(5));
        assert_eq!(&buf[..5], b"reply");
    }

    #[test]
    fn closed_writer_reads_eof() {
        let (server, mut client) = PipeEnd::pair().expect("pipes available on linux-gnu");
        client.write_all(b"x");
        client.close_write();
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf), Some(1));
        // EOF is distinct from "no bytes yet": Some(0), and poll
        // reports the fd ready so the loop can reap the connection.
        assert_eq!(server.read(&mut buf), Some(0));
        let mut ready = [false];
        assert_eq!(poll_readable(&[server.read_fd()], &mut ready, 0), 1);
    }

    #[test]
    fn ends_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<PipeEnd>();
    }

    #[test]
    fn try_write_never_blocks_on_a_full_pipe() {
        ignore_sigpipe();
        let (server, _client) = PipeEnd::pair().expect("pipes available on linux-gnu");
        assert!(server.set_write_nonblocking());
        // Fill the pipe: nobody reads, so try_write must eventually
        // report 0 accepted instead of blocking the thread.
        let chunk = [0u8; 4096];
        let mut total = 0usize;
        let mut full = false;
        for _ in 0..1024 {
            match server.try_write(&chunk) {
                Some(0) => {
                    full = true;
                    break;
                }
                Some(n) => total += n,
                None => panic!("live reader reported as gone"),
            }
        }
        assert!(full, "pipe never filled after {total} bytes");
        assert!(total > 0);
    }

    #[test]
    fn try_write_reports_a_churned_peer_as_gone() {
        ignore_sigpipe();
        let (server, client) = PipeEnd::pair().expect("pipes available on linux-gnu");
        assert!(server.set_write_nonblocking());
        drop(client); // abrupt churn: reader side vanishes
        // EPIPE, not a process-killing SIGPIPE, and not a silent 0.
        assert_eq!(server.try_write(b"orphan reply"), None);
    }
}
