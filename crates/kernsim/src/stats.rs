//! Measurement statistics in the paper's reporting style: means over
//! repeated runs with relative standard deviations in parentheses.

use std::time::{Duration, Instant};

/// A sample of repeated timing runs.
///
/// Alongside the paper's mean-and-relative-deviation presentation, the
/// sample keeps the *minimum* run. On a contended host (this
/// reproduction often runs inside a shared container) the mean is
/// inflated by preemption; the minimum is the standard estimator of the
/// uncontended cost, so the tables normalize on [`Sample::best_ns`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Mean time per run, in nanoseconds.
    pub mean_ns: f64,
    /// Standard deviation as a percentage of the mean (the paper's
    /// parenthesized figure).
    pub std_pct: f64,
    /// Fastest run, in nanoseconds.
    pub min_ns: f64,
    /// Median run, in nanoseconds.
    pub median_ns: f64,
    /// Number of runs.
    pub runs: usize,
}

impl Sample {
    /// Builds a sample from raw per-run durations.
    pub fn from_runs(runs: &[Duration]) -> Sample {
        assert!(!runs.is_empty(), "no runs to summarize");
        let mut ns: Vec<f64> = runs.iter().map(|d| d.as_nanos() as f64).collect();
        let mean = ns.iter().sum::<f64>() / ns.len() as f64;
        let var = ns.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / ns.len() as f64;
        let std = var.sqrt();
        ns.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        Sample {
            mean_ns: mean,
            std_pct: if mean > 0.0 { 100.0 * std / mean } else { 0.0 },
            min_ns: ns[0],
            median_ns: ns[ns.len() / 2],
            runs: ns.len(),
        }
    }

    /// The headline estimate: the fastest observed run (robust against
    /// scheduler preemption on shared hosts).
    pub fn best_ns(&self) -> f64 {
        self.min_ns
    }

    /// The headline estimate as a [`Duration`].
    pub fn best(&self) -> Duration {
        Duration::from_nanos(self.min_ns as u64)
    }

    /// Rescales the sample to a per-sub-iteration cost: when each timed
    /// iteration performed `n` inner operations (a batched round trip of
    /// `n` calls, say), `per(n)` reports the cost of one operation. The
    /// relative deviation is unchanged by the rescale.
    pub fn per(self, n: usize) -> Sample {
        assert!(n > 0);
        let d = n as f64;
        Sample {
            mean_ns: self.mean_ns / d,
            min_ns: self.min_ns / d,
            median_ns: self.median_ns / d,
            ..self
        }
    }

    /// Mean in microseconds.
    pub fn mean_us(&self) -> f64 {
        self.mean_ns / 1_000.0
    }

    /// Mean in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.mean_ns / 1_000_000.0
    }

    /// Formats as the paper does: `12.3µs (1.4%)`.
    pub fn paper_style(&self) -> String {
        format!("{} ({:.1}%)", fmt_ns(self.mean_ns), self.std_pct)
    }

    /// Formats the robust estimate with the noisy mean in context:
    /// `12.3µs [mean 15.0µs (42%)]`.
    pub fn robust_style(&self) -> String {
        format!(
            "{} [mean {} ({:.0}%)]",
            fmt_ns(self.min_ns),
            fmt_ns(self.mean_ns),
            self.std_pct
        )
    }
}

/// Formats nanoseconds with a readable unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 10_000.0 {
        format!("{ns:.1}ns")
    } else if ns < 10_000_000.0 {
        format!("{:.1}µs", ns / 1e3)
    } else if ns < 1_000_000_000.0 {
        format!("{:.1}ms", ns / 1e6)
    } else {
        format!("{:.2}s", ns / 1e9)
    }
}

/// Times `runs` invocations of `f` (each may loop internally) and
/// summarizes them.
pub fn measure<F: FnMut()>(runs: usize, mut f: F) -> Sample {
    assert!(runs > 0);
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let start = Instant::now();
        f();
        samples.push(start.elapsed());
    }
    Sample::from_runs(&samples)
}

/// Times `runs` runs of `iters` iterations each and reports the mean
/// per-iteration time, the paper's "mean of 30 runs of 100,000 searches"
/// structure. One untimed warm-up run precedes the timed ones so cold
/// caches and branch predictors do not contaminate the first sample.
pub fn measure_per_iter<F: FnMut()>(runs: usize, iters: usize, mut f: F) -> Sample {
    assert!(runs > 0 && iters > 0);
    for _ in 0..iters.min(1_000) {
        f();
    }
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        samples.push(start.elapsed() / iters as u32);
    }
    Sample::from_runs(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_runs_have_zero_deviation() {
        let s = Sample::from_runs(&[Duration::from_micros(10); 5]);
        assert_eq!(s.mean_us(), 10.0);
        assert_eq!(s.std_pct, 0.0);
        assert_eq!(s.runs, 5);
        assert_eq!(s.min_ns, 10_000.0);
        assert_eq!(s.median_ns, 10_000.0);
    }

    #[test]
    fn min_and_median_are_robust_to_outliers() {
        let s = Sample::from_runs(&[
            Duration::from_micros(10),
            Duration::from_micros(11),
            Duration::from_micros(500), // preempted run
        ]);
        assert_eq!(s.best_ns(), 10_000.0);
        assert_eq!(s.median_ns, 11_000.0);
        assert!(s.mean_ns > 100_000.0);
    }

    #[test]
    fn deviation_is_relative() {
        let s = Sample::from_runs(&[Duration::from_micros(8), Duration::from_micros(12)]);
        assert_eq!(s.mean_us(), 10.0);
        assert!((s.std_pct - 20.0).abs() < 1e-9);
    }

    #[test]
    fn paper_style_picks_sane_units() {
        let us = Sample::from_runs(&[Duration::from_nanos(25_800)]);
        assert!(us.paper_style().starts_with("25.8µs"));
        let ms = Sample::from_runs(&[Duration::from_micros(25_100)]);
        assert!(ms.paper_style().starts_with("25.1ms"));
    }

    #[test]
    fn single_run_is_its_own_mean_min_and_median() {
        let s = Sample::from_runs(&[Duration::from_micros(7)]);
        assert_eq!(s.runs, 1);
        assert_eq!(s.mean_ns, 7_000.0);
        assert_eq!(s.min_ns, 7_000.0);
        assert_eq!(s.median_ns, 7_000.0);
        assert_eq!(s.std_pct, 0.0);
        assert_eq!(s.best(), Duration::from_micros(7));
    }

    #[test]
    fn zero_duration_runs_do_not_divide_by_zero() {
        // A sub-resolution measurement (all zeros) must not make
        // std_pct NaN: the mean-is-zero guard pins it to 0.
        let s = Sample::from_runs(&[Duration::ZERO; 4]);
        assert_eq!(s.mean_ns, 0.0);
        assert_eq!(s.std_pct, 0.0);
        assert!(!s.std_pct.is_nan());
        assert_eq!(s.best(), Duration::ZERO);
    }

    #[test]
    fn std_pct_stays_finite_for_mixed_zero_and_nonzero() {
        let s = Sample::from_runs(&[Duration::ZERO, Duration::from_nanos(2)]);
        assert!(s.std_pct.is_finite());
        assert_eq!(s.min_ns, 0.0);
        assert_eq!(s.runs, 2);
    }

    #[test]
    fn fmt_ns_covers_every_unit_band() {
        assert_eq!(fmt_ns(999.0), "999.0ns");
        assert_eq!(fmt_ns(25_800.0), "25.8µs");
        assert_eq!(fmt_ns(25_100_000.0), "25.1ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.50s");
    }

    #[test]
    fn robust_style_leads_with_the_minimum() {
        let s = Sample::from_runs(&[
            Duration::from_micros(10),
            Duration::from_micros(500),
        ]);
        let text = s.robust_style();
        assert!(text.starts_with("10.0µs [mean "), "{text}");
        assert!(text.contains('%'), "{text}");
    }

    #[test]
    fn measure_runs_the_closure() {
        let mut count = 0;
        let s = measure(3, || count += 1);
        assert_eq!(count, 3);
        assert_eq!(s.runs, 3);
    }

    #[test]
    fn measure_per_iter_divides_by_iterations() {
        let mut count = 0;
        let s = measure_per_iter(2, 50, || count += 1);
        // 50 warm-up iterations plus 2 timed runs of 50.
        assert_eq!(count, 150);
        assert_eq!(s.runs, 2);
    }
}
