//! Model-based property tests for the LRU queue and pager, driven by a
//! seeded RNG (no network deps).

use std::collections::VecDeque;

use graft_rng::{Rng, SmallRng};
use kernsim::vm::{LruPolicy, LruQueue, Pager};

/// Operations against the queue.
#[derive(Debug, Clone)]
enum Op {
    Insert(u64),
    Touch(u64),
    Remove(u64),
}

fn random_op(rng: &mut SmallRng) -> Op {
    let p = rng.gen_range(0u64..40);
    match rng.gen_range(0u32..3) {
        0 => Op::Insert(p),
        1 => Op::Touch(p),
        _ => Op::Remove(p),
    }
}

/// A trivially correct model: a VecDeque with linear scans.
#[derive(Default)]
struct Model(VecDeque<u64>);

impl Model {
    fn insert(&mut self, p: u64) -> bool {
        if self.0.contains(&p) {
            self.touch(p);
            false
        } else {
            self.0.push_back(p);
            true
        }
    }
    fn touch(&mut self, p: u64) -> bool {
        if let Some(at) = self.0.iter().position(|&x| x == p) {
            self.0.remove(at);
            self.0.push_back(p);
            true
        } else {
            false
        }
    }
    fn remove(&mut self, p: u64) -> bool {
        if let Some(at) = self.0.iter().position(|&x| x == p) {
            self.0.remove(at);
            true
        } else {
            false
        }
    }
}

#[test]
fn lru_queue_matches_a_naive_model() {
    let mut rng = SmallRng::seed_from_u64(0x14AB);
    for _case in 0..64 {
        let nops = rng.gen_range(0usize..200);
        let mut queue = LruQueue::new();
        let mut model = Model::default();
        for _ in 0..nops {
            match random_op(&mut rng) {
                Op::Insert(p) => assert_eq!(queue.insert(p), model.insert(p)),
                Op::Touch(p) => assert_eq!(queue.touch(p), model.touch(p)),
                Op::Remove(p) => assert_eq!(queue.remove(p), model.remove(p)),
            }
            assert_eq!(queue.len(), model.0.len());
            assert_eq!(queue.head(), model.0.front().copied());
        }
        let order: Vec<u64> = queue.iter_lru().collect();
        let model_order: Vec<u64> = model.0.iter().copied().collect();
        assert_eq!(order, model_order);
    }
}

/// The pager never exceeds its frame count, and every access leaves the
/// touched page resident.
#[test]
fn pager_invariants_hold_on_random_traces() {
    let mut rng = SmallRng::seed_from_u64(0x9A6E);
    for _case in 0..48 {
        let frames = rng.gen_range(1usize..12);
        let steps = rng.gen_range(1usize..300);
        let mut pager = Pager::new(frames, LruPolicy);
        for _ in 0..steps {
            let page = rng.gen_range(0u64..64);
            pager.access(page);
            assert!(pager.queue().len() <= frames);
            assert!(pager.queue().contains(page));
        }
        let s = pager.stats();
        assert!(s.refaults <= s.faults);
    }
}
