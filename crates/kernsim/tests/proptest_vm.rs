//! Model-based property tests for the LRU queue and pager.

use proptest::prelude::*;
use std::collections::VecDeque;

use kernsim::vm::{LruPolicy, LruQueue, Pager};

/// Operations against the queue.
#[derive(Debug, Clone)]
enum Op {
    Insert(u64),
    Touch(u64),
    Remove(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..40).prop_map(Op::Insert),
        (0u64..40).prop_map(Op::Touch),
        (0u64..40).prop_map(Op::Remove),
    ]
}

/// A trivially correct model: a VecDeque with linear scans.
#[derive(Default)]
struct Model(VecDeque<u64>);

impl Model {
    fn insert(&mut self, p: u64) -> bool {
        if self.0.contains(&p) {
            self.touch(p);
            false
        } else {
            self.0.push_back(p);
            true
        }
    }
    fn touch(&mut self, p: u64) -> bool {
        if let Some(at) = self.0.iter().position(|&x| x == p) {
            self.0.remove(at);
            self.0.push_back(p);
            true
        } else {
            false
        }
    }
    fn remove(&mut self, p: u64) -> bool {
        if let Some(at) = self.0.iter().position(|&x| x == p) {
            self.0.remove(at);
            true
        } else {
            false
        }
    }
}

proptest! {
    #[test]
    fn lru_queue_matches_a_naive_model(ops in prop::collection::vec(op_strategy(), 0..200)) {
        let mut queue = LruQueue::new();
        let mut model = Model::default();
        for op in ops {
            match op {
                Op::Insert(p) => prop_assert_eq!(queue.insert(p), model.insert(p)),
                Op::Touch(p) => prop_assert_eq!(queue.touch(p), model.touch(p)),
                Op::Remove(p) => prop_assert_eq!(queue.remove(p), model.remove(p)),
            }
            prop_assert_eq!(queue.len(), model.0.len());
            prop_assert_eq!(queue.head(), model.0.front().copied());
        }
        let order: Vec<u64> = queue.iter_lru().collect();
        let model_order: Vec<u64> = model.0.iter().copied().collect();
        prop_assert_eq!(order, model_order);
    }

    /// The pager never exceeds its frame count, and every access leaves
    /// the touched page resident.
    #[test]
    fn pager_invariants_hold_on_random_traces(
        frames in 1usize..12,
        trace in prop::collection::vec(0u64..64, 1..300),
    ) {
        let mut pager = Pager::new(frames, LruPolicy);
        for page in trace {
            pager.access(page);
            prop_assert!(pager.queue().len() <= frames);
            prop_assert!(pager.queue().contains(page));
        }
        let s = pager.stats();
        prop_assert!(s.refaults <= s.faults);
    }
}
