//! Cross-module kernel-substrate integration: the B-tree page model
//! driving the pager and buffer cache against the disk model — the
//! scaffolding every graft experiment stands on.

use std::time::Duration;

use kernsim::btree::BtreeModel;
use kernsim::cache::{BufferCache, NoReadAhead, SequentialReadAhead};
use kernsim::vm::{LruPolicy, MruPolicy, Pager};
use kernsim::DiskModel;

#[test]
fn tpcb_traversal_behaves_like_the_paper_describes() {
    // A depth-first traversal touches every leaf exactly once, so with
    // any reasonable cache the hit rate is near zero — the reason the
    // paper's server wants eviction control rather than more caching.
    let model = BtreeModel {
        l3_pages: 16,
        fanout: 32,
    };
    let mut pager = Pager::new(64, LruPolicy);
    for (_, leaves) in model.traversal() {
        for leaf in leaves {
            pager.access(leaf);
        }
    }
    let s = pager.stats();
    assert_eq!(s.faults, model.leaf_pages() as u64);
    assert_eq!(s.hits, 0);
    assert_eq!(s.refaults, 0, "single pass never refaults");
}

#[test]
fn random_lookups_thrash_but_mru_does_no_better_here() {
    // Random leaf faults have no locality; policies cannot conjure
    // hits. This pins the property the break-even analysis relies on:
    // savings come only from application knowledge (the hot list).
    let model = BtreeModel::default();
    let trace = model.random_leaf_faults(2_000, 3);
    let mut lru = Pager::new(128, LruPolicy);
    let mut mru = Pager::new(128, MruPolicy);
    for &p in &trace {
        lru.access(p);
        mru.access(p);
    }
    let miss_rate = |s: kernsim::vm::PagerStats| s.faults as f64 / trace.len() as f64;
    assert!(miss_rate(lru.stats()) > 0.95);
    assert!(miss_rate(mru.stats()) > 0.95);
}

#[test]
fn sequential_file_scan_rewards_read_ahead_by_the_disk_models_math() {
    let disk = DiskModel::default();
    let blocks = 512u64;

    let mut plain = BufferCache::new(64, LruPolicy, NoReadAhead);
    let mut ahead = BufferCache::new(64, LruPolicy, SequentialReadAhead { n: 7 });
    for b in 0..blocks {
        plain.access(b);
        ahead.access(b);
    }
    // Demand misses translate to disk I/Os; read-ahead batches them.
    let plain_ios = plain.stats().misses as usize;
    let ahead_ios = ahead.stats().misses as usize;
    assert_eq!(plain_ios, blocks as usize);
    assert!(ahead_ios <= blocks as usize / 8 + 1);

    let plain_time = disk.random_io(1) * plain_ios as u32;
    let ahead_time = disk.random_io(8) * ahead_ios as u32;
    assert!(
        ahead_time < plain_time / 4,
        "batched {ahead_time:?} vs scattered {plain_time:?}"
    );
}

#[test]
fn hard_fault_model_is_consistent_with_its_parts() {
    let disk = DiskModel::default();
    let soft = Duration::from_micros(2);
    let fault = disk.page_fault(soft, 4096, 1);
    assert_eq!(fault, soft + disk.random_io(1));
    // Table 2's break-even denominator: fault time ÷ graft cost.
    let graft = Duration::from_micros(15);
    let be = fault.as_secs_f64() / graft.as_secs_f64();
    assert!((500.0..2_000.0).contains(&be), "break-even {be}");
}

#[test]
fn one_in_781_probability_feeds_the_verdict() {
    // The model app's save rate times the compiled break-even must
    // clear 1.0 (graft worth it), while an interpreted-script cost must
    // not — the entire Table 2 conclusion in one inequality.
    let model = BtreeModel::default();
    let p_save = model.hot_probability(64);
    let fault = DiskModel::default().page_fault(Duration::from_micros(3), 4096, 1);

    let compiled_cost = Duration::from_micros(16); // measured order
    let script_cost = Duration::from_micros(1_300); // measured order
    let worth = |cost: Duration| fault.as_secs_f64() / cost.as_secs_f64() * p_save;
    assert!(worth(compiled_cost) > 1.0, "compiled graft pays");
    assert!(worth(script_cost) < 1.0, "script graft cannot pay");
}
