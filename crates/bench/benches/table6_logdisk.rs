//! Table 6 bench: Logical Disk bookkeeping per write. Self-timing plain
//! binary over `kernsim::stats` (no external harness).

use graft_api::Technology;
use graft_core::GraftManager;
use grafts::logdisk as ld_graft;
use kernsim::stats::measure;

const BLOCKS: usize = 4096;

fn main() {
    let spec = ld_graft::spec_sized(BLOCKS);
    let manager = GraftManager::new();
    let writes: Vec<i64> = logdisk::workload::skewed(BLOCKS, 1024, 42)
        .map(|w| w as i64)
        .collect();
    for tech in graft_core::experiment::tables::ROW_ORDER {
        if tech == Technology::Script {
            continue; // as in the paper
        }
        let mut engine = manager.load(&spec, tech).unwrap();
        ld_graft::init_map(engine.as_mut(), BLOCKS).unwrap();
        let s = measure(20, || {
            for &w in &writes {
                engine.invoke("ld_write", &[w]).unwrap();
            }
        });
        let per_write = s.best_ns() / writes.len() as f64;
        println!(
            "table6_logdisk/{tech:<24} {}  ({per_write:.1}ns/write)",
            s.robust_style()
        );
    }
}
