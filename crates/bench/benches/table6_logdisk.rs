//! Criterion bench for Table 6: Logical Disk bookkeeping per write.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use graft_api::Technology;
use graft_core::GraftManager;
use grafts::logdisk as ld_graft;

const BLOCKS: usize = 4096;

fn bench(c: &mut Criterion) {
    let spec = ld_graft::spec_sized(BLOCKS);
    let manager = GraftManager::new();
    let writes: Vec<i64> = logdisk::workload::skewed(BLOCKS, 1024, 42)
        .map(|w| w as i64)
        .collect();
    let mut group = c.benchmark_group("table6_logdisk");
    group.throughput(Throughput::Elements(writes.len() as u64));
    for tech in graft_core::experiment::tables::ROW_ORDER {
        if tech == Technology::Script {
            continue; // as in the paper
        }
        let mut engine = manager.load(&spec, tech).unwrap();
        ld_graft::init_map(engine.as_mut(), BLOCKS).unwrap();
        group.sample_size(20);
        group.bench_function(tech.to_string(), |b| {
            b.iter(|| {
                for &w in &writes {
                    engine.invoke("ld_write", &[w]).unwrap();
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
