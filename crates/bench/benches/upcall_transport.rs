//! The in-text upcall measurement: a graft invocation through the
//! user-level-server boundary vs. in-kernel. Self-timing plain binary
//! over `kernsim::stats` (no external harness).

use graft_api::Technology;
use graft_core::GraftManager;
use grafts::acl::{self, Rule, READ};
use kernsim::stats::measure_per_iter;

fn main() {
    let spec = acl::spec();
    let manager = GraftManager::new();
    for tech in [Technology::CompiledUnchecked, Technology::UserLevel] {
        let mut engine = manager.load(&spec, tech).unwrap();
        acl::load_rules(
            engine.as_mut(),
            &[Rule { uid: 1, file: 2, modes: READ }],
        )
        .unwrap();
        let s = measure_per_iter(30, 1_000, || {
            engine.invoke("acl_check", &[1, 2, READ]).unwrap();
        });
        println!("upcall_transport/acl_check_{tech:<14} {}", s.robust_style());
    }
}
