//! The in-text upcall measurement: bare cross-domain round trip, and a
//! graft invocation through the boundary vs. in-kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use graft_api::Technology;
use graft_core::GraftManager;
use grafts::acl::{self, Rule, READ};

fn bench(c: &mut Criterion) {
    let spec = acl::spec();
    let manager = GraftManager::new();
    let mut group = c.benchmark_group("upcall_transport");
    for tech in [Technology::CompiledUnchecked, Technology::UserLevel] {
        let mut engine = manager.load(&spec, tech).unwrap();
        acl::load_rules(
            engine.as_mut(),
            &[Rule { uid: 1, file: 2, modes: READ }],
        )
        .unwrap();
        group.bench_function(format!("acl_check_{tech}"), |b| {
            b.iter(|| engine.invoke("acl_check", &[1, 2, READ]).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
