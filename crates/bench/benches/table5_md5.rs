//! Table 5 bench: MD5 of a fixed buffer per technology (16 KB
//! compiled/bytecode, 512 B script — normalize per byte). Self-timing
//! plain binary over `kernsim::stats` (no external harness).

use graft_api::Technology;
use graft_core::GraftManager;
use grafts::md5 as md5_graft;
use kernsim::stats::measure;

fn main() {
    let spec = md5_graft::spec();
    let manager = GraftManager::new();
    for tech in graft_core::experiment::tables::ROW_ORDER {
        let bytes = if tech == Technology::Script { 512 } else { 16_384 };
        let data = graft_core::experiment::md5_workload(bytes);
        let mut engine = manager.load(&spec, tech).unwrap();
        let s = measure(10, || {
            md5_graft::digest_via(engine.as_mut(), &data).unwrap();
        });
        let per_byte = s.best_ns() / bytes as f64;
        println!(
            "table5_md5/{tech:<24} {}  ({per_byte:.1}ns/B over {bytes}B)",
            s.robust_style()
        );
    }
}
