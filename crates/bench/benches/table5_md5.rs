//! Criterion bench for Table 5: MD5 of a fixed buffer per technology
//! (16 KB compiled/bytecode, 512 B script — normalize per byte).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use graft_api::Technology;
use graft_core::GraftManager;
use grafts::md5 as md5_graft;

fn bench(c: &mut Criterion) {
    let spec = md5_graft::spec();
    let manager = GraftManager::new();
    let mut group = c.benchmark_group("table5_md5");
    for tech in graft_core::experiment::tables::ROW_ORDER {
        let bytes = if tech == Technology::Script { 512 } else { 16_384 };
        let data = graft_core::experiment::md5_workload(bytes);
        let mut engine = manager.load(&spec, tech).unwrap();
        group.throughput(Throughput::Bytes(bytes as u64));
        group.sample_size(10);
        group.bench_function(tech.to_string(), |b| {
            b.iter(|| md5_graft::digest_via(engine.as_mut(), &data).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
