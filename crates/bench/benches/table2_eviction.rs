//! Table 2 bench: one `select_victim` invocation per technology on the
//! paper's 64-entry hot-list scenario. Self-timing plain binary over
//! `kernsim::stats` (no external harness).

use graft_api::Technology;
use graft_core::GraftManager;
use grafts::eviction;
use kernsim::stats::measure_per_iter;

fn main() {
    let spec = eviction::spec();
    let scenario = eviction::Scenario::paper_default(42);
    let manager = GraftManager::new();
    for tech in graft_core::experiment::tables::ROW_ORDER {
        let mut engine = manager.load(&spec, tech).unwrap();
        let (lru, hot) = scenario.marshal(engine.as_mut()).unwrap();
        let iters = if tech == Technology::Script { 50 } else { 2_000 };
        let s = measure_per_iter(30, iters, || {
            engine.invoke("select_victim", &[lru, hot]).unwrap();
        });
        println!("table2_eviction/{tech:<24} {}", s.robust_style());
    }
}
