//! Criterion bench for Table 2: one `select_victim` invocation per
//! technology on the paper's 64-entry hot-list scenario.

use criterion::{criterion_group, criterion_main, Criterion};
use graft_api::Technology;
use graft_core::GraftManager;
use grafts::eviction;

fn bench(c: &mut Criterion) {
    let spec = eviction::spec();
    let scenario = eviction::Scenario::paper_default(42);
    let manager = GraftManager::new();
    let mut group = c.benchmark_group("table2_eviction");
    for tech in graft_core::experiment::tables::ROW_ORDER {
        let mut engine = manager.load(&spec, tech).unwrap();
        let (lru, hot) = scenario.marshal(engine.as_mut()).unwrap();
        if tech == Technology::Script {
            group.sample_size(10);
        } else {
            group.sample_size(60);
        }
        group.bench_function(tech.to_string(), |b| {
            b.iter(|| engine.invoke("select_victim", &[lru, hot]).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
