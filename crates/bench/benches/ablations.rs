//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * NIL checks on/off in the safe-compiled engine (the paper's
//!   Linux-vs-Solaris Modula-3 discussion, §5.4);
//! * SFI read protection on/off (omniC++ 1.0β shipped without it);
//! * Logical Disk with and without the cleaner extension;
//! * the load-time IR optimizer on/off (the optimizer omniC++ 1.0β was
//!   measured without).
//!
//! Self-timing plain binary: `kernsim::stats` does the repetition and
//! statistics work (no external bench harness, which would need the
//! network to resolve).

use engine_native::{load_grail, SafetyMode};
use grafts::eviction;
use kernsim::stats::{measure, measure_per_iter, Sample};
use logdisk::{cleaner::CleaningDisk, LdConfig, LogicalDisk};

fn report(group: &str, label: &str, s: &Sample) {
    println!("{group}/{label:<18} {}", s.robust_style());
}

fn nil_checks() {
    let spec = eviction::spec();
    let scenario = eviction::Scenario::paper_default(42);
    for (label, nil) in [("nil_checks_on", true), ("nil_checks_off", false)] {
        let mut engine = load_grail(
            spec.grail.as_ref().unwrap(),
            &spec.regions,
            SafetyMode::Safe { nil_checks: nil },
        )
        .unwrap();
        let (lru, hot) = scenario.marshal(&mut engine).unwrap();
        let s = measure_per_iter(30, 2_000, || {
            graft_api::ExtensionEngine::invoke(&mut engine, "select_victim", &[lru, hot])
                .unwrap();
        });
        report("ablation_nil_checks", label, &s);
    }
}

fn sfi_read_protect() {
    let spec = grafts::md5::spec();
    let data = graft_core::experiment::md5_workload(4096);
    for (label, prot) in [("read_protect_off", false), ("read_protect_on", true)] {
        let mut engine = load_grail(
            spec.grail.as_ref().unwrap(),
            &spec.regions,
            SafetyMode::Sfi { read_protect: prot },
        )
        .unwrap();
        let s = measure(20, || {
            grafts::md5::digest_via(&mut engine, &data).unwrap();
        });
        report("ablation_sfi_read", label, &s);
    }
}

fn ld_cleaner() {
    let config = LdConfig {
        blocks: 1024,
        segment_blocks: 16,
    };
    let writes: Vec<u64> = logdisk::workload::skewed(config.blocks, 1024, 7).collect();
    let s = measure(30, || {
        let mut d = LogicalDisk::new(config);
        for &w in &writes {
            d.write(w);
        }
        std::hint::black_box(d.stats().segments_flushed);
    });
    report("ablation_ld_cleaner", "no_cleaner", &s);
    let s = measure(30, || {
        let mut d = CleaningDisk::new(config, 4);
        for &w in &writes {
            d.write(w);
        }
        std::hint::black_box(d.stats().segments_reclaimed);
    });
    report("ablation_ld_cleaner", "with_cleaner", &s);
}

fn load_time_optimizer() {
    let spec = grafts::md5::spec();
    let data = graft_core::experiment::md5_workload(4096);
    for (label, optimize) in [("optimizer_off", false), ("optimizer_on", true)] {
        let manager = graft_core::GraftManager {
            optimize,
            ..graft_core::GraftManager::new()
        };
        let mut engine = manager
            .load(&spec, graft_api::Technology::CompiledUnchecked)
            .unwrap();
        let s = measure(20, || {
            grafts::md5::digest_via(engine.as_mut(), &data).unwrap();
        });
        report("ablation_optimizer", label, &s);
    }
}

fn main() {
    nil_checks();
    sfi_read_protect();
    ld_cleaner();
    load_time_optimizer();
}
