//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * NIL checks on/off in the safe-compiled engine (the paper's
//!   Linux-vs-Solaris Modula-3 discussion, §5.4);
//! * SFI read protection on/off (omniC++ 1.0β shipped without it);
//! * Logical Disk with and without the cleaner extension;
//! * the load-time IR optimizer on/off (the optimizer omniC++ 1.0β was
//!   measured without).

use criterion::{criterion_group, criterion_main, Criterion};
use engine_native::{load_grail, SafetyMode};
use grafts::eviction;
use logdisk::{cleaner::CleaningDisk, LdConfig, LogicalDisk};

fn nil_checks(c: &mut Criterion) {
    let spec = eviction::spec();
    let scenario = eviction::Scenario::paper_default(42);
    let mut group = c.benchmark_group("ablation_nil_checks");
    for (label, nil) in [("nil_checks_on", true), ("nil_checks_off", false)] {
        let mut engine = load_grail(
            spec.grail.as_ref().unwrap(),
            &spec.regions,
            SafetyMode::Safe { nil_checks: nil },
        )
        .unwrap();
        let (lru, hot) = scenario.marshal(&mut engine).unwrap();
        group.bench_function(label, |b| {
            b.iter(|| {
                graft_api::ExtensionEngine::invoke(&mut engine, "select_victim", &[lru, hot])
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn sfi_read_protect(c: &mut Criterion) {
    let spec = grafts::md5::spec();
    let data = graft_core::experiment::md5_workload(4096);
    let mut group = c.benchmark_group("ablation_sfi_read");
    for (label, prot) in [("read_protect_off", false), ("read_protect_on", true)] {
        let mut engine = load_grail(
            spec.grail.as_ref().unwrap(),
            &spec.regions,
            SafetyMode::Sfi { read_protect: prot },
        )
        .unwrap();
        group.sample_size(20);
        group.bench_function(label, |b| {
            b.iter(|| grafts::md5::digest_via(&mut engine, &data).unwrap())
        });
    }
    group.finish();
}

fn ld_cleaner(c: &mut Criterion) {
    let config = LdConfig {
        blocks: 1024,
        segment_blocks: 16,
    };
    let writes: Vec<u64> = logdisk::workload::skewed(config.blocks, 1024, 7).collect();
    let mut group = c.benchmark_group("ablation_ld_cleaner");
    group.bench_function("no_cleaner", |b| {
        b.iter(|| {
            let mut d = LogicalDisk::new(config);
            for &w in &writes {
                d.write(w);
            }
            d.stats().segments_flushed
        })
    });
    group.bench_function("with_cleaner", |b| {
        b.iter(|| {
            let mut d = CleaningDisk::new(config, 4);
            for &w in &writes {
                d.write(w);
            }
            d.stats().segments_reclaimed
        })
    });
    group.finish();
}

fn load_time_optimizer(c: &mut Criterion) {
    let spec = grafts::md5::spec();
    let data = graft_core::experiment::md5_workload(4096);
    let mut group = c.benchmark_group("ablation_optimizer");
    for (label, optimize) in [("optimizer_off", false), ("optimizer_on", true)] {
        let manager = graft_core::GraftManager {
            optimize,
            ..graft_core::GraftManager::new()
        };
        let mut engine = manager
            .load(&spec, graft_api::Technology::CompiledUnchecked)
            .unwrap();
        group.sample_size(20);
        group.bench_function(label, |b| {
            b.iter(|| grafts::md5::digest_via(engine.as_mut(), &data).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, nil_checks, sfi_read_protect, ld_cleaner, load_time_optimizer);
criterion_main!(benches);
