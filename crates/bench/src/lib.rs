//! Shared plumbing for the table/figure binaries.
//!
//! Each binary regenerates one of the paper's evaluation artifacts:
//!
//! | Binary | Artifact |
//! |---|---|
//! | `table1` | Table 1 (signal handling, upcall round trip) |
//! | `table2` | Table 2 (VM page eviction) |
//! | `table3` | Table 3 (page fault time) |
//! | `table4` | Table 4 (disk I/O time) |
//! | `table5` | Table 5 (MD5 fingerprinting) |
//! | `table6` | Table 6 (Logical Disk) |
//! | `table7` | Table 7 (ours: multi-tenant churn under graft-host) |
//! | `table8` | Table 8 (ours: sharded multi-core dispatch scaling) |
//! | `table9` | Table 9 (ours: graft recovery under fault injection) |
//! | `table11` | Table 11 (ours: graft-server multi-tenant service benchmark) |
//! | `table12` | Table 12 (ours: flight-recorder overhead + postmortem drill) |
//! | `table13` | Table 13 (ours: adaptive dispatch under skewed load) |
//! | `table14` | Table 14 (ours: durable logdisk — scrub, bit-rot drills, restore) |
//! | `figure1` | Figure 1 (break-even vs upcall time, CSV) |
//! | `all` | everything, in paper order |
//! | `graftstat` | summarize/diff run artifacts; `timeline`/`postmortem` modes |
//!
//! All accept `--quick` (default), `--full` (paper-scale counts),
//! `--offline` (skip live host measurements), `--json <path>` (write
//! the machine-readable run artifact), `--no-telemetry` (disable
//! metric recording at runtime, for observer-effect checks), and
//! `--trace` (arm the flight recorder: every dispatch appends causal
//! trace events, surfaced in the artifact's `metrics.traces` and by
//! `graftstat timeline`).
//! Fault injection is opt-in via `--faults <seed>` (a seeded
//! [`kernsim::FaultPlan::chaos`] plan) and `--fault-rate <permille>`
//! (override the transient I/O-error rate; torn writes run at half
//! that); any experiment that prices disk work routes it through a
//! `FaultyDisk` under the plan, and Table 9's drill adopts it for its
//! seeded crash.

use std::path::PathBuf;

use graft_core::artifact::RunArtifact;
use graft_core::experiment::RunConfig;

/// Usage string shared by `--help` and error reporting.
pub const USAGE: &str = "usage: [--quick|--full] [--offline] [--json <path>] [--no-telemetry] [--trace] [--shards <n>] [--steal] [--skew <uniform|8020|9901>] [--tenants <n>] [--conns <n>] [--arrival <uniform|8020|9901>] [--faults <seed>] [--fault-rate <permille>]";

/// Parsed command line: the run configuration plus artifact options.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// Iteration counts and live-measurement switches.
    pub config: RunConfig,
    /// Where to write the JSON run artifact, when requested.
    pub json: Option<PathBuf>,
    /// Whether telemetry recording stays enabled (`--no-telemetry`
    /// turns the runtime toggle off).
    pub telemetry: bool,
    /// `--trace`: arm the flight recorder so every dispatch appends
    /// causal trace events (a no-op in noop-telemetry builds).
    pub trace: bool,
    /// `--shards <n>`: pin the sharded-dispatch experiments (Tables 8
    /// and 13) to one shard count instead of their default ladders.
    /// Validated at parse time — 0 and counts beyond what the machine
    /// could plausibly run (`max(available_parallelism, 16)`) are
    /// rejected as [`CliError::BadValue`] instead of panicking inside
    /// `ShardedHost` construction.
    pub shards: Option<usize>,
    /// `--steal`: run the adaptive dispatch plane only (Table 13 skips
    /// its static-placement baseline; speedups are then unmeasured).
    pub steal: bool,
    /// `--skew <uniform|8020|9901>`: restrict Table 13 to one key
    /// skew instead of all three.
    pub skew: Option<graft_core::experiment::Skew>,
    /// `--tenants <n>`: Table 11's simulated tenant population.
    /// Validated at parse time — 0 and populations beyond 1,000,000
    /// are rejected as [`CliError::BadValue`].
    pub tenants: Option<usize>,
    /// `--conns <n>`: Table 11's open connections per serving cohort.
    /// Validated at parse time — 0 and counts beyond 10,000 are
    /// rejected as [`CliError::BadValue`].
    pub conns: Option<usize>,
    /// `--arrival <uniform|8020|9901>`: restrict Table 11 to one
    /// arrival skew instead of its default pair.
    pub arrival: Option<graft_core::experiment::Skew>,
}

/// A CLI parse outcome that is not a runnable configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// `--help`/`-h`: the caller should print [`USAGE`] and exit 0.
    Help,
    /// An unrecognized flag.
    Unknown(String),
    /// A flag that requires a value did not get one.
    MissingValue(String),
    /// A flag value that did not parse (e.g. `--shards zero`).
    BadValue(String, String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Help => write!(f, "{USAGE}"),
            CliError::Unknown(flag) => {
                write!(f, "unknown flag `{flag}` (try --help)\n{USAGE}")
            }
            CliError::MissingValue(flag) => {
                write!(f, "flag `{flag}` needs a value\n{USAGE}")
            }
            CliError::BadValue(flag, value) => {
                write!(f, "flag `{flag}` got unusable value `{value}`\n{USAGE}")
            }
        }
    }
}

impl std::error::Error for CliError {}

/// Parses flags from an explicit argument list against this machine's
/// available parallelism. Pure apart from the parallelism probe: no
/// process exit, no I/O — errors come back as values so they are
/// testable.
pub fn parse_cli(args: &[String]) -> Result<Cli, CliError> {
    let par = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    parse_cli_with_parallelism(args, par)
}

/// [`parse_cli`] with the parallelism injected, so the `--shards`
/// ceiling is testable on any machine. The ceiling is
/// `max(parallelism, 16)`: single-core CI containers must still be
/// able to run the default 16-rung Table 13 ladder shard-at-a-time,
/// but a 4 096-shard request is a typo everywhere.
pub fn parse_cli_with_parallelism(args: &[String], parallelism: usize) -> Result<Cli, CliError> {
    let shard_cap = parallelism.max(16);
    let mut cli = Cli {
        config: RunConfig::quick(),
        json: None,
        telemetry: true,
        trace: false,
        shards: None,
        steal: false,
        skew: None,
        tenants: None,
        conns: None,
        arrival: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--full" => cli.config = RunConfig::full(),
            "--quick" => cli.config = RunConfig::quick(),
            "--offline" => cli.config.live = false,
            "--no-telemetry" => cli.telemetry = false,
            "--trace" => cli.trace = true,
            "--steal" => cli.steal = true,
            "--json" => {
                let path = it
                    .next()
                    .ok_or_else(|| CliError::MissingValue("--json".into()))?;
                cli.json = Some(PathBuf::from(path));
            }
            "--shards" => {
                let n = it
                    .next()
                    .ok_or_else(|| CliError::MissingValue("--shards".into()))?;
                let parsed: usize = n
                    .parse()
                    .ok()
                    .filter(|&v| (1..=shard_cap).contains(&v))
                    .ok_or_else(|| CliError::BadValue("--shards".into(), n.clone()))?;
                cli.shards = Some(parsed);
            }
            "--skew" => {
                let s = it
                    .next()
                    .ok_or_else(|| CliError::MissingValue("--skew".into()))?;
                let parsed = graft_core::experiment::Skew::parse(s)
                    .ok_or_else(|| CliError::BadValue("--skew".into(), s.clone()))?;
                cli.skew = Some(parsed);
            }
            "--tenants" => {
                let n = it
                    .next()
                    .ok_or_else(|| CliError::MissingValue("--tenants".into()))?;
                let parsed: usize = n
                    .parse()
                    .ok()
                    .filter(|&v| (1..=1_000_000).contains(&v))
                    .ok_or_else(|| CliError::BadValue("--tenants".into(), n.clone()))?;
                cli.tenants = Some(parsed);
            }
            "--conns" => {
                let n = it
                    .next()
                    .ok_or_else(|| CliError::MissingValue("--conns".into()))?;
                let parsed: usize = n
                    .parse()
                    .ok()
                    .filter(|&v| (1..=10_000).contains(&v))
                    .ok_or_else(|| CliError::BadValue("--conns".into(), n.clone()))?;
                cli.conns = Some(parsed);
            }
            "--arrival" => {
                let s = it
                    .next()
                    .ok_or_else(|| CliError::MissingValue("--arrival".into()))?;
                let parsed = graft_core::experiment::Skew::parse(s)
                    .ok_or_else(|| CliError::BadValue("--arrival".into(), s.clone()))?;
                cli.arrival = Some(parsed);
            }
            "--faults" => {
                let n = it
                    .next()
                    .ok_or_else(|| CliError::MissingValue("--faults".into()))?;
                let seed: u64 = n
                    .parse()
                    .map_err(|_| CliError::BadValue("--faults".into(), n.clone()))?;
                // Keep rates a prior --fault-rate configured; re-seed.
                cli.config.faults = Some(match cli.config.faults {
                    Some(plan) => kernsim::FaultPlan { seed, ..plan },
                    None => kernsim::FaultPlan::chaos(seed),
                });
            }
            "--fault-rate" => {
                let n = it
                    .next()
                    .ok_or_else(|| CliError::MissingValue("--fault-rate".into()))?;
                let permille: u16 = n
                    .parse()
                    .ok()
                    .filter(|&v| v <= 1000)
                    .ok_or_else(|| CliError::BadValue("--fault-rate".into(), n.clone()))?;
                let plan = cli
                    .config
                    .faults
                    .unwrap_or_else(|| kernsim::FaultPlan::chaos(42));
                cli.config.faults = Some(kernsim::FaultPlan {
                    io_error_permille: permille,
                    torn_permille: permille / 2,
                    ..plan
                });
            }
            "--help" | "-h" => return Err(CliError::Help),
            other => return Err(CliError::Unknown(other.to_string())),
        }
    }
    Ok(cli)
}

/// Parses the common flags into a [`RunConfig`], ignoring artifact
/// options (kept for callers that only need iteration counts).
pub fn config_from(args: &[String]) -> Result<RunConfig, CliError> {
    parse_cli(args).map(|cli| cli.config)
}

/// Parses the process's own arguments, applying the telemetry toggle;
/// on `--help` prints usage and exits 0, on bad flags exits 2. This is
/// the only place the CLI layer touches the process.
pub fn cli_from_args() -> Cli {
    match parse_cli(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(cli) => {
            graft_telemetry::set_enabled(cli.telemetry);
            graft_telemetry::set_tracing(cli.trace);
            cli
        }
        Err(CliError::Help) => {
            eprintln!("{USAGE}");
            std::process::exit(0);
        }
        Err(err) => {
            eprintln!("{err}");
            std::process::exit(2);
        }
    }
}

/// Back-compat wrapper: parse the process arguments into a config.
pub fn config_from_args() -> RunConfig {
    cli_from_args().config
}

/// Writes the run artifact if `--json` was given; reports the path on
/// stderr so table output on stdout stays clean.
pub fn maybe_write_artifact(cli: &Cli, artifact: &mut RunArtifact) {
    let Some(path) = &cli.json else { return };
    artifact.finish(&graft_telemetry::snapshot());
    match artifact.write_file(path) {
        Ok(()) => eprintln!("# wrote run artifact to {}", path.display()),
        Err(err) => {
            eprintln!("error: cannot write {}: {err}", path.display());
            std::process::exit(1);
        }
    }
}

/// The fault time Table 2's break-even uses: the modeled single-page
/// hard fault from Table 3.
pub fn fault_time(cfg: &RunConfig) -> std::time::Duration {
    let t3 = graft_core::experiment::table3(cfg, kernsim::DiskModel::default());
    t3.hard_single_page()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn default_is_quick_and_live() {
        let cli = parse_cli(&[]).unwrap();
        assert_eq!(cli.config.runs, RunConfig::quick().runs);
        assert!(cli.config.live);
        assert!(cli.telemetry);
        assert!(cli.json.is_none());
    }

    #[test]
    fn full_and_offline_compose() {
        let cfg = config_from(&strings(&["--full", "--offline"])).unwrap();
        assert_eq!(cfg.runs, RunConfig::full().runs);
        assert!(!cfg.live);
    }

    #[test]
    fn json_flag_takes_a_path() {
        let cli = parse_cli(&strings(&["--offline", "--json", "out.json"])).unwrap();
        assert_eq!(cli.json.as_deref(), Some(std::path::Path::new("out.json")));
        assert!(!cli.config.live);
    }

    #[test]
    fn json_without_path_is_an_error_value() {
        assert_eq!(
            parse_cli(&strings(&["--json"])),
            Err(CliError::MissingValue("--json".into()))
        );
    }

    #[test]
    fn unknown_flags_are_error_values_not_exits() {
        let err = parse_cli(&strings(&["--frobnicate"])).unwrap_err();
        assert_eq!(err, CliError::Unknown("--frobnicate".into()));
        assert!(err.to_string().contains("usage:"));
    }

    #[test]
    fn help_is_a_distinguished_error() {
        assert_eq!(parse_cli(&strings(&["-h"])), Err(CliError::Help));
        assert_eq!(parse_cli(&strings(&["--help"])), Err(CliError::Help));
    }

    #[test]
    fn no_telemetry_flag_parses() {
        let cli = parse_cli(&strings(&["--no-telemetry"])).unwrap();
        assert!(!cli.telemetry);
    }

    #[test]
    fn trace_flag_parses_and_defaults_off() {
        assert!(!parse_cli(&[]).unwrap().trace);
        let cli = parse_cli(&strings(&["--trace", "--offline"])).unwrap();
        assert!(cli.trace);
        assert!(cli.telemetry);
    }

    #[test]
    fn shards_flag_parses_and_validates() {
        assert_eq!(parse_cli(&strings(&[])).unwrap().shards, None);
        let cli = parse_cli(&strings(&["--shards", "4"])).unwrap();
        assert_eq!(cli.shards, Some(4));
        assert_eq!(
            parse_cli(&strings(&["--shards"])),
            Err(CliError::MissingValue("--shards".into()))
        );
        assert_eq!(
            parse_cli(&strings(&["--shards", "0"])),
            Err(CliError::BadValue("--shards".into(), "0".into()))
        );
        assert_eq!(
            parse_cli(&strings(&["--shards", "many"])),
            Err(CliError::BadValue("--shards".into(), "many".into()))
        );
    }

    #[test]
    fn shards_ceiling_tracks_parallelism_with_a_ladder_floor() {
        // A single-core box still admits the 16-rung ladder...
        let cli = parse_cli_with_parallelism(&strings(&["--shards", "16"]), 1).unwrap();
        assert_eq!(cli.shards, Some(16));
        // ...but not absurd counts;
        assert_eq!(
            parse_cli_with_parallelism(&strings(&["--shards", "17"]), 1),
            Err(CliError::BadValue("--shards".into(), "17".into()))
        );
        // a wider machine raises the ceiling to its parallelism.
        let cli = parse_cli_with_parallelism(&strings(&["--shards", "48"]), 48).unwrap();
        assert_eq!(cli.shards, Some(48));
        assert_eq!(
            parse_cli_with_parallelism(&strings(&["--shards", "49"]), 48),
            Err(CliError::BadValue("--shards".into(), "49".into()))
        );
    }

    #[test]
    fn steal_and_skew_flags_parse() {
        use graft_core::experiment::Skew;
        let cli = parse_cli(&[]).unwrap();
        assert!(!cli.steal);
        assert_eq!(cli.skew, None);
        let cli = parse_cli(&strings(&["--steal", "--skew", "99-1"])).unwrap();
        assert!(cli.steal);
        assert_eq!(cli.skew, Some(Skew::Skew9901));
        assert_eq!(
            parse_cli(&strings(&["--skew", "uniform"])).unwrap().skew,
            Some(Skew::Uniform)
        );
        assert_eq!(
            parse_cli(&strings(&["--skew"])),
            Err(CliError::MissingValue("--skew".into()))
        );
        assert_eq!(
            parse_cli(&strings(&["--skew", "zipf"])),
            Err(CliError::BadValue("--skew".into(), "zipf".into()))
        );
    }

    #[test]
    fn tenants_and_conns_flags_parse_and_validate() {
        let cli = parse_cli(&[]).unwrap();
        assert_eq!(cli.tenants, None);
        assert_eq!(cli.conns, None);
        let cli = parse_cli(&strings(&["--tenants", "10000", "--conns", "64"])).unwrap();
        assert_eq!(cli.tenants, Some(10_000));
        assert_eq!(cli.conns, Some(64));
        assert_eq!(
            parse_cli(&strings(&["--tenants"])),
            Err(CliError::MissingValue("--tenants".into()))
        );
        assert_eq!(
            parse_cli(&strings(&["--tenants", "0"])),
            Err(CliError::BadValue("--tenants".into(), "0".into()))
        );
        assert_eq!(
            parse_cli(&strings(&["--tenants", "1000001"])),
            Err(CliError::BadValue("--tenants".into(), "1000001".into()))
        );
        assert_eq!(
            parse_cli(&strings(&["--conns", "0"])),
            Err(CliError::BadValue("--conns".into(), "0".into()))
        );
        assert_eq!(
            parse_cli(&strings(&["--conns", "10001"])),
            Err(CliError::BadValue("--conns".into(), "10001".into()))
        );
    }

    #[test]
    fn arrival_flag_parses_the_skew_spellings() {
        use graft_core::experiment::Skew;
        assert_eq!(parse_cli(&[]).unwrap().arrival, None);
        let cli = parse_cli(&strings(&["--arrival", "8020"])).unwrap();
        assert_eq!(cli.arrival, Some(Skew::Skew8020));
        assert_eq!(
            parse_cli(&strings(&["--arrival", "uniform"])).unwrap().arrival,
            Some(Skew::Uniform)
        );
        assert_eq!(
            parse_cli(&strings(&["--arrival"])),
            Err(CliError::MissingValue("--arrival".into()))
        );
        assert_eq!(
            parse_cli(&strings(&["--arrival", "poisson"])),
            Err(CliError::BadValue("--arrival".into(), "poisson".into()))
        );
    }

    #[test]
    fn faults_flag_arms_a_seeded_chaos_plan() {
        assert_eq!(parse_cli(&strings(&[])).unwrap().config.faults, None);
        let cli = parse_cli(&strings(&["--faults", "7"])).unwrap();
        assert_eq!(cli.config.faults, Some(kernsim::FaultPlan::chaos(7)));
        assert_eq!(
            parse_cli(&strings(&["--faults"])),
            Err(CliError::MissingValue("--faults".into()))
        );
        assert_eq!(
            parse_cli(&strings(&["--faults", "lots"])),
            Err(CliError::BadValue("--faults".into(), "lots".into()))
        );
    }

    #[test]
    fn fault_rate_overrides_rates_in_any_flag_order() {
        let cli = parse_cli(&strings(&["--faults", "7", "--fault-rate", "100"])).unwrap();
        let plan = cli.config.faults.unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.io_error_permille, 100);
        assert_eq!(plan.torn_permille, 50);
        // Rate first, then seed: the rate survives the re-seed.
        let cli = parse_cli(&strings(&["--fault-rate", "100", "--faults", "7"])).unwrap();
        assert_eq!(cli.config.faults.unwrap(), plan);
        // Rate alone defaults the seed.
        let cli = parse_cli(&strings(&["--fault-rate", "8"])).unwrap();
        assert_eq!(cli.config.faults.unwrap().seed, 42);
        assert_eq!(
            parse_cli(&strings(&["--fault-rate", "1001"])),
            Err(CliError::BadValue("--fault-rate".into(), "1001".into()))
        );
    }

    #[test]
    fn fault_time_is_disk_dominated() {
        let cfg = RunConfig::offline();
        let f = fault_time(&cfg);
        assert!(f.as_millis() >= 4, "{f:?}");
    }
}
