//! Shared plumbing for the table/figure binaries.
//!
//! Each binary regenerates one of the paper's evaluation artifacts:
//!
//! | Binary | Artifact |
//! |---|---|
//! | `table1` | Table 1 (signal handling, upcall round trip) |
//! | `table2` | Table 2 (VM page eviction) |
//! | `table3` | Table 3 (page fault time) |
//! | `table4` | Table 4 (disk I/O time) |
//! | `table5` | Table 5 (MD5 fingerprinting) |
//! | `table6` | Table 6 (Logical Disk) |
//! | `figure1` | Figure 1 (break-even vs upcall time, CSV) |
//! | `all` | everything, in paper order |
//!
//! All accept `--quick` (default), `--full` (paper-scale counts), and
//! `--offline` (skip live host measurements).

use graft_core::experiment::RunConfig;

/// Parses the common CLI flags into a [`RunConfig`].
pub fn config_from_args() -> RunConfig {
    config_from(&std::env::args().skip(1).collect::<Vec<_>>())
}

/// Parses flags from an explicit argument list.
pub fn config_from(args: &[String]) -> RunConfig {
    let mut cfg = RunConfig::quick();
    for arg in args {
        match arg.as_str() {
            "--full" => cfg = RunConfig::full(),
            "--quick" => cfg = RunConfig::quick(),
            "--offline" => cfg.live = false,
            "--help" | "-h" => {
                eprintln!("usage: [--quick|--full] [--offline]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    cfg
}

/// The fault time Table 2's break-even uses: the modeled single-page
/// hard fault from Table 3.
pub fn fault_time(cfg: &RunConfig) -> std::time::Duration {
    let t3 = graft_core::experiment::table3(cfg, kernsim::DiskModel::default());
    t3.hard_single_page()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn default_is_quick_and_live() {
        let cfg = config_from(&[]);
        assert_eq!(cfg.runs, RunConfig::quick().runs);
        assert!(cfg.live);
    }

    #[test]
    fn full_and_offline_compose() {
        let cfg = config_from(&strings(&["--full", "--offline"]));
        assert_eq!(cfg.runs, RunConfig::full().runs);
        assert!(!cfg.live);
    }

    #[test]
    fn fault_time_is_disk_dominated() {
        let cfg = RunConfig::offline();
        let f = fault_time(&cfg);
        assert!(f.as_millis() >= 4, "{f:?}");
    }
}
