//! Regenerates Table 4: disk write bandwidth and 1 MB access time.

fn main() {
    let cfg = graft_bench::config_from_args();
    let t = graft_core::experiment::table4(&cfg, false);
    print!("{}", graft_core::report::render_table4(&t));
}
