//! Regenerates Table 4: disk write bandwidth and 1 MB access time.

use graft_core::artifact::{self, RunArtifact};

fn main() {
    let cli = graft_bench::cli_from_args();
    let t = graft_core::experiment::table4(&cli.config, false);
    print!("{}", graft_core::report::render_table4(&t));
    let mut art = RunArtifact::begin(&cli.config);
    art.add_table("table4", artifact::table4_json(&t));
    graft_bench::maybe_write_artifact(&cli, &mut art);
}
