//! Regenerates Table 9: graft recovery — crash-consistent state
//! salvage per technology, plus a fault-injected crash/rebuild drill
//! on the Logical Disk. Accepts `--faults <seed>` / `--fault-rate
//! <permille>` to override the drill's default chaos plan.

use graft_core::artifact::{self, RunArtifact};

fn main() {
    let cli = graft_bench::cli_from_args();
    let t = graft_core::experiment::table9(&cli.config).expect("table 9 runs");
    print!("{}", graft_core::report::render_table9(&t));
    let mut art = RunArtifact::begin(&cli.config);
    art.add_table("table9", artifact::table9_json(&t));
    graft_bench::maybe_write_artifact(&cli, &mut art);
}
