//! Regenerates Table 1: signal handling time and the upcall round trip.

use graft_core::artifact::{self, RunArtifact};

fn main() {
    let cli = graft_bench::cli_from_args();
    let t = graft_core::experiment::table1(&cli.config).expect("table 1 runs");
    print!("{}", graft_core::report::render_table1(&t));
    let mut art = RunArtifact::begin(&cli.config);
    art.add_table("table1", artifact::table1_json(&t));
    graft_bench::maybe_write_artifact(&cli, &mut art);
}
