//! Regenerates Table 1: signal handling time and the upcall round trip.

fn main() {
    let cfg = graft_bench::config_from_args();
    let t = graft_core::experiment::table1(&cfg).expect("table 1 runs");
    print!("{}", graft_core::report::render_table1(&t));
}
