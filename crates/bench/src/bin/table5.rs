//! Regenerates Table 5: MD5 fingerprinting across technologies.

fn main() {
    let cfg = graft_bench::config_from_args();
    let t4 = graft_core::experiment::table4(&cfg, false);
    let t = graft_core::experiment::table5(&cfg, t4.megabyte_access()).expect("table 5 runs");
    print!("{}", graft_core::report::render_table4(&t4));
    print!("{}", graft_core::report::render_table5(&t));
}
