//! Regenerates Table 5: MD5 fingerprinting across technologies.

use graft_core::artifact::{self, RunArtifact};

fn main() {
    let cli = graft_bench::cli_from_args();
    let t4 = graft_core::experiment::table4(&cli.config, false);
    let t = graft_core::experiment::table5(&cli.config, t4.megabyte_access())
        .expect("table 5 runs");
    print!("{}", graft_core::report::render_table4(&t4));
    print!("{}", graft_core::report::render_table5(&t));
    let mut art = RunArtifact::begin(&cli.config);
    art.add_table("table4", artifact::table4_json(&t4));
    art.add_table("table5", artifact::table5_json(&t));
    graft_bench::maybe_write_artifact(&cli, &mut art);
}
