//! Regenerates Table 12: flight-recorder overhead per technology
//! (off / gated / recording telemetry on the Table 7 baseline rig)
//! plus the scalar-vs-sharded quarantine postmortem drill.

use graft_core::artifact::{self, RunArtifact};

fn main() {
    let cli = graft_bench::cli_from_args();
    let t = graft_core::experiment::table12(&cli.config).expect("table 12 runs");
    print!("{}", graft_core::report::render_table12(&t));
    let mut art = RunArtifact::begin(&cli.config);
    art.add_table("table12", artifact::table12_json(&t));
    graft_bench::maybe_write_artifact(&cli, &mut art);
}
