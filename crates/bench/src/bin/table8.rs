//! Regenerates Table 8: sharded multi-core graft dispatch — aggregate
//! throughput per technology across the shard ladder (1/2/4/8 by
//! default, or a single count via `--shards N`), measured over the
//! critical path (see `docs/kernel.md`).

use graft_core::artifact::{self, RunArtifact};
use graft_core::experiment::LADDER;

fn main() {
    let cli = graft_bench::cli_from_args();
    let ladder: Vec<usize> = match cli.shards {
        Some(s) => vec![s],
        None => LADDER.to_vec(),
    };
    let t = graft_core::experiment::table8(&cli.config, &ladder).expect("table 8 runs");
    print!("{}", graft_core::report::render_table8(&t));
    let mut art = RunArtifact::begin(&cli.config);
    art.add_table("table8", artifact::table8_json(&t));
    graft_bench::maybe_write_artifact(&cli, &mut art);
}
