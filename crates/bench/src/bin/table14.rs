//! Regenerates Table 14: durable logdisk — restore-to-LSN cost vs
//! distance, scrub throughput, seeded bit-rot detection drills, and
//! per-technology post-restore hand-off. The drills always run their
//! own quiet-plus-bitrot plan so detection accounting stays exact.

use graft_core::artifact::{self, RunArtifact};

fn main() {
    let cli = graft_bench::cli_from_args();
    let t = graft_core::experiment::table14(&cli.config).expect("table 14 runs");
    print!("{}", graft_core::report::render_table14(&t));
    let mut art = RunArtifact::begin(&cli.config);
    art.add_table("table14", artifact::table14_json(&t));
    graft_bench::maybe_write_artifact(&cli, &mut art);
}
